"""Unit tests for edge-list and JSON graph I/O."""

import pytest

from repro.errors import DatasetError
from repro.graph.generators import erdos_renyi_graph
from repro.graph.graph import Graph
from repro.graph.io import (
    graph_from_dict,
    graph_to_dict,
    load_graph_json,
    read_edge_list,
    save_graph_json,
    write_edge_list,
)


class TestEdgeListRoundtrip:
    def test_write_then_read(self, tmp_path, paper_example_graph):
        # The example graph has no isolated vertices, so the edge-list
        # round-trip preserves the vertex count (isolated vertices cannot be
        # represented in an edge list by construction).
        path = tmp_path / "graph.edges"
        write_edge_list(paper_example_graph, path, header="test graph")
        loaded, labels = read_edge_list(path)
        assert loaded.num_vertices == paper_example_graph.num_vertices
        assert loaded.num_edges == paper_example_graph.num_edges
        assert len(labels) == paper_example_graph.num_vertices

    def test_roundtrip_preserves_edge_count_with_isolates(self, tmp_path):
        graph = erdos_renyi_graph(20, 0.2, seed=0)
        path = tmp_path / "graph.edges"
        write_edge_list(graph, path)
        loaded, _labels = read_edge_list(path)
        assert loaded.num_edges == graph.num_edges

    def test_snap_style_input(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text(
            "# Directed SNAP-style list\n"
            "# FromNodeId ToNodeId\n"
            "10 20\n"
            "20 10\n"     # reverse duplicate: collapses to one undirected edge
            "20 30\n"
            "30 30\n"     # self-loop: dropped
            "a b\n")      # arbitrary labels are accepted
        graph, labels = read_edge_list(path)
        assert graph.num_vertices == 5
        assert graph.num_edges == 3
        assert set(labels) == {"10", "20", "30", "a", "b"}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            read_edge_list(tmp_path / "missing.txt")

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("42\n")
        with pytest.raises(DatasetError):
            read_edge_list(path)


class TestDictAndJson:
    def test_dict_roundtrip(self, paper_example_graph):
        payload = graph_to_dict(paper_example_graph)
        rebuilt = graph_from_dict(payload)
        assert rebuilt == paper_example_graph

    def test_malformed_payload_raises(self):
        with pytest.raises(DatasetError):
            graph_from_dict({"edges": [[0, 1]]})

    def test_json_roundtrip(self, tmp_path, paper_example_graph):
        path = tmp_path / "graph.json"
        save_graph_json(paper_example_graph, path)
        assert load_graph_json(path) == paper_example_graph

    def test_missing_json_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            load_graph_json(tmp_path / "nope.json")

    def test_empty_graph_roundtrip(self, tmp_path):
        graph = Graph(3)
        path = tmp_path / "empty.json"
        save_graph_json(graph, path)
        assert load_graph_json(path) == graph
