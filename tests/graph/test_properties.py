"""Unit tests for structural property computation (Tables 2/3 columns)."""

import networkx as nx
import pytest

from repro.graph.generators import complete_graph, erdos_renyi_graph, path_graph, star_graph
from repro.graph.graph import Graph
from repro.graph.matrices import UNREACHABLE
from repro.graph.properties import (
    average_clustering_coefficient,
    average_degree,
    degree_standard_deviation,
    diameter,
    geodesic_histogram,
    graph_properties,
    local_clustering_coefficient,
)


def _to_networkx(graph: Graph) -> nx.Graph:
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(range(graph.num_vertices))
    nx_graph.add_edges_from(graph.edges())
    return nx_graph


class TestDegreeStatistics:
    def test_average_degree(self, paper_example_graph):
        assert average_degree(paper_example_graph) == pytest.approx(20 / 7)

    def test_average_degree_empty(self):
        assert average_degree(Graph(0)) == 0.0

    def test_degree_stddev_regular_graph(self):
        assert degree_standard_deviation(complete_graph(5)) == 0.0

    def test_degree_stddev_star(self):
        graph = star_graph(4)
        expected = float(nx.Graph(_to_networkx(graph)).degree(0))  # hub degree = 4
        assert expected == 4
        assert degree_standard_deviation(graph) > 0


class TestClustering:
    def test_triangle_has_full_clustering(self, triangle_graph):
        assert local_clustering_coefficient(triangle_graph, 0) == 1.0
        assert average_clustering_coefficient(triangle_graph) == 1.0

    def test_path_has_zero_clustering(self, path4_graph):
        assert average_clustering_coefficient(path4_graph) == 0.0

    def test_low_degree_vertices_have_zero_coefficient(self, path4_graph):
        assert local_clustering_coefficient(path4_graph, 0) == 0.0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, seed):
        graph = erdos_renyi_graph(30, 0.2, seed=seed)
        expected = nx.average_clustering(_to_networkx(graph))
        assert average_clustering_coefficient(graph) == pytest.approx(expected)


class TestDiameter:
    def test_path_diameter(self):
        assert diameter(path_graph(6)) == 5

    def test_complete_graph_diameter(self):
        assert diameter(complete_graph(5)) == 1

    def test_disconnected_uses_reachable_pairs(self, disconnected_graph):
        assert diameter(disconnected_graph) == 1

    def test_single_vertex(self):
        assert diameter(Graph(1)) == 0

    def test_paper_example_diameter(self, paper_example_graph):
        assert diameter(paper_example_graph) == 3


class TestGeodesicHistogram:
    def test_counts_sum_to_pair_count(self, paper_example_graph):
        histogram = geodesic_histogram(paper_example_graph)
        assert sum(histogram.values()) == 7 * 6 // 2
        assert UNREACHABLE not in histogram  # example graph is connected

    def test_matches_figure_4a_counts(self, paper_example_graph):
        histogram = geodesic_histogram(paper_example_graph)
        assert histogram == {1: 10, 2: 8, 3: 3}


class TestGraphProperties:
    def test_full_report(self, paper_example_graph):
        properties = graph_properties(paper_example_graph)
        assert properties.num_vertices == 7
        assert properties.num_edges == 10
        assert properties.diameter == 3
        assert properties.average_degree == pytest.approx(20 / 7)
        payload = properties.as_dict()
        assert payload["nodes"] == 7
        assert payload["links"] == 10
