"""Unit tests for the incremental distance session (delta evaluation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, InvalidEdgeError
from repro.graph import Graph, erdos_renyi_graph
from repro.graph.distance import bounded_distance_matrix
from repro.graph.distance_delta import DistanceSession


def apply_delta(session, delta):
    """Materialize a previewed delta into a full matrix (for comparison)."""
    if delta.from_scratch:
        return delta.new_rows.copy()
    matrix = session.distances.copy()
    if delta.rows.size:
        matrix[delta.rows, :] = delta.new_rows
        matrix[:, delta.rows] = delta.new_rows.T
    return matrix


def reference_after(graph, removals, insertions, length):
    for u, v in removals:
        graph.remove_edge(u, v)
    for u, v in insertions:
        graph.add_edge(u, v)
    try:
        return bounded_distance_matrix(graph, length)
    finally:
        for u, v in insertions:
            graph.remove_edge(u, v)
        for u, v in removals:
            graph.add_edge(u, v)


class TestPreview:
    @pytest.mark.parametrize("length", [1, 2, 3])
    def test_single_removal_matches_scratch(self, paper_example_graph, length):
        session = DistanceSession(paper_example_graph, length)
        for edge in list(paper_example_graph.edges()):
            delta = session.preview(removals=[edge])
            expected = reference_after(paper_example_graph, [edge], [], length)
            assert np.array_equal(apply_delta(session, delta), expected)

    @pytest.mark.parametrize("length", [1, 2, 3])
    def test_single_insertion_matches_scratch(self, paper_example_graph, length):
        session = DistanceSession(paper_example_graph, length)
        for edge in list(paper_example_graph.non_edges()):
            delta = session.preview(insertions=[edge])
            expected = reference_after(paper_example_graph, [], [edge], length)
            assert np.array_equal(apply_delta(session, delta), expected)

    def test_combination_edit_matches_scratch(self, paper_example_graph):
        session = DistanceSession(paper_example_graph, 2)
        removals = [(0, 1), (4, 5)]
        insertions = [(0, 6), (3, 6)]
        delta = session.preview(removals=removals, insertions=insertions)
        expected = reference_after(paper_example_graph, removals, insertions, 2)
        assert np.array_equal(apply_delta(session, delta), expected)

    def test_preview_leaves_no_trace(self, paper_example_graph):
        session = DistanceSession(paper_example_graph, 2)
        before_edges = paper_example_graph.edge_set()
        before_matrix = session.distances.copy()
        session.preview(removals=[(0, 1)], insertions=[(0, 6)])
        assert paper_example_graph.edge_set() == before_edges
        assert np.array_equal(session.distances, before_matrix)

    def test_empty_preview_is_empty_delta(self, paper_example_graph):
        session = DistanceSession(paper_example_graph, 2)
        delta = session.preview()
        assert delta.num_affected_rows == 0
        assert not delta.from_scratch

    def test_fallback_produces_full_scratch_matrix(self, paper_example_graph):
        session = DistanceSession(paper_example_graph, 2, fallback_row_fraction=0.0)
        delta = session.preview(removals=[(0, 1)])
        assert delta.from_scratch
        expected = reference_after(paper_example_graph, [(0, 1)], [], 2)
        assert np.array_equal(delta.new_rows, expected)
        # The graph is restored even on the fallback path.
        assert paper_example_graph.has_edge(0, 1)


class TestApply:
    @pytest.mark.parametrize("fallback", [0.0, 0.5, 1.0])
    def test_random_edit_sequence_stays_exact(self, fallback):
        graph = erdos_renyi_graph(30, 0.2, seed=5)
        session = DistanceSession(graph, 2, fallback_row_fraction=fallback)
        for index in range(25):
            edges = list(graph.edges())
            non_edges = list(graph.non_edges())
            if index % 2 == 0 and edges:
                session.apply(removals=[edges[index % len(edges)]])
            elif non_edges:
                session.apply(insertions=[non_edges[index % len(non_edges)]])
            assert np.array_equal(session.distances,
                                  bounded_distance_matrix(graph, 2))

    def test_apply_accepts_matching_preview(self, paper_example_graph):
        session = DistanceSession(paper_example_graph, 2)
        delta = session.preview(removals=[(0, 1)])
        session.apply(removals=[(0, 1)], delta=delta)
        assert not paper_example_graph.has_edge(0, 1)
        assert np.array_equal(session.distances,
                              bounded_distance_matrix(paper_example_graph, 2))

    def test_apply_rejects_mismatched_delta(self, paper_example_graph):
        session = DistanceSession(paper_example_graph, 2)
        delta = session.preview(removals=[(0, 1)])
        with pytest.raises(ConfigurationError):
            session.apply(removals=[(1, 2)], delta=delta)

    def test_refresh_resyncs_after_out_of_band_edit(self, paper_example_graph):
        session = DistanceSession(paper_example_graph, 2)
        paper_example_graph.remove_edge(0, 1)
        session.refresh()
        assert np.array_equal(session.distances,
                              bounded_distance_matrix(paper_example_graph, 2))


class TestFallbackTransition:
    def test_mid_sequence_fallback_after_incremental_op(self):
        # n must exceed the threshold floor of 16 affected rows for the
        # fallback to be reachable at all; a dense L=3 sample guarantees a
        # removal's affected region blows past it.
        graph = erdos_renyi_graph(40, 0.3, seed=11)
        session = DistanceSession(graph, 3, fallback_row_fraction=0.05)
        removal = next(edge for edge in graph.edges()
                       if session.preview(removals=[edge]).from_scratch)
        insertion = next(iter(graph.non_edges()))
        # Insertions never fall back, so the first op is processed
        # incrementally and the removal then flips the preview to scratch.
        delta = session.preview(removals=[removal], insertions=[insertion])
        assert delta.from_scratch
        expected = reference_after(graph, [removal], [insertion], 3)
        assert np.array_equal(delta.new_rows, expected)
        # The same transition through the permanent-application path.
        session.apply(removals=[removal], insertions=[insertion])
        assert np.array_equal(session.distances,
                              bounded_distance_matrix(graph, 3))

    def test_mixed_incremental_and_fallback_sequence_stays_exact(self):
        graph = erdos_renyi_graph(40, 0.3, seed=12)
        session = DistanceSession(graph, 3, fallback_row_fraction=0.05)
        for index in range(12):
            edges = list(graph.edges())
            non_edges = list(graph.non_edges())
            if index % 2 == 0 and edges:
                session.apply(removals=[edges[index % len(edges)]])
            elif non_edges:
                session.apply(insertions=[non_edges[index % len(non_edges)]])
            assert np.array_equal(session.distances,
                                  bounded_distance_matrix(graph, 3))


class TestWideFrontiers:
    def test_256_wide_frontier_is_not_truncated(self):
        # Regression: a uint8 matmul accumulator wraps at 256 common
        # neighbors, silently reporting reachable vertices as UNREACHABLE.
        hub, sink = 1, 258
        leaves = range(2, 258)  # exactly 256 intermediate vertices
        edges = [(0, hub)]
        edges += [(hub, leaf) for leaf in leaves]
        edges += [(leaf, sink) for leaf in leaves]
        graph = Graph(259, edges=edges)
        reference = bounded_distance_matrix(graph, 3, engine="bfs")
        assert reference[0, sink] == 3
        assert np.array_equal(bounded_distance_matrix(graph, 3, engine="numpy"),
                              reference)
        session = DistanceSession(graph, 3, fallback_row_fraction=1.0)
        session.apply(removals=[(0, hub)])
        session.apply(insertions=[(0, hub)])
        assert np.array_equal(session.distances, reference)


class TestValidation:
    def test_rejects_bad_length(self):
        with pytest.raises(ConfigurationError):
            DistanceSession(Graph(3), 0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            DistanceSession(Graph(3), 1, fallback_row_fraction=1.5)

    def test_preview_of_present_edge_insertion_raises_and_restores(self, paper_example_graph):
        session = DistanceSession(paper_example_graph, 2)
        before = paper_example_graph.edge_set()
        with pytest.raises(InvalidEdgeError):
            # (0, 1) is already present, so the removal is undone and the
            # offending insertion never sticks.
            session.preview(removals=[(4, 5)], insertions=[(0, 1)])
        assert paper_example_graph.edge_set() == before


class TestPreviewBatch:
    """The stacked batch pass must equal the sequential previews bit for bit."""

    @pytest.mark.parametrize("length", [1, 2, 3])
    @pytest.mark.parametrize("fallback", [0.0, 0.5, 1.0])
    def test_removal_batch_matches_sequential_previews(self, paper_example_graph,
                                                       length, fallback):
        edges = list(paper_example_graph.edges())
        sequential_session = DistanceSession(paper_example_graph.copy(), length,
                                             fallback_row_fraction=fallback)
        expected = [sequential_session.preview(removals=[edge]) for edge in edges]
        batch_session = DistanceSession(paper_example_graph, length,
                                        fallback_row_fraction=fallback)
        observed = batch_session.preview_batch(removals=edges)
        assert len(observed) == len(expected)
        for got, want in zip(observed, expected):
            assert got.removals == want.removals
            assert got.insertions == want.insertions
            assert got.from_scratch == want.from_scratch
            assert np.array_equal(got.rows, want.rows)
            assert np.array_equal(got.new_rows, want.new_rows)

    @pytest.mark.parametrize("length", [1, 2, 3])
    def test_insertion_batch_matches_sequential_previews(self, paper_example_graph,
                                                         length):
        edges = list(paper_example_graph.non_edges())
        sequential_session = DistanceSession(paper_example_graph.copy(), length)
        expected = [sequential_session.preview(insertions=[edge]) for edge in edges]
        observed = DistanceSession(paper_example_graph, length).preview_batch(
            insertions=edges)
        for got, want in zip(observed, expected):
            assert got.insertions == want.insertions
            assert np.array_equal(got.rows, want.rows)
            assert np.array_equal(got.new_rows, want.new_rows)

    def test_batch_on_random_graphs_matches_scratch_matrices(self):
        for seed in range(4):
            graph = erdos_renyi_graph(18, 0.2, seed=seed)
            session = DistanceSession(graph, 2)
            edges = list(graph.edges())
            for edge, delta in zip(edges, session.preview_batch(removals=edges)):
                expected = reference_after(graph, [edge], [], 2)
                assert np.array_equal(apply_delta(session, delta), expected)
            non_edges = list(graph.non_edges())[:40]
            for edge, delta in zip(non_edges,
                                   session.preview_batch(insertions=non_edges)):
                expected = reference_after(graph, [], [edge], 2)
                assert np.array_equal(apply_delta(session, delta), expected)

    def test_batch_leaves_no_trace(self, paper_example_graph):
        session = DistanceSession(paper_example_graph, 2)
        before_edges = paper_example_graph.edge_set()
        before_matrix = session.distances.copy()
        session.preview_batch(removals=list(paper_example_graph.edges()),
                              insertions=list(paper_example_graph.non_edges()))
        assert paper_example_graph.edge_set() == before_edges
        assert np.array_equal(session.distances, before_matrix)

    def test_empty_batch_returns_no_deltas(self, paper_example_graph):
        session = DistanceSession(paper_example_graph, 2)
        assert session.preview_batch() == []

    def test_forced_fallback_yields_from_scratch_deltas(self, paper_example_graph):
        session = DistanceSession(paper_example_graph, 2,
                                  fallback_row_fraction=0.0)
        edges = list(paper_example_graph.edges())
        deltas = session.preview_batch(removals=edges)
        assert all(delta.from_scratch for delta in deltas)
        for edge, delta in zip(edges, deltas):
            expected = reference_after(paper_example_graph, [edge], [], 2)
            assert np.array_equal(delta.new_rows, expected)

    def test_small_slab_chunks_do_not_change_results(self, monkeypatch):
        graph = erdos_renyi_graph(16, 0.25, seed=1)
        session = DistanceSession(graph, 2)
        edges = list(graph.edges())
        non_edges = list(graph.non_edges())
        expected = session.preview_batch(removals=edges, insertions=non_edges)
        monkeypatch.setattr(DistanceSession, "_batch_slab_row_cap", lambda self: 1)
        monkeypatch.setattr(DistanceSession, "_batch_candidate_cap", lambda self: 1)
        chunked = session.preview_batch(removals=edges, insertions=non_edges)
        for got, want in zip(chunked, expected):
            assert np.array_equal(got.rows, want.rows)
            assert np.array_equal(got.new_rows, want.new_rows)


class TestInitialDistances:
    """A session seeded with a precomputed matrix behaves like a cold one."""

    def test_adopts_precomputed_matrix_without_engine_run(self, paper_example_graph):
        precomputed = bounded_distance_matrix(paper_example_graph, 2)
        session = DistanceSession(paper_example_graph, 2,
                                  initial_distances=precomputed)
        assert np.array_equal(session.distances, precomputed)

    def test_seeded_session_produces_identical_deltas(self, paper_example_graph):
        cold = DistanceSession(paper_example_graph.copy(), 2)
        seeded = DistanceSession(
            paper_example_graph, 2,
            initial_distances=bounded_distance_matrix(paper_example_graph, 2))
        for edge in list(paper_example_graph.edges()):
            a = cold.preview(removals=[edge])
            b = seeded.preview(removals=[edge])
            assert np.array_equal(a.rows, b.rows)
            assert np.array_equal(a.new_rows, b.new_rows)

    def test_shape_mismatch_rejected(self, paper_example_graph):
        with pytest.raises(ConfigurationError):
            DistanceSession(paper_example_graph, 2,
                            initial_distances=np.zeros((3, 3), dtype=np.int32))


class TestFusedPreviewBatch:
    """skip_unchanged=True drops flip-free candidates to None, nothing else."""

    @pytest.mark.parametrize("length", [1, 2, 3])
    def test_none_exactly_where_no_membership_flips(self, paper_example_graph,
                                                    length):
        session = DistanceSession(paper_example_graph, length)
        edges = list(paper_example_graph.edges())
        non_edges = list(paper_example_graph.non_edges())
        plain = session.preview_batch(removals=edges, insertions=non_edges)
        fused = session.preview_batch(removals=edges, insertions=non_edges,
                                      skip_unchanged=True)
        assert len(plain) == len(fused)
        for full_delta, fused_delta in zip(plain, fused):
            if fused_delta is None:
                # Skipped candidates flip no cell across the L boundary.
                assert not full_delta.from_scratch
                old = session.distances[full_delta.rows]
                assert np.array_equal(old <= length,
                                      full_delta.new_rows <= length)
            else:
                assert np.array_equal(full_delta.rows, fused_delta.rows)
                assert np.array_equal(full_delta.new_rows, fused_delta.new_rows)
                assert full_delta.from_scratch == fused_delta.from_scratch

    def test_fused_pass_leaves_no_trace(self, paper_example_graph):
        session = DistanceSession(paper_example_graph, 2)
        before_edges = paper_example_graph.edge_set()
        before = session.distances.copy()
        session.preview_batch(removals=list(paper_example_graph.edges()),
                              insertions=list(paper_example_graph.non_edges()),
                              skip_unchanged=True)
        assert paper_example_graph.edge_set() == before_edges
        assert np.array_equal(session.distances, before)

    def test_triangle_removal_at_l2_is_skipped(self):
        # Removing one triangle edge at L = 2 lengthens its pair to 2 via
        # the third vertex: distances change but nothing crosses L, so the
        # fused scan materializes no delta at all.
        triangle = Graph(3, edges=[(0, 1), (1, 2), (0, 2)])
        session = DistanceSession(triangle, 2)
        fused = session.preview_batch(removals=[(0, 1)], skip_unchanged=True)
        assert fused == [None]
        plain = session.preview_batch(removals=[(0, 1)])
        assert plain[0].rows.size > 0  # the plain path does see the change

    def test_removal_at_l1_always_flips(self):
        triangle = Graph(3, edges=[(0, 1), (1, 2), (0, 2)])
        session = DistanceSession(triangle, 1)
        fused = session.preview_batch(removals=[(0, 1)], skip_unchanged=True)
        assert fused[0] is not None
