"""Tests for the shared L_max distance cache (thresholding correctness)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.graph import (
    Graph,
    LMaxDistanceCache,
    available_engines,
    bounded_distance_matrix,
    threshold_distances,
)
from repro.graph.matrices import distance_dtype, unreachable_value

from tests.property.strategies import graphs


class TestThresholdDistances:
    def test_matches_direct_computation(self, paper_example_graph):
        for l_max in (2, 3, 4):
            full = bounded_distance_matrix(paper_example_graph, l_max)
            for length in range(1, l_max + 1):
                direct = bounded_distance_matrix(paper_example_graph, length)
                derived = threshold_distances(full, length)
                assert np.array_equal(derived, direct)
                assert derived.dtype == direct.dtype == distance_dtype(length)

    def test_returns_fresh_contiguous_copy(self, triangle_graph):
        full = bounded_distance_matrix(triangle_graph, 2)
        derived = threshold_distances(full, 2)
        assert derived is not full
        assert derived.flags["C_CONTIGUOUS"]
        derived[0, 1] = 99
        assert full[0, 1] != 99

    def test_unreachable_cells_stay_unreachable(self, disconnected_graph):
        full = bounded_distance_matrix(disconnected_graph, 3)
        derived = threshold_distances(full, 1)
        assert derived[0, 2] == unreachable_value(derived.dtype)
        assert derived[0, 1] == 1

    def test_invalid_bound_rejected(self, triangle_graph):
        full = bounded_distance_matrix(triangle_graph, 2)
        with pytest.raises(ConfigurationError):
            threshold_distances(full, 0)

    @settings(max_examples=40, deadline=None)
    @given(graph=graphs(max_vertices=10), l_max=st.integers(1, 4),
           length=st.integers(1, 4))
    def test_threshold_bit_identical_across_engines(self, graph, l_max, length):
        # The acceptance property: for every engine, truncating the L_max
        # matrix at any smaller L reproduces the direct computation exactly.
        if length > l_max:
            length, l_max = l_max, length
        for engine in available_engines():
            full = bounded_distance_matrix(graph, l_max, engine=engine)
            direct = bounded_distance_matrix(graph, length, engine=engine)
            assert np.array_equal(threshold_distances(full, length), direct), \
                (engine, l_max, length)


class TestLMaxDistanceCache:
    def test_single_computation_serves_every_length(self, paper_example_graph):
        cache = LMaxDistanceCache(paper_example_graph, 3)
        for length in (1, 2, 3, 2, 1):
            matrix = cache.matrix(length)
            assert np.array_equal(
                matrix, bounded_distance_matrix(paper_example_graph, length))
        assert cache.compute_count == 1

    def test_lazy_until_first_matrix(self, triangle_graph):
        cache = LMaxDistanceCache(triangle_graph, 2)
        assert cache.compute_count == 0
        cache.matrix(1)
        assert cache.compute_count == 1

    def test_matrices_are_independent_copies(self, paper_example_graph):
        cache = LMaxDistanceCache(paper_example_graph, 2)
        first = cache.matrix(2)
        first[0, 1] = 77
        assert cache.matrix(2)[0, 1] != 77

    def test_length_beyond_l_max_rejected(self, triangle_graph):
        cache = LMaxDistanceCache(triangle_graph, 2)
        with pytest.raises(ConfigurationError):
            cache.matrix(3)
        with pytest.raises(ConfigurationError):
            cache.matrix(0)

    def test_invalid_l_max_rejected(self, triangle_graph):
        with pytest.raises(ConfigurationError):
            LMaxDistanceCache(triangle_graph, 0)

    def test_respects_engine(self, paper_example_graph):
        for engine in available_engines():
            cache = LMaxDistanceCache(paper_example_graph, 3, engine=engine)
            assert np.array_equal(
                cache.matrix(2),
                bounded_distance_matrix(paper_example_graph, 2, engine=engine))

    def test_empty_graph(self):
        cache = LMaxDistanceCache(Graph(0), 2)
        assert cache.matrix(1).shape == (0, 0)
