"""Unit tests for the Graph data structure."""

import numpy as np
import pytest

from repro.errors import GraphError, InvalidEdgeError
from repro.graph.graph import Graph, normalize_edge


class TestNormalizeEdge:
    def test_orders_endpoints(self):
        assert normalize_edge(5, 2) == (2, 5)
        assert normalize_edge(2, 5) == (2, 5)

    def test_rejects_self_loop(self):
        with pytest.raises(InvalidEdgeError):
            normalize_edge(3, 3)


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph(0)
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert list(graph.edges()) == []

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_constructor_edges(self):
        graph = Graph(4, edges=[(0, 1), (2, 3)])
        assert graph.num_edges == 2
        assert graph.has_edge(1, 0)
        assert graph.has_edge(3, 2)

    def test_from_edge_list_infers_size(self):
        graph = Graph.from_edge_list([(0, 5), (2, 3)])
        assert graph.num_vertices == 6
        assert graph.num_edges == 2

    def test_from_edge_list_drops_duplicates(self):
        graph = Graph.from_edge_list([(0, 1), (1, 0), (0, 1)])
        assert graph.num_edges == 1


class TestMutation:
    def test_add_and_remove(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        assert graph.has_edge(0, 1)
        graph.remove_edge(1, 0)
        assert not graph.has_edge(0, 1)
        assert graph.num_edges == 0

    def test_add_duplicate_raises(self):
        graph = Graph(3, edges=[(0, 1)])
        with pytest.raises(InvalidEdgeError):
            graph.add_edge(1, 0)

    def test_remove_missing_raises(self):
        graph = Graph(3)
        with pytest.raises(InvalidEdgeError):
            graph.remove_edge(0, 1)

    def test_self_loop_rejected(self):
        graph = Graph(3)
        with pytest.raises(InvalidEdgeError):
            graph.add_edge(1, 1)

    def test_out_of_range_vertex_rejected(self):
        graph = Graph(3)
        with pytest.raises(GraphError):
            graph.add_edge(0, 7)

    def test_conditional_add_remove(self):
        graph = Graph(3)
        assert graph.add_edge_if_absent(0, 1) is True
        assert graph.add_edge_if_absent(0, 1) is False
        assert graph.remove_edge_if_present(0, 1) is True
        assert graph.remove_edge_if_present(0, 1) is False


class TestAccessors:
    def test_degrees(self, paper_example_graph):
        from tests.conftest import PAPER_EXAMPLE_DEGREES
        assert paper_example_graph.degrees() == PAPER_EXAMPLE_DEGREES
        assert list(paper_example_graph.degree_array()) == PAPER_EXAMPLE_DEGREES

    def test_neighbors_snapshot_is_immutable(self):
        graph = Graph(3, edges=[(0, 1)])
        snapshot = graph.neighbors(0)
        assert snapshot == frozenset({1})
        with pytest.raises(AttributeError):
            snapshot.add(2)  # type: ignore[attr-defined]

    def test_edges_are_canonical_and_unique(self, paper_example_graph):
        edges = list(paper_example_graph.edges())
        assert len(edges) == paper_example_graph.num_edges
        assert all(u < v for u, v in edges)
        assert len(set(edges)) == len(edges)

    def test_non_edges_complement(self):
        graph = Graph(4, edges=[(0, 1)])
        non_edges = set(graph.non_edges())
        assert (0, 1) not in non_edges
        assert len(non_edges) == 4 * 3 // 2 - 1

    def test_contains_protocol(self, triangle_graph):
        assert (0, 1) in triangle_graph
        assert (2, 0) in triangle_graph

    def test_len_is_vertex_count(self, triangle_graph):
        assert len(triangle_graph) == 3

    def test_equality_ignores_edge_order(self):
        first = Graph(3, edges=[(0, 1), (1, 2)])
        second = Graph(3, edges=[(1, 2), (0, 1)])
        assert first == second

    def test_graphs_are_unhashable(self, triangle_graph):
        with pytest.raises(TypeError):
            hash(triangle_graph)


class TestDerivedStructures:
    def test_copy_is_independent(self, triangle_graph):
        clone = triangle_graph.copy()
        clone.remove_edge(0, 1)
        assert triangle_graph.has_edge(0, 1)
        assert not clone.has_edge(0, 1)

    def test_adjacency_matrix_symmetric(self, paper_example_graph):
        matrix = paper_example_graph.adjacency_matrix()
        assert matrix.shape == (7, 7)
        assert np.array_equal(matrix, matrix.T)
        assert matrix.sum() == 2 * paper_example_graph.num_edges

    def test_subgraph_relabels(self, paper_example_graph):
        sub, mapping = paper_example_graph.subgraph([1, 2, 4])
        assert sub.num_vertices == 3
        # Vertices 1, 2, 4 form a triangle in the example graph.
        assert sub.num_edges == 3
        assert set(mapping) == {1, 2, 4}

    def test_connected_components(self, disconnected_graph):
        components = disconnected_graph.connected_components()
        assert sorted(map(tuple, components)) == [(0, 1), (2, 3), (4,)]
        assert not disconnected_graph.is_connected()

    def test_paper_example_is_connected(self, paper_example_graph):
        assert paper_example_graph.is_connected()
