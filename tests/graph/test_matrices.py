"""Unit tests for the triangular distance-matrix container."""

import numpy as np
import pytest

from repro.graph.matrices import TriangularMatrix, UNREACHABLE


class TestTriangularMatrix:
    def test_default_fill_is_unreachable(self):
        matrix = TriangularMatrix(4)
        assert matrix[0, 3] == UNREACHABLE
        assert matrix[2, 1] == UNREACHABLE

    def test_set_and_get_symmetric(self):
        matrix = TriangularMatrix(5)
        matrix[1, 3] = 7
        assert matrix[1, 3] == 7
        assert matrix[3, 1] == 7

    def test_diagonal_not_stored(self):
        matrix = TriangularMatrix(3)
        with pytest.raises(IndexError):
            _ = matrix[1, 1]

    def test_out_of_range_rejected(self):
        matrix = TriangularMatrix(3)
        with pytest.raises(IndexError):
            _ = matrix[0, 3]

    def test_pairs_enumerates_upper_triangle(self):
        matrix = TriangularMatrix(4)
        pairs = list(matrix.pairs())
        assert len(pairs) == 6
        assert all(i < j for i, j, _value in pairs)

    def test_dense_roundtrip(self):
        matrix = TriangularMatrix(4)
        matrix[0, 1] = 1
        matrix[2, 3] = 5
        dense = matrix.to_dense()
        assert dense[1, 0] == 1
        assert dense[3, 2] == 5
        assert dense[0, 0] == 0
        rebuilt = TriangularMatrix.from_dense(dense)
        assert rebuilt == matrix

    def test_copy_is_independent(self):
        matrix = TriangularMatrix(3)
        matrix[0, 1] = 2
        clone = matrix.copy()
        clone[0, 1] = 9
        assert matrix[0, 1] == 2

    def test_equality(self):
        first = TriangularMatrix(3)
        second = TriangularMatrix(3)
        assert first == second
        second[0, 2] = 1
        assert first != second

    def test_index_layout_is_bijective(self):
        n = 7
        matrix = TriangularMatrix(n)
        counter = 0
        for i in range(n):
            for j in range(i + 1, n):
                matrix[i, j] = counter
                counter += 1
        seen = {value for _i, _j, value in matrix.pairs()}
        assert seen == set(range(n * (n - 1) // 2))
