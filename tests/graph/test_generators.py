"""Unit tests for the graph generators."""

import pytest

from repro.errors import ConfigurationError
from repro.graph.generators import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi_graph,
    gnm_random_graph,
    path_graph,
    powerlaw_cluster_graph,
    star_graph,
    watts_strogatz_graph,
)
from repro.graph.properties import average_clustering_coefficient


class TestDeterministicGenerators:
    def test_empty_graph(self):
        graph = empty_graph(5)
        assert graph.num_vertices == 5
        assert graph.num_edges == 0

    def test_complete_graph(self):
        graph = complete_graph(6)
        assert graph.num_edges == 15
        assert all(graph.degree(v) == 5 for v in graph.vertices())

    def test_path_graph(self):
        graph = path_graph(5)
        assert graph.num_edges == 4
        assert graph.degree(0) == 1
        assert graph.degree(2) == 2

    def test_cycle_graph(self):
        graph = cycle_graph(5)
        assert graph.num_edges == 5
        assert all(graph.degree(v) == 2 for v in graph.vertices())

    def test_cycle_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            cycle_graph(2)

    def test_star_graph(self):
        graph = star_graph(4)
        assert graph.num_vertices == 5
        assert graph.degree(0) == 4
        assert all(graph.degree(v) == 1 for v in range(1, 5))


class TestErdosRenyi:
    def test_probability_zero_and_one(self):
        assert erdos_renyi_graph(10, 0.0, seed=0).num_edges == 0
        assert erdos_renyi_graph(10, 1.0, seed=0).num_edges == 45

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi_graph(10, 1.5)

    def test_seed_reproducibility(self):
        assert erdos_renyi_graph(20, 0.3, seed=7) == erdos_renyi_graph(20, 0.3, seed=7)

    def test_different_seeds_differ(self):
        assert erdos_renyi_graph(20, 0.3, seed=1) != erdos_renyi_graph(20, 0.3, seed=2)


class TestGnm:
    def test_exact_edge_count(self):
        graph = gnm_random_graph(20, 37, seed=3)
        assert graph.num_edges == 37

    def test_too_many_edges_rejected(self):
        with pytest.raises(ConfigurationError):
            gnm_random_graph(4, 7)


class TestBarabasiAlbert:
    def test_size_and_connectivity_regime(self):
        graph = barabasi_albert_graph(60, 3, seed=0)
        assert graph.num_vertices == 60
        # Every vertex added after the seed core attaches to 3 targets.
        assert graph.num_edges >= 3 * (60 - 3) * 0.9

    def test_invalid_attachment_rejected(self):
        with pytest.raises(ConfigurationError):
            barabasi_albert_graph(10, 0)
        with pytest.raises(ConfigurationError):
            barabasi_albert_graph(10, 10)

    def test_heavy_tail(self):
        graph = barabasi_albert_graph(200, 2, seed=1)
        degrees = sorted(graph.degrees(), reverse=True)
        # Preferential attachment concentrates degree on a few hubs.
        assert degrees[0] >= 3 * (2 * graph.num_edges / graph.num_vertices)


class TestWattsStrogatz:
    def test_degree_regularity_without_rewiring(self):
        graph = watts_strogatz_graph(20, 4, 0.0, seed=0)
        assert all(graph.degree(v) == 4 for v in graph.vertices())

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            watts_strogatz_graph(10, 3, 0.1)
        with pytest.raises(ConfigurationError):
            watts_strogatz_graph(10, 12, 0.1)
        with pytest.raises(ConfigurationError):
            watts_strogatz_graph(10, 4, 1.5)

    def test_lattice_is_clustered(self):
        graph = watts_strogatz_graph(50, 6, 0.0, seed=0)
        assert average_clustering_coefficient(graph) > 0.4


class TestPowerlawCluster:
    def test_size_and_edges(self):
        graph = powerlaw_cluster_graph(80, 4, 0.8, seed=0)
        assert graph.num_vertices == 80
        assert graph.num_edges > 0

    def test_triangle_closure_raises_clustering(self):
        clustered = powerlaw_cluster_graph(120, 4, 0.95, seed=0)
        unclustered = powerlaw_cluster_graph(120, 4, 0.0, seed=0)
        assert (average_clustering_coefficient(clustered)
                > average_clustering_coefficient(unclustered))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            powerlaw_cluster_graph(10, 0, 0.5)
        with pytest.raises(ConfigurationError):
            powerlaw_cluster_graph(10, 2, -0.1)

    def test_seed_reproducibility(self):
        assert (powerlaw_cluster_graph(50, 3, 0.7, seed=11)
                == powerlaw_cluster_graph(50, 3, 0.7, seed=11))
