"""Unit tests for random node sampling (Section 6.1 methodology)."""

import pytest

from repro.errors import ConfigurationError
from repro.graph.generators import erdos_renyi_graph
from repro.graph.sampling import induced_subgraph, sample_graph, sample_nodes


class TestSampleNodes:
    def test_sample_size_and_uniqueness(self):
        graph = erdos_renyi_graph(50, 0.1, seed=0)
        nodes = sample_nodes(graph, 20, seed=1)
        assert len(nodes) == 20
        assert len(set(nodes)) == 20
        assert all(0 <= v < 50 for v in nodes)

    def test_invalid_size_rejected(self):
        graph = erdos_renyi_graph(10, 0.2, seed=0)
        with pytest.raises(ConfigurationError):
            sample_nodes(graph, 11)
        with pytest.raises(ConfigurationError):
            sample_nodes(graph, -1)

    def test_seed_reproducibility(self):
        graph = erdos_renyi_graph(50, 0.1, seed=0)
        assert sample_nodes(graph, 10, seed=5) == sample_nodes(graph, 10, seed=5)


class TestInducedSubgraph:
    def test_keeps_only_internal_edges(self, paper_example_graph):
        sub, mapping = induced_subgraph(paper_example_graph, [1, 2, 4, 6])
        assert sub.num_vertices == 4
        # Among {v2, v3, v5, v7} the triangle v2-v3-v5 survives, v7 is isolated.
        assert sub.num_edges == 3
        assert sub.degree(mapping[6]) == 0

    def test_sample_graph_end_to_end(self):
        graph = erdos_renyi_graph(40, 0.2, seed=2)
        sampled, mapping = sample_graph(graph, 15, seed=3)
        assert sampled.num_vertices == 15
        assert len(mapping) == 15
        # Every sampled edge must exist between the original endpoints.
        reverse = {new: old for old, new in mapping.items()}
        for u, v in sampled.edges():
            assert graph.has_edge(reverse[u], reverse[v])

    def test_sampled_edges_are_all_induced_edges(self):
        graph = erdos_renyi_graph(30, 0.3, seed=4)
        sampled, mapping = sample_graph(graph, 12, seed=5)
        chosen = set(mapping)
        expected = sum(1 for u, v in graph.edges() if u in chosen and v in chosen)
        assert sampled.num_edges == expected
