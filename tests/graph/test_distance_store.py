"""Tests for the distance-store seam (dense and tiled scale tiers)."""

import os

import numpy as np
import pytest

from repro.errors import ConfigurationError, DistanceMemoryError
from repro.graph.distance import bounded_distance_matrix
from repro.graph.distance_store import (
    DEFAULT_SCALE_BUDGET_BYTES,
    CSRAdjacency,
    DenseStore,
    StoreConfig,
    TiledStore,
    csr_bounded_rows,
    dense_matrix_bytes,
    ensure_dense_fits,
    validate_scale_tier,
)
from repro.graph.generators import erdos_renyi_graph
from repro.graph.graph import Graph
from repro.graph.matrices import distance_dtype


def sample_graph(n=40, p=0.12, seed=3):
    return erdos_renyi_graph(n, p, seed=seed)


class TestStoreConfig:
    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigurationError, match="scale_tier"):
            validate_scale_tier("huge")
        with pytest.raises(ConfigurationError, match="scale_tier"):
            StoreConfig(tier="huge").validate()

    def test_budget_and_tile_rows_validated(self):
        with pytest.raises(ConfigurationError, match="budget_bytes"):
            StoreConfig(budget_bytes=0).validate()
        with pytest.raises(ConfigurationError, match="tile_rows"):
            StoreConfig(tile_rows=0).validate()

    def test_auto_resolves_by_budget(self):
        dtype = np.dtype(np.uint8)
        fits = StoreConfig(tier="auto", budget_bytes=dense_matrix_bytes(10, dtype))
        assert fits.resolve(10, dtype) == "dense"
        over = StoreConfig(tier="auto",
                           budget_bytes=dense_matrix_bytes(10, dtype) - 1)
        assert over.resolve(10, dtype) == "tiled"

    def test_explicit_tiers_resolve_to_themselves(self):
        assert StoreConfig(tier="tiled", budget_bytes=1).resolve(
            1000, np.uint8) == "tiled"
        assert StoreConfig(tier="dense").resolve(10, np.uint8) == "dense"

    def test_explicit_dense_over_budget_fires_the_memory_guard(self):
        config = StoreConfig(tier="dense", budget_bytes=64)
        with pytest.raises(DistanceMemoryError, match="scale_tier='tiled'"):
            config.resolve(100, np.uint8)

    def test_ensure_dense_fits_names_the_tiled_tier(self):
        with pytest.raises(DistanceMemoryError, match="--scale-tier tiled"):
            ensure_dense_fits(1000, np.int32, budget_bytes=1024)
        ensure_dense_fits(4, np.int32, budget_bytes=64)  # exactly fits


class TestCSRAdjacency:
    def test_from_graph_round_trips_neighbors(self):
        graph = sample_graph(25)
        csr = CSRAdjacency.from_graph(graph)
        assert csr.num_vertices == graph.num_vertices
        for v in range(graph.num_vertices):
            start, stop = csr.indptr[v], csr.indptr[v + 1]
            assert sorted(csr.indices[start:stop]) == sorted(graph.neighbors(v))

    def test_gather_positions_index_the_query(self):
        graph = Graph(4, edges=[(0, 1), (1, 2), (2, 3)])
        csr = CSRAdjacency.from_graph(graph)
        positions, neighbors = csr.gather(np.array([2, 0]))
        got = {}
        for pos, nb in zip(positions, neighbors):
            got.setdefault(int(pos), set()).add(int(nb))
        assert got == {0: {1, 3}, 1: {1}}

    def test_edgeless_graph(self):
        csr = CSRAdjacency.from_graph(Graph(3, edges=[]))
        assert csr.indices.size == 0
        positions, neighbors = csr.gather(np.array([0, 1, 2]))
        assert positions.size == neighbors.size == 0

    def test_csr_bounded_rows_match_the_dense_engine(self):
        graph = sample_graph(30)
        csr = CSRAdjacency.from_graph(graph)
        for length in (1, 2, 4):
            dense = bounded_distance_matrix(graph, length)
            sources = np.array([0, 7, 29])
            rows = csr_bounded_rows(csr, sources, length)
            assert rows.dtype == dense.dtype
            np.testing.assert_array_equal(rows, dense[sources])


class TestDenseStore:
    def test_rows_are_fresh_writable_slabs(self):
        graph = sample_graph(20)
        matrix = bounded_distance_matrix(graph, 2)
        store = DenseStore(matrix.copy(), 2)
        rows = store.rows([3, 5])
        np.testing.assert_array_equal(rows, matrix[[3, 5]])
        rows[0, 0] = 77  # caller owns the slab
        np.testing.assert_array_equal(store.rows([3]), matrix[[3]])

    def test_write_rows_is_symmetric(self):
        graph = sample_graph(15)
        matrix = bounded_distance_matrix(graph, 2)
        store = DenseStore(matrix.copy(), 2)
        new_rows = store.rows([4])
        new_rows[:] = 1
        store.write_rows(np.array([4]), new_rows)
        out = store.to_array()
        assert (out[4] == 1).all()
        assert (out[:, 4] == 1).all()

    def test_row_blocks_cover_the_matrix_once(self):
        store = DenseStore(bounded_distance_matrix(sample_graph(17), 1), 1)
        covered = [r for start, stop in store.row_blocks()
                   for r in range(start, stop)]
        assert covered == list(range(17))


class TestTiledStore:
    @pytest.mark.parametrize("length", [1, 2, 3])
    @pytest.mark.parametrize("tile_rows", [1, 7, 64])
    def test_to_array_matches_the_dense_engine(self, length, tile_rows):
        graph = sample_graph(33)
        store = TiledStore(graph, length, tile_rows=tile_rows)
        np.testing.assert_array_equal(
            store.to_array(), bounded_distance_matrix(graph, length))

    def test_rows_across_tile_boundaries(self):
        graph = sample_graph(30)
        dense = bounded_distance_matrix(graph, 2)
        store = TiledStore(graph, 2, tile_rows=7)
        block = np.array([0, 6, 7, 13, 29])
        np.testing.assert_array_equal(store.rows(block), dense[block])

    def test_tiny_budget_forces_spills_without_changing_values(self, tmp_path):
        graph = sample_graph(40)
        dense = bounded_distance_matrix(graph, 3)
        row_bytes = 40 * dense.dtype.itemsize
        store = TiledStore(graph, 3, tile_rows=5,
                           budget_bytes=5 * row_bytes,  # one tile resident
                           spill_dir=str(tmp_path))
        np.testing.assert_array_equal(store.to_array(), dense)
        assert store.tile_computes == store.num_tiles
        assert store.tile_spills > 0
        assert store.spill_path is not None
        assert os.path.dirname(store.spill_path) == str(tmp_path)
        # A second full read reloads spilled tiles instead of recomputing.
        np.testing.assert_array_equal(store.to_array(), dense)
        assert store.tile_computes == store.num_tiles
        assert store.tile_loads > 0

    def test_close_removes_the_spill_file(self, tmp_path):
        graph = sample_graph(24)
        store = TiledStore(graph, 2, tile_rows=3, budget_bytes=200,
                           spill_dir=str(tmp_path))
        store.to_array()
        path = store.spill_path
        assert path is not None and os.path.exists(path)
        store.close()
        assert not os.path.exists(path)

    def test_cache_bytes_stay_under_budget(self):
        graph = sample_graph(36)
        budget = 4 * 36 * distance_dtype(2).itemsize
        store = TiledStore(graph, 2, tile_rows=4, budget_bytes=budget)
        store.to_array()
        assert 0 < store.cache_bytes() <= budget

    def test_preload_tile_skips_the_compute(self):
        graph = sample_graph(20)
        dense = bounded_distance_matrix(graph, 2)
        store = TiledStore(graph, 2, tile_rows=8)
        store.preload_tile(0, dense[0:8])
        np.testing.assert_array_equal(store.rows(np.arange(8)), dense[0:8])
        assert store.tile_computes == 0
        store.preload_tile(1, dense[8:16])  # idempotent over cached ids
        assert store.cached_tiles() == (0, 1)

    def test_preload_rejects_wrong_geometry(self):
        store = TiledStore(sample_graph(20), 2, tile_rows=8)
        with pytest.raises(ConfigurationError, match="tile 0"):
            store.preload_tile(0, np.zeros((3, 20), dtype=store.dtype))

    def test_write_rows_matches_the_dense_store(self):
        graph = sample_graph(26)
        matrix = bounded_distance_matrix(graph, 2)
        dense = DenseStore(matrix.copy(), 2)
        tiled = TiledStore(graph, 2, tile_rows=5)
        rows = np.array([2, 11, 25])
        new_rows = dense.rows(rows)
        new_rows[:, ::3] = 2
        dense.write_rows(rows, new_rows.copy())
        tiled.write_rows(rows, new_rows.copy())
        np.testing.assert_array_equal(tiled.to_array(), dense.to_array())

    def test_replace_installs_the_new_matrix(self):
        graph = sample_graph(18)
        store = TiledStore(graph, 2, tile_rows=4)
        replacement = bounded_distance_matrix(graph, 1)
        store.replace(replacement.astype(store.dtype))
        np.testing.assert_array_equal(
            store.to_array(), replacement.astype(store.dtype))

    def test_thresholded_child_matches_dense_thresholding(self):
        graph = sample_graph(30)
        base = TiledStore(graph, 3, tile_rows=6)
        child = base.thresholded(1)
        np.testing.assert_array_equal(
            child.to_array(), bounded_distance_matrix(graph, 1))
        # The child derives from the parent's tiles, shared across children.
        assert base.tile_computes > 0
        assert child.length_bound == 1

    def test_thresholded_bound_cannot_exceed_the_parent(self):
        base = TiledStore(sample_graph(10), 2)
        with pytest.raises(ConfigurationError, match="exceeds"):
            base.thresholded(3)

    def test_csr_snapshot_construction_needs_no_graph(self):
        graph = sample_graph(22)
        csr = CSRAdjacency.from_graph(graph)
        store = TiledStore(None, 2, csr=csr)
        np.testing.assert_array_equal(
            store.to_array(), bounded_distance_matrix(graph, 2))

    def test_construction_without_any_source_is_rejected(self):
        with pytest.raises(ConfigurationError, match="graph"):
            TiledStore(None, 2)

    def test_edgeless_and_tiny_graphs(self):
        for graph in (Graph(4, edges=[]), Graph(1, edges=[])):
            store = TiledStore(graph, 2)
            np.testing.assert_array_equal(
                store.to_array(), bounded_distance_matrix(graph, 2))


class TestPersistentSpill:
    """``spill_path`` spills that survive ``close`` and warm later stores."""

    def _spill_all(self, graph, path, length=2, tile_rows=4):
        row_bytes = graph.num_vertices * distance_dtype(length).itemsize
        store = TiledStore(graph, length, tile_rows=tile_rows,
                          budget_bytes=tile_rows * row_bytes,  # one tile
                          spill_path=path)
        store.to_array()
        return store

    def test_spill_survives_close_and_is_reused(self, tmp_path):
        graph = sample_graph(32)
        dense = bounded_distance_matrix(graph, 2)
        path = str(tmp_path / "job.tiles")
        first = self._spill_all(graph, path)
        assert first.tile_spills > 0
        assert first.spill_path == path
        first.close()
        assert os.path.exists(path)
        assert os.path.exists(path + ".index.npz")
        second = TiledStore(graph, 2, tile_rows=4, spill_path=path)
        assert second.tile_reuses > 0
        np.testing.assert_array_equal(second.to_array(), dense)
        # Adopted slots are loaded, never recomputed.
        assert second.tile_computes == second.num_tiles - second.tile_reuses
        assert second.tile_loads >= second.tile_reuses
        second.close()

    def test_geometry_mismatch_starts_fresh(self, tmp_path):
        graph = sample_graph(32)
        path = str(tmp_path / "job.tiles")
        self._spill_all(graph, path, tile_rows=4).close()
        other = TiledStore(graph, 2, tile_rows=5, spill_path=path)
        assert other.tile_reuses == 0
        np.testing.assert_array_equal(
            other.to_array(), bounded_distance_matrix(graph, 2))
        other.close()

    def test_different_bound_starts_fresh(self, tmp_path):
        graph = sample_graph(32)
        path = str(tmp_path / "job.tiles")
        self._spill_all(graph, path, length=2).close()
        other = TiledStore(graph, 3, tile_rows=4, spill_path=path)
        assert other.tile_reuses == 0
        np.testing.assert_array_equal(
            other.to_array(), bounded_distance_matrix(graph, 3))
        other.close()

    def test_first_edit_retires_the_sidecar(self, tmp_path):
        graph = sample_graph(32)
        path = str(tmp_path / "job.tiles")
        first = self._spill_all(graph, path)
        rows = np.array([0, 1])
        first.write_rows(rows, first.rows(rows))
        # Edited stores never advertise their tiles for reuse: the spilled
        # rows no longer describe the pristine matrix.
        assert not os.path.exists(path + ".index.npz")
        np.testing.assert_array_equal(
            first.to_array(), bounded_distance_matrix(graph, 2))
        first.close()
        second = TiledStore(graph, 2, tile_rows=4, spill_path=path)
        assert second.tile_reuses == 0
        np.testing.assert_array_equal(
            second.to_array(), bounded_distance_matrix(graph, 2))
        second.close()

    def test_missing_sidecar_truncates_stale_bytes(self, tmp_path):
        graph = sample_graph(20)
        path = tmp_path / "job.tiles"
        path.write_bytes(b"stale garbage with no index")
        store = TiledStore(graph, 2, tile_rows=4, spill_path=str(path))
        assert store.tile_reuses == 0
        assert os.path.getsize(path) == 0
        np.testing.assert_array_equal(
            store.to_array(), bounded_distance_matrix(graph, 2))
        store.close()
