"""Unit and cross-engine tests for the distance engines (Algorithms 2 and 3)."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph.distance import (
    available_engines,
    bfs_bounded_distances,
    bounded_distance_matrix,
    floyd_warshall,
    l_pruned_floyd_warshall,
    numpy_bounded_distances,
    pairwise_distance_histogram,
    pointer_l_pruned_floyd_warshall,
)
from repro.graph.generators import erdos_renyi_graph, path_graph
from repro.graph.graph import Graph
from repro.graph.matrices import UNREACHABLE, distance_dtype, unreachable_value

ALL_ENGINES = available_engines()


def _networkx_bounded(graph: Graph, length_bound: int) -> np.ndarray:
    """Independent oracle: networkx BFS distances truncated at the bound."""
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(range(graph.num_vertices))
    nx_graph.add_edges_from(graph.edges())
    n = graph.num_vertices
    dtype = distance_dtype(length_bound)
    expected = np.full((n, n), unreachable_value(dtype), dtype=dtype)
    np.fill_diagonal(expected, 0)
    for source, lengths in nx.all_pairs_shortest_path_length(nx_graph, cutoff=length_bound):
        for target, distance in lengths.items():
            expected[source, target] = distance
    return expected


class TestEngineRegistry:
    def test_all_engines_registered(self):
        assert set(ALL_ENGINES) == {"bfs", "floyd-warshall", "l-pruned-fw",
                                    "numpy", "pointer-fw"}

    def test_unknown_engine_rejected(self, triangle_graph):
        with pytest.raises(ConfigurationError):
            bounded_distance_matrix(triangle_graph, 2, engine="dijkstra")

    def test_invalid_bound_rejected(self, triangle_graph):
        with pytest.raises(ConfigurationError):
            bounded_distance_matrix(triangle_graph, 0)


class TestPaperExampleDistances:
    """Figure 4a of the paper gives the full distance matrix of the example."""

    EXPECTED = {
        (0, 1): 1, (0, 2): 1, (0, 3): 2, (0, 4): 2, (0, 5): 2, (0, 6): 3,
        (1, 2): 1, (1, 3): 1, (1, 4): 1, (1, 5): 2, (1, 6): 3,
        (2, 3): 2, (2, 4): 1, (2, 5): 1, (2, 6): 2,
        (3, 4): 1, (3, 5): 2, (3, 6): 3,
        (4, 5): 1, (4, 6): 2,
        (5, 6): 1,
    }

    def test_exact_distances_match_figure_4a(self, paper_example_graph):
        distances = floyd_warshall(paper_example_graph)
        for (i, j), expected in self.EXPECTED.items():
            assert distances[i, j] == expected

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    @pytest.mark.parametrize("length_bound", [1, 2, 3, 4])
    def test_bounded_engines_match_figure_4a(self, paper_example_graph, engine, length_bound):
        distances = bounded_distance_matrix(paper_example_graph, length_bound, engine=engine)
        for (i, j), expected in self.EXPECTED.items():
            if expected <= length_bound:
                assert distances[i, j] == expected
            else:
                assert distances[i, j] == unreachable_value(distances.dtype)


class TestEngineAgreement:
    @pytest.mark.parametrize("engine", ALL_ENGINES)
    @pytest.mark.parametrize("length_bound", [1, 2, 3])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_engines_match_networkx_oracle(self, engine, length_bound, seed):
        graph = erdos_renyi_graph(25, 0.12, seed=seed)
        expected = _networkx_bounded(graph, length_bound)
        actual = bounded_distance_matrix(graph, length_bound, engine=engine)
        assert np.array_equal(actual, expected)

    def test_engines_agree_on_disconnected_graph(self, disconnected_graph):
        reference = bounded_distance_matrix(disconnected_graph, 3, engine="floyd-warshall")
        for engine in ALL_ENGINES:
            assert np.array_equal(
                bounded_distance_matrix(disconnected_graph, 3, engine=engine), reference)

    def test_engines_agree_on_empty_graph(self):
        graph = Graph(5)
        for engine in ALL_ENGINES:
            distances = bounded_distance_matrix(graph, 2, engine=engine)
            off_diagonal = distances[~np.eye(5, dtype=bool)]
            assert (off_diagonal == unreachable_value(distances.dtype)).all()


class TestIndividualEngines:
    def test_floyd_warshall_unbounded_path(self):
        graph = path_graph(6)
        distances = floyd_warshall(graph)
        assert distances[0, 5] == 5

    def test_l_pruned_fw_prunes_beyond_bound(self):
        graph = path_graph(6)
        distances = l_pruned_floyd_warshall(graph, 3)
        assert distances[0, 3] == 3
        assert distances[0, 4] == unreachable_value(distances.dtype)

    def test_pointer_fw_matches_plain_pruned(self):
        graph = erdos_renyi_graph(30, 0.1, seed=5)
        for bound in (1, 2, 4):
            assert np.array_equal(l_pruned_floyd_warshall(graph, bound),
                                  pointer_l_pruned_floyd_warshall(graph, bound))

    def test_bfs_engine_single_edge(self):
        graph = Graph(2, edges=[(0, 1)])
        distances = bfs_bounded_distances(graph, 1)
        assert distances[0, 1] == 1

    def test_numpy_engine_zero_vertices(self):
        distances = numpy_bounded_distances(Graph(0), 2)
        assert distances.shape == (0, 0)


class TestDistanceDtype:
    def test_dtype_tiers(self):
        assert distance_dtype(4) == np.uint8
        assert distance_dtype(254) == np.uint8
        assert distance_dtype(255) == np.uint16
        assert distance_dtype(65534) == np.uint16
        assert distance_dtype(65535) == np.int32
        assert distance_dtype(UNREACHABLE) == np.int32

    def test_int32_sentinel_is_canonical(self):
        assert unreachable_value(np.int32) == UNREACHABLE

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_engines_return_contract_dtype(self, paper_example_graph, engine):
        distances = bounded_distance_matrix(paper_example_graph, 3, engine=engine)
        assert distances.dtype == np.uint8
        assert distances[0, 0] == 0

    def test_histogram_key_is_dtype_independent(self):
        graph = path_graph(6)
        narrow = pairwise_distance_histogram(bounded_distance_matrix(graph, 2))
        assert narrow[UNREACHABLE] == 6  # pairs at distance 3, 4, 5


class TestHistogram:
    def test_pairwise_histogram_counts(self, path4_graph):
        distances = floyd_warshall(path4_graph)
        histogram = pairwise_distance_histogram(distances)
        assert histogram == {1: 3, 2: 2, 3: 1}

    def test_histogram_reports_unreachable(self, disconnected_graph):
        distances = floyd_warshall(disconnected_graph)
        histogram = pairwise_distance_histogram(distances)
        assert histogram[UNREACHABLE] == 8
        assert histogram[1] == 2
