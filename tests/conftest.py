"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graph.graph import Graph


#: Edges of the running example of Figure 1 (vertices renumbered 0-6).
#: Original labels and degrees: v1:2, v2:4, v3:4, v4:2, v5:4, v6:3, v7:1.
PAPER_EXAMPLE_EDGES = [
    (0, 1), (0, 2),            # v1-v2, v1-v3
    (1, 2), (1, 3), (1, 4),    # v2-v3, v2-v4, v2-v5
    (2, 4), (2, 5),            # v3-v5, v3-v6
    (3, 4),                    # v4-v5
    (4, 5),                    # v5-v6
    (5, 6),                    # v6-v7
]

#: Degrees of the paper example, indexed by the renumbered vertex id.
PAPER_EXAMPLE_DEGREES = [2, 4, 4, 2, 4, 3, 1]


@pytest.fixture
def paper_example_graph() -> Graph:
    """The 7-vertex, 10-edge running example of the paper (Figure 1)."""
    return Graph(7, edges=PAPER_EXAMPLE_EDGES)


@pytest.fixture
def triangle_graph() -> Graph:
    """A 3-cycle."""
    return Graph(3, edges=[(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def path4_graph() -> Graph:
    """A path on 4 vertices: 0-1-2-3."""
    return Graph(4, edges=[(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def disconnected_graph() -> Graph:
    """Two disjoint edges plus an isolated vertex."""
    return Graph(5, edges=[(0, 1), (2, 3)])


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running end-to-end tests (service kill/restart)")
