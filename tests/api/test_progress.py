"""Tests for the progress-observer protocol threaded through the anonymizers."""

import pytest

from repro.api.progress import (
    NULL_OBSERVER,
    CallbackObserver,
    CancellationToken,
    CompositeObserver,
    ConsoleProgressObserver,
    NullObserver,
    ProgressObserver,
    StepLimitObserver,
    TimeoutObserver,
    combine_observers,
)
from repro.baselines import GadedMaxAnonymizer, GadesAnonymizer
from repro.core import EdgeRemovalAnonymizer, EdgeRemovalInsertionAnonymizer
from repro.graph.generators import erdos_renyi_graph


def _hard_graph():
    """A graph that needs several greedy steps at a tight threshold."""
    return erdos_renyi_graph(25, 0.25, seed=5)


class TestObserverImplementations:
    def test_null_observer_satisfies_protocol(self):
        assert isinstance(NULL_OBSERVER, ProgressObserver)
        assert not NULL_OBSERVER.should_stop()

    def test_step_limit_observer_counts_steps(self):
        observer = StepLimitObserver(2)
        assert not observer.should_stop()
        observer.on_step(None, None)
        observer.on_step(None, None)
        assert observer.should_stop()

    def test_timeout_observer_uses_injected_clock(self):
        now = [0.0]
        observer = TimeoutObserver(10.0, clock=lambda: now[0])
        assert not observer.should_stop()
        now[0] = 10.5
        assert observer.should_stop()
        assert observer.elapsed == pytest.approx(10.5)

    def test_timeout_observer_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            TimeoutObserver(0.0)

    def test_cancellation_token(self):
        token = CancellationToken()
        assert not token.cancelled
        token.cancel()
        assert token.cancelled and token.should_stop()

    def test_callback_observer_forwards(self):
        seen = {"evals": [], "steps": 0}
        observer = CallbackObserver(
            on_step=lambda step, result: seen.__setitem__("steps", seen["steps"] + 1),
            on_evaluation=seen["evals"].append,
            should_stop=lambda: len(seen["evals"]) >= 3)
        observer.on_evaluation(1)
        observer.on_step(None, None)
        assert seen == {"evals": [1], "steps": 1}
        assert not observer.should_stop()
        observer.on_evaluation(2)
        observer.on_evaluation(3)
        assert observer.should_stop()

    def test_composite_observer_stops_when_any_member_stops(self):
        token = CancellationToken()
        composite = CompositeObserver(NullObserver(), token)
        assert not composite.should_stop()
        token.cancel()
        assert composite.should_stop()

    def test_combine_observers_collapses_nones(self):
        assert combine_observers(None, None) is NULL_OBSERVER
        single = CancellationToken()
        assert combine_observers(None, single) is single
        assert isinstance(combine_observers(single, NullObserver()), CompositeObserver)


class TestObserverThreading:
    def test_step_limit_cancels_after_n_steps(self):
        graph = _hard_graph()
        unlimited = EdgeRemovalAnonymizer(theta=0.3, seed=0).anonymize(graph)
        assert unlimited.num_steps > 2  # the workload genuinely needs steps

        observer = StepLimitObserver(2)
        result = EdgeRemovalAnonymizer(theta=0.3, seed=0).anonymize(
            graph, observer=observer)
        assert result.num_steps == 2
        assert result.stop_reason == "observer"
        assert not result.success

    def test_evaluation_callbacks_match_result_count(self):
        counts = []
        observer = CallbackObserver(on_evaluation=counts.append)
        result = EdgeRemovalAnonymizer(theta=0.5, seed=0).anonymize(
            _hard_graph(), observer=observer)
        assert counts == list(range(1, result.evaluations + 1))

    def test_cancellation_is_responsive_within_a_step(self):
        # Cancel during the very first candidate scan: no step completes.
        evals = []

        def stop_after_five():
            return len(evals) >= 5

        observer = CallbackObserver(on_evaluation=evals.append,
                                    should_stop=stop_after_five)
        result = EdgeRemovalAnonymizer(theta=0.3, seed=0).anonymize(
            _hard_graph(), observer=observer)
        assert result.num_steps == 0
        assert result.stop_reason == "observer"
        # The working graph was restored: anonymized == original.
        assert set(result.anonymized_graph.edges()) == set(result.original_graph.edges())

    def test_timeout_observer_stops_the_run(self):
        now = [0.0]

        def clock():
            now[0] += 1.0  # each inspection advances "time" by a second
            return now[0]

        observer = TimeoutObserver(3.0, clock=clock)
        result = EdgeRemovalInsertionAnonymizer(theta=0.3, seed=0).anonymize(
            _hard_graph(), observer=observer)
        assert result.stop_reason == "observer"

    def test_successful_run_has_no_stop_reason(self):
        result = EdgeRemovalAnonymizer(theta=0.5, seed=0).anonymize(_hard_graph())
        if result.success:
            assert result.stop_reason is None

    def test_max_steps_recorded_as_stop_reason(self):
        result = EdgeRemovalAnonymizer(theta=0.1, seed=0, max_steps=1).anonymize(
            _hard_graph())
        assert result.stop_reason in ("max_steps", "exhausted")

    def test_midstep_stop_reports_opacity_of_returned_graph(self):
        # rem-ins applies its removal before the insertion scan; a stop
        # landing inside that scan must not report the pre-removal opacity.
        from repro.core import DegreePairTyping, OpacityComputer

        graph = _hard_graph()
        for stop_at in (5, 9, 14, 23):
            evals = []
            observer = CallbackObserver(on_evaluation=evals.append,
                                        should_stop=lambda: len(evals) >= stop_at)
            result = EdgeRemovalInsertionAnonymizer(theta=0.2, seed=0).anonymize(
                graph, observer=observer)
            computer = OpacityComputer(DegreePairTyping(graph), 1)
            actual = computer.evaluate(result.anonymized_graph).max_opacity
            assert result.final_opacity == pytest.approx(actual), stop_at

    @pytest.mark.parametrize("factory", [
        lambda: GadedMaxAnonymizer(theta=0.2, seed=0),
        lambda: GadesAnonymizer(theta=0.2, seed=0, swap_sample_size=50),
    ])
    def test_baseline_scans_are_observer_responsive(self, factory):
        # Stop requests must take effect inside a candidate scan, not only
        # at step boundaries (one scan can span thousands of evaluations).
        evals = []
        observer = CallbackObserver(on_evaluation=evals.append,
                                    should_stop=lambda: len(evals) >= 3)
        result = factory().anonymize(_hard_graph(), observer=observer)
        assert result.evaluations <= 4  # initial + a handful, not a full scan
        assert result.stop_reason == "observer"

    @pytest.mark.parametrize("factory", [
        lambda: GadedMaxAnonymizer(theta=0.2, seed=0),
        lambda: GadesAnonymizer(theta=0.2, seed=0, swap_sample_size=50),
    ])
    def test_baselines_honour_cancellation(self, factory):
        token = CancellationToken()
        token.cancel()
        result = factory().anonymize(_hard_graph(), observer=token)
        assert result.num_steps == 0
        if not result.success:
            assert result.stop_reason == "observer"

    def test_console_observer_writes_step_lines(self, capsys):
        import sys

        observer = ConsoleProgressObserver(stream=sys.stdout, evaluation_interval=10)
        EdgeRemovalAnonymizer(theta=0.3, seed=0).anonymize(
            _hard_graph(), observer=observer)
        out = capsys.readouterr().out
        assert "step 1: remove" in out


class TestCheckpointStreaming:
    """Checkpointed θ-schedule passes stream crossings to observers live."""

    def _schedule(self, observer, algorithm_cls=EdgeRemovalAnonymizer, **kwargs):
        graph = _hard_graph()
        return algorithm_cls(theta=0.3, seed=0, **kwargs).anonymize_schedule(
            graph, (0.9, 0.6, 0.3), observer=observer)

    def test_observer_receives_one_checkpoint_per_theta(self):
        seen = []
        self._schedule(CallbackObserver(on_checkpoint=seen.append))
        assert [checkpoint.theta for checkpoint in seen] == [0.9, 0.6, 0.3]

    def test_checkpoints_match_materialized_results(self):
        seen = []
        results = self._schedule(CallbackObserver(on_checkpoint=seen.append))
        for checkpoint, result in zip(seen, results):
            assert checkpoint.theta == result.config.theta
            assert checkpoint.evaluations == result.evaluations
            assert checkpoint.max_opacity == result.final_opacity
            assert len(checkpoint.steps) == result.num_steps

    def test_gades_schedule_streams_checkpoints(self):
        seen = []
        self._schedule(CallbackObserver(on_checkpoint=seen.append),
                       algorithm_cls=GadesAnonymizer, swap_sample_size=30)
        assert [checkpoint.theta for checkpoint in seen] == [0.9, 0.6, 0.3]

    def test_legacy_observer_without_hook_keeps_working(self):
        class Legacy:  # deliberately NOT implementing on_checkpoint
            def __init__(self):
                self.evaluations = 0

            def on_evaluation(self, evaluations):
                self.evaluations = evaluations

            def on_step(self, step, result):
                pass

            def should_stop(self):
                return False

        legacy = Legacy()
        results = self._schedule(legacy)
        assert len(results) == 3
        assert legacy.evaluations > 0

    def test_composite_observer_fans_out_checkpoints(self):
        first, second = [], []
        composite = CompositeObserver(
            CallbackObserver(on_checkpoint=first.append),
            CallbackObserver(on_checkpoint=second.append))
        self._schedule(composite)
        assert len(first) == len(second) == 3

    def test_single_theta_anonymize_emits_final_checkpoint(self):
        seen = []
        EdgeRemovalAnonymizer(theta=0.5, seed=0).anonymize(
            _hard_graph(), observer=CallbackObserver(on_checkpoint=seen.append))
        assert [checkpoint.theta for checkpoint in seen] == [0.5]

    def test_early_stop_still_checkpoints_every_grid_point(self):
        seen = []
        observer = CompositeObserver(
            StepLimitObserver(1), CallbackObserver(on_checkpoint=seen.append))
        self._schedule(observer)
        assert [checkpoint.theta for checkpoint in seen] == [0.9, 0.6, 0.3]
        assert seen[-1].stop_reason == "observer" or seen[-1].success

    def test_console_observer_prints_checkpoints(self, capsys):
        import sys

        observer = ConsoleProgressObserver(stream=sys.stderr)
        self._schedule(observer)
        err = capsys.readouterr().err
        assert "theta=0.90 crossed" in err
