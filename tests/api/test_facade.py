"""End-to-end tests for the service facade."""

import pytest

from repro.api import (
    AnonymizationRequest,
    anonymize,
    available_algorithms,
    compute_opacity,
    expand_sweep,
    sweep,
)
from repro.api.progress import CancellationToken
from repro.errors import ConfigurationError
from repro.graph.generators import erdos_renyi_graph


def _edges_request(**overrides):
    graph = erdos_renyi_graph(22, 0.25, seed=9)
    params = dict(algorithm="rem", edges=tuple(graph.edges()),
                  num_vertices=graph.num_vertices, theta=0.5, seed=0)
    params.update(overrides)
    return AnonymizationRequest(**params)


class TestAnonymizeFacade:
    @pytest.mark.parametrize("name", available_algorithms())
    def test_every_registered_algorithm_runs_end_to_end(self, name):
        response = anonymize(_edges_request(algorithm=name, theta=0.6))
        assert response.ok
        assert response.request.algorithm == name
        assert 0.0 <= response.final_opacity <= 1.0
        assert response.evaluations >= 1
        rebuilt = response.anonymized_graph()
        assert rebuilt.num_vertices == 22
        if response.success:
            assert response.final_opacity <= 0.6 + 1e-12

    def test_dataset_request_runs(self):
        response = anonymize(AnonymizationRequest(
            algorithm="rem", dataset="gnutella", sample_size=40, theta=0.6, seed=0))
        assert response.ok and response.success

    def test_include_utility_attaches_metrics(self):
        response = anonymize(_edges_request(include_utility=True, theta=0.4))
        assert response.metrics is not None
        assert set(response.metrics) == {"distortion", "degree_emd",
                                         "geodesic_emd", "mean_cc_diff"}

    def test_metrics_absent_by_default(self):
        assert anonymize(_edges_request()).metrics is None

    def test_unknown_algorithm_raises(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            anonymize(_edges_request(algorithm="nope"))

    def test_explicit_observer_is_honoured(self):
        token = CancellationToken()
        token.cancel()
        response = anonymize(_edges_request(theta=0.2), observer=token)
        assert response.stop_reason == "observer"
        assert response.num_steps == 0

    def test_timeout_seconds_threads_a_timeout_observer(self, monkeypatch):
        import repro.api.facade as facade_module

        class InstantTimeout:
            def __init__(self, limit):
                pass

            def on_evaluation(self, evaluations):
                pass

            def on_step(self, step, result):
                pass

            def should_stop(self):
                return True

        monkeypatch.setattr(facade_module, "TimeoutObserver", InstantTimeout)
        response = anonymize(_edges_request(theta=0.2, timeout_seconds=0.001))
        assert response.stop_reason == "observer"


class TestComputeOpacity:
    def test_reports_worst_types_in_descending_order(self):
        report = compute_opacity(_edges_request(length_threshold=1), top=5)
        assert report.num_vertices == 22
        assert 0.0 < report.max_opacity <= 1.0
        opacities = [row[3] for row in report.worst_types]
        assert opacities == sorted(opacities, reverse=True)
        assert report.worst_types[0][3] == pytest.approx(report.max_opacity)

    def test_to_dict_is_json_safe(self):
        import json

        report = compute_opacity(_edges_request())
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["max_opacity"] == pytest.approx(report.max_opacity)


class TestSweep:
    def test_expand_sweep_cartesian_product_order(self):
        base = _edges_request()
        requests = expand_sweep(base, algorithms=("rem", "gades"), thetas=(0.8, 0.5))
        assert [(r.algorithm, r.theta) for r in requests] == [
            ("rem", 0.8), ("rem", 0.5), ("gades", 0.8), ("gades", 0.5)]

    def test_expand_sweep_defaults_to_base_values(self):
        base = _edges_request(theta=0.7)
        requests = expand_sweep(base)
        assert requests == [base]

    def test_sweep_runs_serially_by_default(self):
        responses = sweep(_edges_request(theta=0.6), algorithms=("rem", "gaded-max"))
        assert len(responses) == 2
        assert all(response.ok for response in responses)
        assert [r.request.algorithm for r in responses] == ["rem", "gaded-max"]

    def test_sweep_isolates_failures(self):
        responses = sweep(_edges_request(), algorithms=("rem", "no-such-algo"))
        assert responses[0].ok
        assert not responses[1].ok
        assert "unknown algorithm" in responses[1].error
