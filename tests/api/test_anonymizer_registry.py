"""Tests for the pluggable anonymizer registry."""

import pytest

from repro.api.registry import (
    AnonymizerRegistry,
    available_algorithms,
    create_anonymizer,
    default_registry,
)
from repro.baselines import GadedMaxAnonymizer, GadedRandAnonymizer, GadesAnonymizer
from repro.core import EdgeRemovalAnonymizer, EdgeRemovalInsertionAnonymizer
from repro.errors import ConfigurationError


class TestBuiltinRegistrations:
    def test_all_five_algorithms_registered(self):
        assert available_algorithms() == (
            "gaded-max", "gaded-rand", "gades", "rem", "rem-ins")

    @pytest.mark.parametrize("name,cls", [
        ("rem", EdgeRemovalAnonymizer),
        ("rem-ins", EdgeRemovalInsertionAnonymizer),
        ("gaded-rand", GadedRandAnonymizer),
        ("gaded-max", GadedMaxAnonymizer),
        ("gades", GadesAnonymizer),
    ])
    def test_decorator_wraps_constructor_without_replacing_it(self, name, cls):
        # The registered factory IS the public class, untouched.
        assert default_registry().get(name).factory is cls
        assert isinstance(create_anonymizer(name), cls)

    def test_create_forwards_parameters(self):
        algorithm = create_anonymizer("rem", theta=0.4, length_threshold=2, lookahead=2)
        assert algorithm.config.theta == 0.4
        assert algorithm.config.length_threshold == 2
        assert algorithm.config.lookahead == 2

    def test_baselines_reject_length_threshold_above_one(self):
        for name in ("gaded-rand", "gaded-max", "gades"):
            with pytest.raises(ConfigurationError, match="only supports L = 1"):
                create_anonymizer(name, length_threshold=2)

    def test_baselines_accept_default_length_threshold(self):
        assert create_anonymizer("gades", length_threshold=1, theta=0.5) is not None

    def test_tuning_parameters_dropped_when_unsupported(self):
        # A sweep-wide insertion cap must not break algorithms without insertion.
        algorithm = create_anonymizer("rem", theta=0.5, insertion_candidate_cap=100,
                                      lookahead=2)
        assert isinstance(algorithm, EdgeRemovalAnonymizer)

    def test_execution_knobs_dropped_for_minimal_algorithms(self):
        # The facade always passes seed/engine/max_steps from the request;
        # an algorithm accepting only theta must still be constructible.
        registry = AnonymizerRegistry()
        registry.register("minimal", factory=lambda theta=0.5: ("built", theta),
                          accepts=("theta",))
        assert registry.create("minimal", theta=0.3, seed=0, engine="numpy",
                               max_steps=None, lookahead=1) == ("built", 0.3)

    def test_semantic_unknown_parameter_raises(self):
        with pytest.raises(ConfigurationError, match="does not accept"):
            create_anonymizer("gades", strict=True)

    def test_unknown_algorithm_lists_registered_names(self):
        with pytest.raises(ConfigurationError, match="rem-ins"):
            create_anonymizer("does-not-exist")


class TestCustomRegistry:
    def test_decorator_registration_and_lookup(self):
        registry = AnonymizerRegistry()

        @registry.register("noop", accepts=("theta",))
        class NoopAnonymizer:
            """Does nothing."""

            def __init__(self, theta=0.5):
                self.theta = theta

            def anonymize(self, graph, typing=None, observer=None):
                raise NotImplementedError

        assert "noop" in registry
        assert registry.names() == ("noop",)
        assert len(registry) == 1
        assert registry.get("noop").description == "Does nothing."
        instance = registry.create("noop", theta=0.25)
        assert isinstance(instance, NoopAnonymizer)
        assert instance.theta == 0.25

    def test_duplicate_name_raises(self):
        registry = AnonymizerRegistry()
        registry.register("dup", factory=lambda: None)
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("dup", factory=lambda: None)

    def test_replace_overrides_existing_registration(self):
        registry = AnonymizerRegistry()
        registry.register("algo", factory=lambda: "old")
        registry.register("algo", factory=lambda: "new", replace=True)
        assert registry.create("algo") == "new"

    def test_unregister_then_lookup_raises(self):
        registry = AnonymizerRegistry()
        registry.register("gone", factory=lambda: None)
        registry.unregister("gone")
        assert "gone" not in registry
        with pytest.raises(ConfigurationError):
            registry.get("gone")

    def test_invalid_name_rejected(self):
        registry = AnonymizerRegistry()
        with pytest.raises(ConfigurationError):
            registry.register("", factory=lambda: None)

    def test_iteration_yields_specs_in_name_order(self):
        registry = AnonymizerRegistry()
        registry.register("b", factory=lambda: None)
        registry.register("a", factory=lambda: None)
        assert [spec.name for spec in registry] == ["a", "b"]
