"""Tests for the zero-copy shared-memory data plane (arena, adoption, grid)."""

import glob
import pickle
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.api import AnonymizationRequest, ExecutionCache, GridRequest, run_grid
from repro.api.shm import (
    SHM_NAME_PREFIX,
    ArenaDescriptor,
    SharedSampleArena,
    attach_arena,
)
from repro.graph.distance import bounded_distance_matrix
from repro.graph.distance_cache import LMaxDistanceCache
from repro.graph.graph import Graph

BASE = AnonymizationRequest(dataset="gnutella", sample_size=30, seed=0,
                            include_utility=True)

PARITY_FIELDS = ("success", "final_opacity", "distortion", "num_steps",
                 "evaluations", "num_vertices", "removed_edges",
                 "inserted_edges", "anonymized_edges", "stop_reason", "metrics")


def assert_response_parity(response, reference):
    for field in PARITY_FIELDS:
        assert getattr(response, field) == getattr(reference, field), field


def leaked_segments():
    """Arena segments still registered in /dev/shm (Linux only)."""
    return glob.glob(f"/dev/shm/{SHM_NAME_PREFIX}*")


def small_graph():
    return Graph(5, edges=[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])


class TestArenaRoundTrip:
    def test_graph_and_matrix_survive_publish_attach(self):
        graph = small_graph()
        matrix = bounded_distance_matrix(graph, 3)
        arena = SharedSampleArena.publish(graph, {"numpy": (matrix, 3)})
        try:
            attached = attach_arena(arena.descriptor)
            assert attached.graph == graph
            assert attached.graph is not graph  # rebuilt, not pickled
            served = attached.caches["numpy"]
            np.testing.assert_array_equal(served.base_matrix(), matrix)
            assert served.l_max == 3
            assert served.compute_count == 0
        finally:
            arena.unlink()

    def test_attached_views_are_read_only(self):
        graph = small_graph()
        matrix = bounded_distance_matrix(graph, 2)
        arena = SharedSampleArena.publish(graph, {"numpy": (matrix, 2)})
        try:
            attached = attach_arena(arena.descriptor)
            with pytest.raises(ValueError):
                attached.caches["numpy"].base_matrix()[0, 0] = 99
        finally:
            arena.unlink()

    def test_thresholded_matrices_are_private_copies(self):
        graph = small_graph()
        matrix = bounded_distance_matrix(graph, 3)
        arena = SharedSampleArena.publish(graph, {"numpy": (matrix, 3)})
        try:
            attached = attach_arena(arena.descriptor)
            served = attached.caches["numpy"].matrix(2)
            served[0, 0] = 99  # caller owns the copy — writable
            np.testing.assert_array_equal(
                attached.caches["numpy"].matrix(2),
                LMaxDistanceCache(graph, 3).matrix(2))
        finally:
            arena.unlink()

    def test_edgeless_graph_publishes_without_segment(self):
        graph = Graph(4, edges=[])
        arena = SharedSampleArena.publish(graph, {})
        try:
            assert arena.descriptor.edges_segment is None
            attached = attach_arena(arena.descriptor)
            assert attached.graph == graph
        finally:
            arena.unlink()

    def test_descriptor_is_lightweight_and_picklable(self):
        graph = small_graph()
        matrix = bounded_distance_matrix(graph, 2)
        arena = SharedSampleArena.publish(graph, {"numpy": (matrix, 2)})
        try:
            payload = pickle.dumps(arena.descriptor)
            assert len(payload) < 1024  # descriptors, not arrays, cross the pipe
            clone = pickle.loads(payload)
            assert clone == arena.descriptor
            assert clone.l_max_for("numpy") == 2
            assert clone.l_max_for("bfs") is None
        finally:
            arena.unlink()

    def test_shape_mismatch_rejected_and_segments_cleaned(self):
        from repro.errors import ConfigurationError

        graph = small_graph()
        wrong = np.zeros((3, 3), dtype=np.int32)
        before = set(leaked_segments())
        with pytest.raises(ConfigurationError, match="shape"):
            SharedSampleArena.publish(graph, {"numpy": (wrong, 2)})
        assert set(leaked_segments()) == before

    @pytest.mark.skipif(not sys.platform.startswith("linux"),
                        reason="/dev/shm scanning is Linux-specific")
    def test_unlink_removes_dev_shm_entries_and_is_idempotent(self):
        graph = small_graph()
        matrix = bounded_distance_matrix(graph, 2)
        before = set(leaked_segments())
        arena = SharedSampleArena.publish(graph, {"numpy": (matrix, 2)})
        assert len(set(leaked_segments()) - before) == 2  # edges + matrix
        arena.unlink()
        assert set(leaked_segments()) == before
        arena.unlink()  # second unlink is a no-op, never raises


class TestArenaAdoption:
    def test_adoption_moves_no_counters(self):
        graph = BASE.resolve_graph()
        matrix = bounded_distance_matrix(graph, 2)
        arena = SharedSampleArena.publish(graph, {"numpy": (matrix, 2)})
        try:
            cache = ExecutionCache()
            cache.adopt_arena(BASE, arena.descriptor)
            assert cache.sample_loads == 0
            assert cache.graph_for(BASE) == graph
            np.testing.assert_array_equal(
                cache.distances_for(BASE, 2),
                LMaxDistanceCache(graph, 2).matrix(BASE.length_threshold))
            assert cache.sample_loads == 0
            assert cache.distance_computes == 0
        finally:
            arena.unlink()

    def test_same_token_re_adoption_is_a_no_op(self):
        graph = BASE.resolve_graph()
        arena = SharedSampleArena.publish(graph, {})
        try:
            cache = ExecutionCache()
            cache.adopt_arena(BASE, arena.descriptor)
            first = cache.graph_for(BASE)
            cache.adopt_arena(BASE, arena.descriptor)
            assert cache.graph_for(BASE) is first  # not re-attached
        finally:
            arena.unlink()

    def test_adoption_replaces_stale_private_entries(self):
        graph = BASE.resolve_graph()
        arena = SharedSampleArena.publish(graph, {})
        try:
            cache = ExecutionCache()
            cache.graph_for(BASE)  # private copy, counted
            assert cache.sample_loads == 1
            cache.adopt_arena(BASE, arena.descriptor)
            assert cache.graph_for(BASE) == graph
            assert cache.sample_loads == 1  # no second load
        finally:
            arena.unlink()


class TestShmGridPlane:
    """The tentpole acceptance: θ-group fan-out over parent-published arenas."""

    GRID = GridRequest.from_axes(
        BASE, algorithms=("rem", "rem-ins"), length_thresholds=(1, 2),
        thetas=(0.9, 0.7, 0.5))

    def test_single_sample_grid_loads_and_computes_once(self):
        response = run_grid(self.GRID, max_workers=4)
        assert response.ok
        # The whole grid — 4 θ-groups across 4 workers — performed exactly
        # one sample load and one L_max distance computation, both in the
        # parent; workers only attached views.
        assert response.num_sample_loads == 1
        assert response.num_distance_computes == 1

    def test_shm_responses_bit_identical_to_serial(self):
        serial = run_grid(self.GRID, max_workers=0)
        pooled = run_grid(self.GRID, max_workers=2)
        for ours, theirs in zip(pooled.responses, serial.responses):
            assert_response_parity(ours, theirs)

    @pytest.mark.skipif(not sys.platform.startswith("linux"),
                        reason="/dev/shm scanning is Linux-specific")
    def test_grid_leaves_no_segments_behind(self):
        before = set(leaked_segments())
        run_grid(self.GRID, max_workers=2)
        assert set(leaked_segments()) == before

    def test_multi_sample_grids_publish_one_arena_each(self):
        grid = GridRequest.from_axes(BASE, seeds=(0, 1),
                                     length_thresholds=(1, 2),
                                     thetas=(0.8, 0.6))
        serial = run_grid(grid, max_workers=0)
        pooled = run_grid(grid, max_workers=2)
        assert pooled.num_sample_loads == 2  # one per sample group
        assert pooled.num_distance_computes == 2
        for ours, theirs in zip(pooled.responses, serial.responses):
            assert_response_parity(ours, theirs)

    def test_serial_path_reports_the_same_counters(self):
        response = run_grid(self.GRID, max_workers=0)
        assert response.num_sample_loads == 1
        assert response.num_distance_computes == 1

    def test_independent_mode_reports_untracked_counters(self):
        grid = GridRequest.from_axes(BASE, thetas=(0.8, 0.6),
                                     sweep_mode="independent")
        response = run_grid(grid)
        assert response.num_sample_loads is None
        assert response.num_distance_computes is None

    def test_shared_memory_off_falls_back_with_identical_responses(self):
        serial = run_grid(self.GRID, max_workers=0)
        legacy = run_grid(self.GRID, max_workers=2, shared_memory=False)
        for ours, theirs in zip(legacy.responses, serial.responses):
            assert_response_parity(ours, theirs)

    def test_theta_group_failure_is_isolated_on_the_shm_plane(self):
        bad = [BASE.with_overrides(algorithm="no-such-algo", theta=theta)
               for theta in (0.8, 0.6)]
        good = [BASE.with_overrides(theta=theta) for theta in (0.8, 0.6)]
        response = run_grid(GridRequest(requests=(*bad, *good)), max_workers=2)
        assert all(entry.error is not None for entry in response.responses[:2])
        assert all(entry.ok for entry in response.responses[2:])

    def test_fail_fast_aborts_the_shm_plane(self):
        from repro.errors import GridAbortedError

        grid = GridRequest(requests=(
            BASE.with_overrides(theta=0.8),
            BASE.with_overrides(algorithm="no-such-algo", theta=0.8,
                                length_threshold=2)), on_error="fail_fast")
        with pytest.raises(GridAbortedError, match="fail_fast"):
            run_grid(grid, max_workers=2)

    def test_sample_load_failure_is_isolated_per_sample_group(self):
        bad = [AnonymizationRequest(dataset="no-such-dataset", sample_size=10,
                                    theta=theta) for theta in (0.8, 0.6)]
        good = [BASE.with_overrides(theta=theta) for theta in (0.8, 0.6)]
        response = run_grid(GridRequest(requests=(*bad, *good)), max_workers=2)
        assert all(entry.error is not None for entry in response.responses[:2])
        assert all(entry.ok for entry in response.responses[2:])

    def test_json_round_trip_keeps_the_counters(self):
        from repro.api import GridResponse

        response = run_grid(GridRequest.from_axes(BASE, thetas=(0.8, 0.6)))
        clone = GridResponse.from_json(response.to_json())
        assert clone == response
        assert clone.num_sample_loads == response.num_sample_loads


CRASH_SCRIPT = textwrap.dedent("""
    import glob
    import os
    import signal

    import repro.api.batch as batch
    from repro.api import AnonymizationRequest, GridRequest, run_grid
    from repro.api.shm import SHM_NAME_PREFIX

    _real = batch._execute_shm_group_payload

    def _killer(payloads, sweep_mode, data_dir, descriptor, baseline=None):
        # First θ-group dies hard mid-task; the rest run normally.  Workers
        # inherit this patched module via fork, and the submitted callable
        # resolves back through __main__ in the child.
        if payloads[0]["theta"] >= 0.85:
            os.kill(os.getpid(), signal.SIGKILL)
        return _real(payloads, sweep_mode, data_dir, descriptor, baseline)

    batch._execute_shm_group_payload = _killer

    base = AnonymizationRequest(dataset="gnutella", sample_size=25, seed=0)
    grid = GridRequest.from_axes(base, length_thresholds=(1, 2),
                                 thetas=(0.9, 0.6))
    before = set(glob.glob(f"/dev/shm/{SHM_NAME_PREFIX}*"))
    response = run_grid(grid, max_workers=2)
    assert not response.ok  # the killed group surfaced as error responses
    assert any(entry.error is not None for entry in response.responses)
    leaked = set(glob.glob(f"/dev/shm/{SHM_NAME_PREFIX}*")) - before
    assert not leaked, f"leaked segments: {leaked}"
    print("CRASH-SAFE")
""")


@pytest.mark.skipif(not sys.platform.startswith("linux"),
                    reason="SIGKILL + /dev/shm scanning are Linux-specific")
class TestCrashSafety:
    def test_sigkilled_worker_leaks_nothing(self, tmp_path):
        """A worker dying mid-group must not leak segments or tracker noise.

        The parent owns every arena and unlinks in a ``finally`` block, so
        even a hard SIGKILL (no atexit, no finally in the worker) leaves
        ``/dev/shm`` clean and the resource tracker silent.
        """
        script = tmp_path / "crash_shm.py"
        script.write_text(CRASH_SCRIPT, encoding="utf-8")
        result = subprocess.run([sys.executable, str(script)],
                                capture_output=True, text=True, timeout=560)
        assert result.returncode == 0, result.stderr
        assert "CRASH-SAFE" in result.stdout
        assert "resource_tracker" not in result.stderr, result.stderr
        assert "leaked" not in result.stderr
