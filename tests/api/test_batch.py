"""Tests for the batch runner: ordering, failure isolation, process fan-out."""

import pytest

from repro.api.batch import BatchRunner, execute_request
from repro.api.requests import AnonymizationRequest
from repro.graph.generators import erdos_renyi_graph


def _request(index, **overrides):
    graph = erdos_renyi_graph(20, 0.25, seed=index)
    params = dict(algorithm="rem", edges=tuple(graph.edges()),
                  num_vertices=graph.num_vertices, theta=0.6, seed=0,
                  request_id=f"job-{index}")
    params.update(overrides)
    return AnonymizationRequest(**params)


class TestExecuteRequest:
    def test_converts_exceptions_into_error_responses(self):
        response = execute_request(_request(0, algorithm="missing"))
        assert not response.ok
        assert "unknown algorithm" in response.error
        assert response.request.request_id == "job-0"

    def test_successful_execution(self):
        response = execute_request(_request(1))
        assert response.ok
        assert response.evaluations >= 1


class TestBatchRunnerSerial:
    def test_empty_batch(self):
        assert BatchRunner(max_workers=0).run([]) == []

    def test_ordering_preserved(self):
        requests = [_request(i) for i in range(5)]
        responses = BatchRunner(max_workers=0).run(requests)
        assert [r.request.request_id for r in responses] == [
            f"job-{i}" for i in range(5)]

    def test_failure_isolation(self):
        requests = [_request(0), _request(1, algorithm="broken"), _request(2)]
        responses = BatchRunner(max_workers=0).run(requests)
        assert responses[0].ok
        assert not responses[1].ok and "unknown algorithm" in responses[1].error
        assert responses[2].ok

    def test_negative_max_workers_rejected(self):
        with pytest.raises(ValueError):
            BatchRunner(max_workers=-1)


class TestBatchRunnerProcessPool:
    def test_batch_of_four_requests_across_processes(self):
        # Acceptance scenario: >= 4 requests through the process pool, mixing
        # algorithms, with ordering and per-request results intact.
        requests = [
            _request(0, algorithm="rem"),
            _request(1, algorithm="rem-ins", insertion_candidate_cap=50),
            _request(2, algorithm="gaded-max"),
            _request(3, algorithm="gaded-rand"),
        ]
        responses = BatchRunner(max_workers=2).run(requests)
        assert len(responses) == 4
        assert [r.request.request_id for r in responses] == [
            "job-0", "job-1", "job-2", "job-3"]
        for response in responses:
            assert response.ok, response.error
            assert response.evaluations >= 1
            assert response.anonymized_graph().num_vertices == 20

    def test_failure_isolation_across_processes(self):
        requests = [_request(0), _request(1, algorithm="missing"), _request(2)]
        responses = BatchRunner(max_workers=2).run(requests)
        assert [r.ok for r in responses] == [True, False, True]

    def test_single_request_short_circuits_the_pool(self):
        responses = BatchRunner(max_workers=4).run([_request(0)])
        assert len(responses) == 1 and responses[0].ok


class TestWorkerGroupPayloadCache:
    def test_group_payload_serves_all_artifacts_from_worker_cache(self, monkeypatch):
        import repro.api.batch as batch_module
        from repro.api import AnonymizationRequest, AnonymizationResponse, anonymize
        from repro.api.cache import ExecutionCache

        cache = ExecutionCache()
        monkeypatch.setattr(batch_module, "_WORKER_CACHE", cache)
        base = AnonymizationRequest(dataset="gnutella", sample_size=30, seed=0,
                                    include_utility=True)
        for algorithm in ("rem", "gaded-max"):
            payloads = [base.with_overrides(algorithm=algorithm,
                                            theta=theta).to_dict()
                        for theta in (0.8, 0.6)]
            results = batch_module._execute_group_payload(payloads,
                                                          "checkpointed", None)
            for payload, result in zip(payloads, results):
                response = AnonymizationResponse.from_dict(result)
                reference = anonymize(AnonymizationRequest.from_dict(payload))
                assert response.anonymized_edges == reference.anonymized_edges
                assert response.evaluations == reference.evaluations
                assert response.metrics == reference.metrics
        # Both groups shared one load, one baseline, one distance matrix.
        assert cache.sample_loads == 1
        assert cache.distance_computes == 1

    def test_l_max_hint_shares_one_computation_across_l_groups(self, monkeypatch):
        import repro.api.batch as batch_module
        from repro.api import AnonymizationRequest
        from repro.api.cache import ExecutionCache

        cache = ExecutionCache()
        monkeypatch.setattr(batch_module, "_WORKER_CACHE", cache)
        base = AnonymizationRequest(dataset="gnutella", sample_size=30, seed=0)
        for length in (1, 2):
            payloads = [base.with_overrides(length_threshold=length,
                                            theta=theta).to_dict()
                        for theta in (0.8, 0.6)]
            batch_module._execute_group_payload(payloads, "checkpointed",
                                                None, 2)
        assert cache.sample_loads == 1
        assert cache.distance_computes == 1
