"""Tests for the multi-axis grid engine (requests, grouping, caches, parity)."""

import pytest

from repro.api import (
    AnonymizationRequest,
    ExecutionCache,
    GridRequest,
    GridResponse,
    anonymize,
    expand_grid,
    run_grid,
    sweep,
)
from repro.api.sweeps import execute_sample_group, sample_groups
from repro.errors import ConfigurationError

BASE = AnonymizationRequest(dataset="gnutella", sample_size=30, seed=0,
                            include_utility=True)
THETAS = (0.9, 0.7, 0.5)

#: Response fields compared bit-for-bit against independent runs
#: (everything except runtime, which reflects the execution strategy).
PARITY_FIELDS = ("success", "final_opacity", "distortion", "num_steps",
                 "evaluations", "num_vertices", "removed_edges",
                 "inserted_edges", "anonymized_edges", "stop_reason", "metrics")


def assert_response_parity(response, reference):
    for field in PARITY_FIELDS:
        assert getattr(response, field) == getattr(reference, field), field


class TestExpansion:
    def test_from_axes_counts_all_axes(self):
        grid = GridRequest.from_axes(BASE, datasets=("gnutella", "google"),
                                     length_thresholds=(1, 2), thetas=THETAS)
        assert len(grid.requests) == 12

    def test_theta_varies_fastest_and_matches_sweep_order(self):
        grid = GridRequest.from_axes(BASE, algorithms=("rem", "gaded-max"),
                                     thetas=(0.5, 0.9))
        observed = [(request.algorithm, request.theta)
                    for request in grid.requests]
        assert observed == [("rem", 0.5), ("rem", 0.9),
                            ("gaded-max", 0.5), ("gaded-max", 0.9)]

    def test_dataset_axis_outermost(self):
        grid = GridRequest.from_axes(BASE, datasets=("gnutella", "google"),
                                     thetas=(0.8, 0.6))
        observed = [(request.dataset, request.theta)
                    for request in grid.requests]
        assert observed == [("gnutella", 0.8), ("gnutella", 0.6),
                            ("google", 0.8), ("google", 0.6)]

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            expand_grid(BASE, {"flavour": ("sour",)})

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            expand_grid(BASE, {"theta": ()})

    def test_dataset_axis_requires_dataset_source(self):
        explicit = AnonymizationRequest(edges=((0, 1), (1, 2)))
        with pytest.raises(ConfigurationError):
            expand_grid(explicit, {"dataset": ("gnutella",)})

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            GridRequest(requests=())

    def test_unknown_sweep_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            GridRequest(requests=(BASE,), sweep_mode="sideways")

    def test_json_round_trip(self):
        grid = GridRequest.from_axes(BASE, datasets=("gnutella", "google"),
                                     length_thresholds=(1, 2), thetas=THETAS,
                                     sweep_mode="independent")
        assert GridRequest.from_json(grid.to_json()) == grid

    def test_response_json_round_trip(self):
        grid = GridRequest.from_axes(BASE, thetas=(0.8, 0.6))
        response = run_grid(grid)
        assert GridResponse.from_json(response.to_json()) == response


class TestGrouping:
    def test_sample_groups_split_on_graph_source_only(self):
        grid = GridRequest.from_axes(BASE, datasets=("gnutella", "google"),
                                     length_thresholds=(1, 2), thetas=THETAS)
        groups = grid.sample_groups()
        assert [len(group) for group in groups] == [6, 6]
        assert {grid.requests[group[0]].dataset for group in groups} == \
               {"gnutella", "google"}

    def test_seed_splits_sample_groups(self):
        requests = [BASE.with_overrides(seed=seed, theta=theta)
                    for seed in (0, 1) for theta in (0.8, 0.6)]
        assert [len(group) for group in sample_groups(requests)] == [2, 2]

    def test_explicit_edges_group_by_edge_list(self):
        a = AnonymizationRequest(edges=((0, 1), (1, 2)), theta=0.8)
        b = AnonymizationRequest(edges=((0, 1), (1, 2)), theta=0.6)
        c = AnonymizationRequest(edges=((0, 1),), theta=0.8)
        assert sample_groups([a, b, c]) == [[0, 1], [2]]

    def test_theta_groups_nest_inside_sample_groups(self):
        grid = GridRequest.from_axes(BASE, length_thresholds=(1, 2),
                                     thetas=THETAS)
        assert len(grid.sample_groups()) == 1
        assert [len(group) for group in grid.groups()] == [3, 3]


class TestAcceptance:
    """The issue's acceptance scenario: a figure6-style {2 L × 5 θ} grid."""

    GRID = GridRequest.from_axes(
        BASE.with_overrides(sample_size=40),
        length_thresholds=(1, 2), thetas=(0.9, 0.8, 0.7, 0.6, 0.5))

    def test_one_load_and_one_distance_computation(self):
        cache = ExecutionCache()
        responses = execute_sample_group(list(self.GRID.requests), cache=cache)
        assert len(responses) == 10 and all(r.ok for r in responses)
        # One sample load and one full bounded-distance computation (at
        # L_max = 2) serve both L groups and all ten configurations.
        assert cache.sample_loads == 1
        assert cache.distance_computes == 1

    def test_grid_responses_bit_identical_to_independent_runs(self):
        responses = run_grid(self.GRID).responses
        for request, response in zip(self.GRID.requests, responses):
            assert_response_parity(response, anonymize(request))


class TestExecution:
    @pytest.mark.parametrize("algorithm",
                             ("rem", "rem-ins", "gaded-rand", "gaded-max", "gades"))
    def test_sample_group_matches_independent_requests(self, algorithm):
        requests = [BASE.with_overrides(algorithm=algorithm, theta=theta)
                    for theta in THETAS]
        responses = execute_sample_group(requests)
        for request, response in zip(requests, responses):
            assert_response_parity(response, anonymize(request))

    def test_multi_engine_groups_share_nothing_incorrectly(self):
        requests = [BASE.with_overrides(engine=engine, theta=theta)
                    for engine in ("numpy", "bfs") for theta in (0.8, 0.6)]
        cache = ExecutionCache()
        responses = execute_sample_group(requests, cache=cache)
        assert cache.sample_loads == 1
        assert cache.distance_computes == 2  # one L_max run per engine
        for request, response in zip(requests, responses):
            assert_response_parity(response, anonymize(request))

    def test_scratch_groups_skip_the_distance_cache(self):
        requests = [BASE.with_overrides(evaluation_mode="scratch", theta=theta)
                    for theta in (0.8, 0.6)]
        cache = ExecutionCache()
        responses = execute_sample_group(requests, cache=cache)
        assert cache.distance_computes == 0
        for request, response in zip(requests, responses):
            assert_response_parity(response, anonymize(request))

    def test_responses_in_request_order(self):
        grid = GridRequest.from_axes(BASE, datasets=("gnutella", "google"),
                                     thetas=(0.5, 0.9))
        response = run_grid(grid)
        observed = [(entry.request.dataset, entry.request.theta)
                    for entry in response.responses]
        assert observed == [("gnutella", 0.5), ("gnutella", 0.9),
                            ("google", 0.5), ("google", 0.9)]

    def test_sample_group_failure_is_isolated(self):
        bad = AnonymizationRequest(dataset="no-such-dataset", sample_size=10,
                                   theta=0.7)
        good = [BASE.with_overrides(theta=theta) for theta in (0.8, 0.6)]
        response = run_grid(GridRequest(requests=(bad, *good)))
        assert response.responses[0].error is not None
        assert response.responses[1].ok and response.responses[2].ok

    def test_theta_group_failure_is_isolated_within_sample_group(self):
        # Same sample, one group with an unregistered algorithm: only that
        # θ-group fails, the sibling group (and its shared caches) complete.
        bad = [BASE.with_overrides(algorithm="no-such-algo", theta=theta)
               for theta in (0.8, 0.6)]
        good = [BASE.with_overrides(theta=theta) for theta in (0.8, 0.6)]
        responses = execute_sample_group(bad + good)
        assert all(response.error is not None for response in responses[:2])
        assert all(response.ok for response in responses[2:])

    def test_parallel_sample_groups_match_serial(self):
        grid = GridRequest.from_axes(BASE, datasets=("gnutella", "google"),
                                     length_thresholds=(1, 2), thetas=(0.8, 0.6))
        serial = run_grid(grid)
        parallel = run_grid(grid, max_workers=2)
        assert parallel.num_sample_groups == 2
        for ours, theirs in zip(parallel.responses, serial.responses):
            assert_response_parity(ours, theirs)

    def test_worker_cached_runs_match_cold_runs(self):
        # Acceptance for the worker cache: pooled execution (per-worker
        # process caches) is bit-identical to cold per-request loads.
        grid = GridRequest.from_axes(BASE, length_thresholds=(1, 2),
                                     thetas=(0.8, 0.6))
        pooled = run_grid(grid, max_workers=1).responses
        for request, response in zip(grid.requests, pooled):
            assert_response_parity(response, anonymize(request))

    def test_independent_mode_skips_grouping(self):
        grid = GridRequest.from_axes(BASE, thetas=(0.8, 0.6),
                                     sweep_mode="independent")
        responses = run_grid(grid).responses
        for request, response in zip(grid.requests, responses):
            assert_response_parity(response, anonymize(request))


class TestFacadeAxes:
    def test_sweep_accepts_dataset_and_size_axes(self):
        responses = sweep(BASE, datasets=("gnutella",), sample_sizes=(25, 30),
                          thetas=(0.8, 0.6))
        observed = [(entry.request.sample_size, entry.request.theta)
                    for entry in responses]
        assert observed == [(25, 0.8), (25, 0.6), (30, 0.8), (30, 0.6)]
        for entry in responses:
            assert entry.ok

    def test_sweep_matches_independent_mode(self):
        checkpointed = sweep(BASE, sample_sizes=(25,), length_thresholds=(1, 2),
                             thetas=THETAS)
        independent = sweep(BASE, sample_sizes=(25,), length_thresholds=(1, 2),
                            thetas=THETAS, sweep_mode="independent")
        for ours, theirs in zip(checkpointed, independent):
            assert_response_parity(ours, theirs)


class TestExecutionCache:
    def test_graph_is_cached_per_source(self):
        cache = ExecutionCache()
        first = cache.graph_for(BASE)
        again = cache.graph_for(BASE.with_overrides(theta=0.3,
                                                    length_threshold=2))
        assert first is again
        assert cache.sample_loads == 1

    def test_distinct_sources_load_separately(self):
        cache = ExecutionCache()
        cache.graph_for(BASE)
        cache.graph_for(BASE.with_overrides(seed=1))
        cache.graph_for(BASE.with_overrides(sample_size=25))
        assert cache.sample_loads == 3

    def test_cached_graph_matches_cold_load(self):
        cache = ExecutionCache()
        assert cache.graph_for(BASE) == BASE.resolve_graph()

    def test_baseline_cached_per_sample(self):
        cache = ExecutionCache()
        first = cache.baseline_for(BASE)
        assert cache.baseline_for(BASE.with_overrides(theta=0.2)) is first

    def test_larger_l_max_recomputes_and_keeps_count(self):
        cache = ExecutionCache()
        cache.distances_for(BASE, l_max=1)
        assert cache.distance_computes == 1
        cache.distances_for(BASE.with_overrides(length_threshold=2), l_max=2)
        assert cache.distance_computes == 2
        # Served from the L_max=2 matrix, no third computation.
        cache.distances_for(BASE, l_max=2)
        assert cache.distance_computes == 2

    def test_release_drops_entries_but_keeps_counters(self):
        cache = ExecutionCache()
        cache.graph_for(BASE)
        cache.distances_for(BASE, l_max=2)
        cache.baseline_for(BASE)
        cache.release(BASE)
        assert cache.sample_loads == 1
        assert cache.distance_computes == 1
        # A fresh request after release loads (and computes) again.
        cache.graph_for(BASE)
        assert cache.sample_loads == 2

    def test_l_max_ignores_scratch_requests(self):
        # A scratch-mode L=3 request must not inflate the shared engine
        # run of the incremental L=1 groups.
        requests = [BASE.with_overrides(theta=theta) for theta in (0.8, 0.6)]
        requests.append(BASE.with_overrides(evaluation_mode="scratch",
                                            length_threshold=3, theta=0.8))
        cache = ExecutionCache()
        responses = execute_sample_group(requests, cache=cache)
        assert cache.distance_computes == 1
        for request, response in zip(requests, responses):
            assert_response_parity(response, anonymize(request))


class TestCustomRegistry:
    def test_independent_serial_grid_honours_custom_registry(self):
        from repro.api import AnonymizerRegistry, BatchRunner
        from repro.core import EdgeRemovalAnonymizer

        registry = AnonymizerRegistry()
        registry.register("custom-rem", EdgeRemovalAnonymizer,
                          accepts=("theta", "length_threshold", "lookahead",
                                   "seed", "engine", "evaluation_mode",
                                   "scan_mode", "sweep_mode", "max_steps"))
        requests = [BASE.with_overrides(algorithm="custom-rem", theta=theta,
                                        include_utility=False)
                    for theta in (0.8, 0.6)]
        for sweep_mode in ("checkpointed", "independent"):
            grid = GridRequest(requests=tuple(requests), sweep_mode=sweep_mode)
            responses = BatchRunner(max_workers=0).run_grid(grid,
                                                            registry=registry)
            assert all(response.ok for response in responses), sweep_mode


class TestBaselineFailureIsolation:
    def test_baseline_error_fails_only_its_group(self, monkeypatch):
        import repro.api.cache as cache_module

        def boom(graph, include_spectral=False):
            raise MemoryError("baseline too large")

        monkeypatch.setattr("repro.metrics.graph_baseline", boom)
        utility = [BASE.with_overrides(theta=theta) for theta in (0.8, 0.6)]
        plain = [BASE.with_overrides(theta=theta, include_utility=False,
                                     length_threshold=2)
                 for theta in (0.8, 0.6)]
        responses = execute_sample_group(utility + plain,
                                         cache=cache_module.ExecutionCache())
        assert all(response.error is not None for response in responses[:2])
        assert all(response.ok for response in responses[2:])

    def test_max_samples_bound_evicts_oldest(self):
        cache = ExecutionCache(max_samples=2)
        first = BASE
        second = BASE.with_overrides(seed=1)
        third = BASE.with_overrides(seed=2)
        cache.graph_for(first)
        cache.distances_for(first, l_max=1)
        cache.graph_for(second)
        cache.graph_for(third)  # evicts `first` (least recently used)
        assert cache.sample_loads == 3
        assert cache.distance_computes == 1  # counter survives eviction
        cache.graph_for(first)  # re-load after eviction
        assert cache.sample_loads == 4

    def test_eviction_is_lru_not_fifo(self):
        # Re-touching `first` after `second` was inserted must evict
        # `second` (least recently *used*), not `first` (first inserted).
        cache = ExecutionCache(max_samples=2)
        first = BASE
        second = BASE.with_overrides(seed=1)
        third = BASE.with_overrides(seed=2)
        cache.graph_for(first)
        cache.graph_for(second)
        cache.graph_for(first)  # hit — touches `first`
        cache.graph_for(third)  # evicts `second`
        assert cache.sample_loads == 3
        cache.graph_for(first)  # still cached
        assert cache.sample_loads == 3
        cache.graph_for(second)  # was evicted — reloads
        assert cache.sample_loads == 4

    def test_distance_and_baseline_hits_touch_the_lru_order(self):
        cache = ExecutionCache(max_samples=2)
        first = BASE
        second = BASE.with_overrides(seed=1)
        third = BASE.with_overrides(seed=2)
        cache.distances_for(first, l_max=1)
        cache.baseline_for(second)
        cache.distances_for(first, l_max=1)  # hit — `second` now oldest
        cache.graph_for(third)  # evicts `second`
        cache.distances_for(first, l_max=1)
        assert cache.sample_loads == 3
        assert cache.distance_computes == 1  # `first` never recomputed
        cache.baseline_for(second)  # was evicted — reloads
        assert cache.sample_loads == 4


class TestErrorPolicy:
    def test_on_error_is_validated(self):
        with pytest.raises(ConfigurationError, match="error policy"):
            GridRequest(requests=(BASE,), on_error="explode")

    def test_on_error_survives_json_round_trip(self):
        grid = GridRequest(requests=(BASE,), on_error="fail_fast")
        assert GridRequest.from_json(grid.to_json()) == grid

    def test_default_isolates(self):
        requests = [BASE.with_overrides(theta=0.8),
                    BASE.with_overrides(algorithm="no-such-algo", theta=0.8,
                                        length_threshold=2)]
        responses = execute_sample_group(requests)
        assert responses[0].ok
        assert responses[1].error is not None

    def test_fail_fast_raises_grid_aborted(self):
        from repro.errors import GridAbortedError

        requests = [BASE.with_overrides(theta=0.8),
                    BASE.with_overrides(algorithm="no-such-algo", theta=0.8,
                                        length_threshold=2)]
        with pytest.raises(GridAbortedError, match="fail_fast"):
            execute_sample_group(requests, on_error="fail_fast")

    def test_run_grid_threads_the_policy(self):
        from repro.errors import GridAbortedError

        grid = GridRequest(requests=(
            BASE.with_overrides(theta=0.8),
            BASE.with_overrides(algorithm="no-such-algo", theta=0.8,
                                length_threshold=2)), on_error="fail_fast")
        with pytest.raises(GridAbortedError):
            run_grid(grid)

    def test_independent_mode_fail_fast(self):
        from repro.errors import GridAbortedError

        grid = GridRequest(requests=(
            BASE.with_overrides(algorithm="no-such-algo", theta=0.8),),
            sweep_mode="independent", on_error="fail_fast")
        with pytest.raises(GridAbortedError):
            run_grid(grid)


class TestSampleGroupResume:
    def _checkpoints_for(self, requests, prefix_thetas):
        from repro.api import CheckpointBuffer

        buffer = CheckpointBuffer()
        execute_sample_group(
            [request for request in requests
             if request.theta in prefix_thetas], observer=buffer)
        resume = {}
        for _indices, checkpoint in buffer.records:
            for index, request in enumerate(requests):
                if abs(request.theta - checkpoint.theta) <= 1e-12:
                    resume[index] = checkpoint
        return resume

    def test_resume_matches_uninterrupted_run(self):
        requests = [BASE.with_overrides(theta=theta) for theta in THETAS]
        full = execute_sample_group(requests)
        resume = self._checkpoints_for(requests, THETAS[:2])
        resumed = execute_sample_group(requests, resume_from=resume)
        for response, reference in zip(resumed, full):
            assert_response_parity(response, reference)

    def test_resume_falls_back_cold_for_gades(self):
        requests = [BASE.with_overrides(algorithm="gades", theta=theta)
                    for theta in THETAS]
        full = execute_sample_group(requests)
        resume = self._checkpoints_for(requests, THETAS[:2])
        resumed = execute_sample_group(requests, resume_from=resume)
        for response, reference in zip(resumed, full):
            assert_response_parity(response, reference)

    def test_fully_checkpointed_group_does_no_work(self):
        requests = [BASE.with_overrides(theta=theta) for theta in THETAS]
        full = execute_sample_group(requests)
        resume = self._checkpoints_for(requests, THETAS)
        cache = ExecutionCache()
        resumed = execute_sample_group(requests, resume_from=resume,
                                       cache=cache)
        # Every grid point materializes from its checkpoint: the shared
        # distance matrix is never computed.
        assert cache.distance_computes == 0
        for response, reference in zip(resumed, full):
            assert_response_parity(response, reference)

    def test_announces_groups_to_the_observer(self):
        from repro.api import CheckpointBuffer

        buffer = CheckpointBuffer()
        requests = [BASE.with_overrides(theta=theta) for theta in THETAS]
        execute_sample_group(requests, observer=buffer)
        assert [indices for indices, _checkpoint in buffer.records] \
            == [(0, 1, 2)] * len(THETAS)


class TestParallelScanGrid:
    """Acceptance: a parallel-scan grid stays on the shared data plane."""

    def test_parallel_grid_matches_serial_with_single_sample_load(self):
        thetas = (0.9, 0.7)
        base = BASE.with_overrides(length_threshold=2)
        serial = run_grid(GridRequest.from_axes(base, thetas=thetas),
                          max_workers=0)
        parallel_base = base.with_overrides(scan_mode="parallel",
                                            scan_workers=4)
        observed = run_grid(GridRequest.from_axes(parallel_base,
                                                  thetas=thetas),
                            max_workers=0)
        for response, expected in zip(observed.responses, serial.responses):
            assert_response_parity(response, expected)
        # One sample load and at most one distance compute: the scan pool
        # attaches the published arena instead of reloading either.
        assert observed.num_sample_loads == 1
        assert observed.num_distance_computes <= 1
