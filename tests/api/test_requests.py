"""Tests for the request/response records and their JSON round-trips."""

import pytest

from repro.api.requests import AnonymizationRequest, AnonymizationResponse
from repro.core import EdgeRemovalAnonymizer
from repro.errors import ConfigurationError
from repro.graph.generators import erdos_renyi_graph

EDGES = ((0, 1), (1, 2), (2, 3), (0, 3), (1, 3))


class TestAnonymizationRequest:
    def test_dataset_request_json_round_trip(self):
        request = AnonymizationRequest(
            algorithm="rem-ins", dataset="gnutella", sample_size=60, theta=0.4,
            length_threshold=2, lookahead=2, seed=7, max_steps=10,
            insertion_candidate_cap=50, timeout_seconds=3.5,
            include_utility=True, request_id="job-1")
        assert AnonymizationRequest.from_json(request.to_json()) == request

    def test_edges_request_json_round_trip(self):
        request = AnonymizationRequest(algorithm="rem", edges=EDGES, num_vertices=6)
        restored = AnonymizationRequest.from_json(request.to_json())
        assert restored == request
        assert restored.edges == request.edges

    def test_evaluation_mode_round_trips_and_reaches_algorithms(self):
        request = AnonymizationRequest(algorithm="rem", edges=EDGES,
                                       evaluation_mode="scratch")
        restored = AnonymizationRequest.from_json(request.to_json())
        assert restored.evaluation_mode == "scratch"
        assert request.algorithm_params()["evaluation_mode"] == "scratch"
        # Defaults to the delta-evaluated sessions.
        assert AnonymizationRequest(algorithm="rem", edges=EDGES).evaluation_mode \
            == "incremental"

    def test_unknown_evaluation_mode_raises_at_construction_time(self):
        with pytest.raises(ConfigurationError, match="evaluation_mode"):
            EdgeRemovalAnonymizer(evaluation_mode="lazy")

    def test_scan_mode_round_trips_and_reaches_algorithms(self):
        request = AnonymizationRequest(algorithm="rem", edges=EDGES,
                                       scan_mode="per_candidate")
        restored = AnonymizationRequest.from_json(request.to_json())
        assert restored.scan_mode == "per_candidate"
        assert request.algorithm_params()["scan_mode"] == "per_candidate"
        # Defaults to the stacked batch scans.
        assert AnonymizationRequest(algorithm="rem", edges=EDGES).scan_mode \
            == "batched"

    def test_unknown_scan_mode_raises_at_construction_time(self):
        with pytest.raises(ConfigurationError, match="scan_mode"):
            EdgeRemovalAnonymizer(scan_mode="vectorized")

    def test_scan_workers_round_trips_and_reaches_algorithms(self):
        request = AnonymizationRequest(algorithm="rem", edges=EDGES,
                                       scan_mode="parallel", scan_workers=3)
        restored = AnonymizationRequest.from_json(request.to_json())
        assert restored.scan_workers == 3
        assert request.algorithm_params()["scan_workers"] == 3
        # Defaults to auto sizing (None).
        assert AnonymizationRequest(algorithm="rem", edges=EDGES).scan_workers \
            is None

    def test_negative_scan_workers_raises_at_construction_time(self):
        with pytest.raises(ConfigurationError, match="scan_workers"):
            AnonymizationRequest(algorithm="rem", edges=EDGES, scan_workers=-1)

    def test_swap_sample_size_round_trips_to_gades(self):
        from repro.api.registry import create_anonymizer

        request = AnonymizationRequest(algorithm="gades", edges=EDGES,
                                       theta=0.9, swap_sample_size=17,
                                       max_steps=2)
        restored = AnonymizationRequest.from_json(request.to_json())
        assert restored.swap_sample_size == 17
        assert request.algorithm_params()["swap_sample_size"] == 17
        # The recorded config is complete: re-running from it reproduces the
        # request's tuning knobs (the GADES config-dropping bugfix).
        result = create_anonymizer(
            "gades", **request.algorithm_params()).anonymize(
            request.resolve_graph())
        assert result.config.swap_sample_size == 17
        assert result.config.max_steps == 2

    def test_edges_are_normalized_and_sorted(self):
        request = AnonymizationRequest(algorithm="rem", edges=((3, 2), (1, 0)))
        assert request.edges == ((0, 1), (2, 3))

    def test_requires_exactly_one_graph_source(self):
        with pytest.raises(ConfigurationError, match="exactly one graph source"):
            AnonymizationRequest(algorithm="rem")
        with pytest.raises(ConfigurationError, match="exactly one graph source"):
            AnonymizationRequest(algorithm="rem", dataset="gnutella",
                                 sample_size=10, edges=EDGES)

    def test_dataset_requires_sample_size(self):
        with pytest.raises(ConfigurationError, match="sample_size"):
            AnonymizationRequest(algorithm="rem", dataset="gnutella")

    def test_invalid_theta_rejected(self):
        with pytest.raises(ConfigurationError, match="theta"):
            AnonymizationRequest(dataset="gnutella", sample_size=10, theta=1.5)

    def test_unknown_field_rejected_on_deserialization(self):
        with pytest.raises(ConfigurationError, match="unknown request field"):
            AnonymizationRequest.from_dict(
                {"algorithm": "rem", "dataset": "gnutella", "sample_size": 10,
                 "thetta": 0.5})

    def test_resolve_graph_from_edges(self):
        request = AnonymizationRequest(edges=EDGES, num_vertices=6)
        graph = request.resolve_graph()
        assert graph.num_vertices == 6
        assert set(graph.edges()) == set(EDGES)

    def test_resolve_graph_infers_num_vertices(self):
        graph = AnonymizationRequest(edges=EDGES).resolve_graph()
        assert graph.num_vertices == 4

    def test_num_vertices_below_max_endpoint_rejected(self):
        with pytest.raises(ConfigurationError, match="num_vertices"):
            AnonymizationRequest(edges=EDGES, num_vertices=2).resolve_graph()

    def test_resolve_graph_from_dataset(self):
        request = AnonymizationRequest(dataset="gnutella", sample_size=30, seed=0)
        graph = request.resolve_graph()
        assert graph.num_vertices == 30

    def test_with_overrides(self):
        base = AnonymizationRequest(dataset="gnutella", sample_size=30)
        other = base.with_overrides(theta=0.3, algorithm="gades")
        assert other.theta == 0.3
        assert other.algorithm == "gades"
        assert base.theta == 0.5  # original untouched (frozen)


class TestAnonymizationResponse:
    def _run(self):
        graph = erdos_renyi_graph(20, 0.25, seed=3)
        request = AnonymizationRequest(
            algorithm="rem", edges=tuple(graph.edges()),
            num_vertices=graph.num_vertices, theta=0.5)
        result = EdgeRemovalAnonymizer(theta=0.5, seed=0).anonymize(graph)
        return request, result

    def test_from_result_and_json_round_trip(self):
        request, result = self._run()
        response = AnonymizationResponse.from_result(
            request, result, metrics={"degree_emd": 0.125})
        restored = AnonymizationResponse.from_json(response.to_json())
        assert restored == response
        assert restored.metrics == {"degree_emd": 0.125}
        assert restored.success == result.success
        assert restored.distortion == pytest.approx(result.distortion)

    def test_anonymized_graph_reconstruction(self):
        request, result = self._run()
        response = AnonymizationResponse.from_result(request, result)
        rebuilt = response.anonymized_graph()
        assert rebuilt.num_vertices == result.anonymized_graph.num_vertices
        assert set(rebuilt.edges()) == set(result.anonymized_graph.edges())

    def test_failure_response(self):
        request = AnonymizationRequest(dataset="gnutella", sample_size=10)
        response = AnonymizationResponse.failure(request, ValueError("boom"))
        assert not response.ok
        assert not response.success
        assert response.error == "ValueError: boom"
        assert "failed" in response.summary()
        assert AnonymizationResponse.from_json(response.to_json()) == response

    def test_summary_mentions_key_quantities(self):
        request, result = self._run()
        summary = AnonymizationResponse.from_result(request, result).summary()
        assert "rem" in summary
        assert "theta=0.50" in summary
        assert "distortion=" in summary

    def test_unknown_field_rejected_on_deserialization(self):
        request, result = self._run()
        payload = AnonymizationResponse.from_result(request, result).to_dict()
        payload["bogus"] = 1
        with pytest.raises(ConfigurationError, match="unknown response field"):
            AnonymizationResponse.from_dict(payload)
