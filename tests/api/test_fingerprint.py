"""Tests for the canonical request fingerprint."""

import pytest

from repro.api import (
    AnonymizationRequest,
    FINGERPRINT_VERSION,
    GridRequest,
    SweepRequest,
    request_fingerprint,
)
from repro.errors import ConfigurationError

BASE = AnonymizationRequest(dataset="gnutella", sample_size=30, seed=0)


class TestRequestFingerprint:
    def test_is_hex_sha256(self):
        fingerprint = request_fingerprint(BASE)
        assert len(fingerprint) == 64
        int(fingerprint, 16)  # raises if not hex

    def test_identical_requests_fingerprint_identically(self):
        assert request_fingerprint(BASE) == request_fingerprint(
            AnonymizationRequest(dataset="gnutella", sample_size=30, seed=0))

    def test_construction_order_is_irrelevant(self):
        # from_dict goes through the same dataclass, but the JSON key order
        # of the payload must not matter either.
        payload = BASE.to_dict()
        reordered = dict(reversed(list(payload.items())))
        assert request_fingerprint(AnonymizationRequest.from_dict(reordered)) \
            == request_fingerprint(BASE)

    def test_request_id_is_a_label_not_a_parameter(self):
        labelled = BASE.with_overrides(request_id="my-label")
        assert request_fingerprint(labelled) == request_fingerprint(BASE)

    def test_semantic_fields_change_the_fingerprint(self):
        assert request_fingerprint(BASE.with_overrides(theta=0.7)) \
            != request_fingerprint(BASE)
        assert request_fingerprint(BASE.with_overrides(algorithm="rem-ins")) \
            != request_fingerprint(BASE)
        assert request_fingerprint(BASE.with_overrides(seed=1)) \
            != request_fingerprint(BASE)

    def test_kind_is_part_of_the_hash(self):
        sweep = SweepRequest(requests=(BASE,))
        grid = GridRequest(requests=(BASE,))
        assert request_fingerprint(sweep) != request_fingerprint(grid)
        assert request_fingerprint(sweep) != request_fingerprint(BASE)

    def test_nested_request_ids_are_stripped(self):
        plain = GridRequest(requests=(BASE,))
        labelled = GridRequest(
            requests=(BASE.with_overrides(request_id="r0"),))
        assert request_fingerprint(plain) == request_fingerprint(labelled)

    def test_grid_on_error_is_semantic(self):
        isolate = GridRequest(requests=(BASE,), on_error="isolate")
        fail_fast = GridRequest(requests=(BASE,), on_error="fail_fast")
        assert request_fingerprint(isolate) != request_fingerprint(fail_fast)

    def test_edge_sourced_requests_normalize(self):
        one = AnonymizationRequest(edges=((0, 1), (1, 2)))
        two = AnonymizationRequest(edges=((2, 1), (1, 0)))
        assert request_fingerprint(one) == request_fingerprint(two)

    def test_version_is_stamped(self):
        assert isinstance(FINGERPRINT_VERSION, int)

    def test_unfingerprintable_object_raises(self):
        with pytest.raises(ConfigurationError, match="to_dict"):
            request_fingerprint(object())
