"""Tests for the service-layer θ-sweep engine (requests, grouping, execution)."""

import pytest

from repro.api import (
    AnonymizationRequest,
    SweepRequest,
    SweepResponse,
    anonymize,
    run_sweep,
    sweep,
)
from repro.api.theta_sweep import execute_sweep_group, group_requests
from repro.errors import ConfigurationError

BASE = AnonymizationRequest(dataset="gnutella", sample_size=30, seed=0,
                            include_utility=True)
THETAS = (0.9, 0.7, 0.5)


class TestSweepRequest:
    def test_from_axes_expands_grid(self):
        request = SweepRequest.from_axes(BASE, algorithms=("rem", "gaded-max"),
                                         thetas=THETAS)
        assert len(request.requests) == 6
        assert request.sweep_mode == "checkpointed"

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepRequest(requests=())

    def test_unknown_sweep_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepRequest(requests=(BASE,), sweep_mode="sideways")

    def test_json_round_trip(self):
        request = SweepRequest.from_axes(BASE, algorithms=("rem", "rem-ins"),
                                         thetas=THETAS, sweep_mode="independent")
        assert SweepRequest.from_json(request.to_json()) == request

    def test_response_json_round_trip(self):
        request = SweepRequest.from_axes(BASE, thetas=(0.8, 0.6))
        response = run_sweep(request)
        assert SweepResponse.from_json(response.to_json()) == response


class TestGrouping:
    def test_groups_by_everything_but_theta(self):
        request = SweepRequest.from_axes(BASE, algorithms=("rem", "gaded-max"),
                                         thetas=THETAS)
        groups = request.groups()
        assert [len(group) for group in groups] == [3, 3]
        algorithms = {request.requests[group[0]].algorithm for group in groups}
        assert algorithms == {"rem", "gaded-max"}

    def test_request_id_does_not_split_groups(self):
        requests = [BASE.with_overrides(theta=theta, request_id=f"job-{theta}")
                    for theta in THETAS]
        assert group_requests(requests) == [[0, 1, 2]]

    def test_different_seeds_split_groups(self):
        requests = [BASE.with_overrides(theta=theta, seed=seed)
                    for seed in (0, 1) for theta in THETAS]
        assert [len(group) for group in group_requests(requests)] == [3, 3]


class TestExecution:
    @pytest.mark.parametrize("algorithm",
                             ("rem", "rem-ins", "gaded-rand", "gaded-max", "gades"))
    def test_group_responses_match_independent_requests(self, algorithm):
        requests = [BASE.with_overrides(algorithm=algorithm, theta=theta)
                    for theta in THETAS]
        grouped = execute_sweep_group(requests)
        for request, response in zip(requests, grouped):
            reference = anonymize(request)
            assert response.success == reference.success
            assert response.final_opacity == reference.final_opacity
            assert response.distortion == reference.distortion
            assert response.num_steps == reference.num_steps
            assert response.evaluations == reference.evaluations
            assert response.anonymized_edges == reference.anonymized_edges
            assert response.metrics == reference.metrics
            assert response.stop_reason == reference.stop_reason

    def test_sweep_modes_agree(self):
        checkpointed = sweep(BASE, thetas=THETAS)
        independent = sweep(BASE, thetas=THETAS, sweep_mode="independent")
        for ours, theirs in zip(checkpointed, independent):
            assert ours.final_opacity == theirs.final_opacity
            assert ours.anonymized_edges == theirs.anonymized_edges
            assert ours.evaluations == theirs.evaluations

    def test_responses_in_request_order(self):
        request = SweepRequest.from_axes(BASE, algorithms=("rem", "gaded-max"),
                                         thetas=(0.5, 0.9))
        response = run_sweep(request)
        observed = [(entry.request.algorithm, entry.request.theta)
                    for entry in response.responses]
        assert observed == [("rem", 0.5), ("rem", 0.9),
                            ("gaded-max", 0.5), ("gaded-max", 0.9)]

    def test_group_failure_is_isolated(self):
        # An unknown dataset fails at graph resolution inside its group;
        # the other group must still complete.
        bad = AnonymizationRequest(dataset="no-such-dataset", sample_size=10,
                                   theta=0.7)
        good = [BASE.with_overrides(theta=theta) for theta in (0.8, 0.6)]
        response = run_sweep(SweepRequest(requests=(bad, *good)))
        assert response.responses[0].error is not None
        assert response.responses[1].ok and response.responses[2].ok

    def test_parallel_groups_match_serial(self):
        request = SweepRequest.from_axes(BASE, algorithms=("rem", "gaded-max"),
                                         thetas=(0.8, 0.6))
        serial = run_sweep(request)
        parallel = run_sweep(request, max_workers=2)
        assert parallel.num_groups == 2
        for ours, theirs in zip(parallel.responses, serial.responses):
            assert ours.final_opacity == theirs.final_opacity
            assert ours.anonymized_edges == theirs.anonymized_edges
            assert ours.evaluations == theirs.evaluations

    def test_timeout_bounds_the_shared_pass(self):
        # A zero-ish timeout stops the pass immediately; every grid point
        # still receives a response with the observer stop reason.
        requests = [BASE.with_overrides(theta=theta, timeout_seconds=1e-9,
                                        dataset="google", sample_size=40,
                                        length_threshold=2)
                    for theta in (0.3, 0.2)]
        responses = execute_sweep_group(requests)
        assert all(response.ok for response in responses)
        assert any(response.stop_reason == "observer" for response in responses)
