"""Acceptance tests for the scale-tier seam across the api layers.

The contract under test: a grid run with ``scale_tier="tiled"`` produces
responses bit-identical to the dense tier on every execution path (serial,
shm pool), while never materializing a dense L_max matrix in the parent —
and an explicit ``dense`` request over budget fails up front with an error
naming the tiled tier instead of dying on an opaque ``MemoryError``.
"""

import numpy as np
import pytest

from repro.api import AnonymizationRequest, ExecutionCache, GridRequest, run_grid
from repro.api.requests import request_fingerprint
from repro.api.shm import SharedSampleArena, TiledMatrixSpec, attach_arena
from repro.errors import ConfigurationError
from repro.graph.distance import bounded_distance_matrix
from repro.graph.distance_store import DistanceStore, TiledStore
from repro.graph.graph import Graph
from repro.graph.matrices import distance_dtype

BASE = AnonymizationRequest(dataset="gnutella", sample_size=30, seed=0)
TILED = BASE.with_overrides(scale_tier="tiled", scale_budget_bytes=1 << 20)

PARITY_FIELDS = ("success", "final_opacity", "distortion", "num_steps",
                 "evaluations", "num_vertices", "removed_edges",
                 "inserted_edges", "anonymized_edges", "stop_reason")


def assert_response_parity(response, reference):
    for field in PARITY_FIELDS:
        assert getattr(response, field) == getattr(reference, field), field


def small_graph():
    return Graph(5, edges=[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])


class TestRequestSurface:
    def test_scale_fields_are_validated(self):
        with pytest.raises(ConfigurationError, match="scale_tier"):
            BASE.with_overrides(scale_tier="huge")
        with pytest.raises(ConfigurationError, match="scale_budget_bytes"):
            BASE.with_overrides(scale_budget_bytes=0)

    def test_scale_fields_reach_the_algorithm_params(self):
        params = TILED.algorithm_params()
        assert params["scale_tier"] == "tiled"
        assert params["scale_budget_bytes"] == 1 << 20

    def test_scale_fields_change_the_fingerprint(self):
        assert request_fingerprint(BASE) != request_fingerprint(TILED)
        assert request_fingerprint(TILED) == request_fingerprint(
            BASE.with_overrides(scale_tier="tiled",
                                scale_budget_bytes=1 << 20))

    def test_store_config_reflects_the_fields(self):
        config = TILED.store_config()
        assert config.tier == "tiled"
        assert config.budget_bytes == 1 << 20

    def test_json_round_trip_keeps_the_fields(self):
        clone = AnonymizationRequest.from_json(TILED.to_json())
        assert clone == TILED

    def test_every_registered_algorithm_accepts_the_knobs(self):
        from repro.api.registry import default_registry

        registry = default_registry()
        for name in registry.names():
            registry.create(name, theta=0.5, scale_tier="tiled",
                            scale_budget_bytes=1 << 20)


class TestExecutionCacheTiers:
    def test_dense_tier_serves_arrays(self):
        cache = ExecutionCache()
        served = cache.distances_for(BASE, 2)
        assert isinstance(served, np.ndarray)

    def test_tiled_tier_serves_stores(self):
        cache = ExecutionCache()
        served = cache.distances_for(TILED, 2)
        assert isinstance(served, DistanceStore)
        assert served.length_bound == TILED.length_threshold
        graph = cache.graph_for(TILED)
        np.testing.assert_array_equal(
            served.to_array(),
            bounded_distance_matrix(graph, TILED.length_threshold))

    def test_one_logical_compute_serves_both_thresholds(self):
        cache = ExecutionCache()
        cache.distances_for(TILED, 3)
        cache.distances_for(TILED.with_overrides(length_threshold=2), 3)
        assert cache.distance_computes == 1

    def test_config_change_rebuilds_the_cache(self):
        cache = ExecutionCache()
        dense = cache.distances_for(BASE, 2)
        tiled = cache.distances_for(TILED, 2)
        assert isinstance(dense, np.ndarray)
        assert isinstance(tiled, DistanceStore)
        # The retired dense compute stays counted alongside the new one.
        assert cache.distance_computes == 2

    def test_explicit_dense_over_budget_raises_the_guard(self):
        from repro.errors import DistanceMemoryError

        request = BASE.with_overrides(scale_tier="dense",
                                      scale_budget_bytes=64)
        cache = ExecutionCache()
        with pytest.raises(DistanceMemoryError, match="tiled"):
            cache.distances_for(request, 2)


class TestTiledGridAcceptance:
    """The satellite acceptance: tiled grids bit-identical to dense."""

    AXES = dict(algorithms=("rem", "rem-ins"), length_thresholds=(1, 2),
                thetas=(0.9, 0.7, 0.5))
    DENSE_GRID = GridRequest.from_axes(BASE, **AXES)
    TILED_GRID = GridRequest.from_axes(TILED, **AXES)

    def test_serial_tiled_matches_serial_dense(self):
        dense = run_grid(self.DENSE_GRID, max_workers=0)
        tiled = run_grid(self.TILED_GRID, max_workers=0)
        assert tiled.ok
        for ours, theirs in zip(tiled.responses, dense.responses):
            assert_response_parity(ours, theirs)
        # One logical distance computation (the shared L_max tile base)
        # serves the whole tiled grid, like the dense tier.
        assert tiled.num_sample_loads == 1
        assert tiled.num_distance_computes == 1

    def test_shm_tiled_matches_serial_dense(self):
        dense = run_grid(self.DENSE_GRID, max_workers=0)
        tiled = run_grid(self.TILED_GRID, max_workers=2)
        assert tiled.ok
        for ours, theirs in zip(tiled.responses, dense.responses):
            assert_response_parity(ours, theirs)
        # The parent never runs a distance engine on the tiled plane — it
        # publishes the CSR arrays and the workers expand tiles lazily.
        assert tiled.num_sample_loads == 1
        assert tiled.num_distance_computes == 0

    def test_explicit_dense_over_budget_is_isolated_per_group(self):
        grid = GridRequest.from_axes(
            BASE.with_overrides(scale_tier="dense", scale_budget_bytes=64),
            thetas=(0.8, 0.6))
        for workers in (0, 2):
            response = run_grid(grid, max_workers=workers)
            assert not response.ok
            for entry in response.responses:
                assert "DistanceMemoryError" in entry.error
                assert "tiled" in entry.error

    def test_gades_baseline_runs_on_the_tiled_tier(self):
        grid_axes = dict(algorithms=("gades",), thetas=(0.8,))
        dense = run_grid(GridRequest.from_axes(BASE, **grid_axes))
        tiled = run_grid(GridRequest.from_axes(TILED, **grid_axes))
        assert tiled.ok
        for ours, theirs in zip(tiled.responses, dense.responses):
            assert_response_parity(ours, theirs)


class TestShmTiledPlane:
    def test_publish_and_attach_tiled_descriptor(self):
        graph = small_graph()
        spec = TiledMatrixSpec(l_max=3, budget_bytes=1 << 16)
        arena = SharedSampleArena.publish(graph, {}, tiled={"numpy": spec})
        try:
            descriptor = arena.descriptor
            assert descriptor.l_max_for("numpy") == 3
            assert descriptor.csr_segments is not None
            attached = attach_arena(descriptor)
            assert attached.graph == graph
            cache = attached.caches["numpy"]
            assert cache.tier == "tiled"
            assert cache.compute_count == 0
            store = cache.store(2)
            np.testing.assert_array_equal(
                store.to_array(), bounded_distance_matrix(graph, 2))
        finally:
            arena.unlink()

    def test_hot_tiles_seed_the_worker_cache(self):
        graph = small_graph()
        base = TiledStore(graph, 2, tile_rows=2, budget_bytes=1 << 16)
        hot = base.rows(np.array([0, 1])).astype(distance_dtype(2))
        spec = TiledMatrixSpec(l_max=2, budget_bytes=1 << 16, tile_rows=2,
                               hot_tiles={0: hot})
        arena = SharedSampleArena.publish(graph, {}, tiled={"numpy": spec})
        try:
            attached = attach_arena(arena.descriptor)
            worker_base = attached.caches["numpy"].base_store()
            assert 0 in worker_base.cached_tiles()
            np.testing.assert_array_equal(
                worker_base.rows(np.array([0, 1])), hot)
            assert worker_base.tile_computes == 0  # tile 0 was preloaded
        finally:
            arena.unlink()

    def test_hot_tiles_without_tile_rows_are_rejected(self):
        graph = small_graph()
        spec = TiledMatrixSpec(l_max=2, budget_bytes=1 << 16,
                               hot_tiles={0: np.zeros((2, 5), dtype=np.uint8)})
        with pytest.raises(ConfigurationError, match="tile_rows"):
            SharedSampleArena.publish(graph, {}, tiled={"numpy": spec})

    def test_same_engine_dense_and_tiled_is_rejected(self):
        graph = small_graph()
        matrix = bounded_distance_matrix(graph, 2)
        spec = TiledMatrixSpec(l_max=2, budget_bytes=1 << 16)
        with pytest.raises(ConfigurationError, match="both dense and tiled"):
            SharedSampleArena.publish(graph, {"numpy": (matrix, 2)},
                                      tiled={"numpy": spec})

    def test_dense_segments_keep_their_narrow_dtype(self):
        graph = small_graph()
        matrix = bounded_distance_matrix(graph, 2)
        assert matrix.dtype == np.uint8  # the dtype satellite
        arena = SharedSampleArena.publish(graph, {"numpy": (matrix, 2)})
        try:
            (_engine, _segment, _l_max, dtype_str), = arena.descriptor.matrices
            assert np.dtype(dtype_str) == np.uint8
            attached = attach_arena(arena.descriptor)
            served = attached.caches["numpy"].base_matrix()
            assert served.dtype == np.uint8
            np.testing.assert_array_equal(served, matrix)
        finally:
            arena.unlink()
