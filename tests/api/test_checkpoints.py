"""Tests for checkpoint JSON serialization and materialization."""

import pytest

from repro.api import (
    AnonymizationRequest,
    CHECKPOINT_VERSION,
    CheckpointBuffer,
    checkpoint_from_dict,
    checkpoint_from_json,
    checkpoint_to_dict,
    checkpoint_to_json,
    execute_sample_group,
    materialize_response,
)
from repro.api.registry import default_registry
from repro.datasets import load_sample
from repro.errors import ConfigurationError

BASE = AnonymizationRequest(dataset="gnutella", sample_size=30, seed=0,
                            include_utility=True)
THETAS = (0.9, 0.7, 0.5)

PARITY_FIELDS = ("success", "final_opacity", "distortion", "num_steps",
                 "evaluations", "num_vertices", "removed_edges",
                 "inserted_edges", "anonymized_edges", "stop_reason", "metrics")


@pytest.fixture(scope="module")
def captured():
    """Checkpoints + responses of one checkpointed pass over THETAS."""
    buffer = CheckpointBuffer()
    requests = [BASE.with_overrides(theta=theta) for theta in THETAS]
    responses = execute_sample_group(requests, observer=buffer)
    checkpoints = [checkpoint for _indices, checkpoint in buffer.records]
    return requests, responses, checkpoints


class TestJsonRoundTrip:
    def test_round_trip_is_identity(self, captured):
        _requests, _responses, checkpoints = captured
        for checkpoint in checkpoints:
            restored = checkpoint_from_json(checkpoint_to_json(checkpoint))
            assert restored == checkpoint  # rng_state excluded from equality
            assert restored.rng_state == checkpoint.rng_state
            assert sorted(restored.graph.edges()) \
                == sorted(checkpoint.graph.edges())
            assert restored.graph.num_vertices == checkpoint.graph.num_vertices

    def test_payload_is_version_stamped(self, captured):
        _requests, _responses, checkpoints = captured
        assert checkpoint_to_dict(checkpoints[0])["version"] \
            == CHECKPOINT_VERSION

    def test_unknown_version_rejected(self, captured):
        _requests, _responses, checkpoints = captured
        payload = checkpoint_to_dict(checkpoints[0])
        payload["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(ConfigurationError, match="version"):
            checkpoint_from_dict(payload)

    def test_unknown_keys_rejected(self, captured):
        _requests, _responses, checkpoints = captured
        payload = checkpoint_to_dict(checkpoints[0])
        payload["surprise"] = 1
        with pytest.raises(ConfigurationError, match="surprise"):
            checkpoint_from_dict(payload)

    def test_rng_state_restores_exactly(self, captured):
        import random

        _requests, _responses, checkpoints = captured
        restored = checkpoint_from_json(checkpoint_to_json(checkpoints[0]))
        rng = random.Random()
        rng.setstate(restored.rng_state)  # must not raise
        witness = random.Random()
        witness.setstate(checkpoints[0].rng_state)
        assert rng.random() == witness.random()


class TestMaterializeResponse:
    def test_matches_engine_response(self, captured):
        requests, responses, checkpoints = captured
        by_theta = {checkpoint.theta: checkpoint for checkpoint in checkpoints}
        for request, reference in zip(requests, responses):
            rebuilt = materialize_response(request, by_theta[request.theta])
            for field in PARITY_FIELDS:
                assert getattr(rebuilt, field) == getattr(reference, field), field

    def test_survives_json_round_trip_of_the_checkpoint(self, captured):
        requests, responses, checkpoints = captured
        checkpoint = checkpoint_from_json(checkpoint_to_json(checkpoints[-1]))
        rebuilt = materialize_response(requests[-1], checkpoint)
        for field in PARITY_FIELDS:
            assert getattr(rebuilt, field) == getattr(responses[-1], field)

    def test_theta_mismatch_rejected(self, captured):
        requests, _responses, checkpoints = captured
        with pytest.raises(ConfigurationError, match="theta"):
            materialize_response(requests[0], checkpoints[-1])

    def test_accepts_preloaded_graph(self, captured):
        requests, responses, checkpoints = captured
        graph = load_sample("gnutella", 30, seed=0)
        rebuilt = materialize_response(requests[0], checkpoints[0],
                                       original_graph=graph)
        assert rebuilt.final_opacity == responses[0].final_opacity
        assert rebuilt.metrics == responses[0].metrics


class TestCoreResumeValidation:
    def test_schedule_must_lie_below_the_checkpoint(self, captured):
        _requests, _responses, checkpoints = captured
        graph = load_sample("gnutella", 30, seed=0)
        algorithm = default_registry().create("rem", theta=0.5,
                                              length_threshold=1, seed=0)
        with pytest.raises(ConfigurationError, match="strictly below"):
            algorithm.anonymize_schedule(graph, [0.9],
                                         resume_from=checkpoints[-1])

    def test_resume_rejects_initial_distances(self, captured):
        _requests, _responses, checkpoints = captured
        graph = load_sample("gnutella", 30, seed=0)
        algorithm = default_registry().create("rem", theta=0.3,
                                              length_threshold=1, seed=0)
        with pytest.raises(ConfigurationError, match="initial_distances"):
            algorithm.anonymize_schedule(graph, [0.3],
                                         resume_from=checkpoints[-1],
                                         initial_distances=object())
