"""Smoke tests for the top-level public API surface."""

import repro


class TestPublicApi:
    def test_version_is_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        graph = repro.erdos_renyi_graph(30, 0.15, seed=1)
        typing = repro.DegreePairTyping(graph)
        before = repro.max_lo(graph, typing, 2)
        result = repro.EdgeRemovalAnonymizer(
            length_threshold=2, theta=0.5, seed=0).anonymize(graph)
        assert result.final_opacity <= min(before, 0.5) + 1e-12
        report = repro.utility_report(result.original_graph, result.anonymized_graph)
        assert report.distortion == result.distortion

    def test_exceptions_form_a_hierarchy(self):
        assert issubclass(repro.GraphError, repro.ReproError)
        assert issubclass(repro.InvalidEdgeError, repro.GraphError)
        assert issubclass(repro.ConfigurationError, repro.ReproError)
        assert issubclass(repro.DatasetError, repro.ReproError)

    def test_dataset_names_listed(self):
        assert "google" in repro.dataset_names()
