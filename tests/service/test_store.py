"""Tests for the SQLite run store (schema, backups, round-trips, dedup)."""

import json
import os
import threading

import pytest

from repro.api import (
    AnonymizationRequest,
    AnonymizationResponse,
    CheckpointBuffer,
    GridRequest,
    GridResponse,
    SweepRequest,
    SweepResponse,
    checkpoint_from_json,
    checkpoint_to_json,
    execute_sample_group,
    request_fingerprint,
)
from repro.errors import ConfigurationError
from repro.service.store import BACKUP_KEEP, RunStore

BASE = AnonymizationRequest(dataset="gnutella", sample_size=24, seed=0)


@pytest.fixture
def store(tmp_path):
    run_store = RunStore(str(tmp_path / "runs.db"))
    yield run_store
    run_store.close()


class TestInit:
    def test_fresh_init_reports_empty_tables(self, store):
        summary = store.init_db()
        assert summary["ok"] and not summary["did_reset"]
        assert summary["stats"] == {"jobs": 0, "checkpoints": 0,
                                    "responses": 0, "results": 0}

    def test_reset_archives_and_empties(self, store):
        job_id = store.create_job("anonymize", "fp", BASE.to_json(), 1)
        assert store.get_job(job_id) is not None
        summary = store.init_db(reset=True)
        assert summary["did_reset"]
        assert summary["stats"]["jobs"] == 0
        assert store.get_job(job_id) is None
        assert len(summary["backups"]) == 1
        backup_dir = os.path.join(os.path.dirname(store.db_path), "backups")
        assert sorted(os.listdir(backup_dir)) == sorted(summary["backups"])

    def test_backups_keep_a_rolling_window(self, store):
        for _ in range(BACKUP_KEEP + 2):
            summary = store.init_db(reset=True)
        assert len(summary["backups"]) == BACKUP_KEEP
        backup_dir = os.path.join(os.path.dirname(store.db_path), "backups")
        assert len(os.listdir(backup_dir)) == BACKUP_KEEP

    def test_backup_is_a_readable_snapshot(self, store, tmp_path):
        import sqlite3

        store.create_job("anonymize", "fp", BASE.to_json(), 1)
        summary = store.init_db(reset=True)
        backup = os.path.join(str(tmp_path), "backups", summary["backups"][0])
        conn = sqlite3.connect(backup)
        try:
            rows = conn.execute("SELECT COUNT(*) FROM jobs").fetchone()
        finally:
            conn.close()
        assert rows[0] == 1  # the pre-reset job survived in the archive


class TestJobLifecycle:
    def test_create_sets_queued(self, store):
        job_id = store.create_job("grid", "fp", "{}", 3)
        job = store.get_job(job_id)
        assert job["status"] == "queued"
        assert job["kind"] == "grid"
        assert job["num_requests"] == 3
        assert job["created_at"] > 0

    def test_status_transitions_stamp_times(self, store):
        job_id = store.create_job("grid", "fp", "{}", 1)
        store.set_status(job_id, "running")
        assert store.get_job(job_id)["started_at"] is not None
        store.set_status(job_id, "done")
        job = store.get_job(job_id)
        assert job["status"] == "done"
        assert job["finished_at"] is not None

    def test_error_status_carries_the_message(self, store):
        job_id = store.create_job("grid", "fp", "{}", 1)
        store.set_status(job_id, "error", "ValueError: boom")
        job = store.get_job(job_id)
        assert job["status"] == "error"
        assert job["error"] == "ValueError: boom"

    def test_unknown_status_rejected(self, store):
        job_id = store.create_job("grid", "fp", "{}", 1)
        with pytest.raises(ConfigurationError, match="status"):
            store.set_status(job_id, "finished")

    def test_interrupted_jobs_are_in_flight_only(self, store):
        queued = store.create_job("grid", "a", "{}", 1)
        running = store.create_job("grid", "b", "{}", 1)
        done = store.create_job("grid", "c", "{}", 1)
        cancelled = store.create_job("grid", "d", "{}", 1)
        store.set_status(running, "running")
        store.set_status(done, "done")
        store.set_status(cancelled, "cancelled")
        assert [job["id"] for job in store.interrupted_jobs()] \
            == [queued, running]

    def test_find_job_by_fingerprint_and_status(self, store):
        job_id = store.create_job("grid", "fp-x", "{}", 1)
        assert store.find_job("fp-x", ("queued",))["id"] == job_id
        assert store.find_job("fp-x", ("done",)) is None
        assert store.find_job("fp-other", ("queued",)) is None


class TestSqliteRoundTrips:
    """Every request/response/checkpoint type through a real write/read."""

    def test_anonymization_request_and_response(self, store):
        request = BASE.with_overrides(theta=0.7)
        job_id = store.create_job("anonymize", request_fingerprint(request),
                                  request.to_json(), 1)
        restored = AnonymizationRequest.from_json(
            store.get_job(job_id)["request_json"])
        assert restored == request
        response = AnonymizationResponse(request=request, success=True,
                                         final_opacity=0.5,
                                         anonymized_edges=((0, 1),),
                                         num_vertices=2)
        store.record_response(job_id, 0, response.to_json())
        assert AnonymizationResponse.from_json(
            store.responses(job_id)[0]) == response

    def test_error_response_round_trips(self, store):
        request = BASE.with_overrides(algorithm="no-such-algo")
        response = AnonymizationResponse.failure(request, KeyError("nope"))
        job_id = store.create_job("anonymize", "fp", request.to_json(), 1)
        store.record_response(job_id, 0, response.to_json())
        restored = AnonymizationResponse.from_json(store.responses(job_id)[0])
        assert restored == response
        assert restored.error is not None

    def test_sweep_types_round_trip(self, store):
        sweep = SweepRequest(requests=(BASE, BASE.with_overrides(theta=0.7)))
        job_id = store.create_job("sweep", request_fingerprint(sweep),
                                  sweep.to_json(), 2)
        assert SweepRequest.from_json(
            store.get_job(job_id)["request_json"]) == sweep
        result = SweepResponse(responses=(AnonymizationResponse(request=BASE),),
                               num_groups=1)
        store.record_result(job_id, result.to_json())
        assert SweepResponse.from_json(store.get_result(job_id)) == result

    def test_grid_types_round_trip(self, store):
        grid = GridRequest(requests=(BASE,), on_error="fail_fast")
        job_id = store.create_job("grid", request_fingerprint(grid),
                                  grid.to_json(), 1)
        assert GridRequest.from_json(
            store.get_job(job_id)["request_json"]) == grid
        result = GridResponse(responses=(AnonymizationResponse(request=BASE),),
                              num_groups=1, num_sample_groups=1)
        store.record_result(job_id, result.to_json())
        assert GridResponse.from_json(store.get_result(job_id)) == result

    def test_checkpoint_round_trips_through_sqlite(self, store):
        buffer = CheckpointBuffer()
        execute_sample_group([BASE.with_overrides(theta=0.8)],
                             observer=buffer)
        checkpoint = buffer.records[-1][1]
        job_id = store.create_job("grid", "fp", "{}", 1)
        store.record_checkpoint(job_id, 0, checkpoint.theta,
                                checkpoint_to_json(checkpoint))
        restored = checkpoint_from_json(store.checkpoints(job_id)[0])
        assert restored == checkpoint
        assert restored.rng_state == checkpoint.rng_state
        latest = store.latest_checkpoint(job_id)
        assert latest["request_index"] == 0
        assert latest["theta"] == pytest.approx(checkpoint.theta)
        assert latest["num_steps"] == checkpoint.num_steps

    def test_counters(self, store):
        job_id = store.create_job("grid", "fp", "{}", 2)
        assert store.num_responses(job_id) == 0
        assert store.num_checkpoints(job_id) == 0
        store.record_response(job_id, 0, "{}")
        store.record_checkpoint(job_id, 1, 0.5, json.dumps({"steps": []}))
        assert store.num_responses(job_id) == 1
        assert store.num_checkpoints(job_id) == 1


class TestThreadSafety:
    def test_concurrent_writers(self, store):
        job_id = store.create_job("grid", "fp", "{}", 64)
        errors = []

        def write(start):
            try:
                for index in range(start, start + 16):
                    store.record_response(job_id, index, "{}")
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(start,))
                   for start in (0, 16, 32, 48)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.num_responses(job_id) == 64
