"""HTTP API tests: an in-thread server exercised through ServiceClient."""

import threading

import pytest

from repro.api import (
    AnonymizationRequest,
    GridRequest,
    GridResponse,
    run_grid,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.http import create_server
from repro.service.jobs import JobManager
from repro.service.store import RunStore

BASE = AnonymizationRequest(dataset="gnutella", sample_size=24, seed=0)
THETAS = (0.9, 0.6)

PARITY_FIELDS = ("success", "final_opacity", "distortion", "num_steps",
                 "evaluations", "num_vertices", "removed_edges",
                 "inserted_edges", "anonymized_edges", "stop_reason", "metrics")


def small_grid(**overrides):
    return GridRequest.from_axes(BASE.with_overrides(**overrides),
                                 thetas=THETAS)


@pytest.fixture
def service(tmp_path):
    """A live server on an ephemeral port + a client pointed at it."""
    store = RunStore(str(tmp_path / "runs.db"))
    manager = JobManager(store)
    manager.start()
    server = create_server("127.0.0.1", 0, manager, store)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    yield client, store, manager
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)
    manager.stop()
    store.close()


class TestRoutes:
    def test_health(self, service):
        client, _store, _manager = service
        assert client.health() == {"ok": True}

    def test_submit_poll_result_round_trip(self, service):
        client, _store, _manager = service
        grid = small_grid()
        submitted = client.submit(grid)
        assert submitted["deduped"] is False
        job_id = submitted["job_id"]
        status = client.wait(job_id)
        assert status["status"] == "done"
        assert status["num_responses"] == len(THETAS)
        result = client.result(job_id)
        assert isinstance(result, GridResponse)
        reference = run_grid(grid, max_workers=1)
        for response, expected in zip(result.responses, reference.responses):
            for field in PARITY_FIELDS:
                assert getattr(response, field) == getattr(expected, field)

    def test_jobs_listing(self, service):
        client, _store, _manager = service
        assert client.jobs() == []
        submitted = client.submit(small_grid())
        client.wait(submitted["job_id"])
        listing = client.jobs()
        assert len(listing) == 1
        assert listing[0]["id"] == submitted["job_id"]

    def test_kind_is_inferred_from_the_record(self, service):
        client, _store, _manager = service
        submitted = client.submit(BASE.with_overrides(theta=0.7))
        status = client.wait(submitted["job_id"])
        assert status["kind"] == "anonymize"

    def test_cancel_route(self, service):
        client, store, manager = service
        submitted = client.submit(small_grid())
        client.wait(submitted["job_id"])
        answer = client.cancel(submitted["job_id"])
        assert answer["cancelled"] is False  # already done
        assert answer["status"] == "done"


class TestDedupOverHttp:
    def test_resubmission_returns_200_with_the_same_job(self, service):
        client, _store, _manager = service
        grid = small_grid()
        first = client.submit(grid)
        client.wait(first["job_id"])
        again = client.submit(grid)
        assert again == {"job_id": first["job_id"], "status": "done",
                         "deduped": True}


class TestErrorPaths:
    def test_unknown_job_status_404(self, service):
        client, _store, _manager = service
        with pytest.raises(ServiceError) as caught:
            client.status("nope")
        assert caught.value.status == 404

    def test_unknown_job_result_404(self, service):
        client, _store, _manager = service
        with pytest.raises(ServiceError) as caught:
            client.result("nope")
        assert caught.value.status == 404

    def test_result_before_done_is_409(self, service):
        client, _store, manager = service
        # Submit without a consumer racing us: stop the worker first so
        # the job stays queued.
        manager.stop()
        submitted = client.submit(small_grid())
        with pytest.raises(ServiceError) as caught:
            client.result(submitted["job_id"])
        assert caught.value.status == 409
        assert caught.value.payload["status"] == "queued"

    def test_malformed_kind_is_400(self, service):
        client, _store, _manager = service
        with pytest.raises(ServiceError) as caught:
            client._call("POST", "/jobs", {"kind": "banana", "request": {}})
        assert caught.value.status == 400
        assert "banana" in caught.value.payload["error"]

    def test_malformed_request_payload_is_400(self, service):
        client, _store, _manager = service
        with pytest.raises(ServiceError) as caught:
            client._call("POST", "/jobs",
                         {"kind": "grid", "request": {"requests": []}})
        assert caught.value.status == 400

    def test_non_object_payload_is_400(self, service):
        client, _store, _manager = service
        with pytest.raises(ServiceError) as caught:
            client._call("POST", "/jobs", {"kind": "grid", "request": 7})
        assert caught.value.status == 400

    def test_invalid_parameter_is_400(self, service):
        client, _store, _manager = service
        payload = BASE.to_dict()
        payload["theta"] = -3.0
        with pytest.raises(ServiceError) as caught:
            client._call("POST", "/jobs",
                         {"kind": "anonymize", "request": payload})
        assert caught.value.status == 400

    def test_unknown_path_404(self, service):
        client, _store, _manager = service
        with pytest.raises(ServiceError) as caught:
            client._call("GET", "/frobnicate")
        assert caught.value.status == 404

    def test_cancel_unknown_job_404(self, service):
        client, _store, _manager = service
        with pytest.raises(ServiceError) as caught:
            client.cancel("nope")
        assert caught.value.status == 404


class TestAdminInit:
    def test_init_reports_stats(self, service):
        client, _store, _manager = service
        submitted = client.submit(small_grid())
        client.wait(submitted["job_id"])
        summary = client.init()
        assert summary["ok"] and not summary["did_reset"]
        assert summary["stats"]["jobs"] == 1

    def test_reset_empties_and_archives(self, service):
        client, _store, _manager = service
        submitted = client.submit(small_grid())
        client.wait(submitted["job_id"])
        summary = client.init(reset=True)
        assert summary["did_reset"]
        assert summary["stats"]["jobs"] == 0
        assert len(summary["backups"]) == 1
        assert client.jobs() == []

    def test_init_refused_while_jobs_in_flight(self, service):
        client, _store, manager = service
        manager.stop()  # keep the submission queued
        client.submit(small_grid())
        with pytest.raises(ServiceError) as caught:
            client.init(reset=True)
        assert caught.value.status == 409
