"""End-to-end resume: kill `repro-lopacity serve` mid-grid, restart, compare.

The acceptance path of the service layer: submit a multi-θ grid over
HTTP, SIGKILL the server process after at least one checkpoint has been
persisted but before the job finishes, restart the server on the same
database, and require the resumed job's final ``GridResponse`` to be
bit-identical (on everything but runtime) to an uninterrupted direct
``run_grid`` — then resubmit the same grid and require a dedup hit.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.api import AnonymizationRequest, GridRequest, run_grid
from repro.service.client import ServiceClient

#: enron@200/L=2 costs ~2s to the first θ checkpoint and ~1.5s more to
#: finish — wide enough to kill the server mid-run without flakiness.
BASE = AnonymizationRequest(dataset="enron", sample_size=200, seed=0,
                            length_threshold=2)
THETAS = (0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.15, 0.1)

PARITY_FIELDS = ("success", "final_opacity", "distortion", "num_steps",
                 "evaluations", "num_vertices", "removed_edges",
                 "inserted_edges", "anonymized_edges", "stop_reason", "metrics")


def _spawn_server(db_path):
    """Start ``serve`` on an ephemeral port; returns (process, client)."""
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    src = os.path.join(root, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--db", str(db_path)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, bufsize=1, env=env)
    banner = []
    deadline = time.monotonic() + 60
    url = None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        banner.append(line.rstrip("\n"))
        if line.startswith("listening on "):
            url = line.split("listening on ", 1)[1].strip()
            break
    if url is None:
        process.kill()
        pytest.fail(f"server never announced its port; output: {banner}")
    return process, ServiceClient(url), banner


def _terminate(process):
    if process.poll() is None:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10)
    process.stdout.close()


@pytest.mark.slow
def test_kill_and_restart_resumes_bit_identically(tmp_path):
    db_path = tmp_path / "runs.db"
    grid = GridRequest.from_axes(BASE, thetas=THETAS)

    process, client, _banner = _spawn_server(db_path)
    try:
        submitted = client.submit(grid)
        job_id = submitted["job_id"]
        assert submitted["deduped"] is False

        # Wait for at least one persisted checkpoint, then kill the
        # server hard — no shutdown hooks, exactly like a crash.
        killed_mid_run = False
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            status = client.status(job_id)
            if status["status"] in ("done", "error", "cancelled"):
                break
            if status["num_checkpoints"] >= 1:
                process.send_signal(signal.SIGKILL)
                process.wait(timeout=10)
                killed_mid_run = True
                break
            time.sleep(0.02)
        assert killed_mid_run, \
            f"job reached {client.status(job_id)['status']} before the kill"
    finally:
        _terminate(process)

    process, client, banner = _spawn_server(db_path)
    try:
        assert any(line.startswith("resuming 1 interrupted job")
                   for line in banner), banner
        status = client.wait(job_id, timeout=240)
        assert status["status"] == "done"
        assert status["num_checkpoints"] >= 1
        result = client.result(job_id)

        reference = run_grid(grid, max_workers=1)
        assert len(result.responses) == len(reference.responses)
        for response, expected in zip(result.responses, reference.responses):
            for field in PARITY_FIELDS:
                assert getattr(response, field) == getattr(expected, field), \
                    field

        # Resubmitting the identical grid must dedup onto the finished
        # job — answered from the store, no recomputation.
        again = client.submit(grid)
        assert again == {"job_id": job_id, "status": "done", "deduped": True}
    finally:
        _terminate(process)


@pytest.mark.slow
def test_restart_with_no_interrupted_jobs_is_quiet(tmp_path):
    db_path = tmp_path / "runs.db"
    process, client, banner = _spawn_server(db_path)
    try:
        assert client.health() == {"ok": True}
        assert not any("resuming" in line for line in banner)
    finally:
        _terminate(process)
