"""Tests for the background job manager (execution, dedup, cancel, resume)."""

import json
import threading
import time

import pytest

from repro.api import (
    AnonymizationRequest,
    AnonymizationResponse,
    CheckpointBuffer,
    GridRequest,
    GridResponse,
    SweepRequest,
    checkpoint_to_json,
    execute_sample_group,
    request_fingerprint,
    run_grid,
)
from repro.errors import ConfigurationError
from repro.service.jobs import JobManager, parse_request, wrap_result
from repro.service.store import RunStore

BASE = AnonymizationRequest(dataset="gnutella", sample_size=24, seed=0)
THETAS = (0.9, 0.6, 0.4)

PARITY_FIELDS = ("success", "final_opacity", "distortion", "num_steps",
                 "evaluations", "num_vertices", "removed_edges",
                 "inserted_edges", "anonymized_edges", "stop_reason", "metrics")


def small_grid(**overrides):
    return GridRequest.from_axes(BASE.with_overrides(**overrides),
                                 thetas=THETAS)


def assert_grid_parity(result, reference):
    assert len(result.responses) == len(reference.responses)
    for response, expected in zip(result.responses, reference.responses):
        for field in PARITY_FIELDS:
            assert getattr(response, field) == getattr(expected, field), field


@pytest.fixture
def store(tmp_path):
    run_store = RunStore(str(tmp_path / "runs.db"))
    yield run_store
    run_store.close()


@pytest.fixture
def manager(store):
    job_manager = JobManager(store)
    job_manager.start()
    yield job_manager
    job_manager.stop()


class TestParseRequest:
    def test_each_kind_parses(self):
        assert parse_request("anonymize", BASE.to_dict()) == BASE
        sweep = SweepRequest(requests=(BASE,))
        assert parse_request("sweep", sweep.to_dict()) == sweep
        grid = small_grid()
        assert parse_request("grid", grid.to_dict()) == grid

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            parse_request("banana", {})

    def test_non_object_payload_rejected(self):
        with pytest.raises(ConfigurationError, match="object"):
            parse_request("grid", [1, 2, 3])


class TestExecution:
    def test_grid_job_matches_direct_run(self, manager, store):
        grid = small_grid()
        submitted = manager.submit("grid", grid)
        assert submitted["deduped"] is False
        job = manager.wait_for(submitted["job_id"], timeout=120)
        assert job["status"] == "done"
        result = GridResponse.from_json(store.get_result(job["id"]))
        assert_grid_parity(result, run_grid(grid, max_workers=1))

    def test_single_request_job(self, manager, store):
        request = BASE.with_overrides(theta=0.7)
        submitted = manager.submit("anonymize", request)
        job = manager.wait_for(submitted["job_id"], timeout=120)
        assert job["status"] == "done"
        result = AnonymizationResponse.from_json(store.get_result(job["id"]))
        assert result.success is not None
        assert result.request == request

    def test_checkpoints_stream_during_the_run(self, manager, store):
        submitted = manager.submit("grid", small_grid())
        job_id = submitted["job_id"]
        manager.wait_for(job_id, timeout=120)
        assert store.num_checkpoints(job_id) == len(THETAS)
        assert store.num_responses(job_id) == len(THETAS)
        latest = store.latest_checkpoint(job_id)
        assert latest["theta"] == pytest.approx(min(THETAS))

    def test_status_exposes_progress_counters(self, manager, store):
        submitted = manager.submit("grid", small_grid())
        job_id = submitted["job_id"]
        manager.wait_for(job_id, timeout=120)
        status = manager.status(job_id)
        assert status["num_responses"] == len(THETAS)
        assert status["num_checkpoints"] == len(THETAS)
        assert status["latest_checkpoint"] is not None
        assert manager.status("nope") is None

    def test_error_status_job(self, manager, store):
        grid = GridRequest(requests=(
            BASE.with_overrides(theta=0.8),
            BASE.with_overrides(algorithm="no-such-algorithm"),
        ), on_error="fail_fast")
        submitted = manager.submit("grid", grid)
        job = manager.wait_for(submitted["job_id"], timeout=120)
        assert job["status"] == "error"
        assert "no-such-algorithm" in job["error"]
        assert store.get_result(job["id"]) is None

    def test_pooled_grid_job_runs_on_the_shm_plane(self, store):
        # A pooled manager executes grids over the shared-memory data
        # plane; the persisted result is bit-identical to serial execution.
        grid = GridRequest.from_axes(BASE, length_thresholds=(1, 2),
                                     thetas=THETAS)
        manager = JobManager(store, max_workers=2)
        manager.start()
        try:
            submitted = manager.submit("grid", grid)
            job = manager.wait_for(submitted["job_id"], timeout=120)
            assert job["status"] == "done"
            result = GridResponse.from_json(store.get_result(job["id"]))
            assert_grid_parity(result, run_grid(grid, max_workers=0))
            assert result.num_sample_loads == 1
            assert result.num_distance_computes == 1
        finally:
            manager.stop()

    def test_pooled_manager_honours_the_shared_memory_escape_hatch(self, store):
        grid = GridRequest.from_axes(BASE, length_thresholds=(1, 2),
                                     thetas=THETAS)
        manager = JobManager(store, max_workers=2, shared_memory=False)
        manager.start()
        try:
            submitted = manager.submit("grid", grid)
            job = manager.wait_for(submitted["job_id"], timeout=120)
            assert job["status"] == "done"
            result = GridResponse.from_json(store.get_result(job["id"]))
            assert_grid_parity(result, run_grid(grid, max_workers=0))
        finally:
            manager.stop()

    def test_isolate_mode_finishes_with_error_responses(self, manager, store):
        grid = GridRequest(requests=(
            BASE.with_overrides(theta=0.8),
            BASE.with_overrides(algorithm="no-such-algorithm"),
        ))
        submitted = manager.submit("grid", grid)
        job = manager.wait_for(submitted["job_id"], timeout=120)
        assert job["status"] == "done"
        result = GridResponse.from_json(store.get_result(job["id"]))
        assert result.responses[0].success
        assert not result.responses[1].success
        assert result.responses[1].error is not None


class TestDedup:
    def test_finished_job_is_reused(self, manager):
        grid = small_grid()
        first = manager.submit("grid", grid)
        manager.wait_for(first["job_id"], timeout=120)
        again = manager.submit("grid", grid)
        assert again == {"job_id": first["job_id"], "status": "done",
                         "deduped": True}

    def test_resubmission_does_zero_new_work(self, manager, store,
                                             monkeypatch):
        grid = small_grid()
        first = manager.submit("grid", grid)
        manager.wait_for(first["job_id"], timeout=120)

        import repro.api.sweeps as sweeps_module

        def explode(*_args, **_kwargs):
            raise AssertionError("a deduped resubmission must not execute")

        monkeypatch.setattr(sweeps_module, "execute_sweep_group", explode)
        again = manager.submit("grid", grid)
        assert again["deduped"] is True
        assert GridResponse.from_json(store.get_result(again["job_id"])) \
            is not None

    def test_in_flight_twin_coalesces(self, store):
        # Not started: the job stays queued, so the twin must coalesce.
        manager = JobManager(store)
        grid = small_grid()
        first = manager.submit("grid", grid)
        second = manager.submit("grid", grid)
        assert second == {"job_id": first["job_id"], "status": "queued",
                          "deduped": True}

    def test_different_requests_do_not_collide(self, store):
        manager = JobManager(store)
        first = manager.submit("grid", small_grid())
        second = manager.submit("grid", small_grid(seed=1))
        assert first["job_id"] != second["job_id"]


class TestCancel:
    def test_cancel_queued_job(self, store):
        manager = JobManager(store)  # no worker: stays queued
        submitted = manager.submit("grid", small_grid())
        assert manager.cancel(submitted["job_id"])
        assert store.get_job(submitted["job_id"])["status"] == "cancelled"

    def test_cancel_unknown_or_finished(self, manager, store):
        assert not manager.cancel("nope")
        submitted = manager.submit("grid", small_grid())
        manager.wait_for(submitted["job_id"], timeout=120)
        assert not manager.cancel(submitted["job_id"])

    def test_cancel_running_job(self, store):
        # A slow grid (larger sample, several θs) gives the cancel a
        # window; the token stops the pass at the next observer callback.
        manager = JobManager(store)
        manager.start()
        try:
            grid = GridRequest.from_axes(
                BASE.with_overrides(sample_size=60),
                thetas=(0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3))
            submitted = manager.submit("grid", grid)
            job_id = submitted["job_id"]
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                status = store.get_job(job_id)["status"]
                if status == "running":
                    break
                if status in ("done", "error", "cancelled"):
                    break
                time.sleep(0.005)
            if store.get_job(job_id)["status"] == "running":
                assert manager.cancel(job_id)
            job = manager.wait_for(job_id, timeout=120)
            # Either the cancel landed in time or the tiny job finished
            # first; both are legitimate terminal states.
            assert job["status"] in ("cancelled", "done")
        finally:
            manager.stop()

    def test_orphaned_running_job_can_be_cancelled(self, store):
        manager = JobManager(store)  # worker never started
        submitted = manager.submit("grid", small_grid())
        store.set_status(submitted["job_id"], "running")
        assert manager.cancel(submitted["job_id"])
        assert store.get_job(submitted["job_id"])["status"] == "cancelled"


class TestResume:
    """A dead process's half-finished grid continues bit-identically."""

    def _interrupt(self, store, grid, crossed):
        """Persist the state a process killed after ``crossed`` θs leaves."""
        job_id = store.create_job("grid", request_fingerprint(grid),
                                  grid.to_json(), len(grid.requests))
        store.set_status(job_id, "running")
        buffer = CheckpointBuffer()
        execute_sample_group(list(grid.requests[:crossed]), observer=buffer)
        for index, (_indices, checkpoint) in enumerate(buffer.records):
            store.record_checkpoint(job_id, index, checkpoint.theta,
                                    checkpoint_to_json(checkpoint))
        return job_id

    @pytest.mark.parametrize("crossed", [1, 2])
    def test_resumed_grid_matches_uninterrupted_run(self, store, crossed):
        grid = small_grid()
        job_id = self._interrupt(store, grid, crossed)
        manager = JobManager(store)
        resumed = manager.start()
        try:
            assert resumed == [job_id]
            job = manager.wait_for(job_id, timeout=120)
            assert job["status"] == "done"
            result = GridResponse.from_json(store.get_result(job_id))
            assert_grid_parity(result, run_grid(grid, max_workers=1))
        finally:
            manager.stop()

    def test_fully_checkpointed_job_does_no_anonymization(self, store,
                                                          monkeypatch):
        grid = small_grid()
        job_id = self._interrupt(store, grid, len(grid.requests))
        reference = run_grid(grid, max_workers=1)

        import repro.api.sweeps as sweeps_module

        def explode(*_args, **_kwargs):
            raise AssertionError(
                "every θ is checkpointed; nothing may re-run")

        monkeypatch.setattr(sweeps_module, "execute_sweep_group", explode)
        manager = JobManager(store)
        manager.start()
        try:
            job = manager.wait_for(job_id, timeout=120)
            assert job["status"] == "done"
            result = GridResponse.from_json(store.get_result(job_id))
            assert_grid_parity(result, reference)
        finally:
            manager.stop()

    def test_stored_responses_short_circuit_whole_groups(self, store,
                                                         monkeypatch):
        grid = small_grid()
        reference = run_grid(grid, max_workers=1)
        job_id = store.create_job("grid", request_fingerprint(grid),
                                  grid.to_json(), len(grid.requests))
        store.set_status(job_id, "running")
        for index, response in enumerate(reference.responses):
            store.record_response(job_id, index, response.to_json())

        import repro.api.sweeps as sweeps_module

        monkeypatch.setattr(
            sweeps_module, "execute_sweep_group",
            lambda *a, **k: pytest.fail("all responses are stored"))
        manager = JobManager(store)
        manager.start()
        try:
            job = manager.wait_for(job_id, timeout=120)
            assert job["status"] == "done"
            result = GridResponse.from_json(store.get_result(job_id))
            assert_grid_parity(result, reference)
        finally:
            manager.stop()

    def test_queued_job_from_a_dead_process_just_runs(self, store):
        grid = small_grid()
        job_id = store.create_job("grid", request_fingerprint(grid),
                                  grid.to_json(), len(grid.requests))
        manager = JobManager(store)
        resumed = manager.start()
        try:
            assert resumed == [job_id]
            job = manager.wait_for(job_id, timeout=120)
            assert job["status"] == "done"
        finally:
            manager.stop()


class TestWrapResult:
    def test_sweep_and_grid_wrapping(self):
        sweep = SweepRequest(requests=(BASE.with_overrides(theta=0.8),))
        responses = [AnonymizationResponse(request=sweep.requests[0])]
        wrapped = wrap_result("sweep", sweep, responses)
        assert wrapped.num_groups == 1
        grid = small_grid()
        grid_responses = [AnonymizationResponse(request=request)
                          for request in grid.requests]
        wrapped = wrap_result("grid", grid, grid_responses)
        assert wrapped.num_sample_groups == 1
        assert len(wrapped.responses) == len(THETAS)


class TestScaleDefaults:
    def test_bad_server_defaults_rejected_up_front(self, store):
        with pytest.raises(ConfigurationError, match="scale_tier"):
            JobManager(store, scale_tier="huge")

    def test_defaults_patch_auto_requests_at_execution(self, store):
        manager = JobManager(store, scale_tier="tiled",
                             scale_budget_bytes=1 << 20)
        patched = manager._apply_scale_defaults("anonymize", BASE)
        assert patched.scale_tier == "tiled"
        assert patched.scale_budget_bytes == 1 << 20
        patched_grid = manager._apply_scale_defaults("grid", small_grid())
        assert all(request.scale_tier == "tiled"
                   and request.scale_budget_bytes == 1 << 20
                   for request in patched_grid.requests)

    def test_explicit_request_values_beat_the_defaults(self, store):
        manager = JobManager(store, scale_tier="tiled",
                             scale_budget_bytes=1 << 20)
        explicit = BASE.with_overrides(scale_tier="dense",
                                       scale_budget_bytes=2 << 20)
        assert manager._apply_scale_defaults("anonymize", explicit) == explicit

    def test_tiled_default_job_matches_a_dense_run(self, store):
        grid = small_grid()
        manager = JobManager(store, scale_tier="tiled",
                             scale_budget_bytes=1 << 20)
        manager.start()
        try:
            submitted = manager.submit("grid", grid)
            job = manager.wait_for(submitted["job_id"], timeout=120)
            assert job["status"] == "done"
            result = GridResponse.from_json(store.get_result(job["id"]))
            assert_grid_parity(result, run_grid(grid, max_workers=0))
            # The stored request (and so the dedup fingerprint) keeps the
            # submitted "auto" values; only execution saw the defaults.
            row = store.get_job(job["id"])
            stored = json.loads(row["request_json"])
            assert all(req["scale_tier"] == "auto"
                       for req in stored["requests"])
        finally:
            manager.stop()


class TestScanDefaults:
    """Service-wide ``--scan-workers``: fingerprint-neutral execution default."""

    def test_negative_scan_workers_rejected_up_front(self, store):
        with pytest.raises(ConfigurationError, match="scan_workers"):
            JobManager(store, scan_workers=-1)

    def test_default_promotes_batched_requests_at_execution(self, store):
        manager = JobManager(store, scan_workers=2)
        patched = manager._apply_scale_defaults("anonymize", BASE)
        assert patched.scan_mode == "parallel"
        assert patched.scan_workers == 2
        patched_grid = manager._apply_scale_defaults("grid", small_grid())
        assert all(request.scan_mode == "parallel"
                   and request.scan_workers == 2
                   for request in patched_grid.requests)

    def test_explicit_scan_choices_beat_the_default(self, store):
        manager = JobManager(store, scan_workers=2)
        serial = BASE.with_overrides(scan_mode="per_candidate")
        assert manager._apply_scale_defaults("anonymize", serial) == serial
        chosen = BASE.with_overrides(scan_mode="parallel", scan_workers=1)
        assert manager._apply_scale_defaults("anonymize", chosen) == chosen
        # Mode chosen but size left open: only the size is filled in.
        open_size = BASE.with_overrides(scan_mode="parallel")
        assert manager._apply_scale_defaults(
            "anonymize", open_size).scan_workers == 2

    def test_parallel_default_job_matches_a_serial_run(self, store):
        grid = small_grid()
        manager = JobManager(store, scan_workers=2)
        manager.start()
        try:
            submitted = manager.submit("grid", grid)
            job = manager.wait_for(submitted["job_id"], timeout=120)
            assert job["status"] == "done"
            result = GridResponse.from_json(store.get_result(job["id"]))
            assert_grid_parity(result, run_grid(grid, max_workers=0))
            # The stored request (and the dedup fingerprint) keeps the
            # client's serial scan configuration.
            row = store.get_job(job["id"])
            stored = json.loads(row["request_json"])
            assert all(req.get("scan_workers") is None
                       for req in stored["requests"])
        finally:
            manager.stop()


class TestSpillLifecycle:
    """Per-job persistent spill files: stable prefix, terminal cleanup."""

    def test_prefix_is_deterministic_per_job(self):
        assert JobManager._spill_prefix("abc") == JobManager._spill_prefix("abc")
        assert JobManager._spill_prefix("abc") != JobManager._spill_prefix("abd")

    def test_cleanup_removes_only_the_jobs_files(self, store, tmp_path,
                                                 monkeypatch):
        import repro.service.jobs as jobs_module
        monkeypatch.setattr(jobs_module.tempfile, "gettempdir",
                            lambda: str(tmp_path))
        manager = JobManager(store)
        mine = tmp_path / "repro-job-j1-deadbeef.tiles"
        sidecar = tmp_path / "repro-job-j1-deadbeef.tiles.index.npz"
        other = tmp_path / "repro-job-j2-deadbeef.tiles"
        for path in (mine, sidecar, other):
            path.write_bytes(b"x")
        manager._cleanup_spills("j1")
        assert not mine.exists() and not sidecar.exists()
        assert other.exists()

    def test_tiled_job_cleans_spills_on_completion(self, store, tmp_path,
                                                   monkeypatch):
        import glob as glob_module

        import repro.service.jobs as jobs_module
        monkeypatch.setattr(jobs_module.tempfile, "gettempdir",
                            lambda: str(tmp_path))
        grid = small_grid()
        manager = JobManager(store, scale_tier="tiled",
                             scale_budget_bytes=2048)
        manager.start()
        try:
            submitted = manager.submit("grid", grid)
            job = manager.wait_for(submitted["job_id"], timeout=120)
            assert job["status"] == "done"
            assert_grid_parity(
                GridResponse.from_json(store.get_result(job["id"])),
                run_grid(grid, max_workers=0))
        finally:
            manager.stop()
        prefix = jobs_module.JobManager._spill_prefix(submitted["job_id"])
        assert glob_module.glob(prefix + "-*.tiles*") == []

    def test_interrupted_job_keeps_spills_for_resume(self, store, tmp_path,
                                                     monkeypatch):
        """A job killed mid-run leaves its warm tiles; the resumed run
        adopts them and the terminal cleanup still fires at the end."""
        import glob as glob_module

        import repro.service.jobs as jobs_module
        monkeypatch.setattr(jobs_module.tempfile, "gettempdir",
                            lambda: str(tmp_path))
        grid = small_grid(scale_tier="tiled", scale_budget_bytes=2048)
        # Persist the state of a process that died while "running" — the
        # driver never reached the terminal-status cleanup.
        job_id = store.create_job("grid", request_fingerprint(grid),
                                  grid.to_json(), len(grid.requests))
        store.set_status(job_id, "running")
        warm = tmp_path / f"repro-job-{job_id}-deadbeef.tiles"
        warm.write_bytes(b"x")
        manager = JobManager(store)
        resumed = manager.start()
        try:
            assert resumed == [job_id]
            job = manager.wait_for(job_id, timeout=120)
            assert job["status"] == "done"
            assert_grid_parity(
                GridResponse.from_json(store.get_result(job_id)),
                run_grid(grid, max_workers=0))
        finally:
            manager.stop()
        prefix = jobs_module.JobManager._spill_prefix(job_id)
        assert glob_module.glob(prefix + "-*.tiles*") == []
