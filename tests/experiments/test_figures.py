"""Integration tests for the figure series builders (scaled-down parameters)."""

import pytest

from repro.experiments.figures import (
    figure6_lsweep_series,
    figure6_series,
    figure7_series,
    figure8_lsweep_series,
    figure8_series,
    figure9_series,
    figure10_series,
    figure11_series,
    figure12_series,
)
from repro.experiments.runner import ExperimentRunner

#: Tiny parameters so the whole module stays fast; the benchmarks run the
#: realistic sizes.
TINY = dict(sample_size=30, thetas=(0.8, 0.6), seed=0)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


class TestFigure6:
    def test_l1_includes_baselines(self, runner):
        series = figure6_series("gnutella", length_threshold=1, lookaheads=(1,),
                                runner=runner, **TINY)
        assert "rem la=1" in series and "gaded-max" in series and "gades" in series
        for points in series.values():
            assert [theta for theta, _v in points] == [0.8, 0.6]
            assert all(value >= 0 for _t, value in points)

    def test_l2_excludes_baselines(self, runner):
        series = figure6_series("gnutella", length_threshold=2, lookaheads=(1,),
                                runner=runner, **TINY)
        assert set(series) == {"rem la=1", "rem-ins la=1"}

    def test_distortion_does_not_decrease_as_theta_tightens(self, runner):
        series = figure6_series("enron", length_threshold=1, lookaheads=(1,),
                                include_baselines=False, runner=runner, **TINY)
        for points in series.values():
            values = [value for _t, value in points]  # thetas descend
            assert values[0] <= values[-1] + 1e-9

    def test_lsweep_series_labels(self, runner):
        series = figure6_lsweep_series("gnutella", lengths=(1, 2), runner=runner, **TINY)
        assert set(series) == {"rem L=1", "rem L=2", "rem-ins L=1", "rem-ins L=2"}


class TestFigure7And8:
    def test_figure7_returns_both_metrics(self, runner):
        result = figure7_series("enron", lookaheads=(1,), include_baselines=False,
                                runner=runner, **TINY)
        assert set(result) == {"degree_emd", "geodesic_emd"}
        for series in result.values():
            assert set(series) == {"rem la=1", "rem-ins la=1"}

    def test_figure8_values_are_nonnegative(self, runner):
        series = figure8_series("wikipedia", lookaheads=(1,), include_baselines=False,
                                runner=runner, **TINY)
        for points in series.values():
            assert all(value >= 0 for _t, value in points)

    def test_figure8_l2(self, runner):
        series = figure8_series("epinions", length_threshold=2, lookaheads=(1,),
                                runner=runner, **TINY)
        assert set(series) == {"rem la=1", "rem-ins la=1"}

    def test_figure8_lsweep_series(self, runner):
        series = figure8_lsweep_series("epinions", lengths=(1, 2),
                                       runner=runner, **TINY)
        assert set(series) == {"rem L=1", "rem L=2", "rem-ins L=1", "rem-ins L=2"}
        for points in series.values():
            assert [theta for theta, _v in points] == [0.8, 0.6]


class TestRuntimeFigures:
    def test_figure9_has_one_block_per_size(self, runner):
        result = figure9_series("google", sample_sizes=(25, 35), thetas=(0.8,),
                                lookaheads=(1,), include_baselines=False,
                                seed=0, runner=runner)
        assert set(result) == {25, 35}
        for series in result.values():
            assert all(value >= 0 for _t, value in series["rem la=1"])

    def test_figure10_runtime_series(self, runner):
        series = figure10_series("gnutella", sample_sizes=(25, 35), lengths=(1,),
                                 theta=0.7, seed=0, runner=runner)
        assert set(series) == {"rem L=1", "rem-ins L=1"}
        for points in series.values():
            assert [size for size, _v in points] == [25, 35]

    def test_sweep_modes_produce_identical_series(self, runner):
        checkpointed = figure6_series("gnutella", length_threshold=1,
                                      lookaheads=(1,), runner=runner, **TINY)
        independent = figure6_series("gnutella", length_threshold=1,
                                     lookaheads=(1,), sweep_mode="independent",
                                     runner=runner, **TINY)
        assert set(checkpointed) == set(independent)
        for label, points in checkpointed.items():
            assert points == independent[label]

    def test_figure11_and_12_share_sweep_structure(self, runner):
        runtime = figure11_series(sample_sizes=(30, 40), thetas=(0.8, 0.6),
                                  seed=0, runner=runner)
        distortion = figure12_series(sample_sizes=(30, 40), thetas=(0.8, 0.6),
                                     seed=0, runner=runner)
        assert set(runtime) == {0.8, 0.6}
        assert set(distortion) == {0.8, 0.6}
        for theta, points in distortion.items():
            assert [size for size, _v in points] == [30, 40]
            assert all(value >= 0 for _s, value in points)
