"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.experiments.charts import render_series_chart


class TestRenderSeriesChart:
    def test_empty_input(self):
        assert render_series_chart({}) == "(no data)"
        assert render_series_chart({"rem": []}) == "(no data)"

    def test_contains_title_axes_and_legend(self):
        chart = render_series_chart(
            {"rem la=1": [(0.9, 0.05), (0.5, 0.2)],
             "rem-ins la=1": [(0.9, 0.1), (0.5, 0.4)]},
            title="Figure 6", x_label="theta", y_label="distortion")
        assert chart.splitlines()[0] == "Figure 6"
        assert "distortion" in chart
        assert "theta" in chart
        assert "o rem la=1" in chart
        assert "x rem-ins la=1" in chart

    def test_extreme_points_are_plotted_at_the_corners(self):
        chart = render_series_chart({"s": [(0.0, 0.0), (1.0, 1.0)]},
                                    width=20, height=5)
        lines = chart.splitlines()
        plot_rows = [line for line in lines if "|" in line]
        # Highest y value lands on the first plot row, lowest on the last.
        assert plot_rows[0].rstrip().endswith("o")
        assert plot_rows[-1].split("|")[1].startswith("o")

    def test_axis_labels_show_value_range(self):
        chart = render_series_chart({"s": [(10, 2.0), (50, 8.0)]},
                                    x_label="size", y_label="seconds")
        assert "10" in chart and "50" in chart
        assert "2" in chart and "8" in chart

    def test_constant_series_does_not_crash(self):
        chart = render_series_chart({"flat": [(0.5, 0.3), (0.8, 0.3)]})
        assert "flat" in chart

    def test_single_point(self):
        chart = render_series_chart({"dot": [(0.5, 0.5)]})
        assert "o" in chart

    def test_marker_cycling_beyond_available_markers(self):
        series = {f"series-{index}": [(index, index)] for index in range(12)}
        chart = render_series_chart(series)
        assert "series-11" in chart
