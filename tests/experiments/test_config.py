"""Unit tests for experiment configuration records and sweeps."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ALGORITHMS, ExperimentConfig, SweepSpec


class TestExperimentConfig:
    def test_valid_construction(self):
        config = ExperimentConfig(dataset="google", sample_size=100,
                                  algorithm="rem", theta=0.5)
        assert config.label() == "rem la=1 L=1"

    def test_baseline_label_has_no_parameters(self):
        config = ExperimentConfig(dataset="google", sample_size=100,
                                  algorithm="gaded-max", theta=0.5)
        assert config.label() == "gaded-max"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(dataset="google", sample_size=100,
                             algorithm="simulated-annealing", theta=0.5)

    @pytest.mark.parametrize("field,value", [
        ("theta", 1.5), ("length_threshold", 0), ("lookahead", 0)])
    def test_invalid_parameters_rejected(self, field, value):
        kwargs = dict(dataset="google", sample_size=100, algorithm="rem", theta=0.5)
        kwargs[field] = value
        with pytest.raises(ConfigurationError):
            ExperimentConfig(**kwargs)

    def test_with_theta_copies(self):
        config = ExperimentConfig(dataset="google", sample_size=100,
                                  algorithm="rem", theta=0.5)
        other = config.with_theta(0.3)
        assert other.theta == 0.3
        assert other.dataset == config.dataset
        assert config.theta == 0.5


class TestSweepSpec:
    def test_grid_size_and_enumeration(self):
        sweep = SweepSpec(datasets=("google", "enron"), sample_sizes=(50,),
                          algorithms=("rem", "rem-ins"), thetas=(0.9, 0.5),
                          length_thresholds=(1, 2), lookaheads=(1,))
        configs = list(sweep.configurations())
        assert len(sweep) == 16
        assert len(configs) == 16
        assert len({(c.dataset, c.algorithm, c.theta, c.length_threshold)
                    for c in configs}) == 16

    def test_all_algorithms_are_valid(self):
        sweep = SweepSpec(datasets=("gnutella",), sample_sizes=(40,),
                          algorithms=ALGORITHMS, thetas=(0.5,))
        assert len(list(sweep.configurations())) == len(ALGORITHMS)
