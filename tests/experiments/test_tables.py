"""Unit tests for the Table 1-3 reproduction."""

from repro.experiments.tables import table1_rows, table2_rows, table3_rows


class TestTable1:
    def test_has_all_seven_datasets(self):
        rows = table1_rows()
        assert len(rows) == 7
        assert {row["dataset"] for row in rows} == {
            "google", "berkeley-stanford", "epinions", "enron",
            "gnutella", "acm", "wikipedia"}

    def test_reports_published_sizes(self):
        rows = {row["dataset"]: row for row in table1_rows()}
        assert rows["wikipedia"]["nodes"] == 7_115
        assert rows["wikipedia"]["links"] == 103_689


class TestTable2:
    def test_reports_published_properties(self):
        rows = {row["dataset"]: row for row in table2_rows()}
        assert rows["gnutella"]["diameter"] == 9
        assert rows["gnutella"]["acc"] == 0.0080
        assert rows["acm"]["avg_degree"] == 3.97


class TestTable3:
    def test_published_only_mode(self):
        rows = table3_rows(sample_sizes=[100], measure=False)
        assert rows, "expected at least one 100-node sample row"
        assert all("links" not in row for row in rows)
        assert all(row["paper_links"] > 0 for row in rows)

    def test_measured_mode_adds_proxy_columns(self):
        rows = table3_rows(sample_sizes=[100], seed=1)
        for row in rows:
            assert row["nodes"] == 100
            assert row["links"] == row["paper_links"]
            assert row["avg_degree"] > 0

    def test_size_filter(self):
        rows = table3_rows(sample_sizes=[500], measure=False)
        assert all(row["nodes"] == 500 for row in rows)
