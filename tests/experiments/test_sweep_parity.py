"""Differential parity suite for the checkpointed θ-sweep engine.

The engine's contract (DESIGN.md §9): a checkpointed sweep produces per-θ
records *bit-identical* to independent per-θ runs — same edits, opacity,
distortion, utility metrics, step and evaluation counts — for every
registered algorithm; only ``runtime_seconds`` reflects the execution
strategy.  These tests assert exactly that at the experiments layer
(``RunRecord``), plus a hypothesis sweep over random θ grids at the core
layer.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import GadesAnonymizer
from repro.core import EdgeRemovalAnonymizer
from repro.experiments.config import ALGORITHMS, ExperimentConfig, SweepPlan
from repro.experiments.runner import ExperimentRunner
from repro.graph import erdos_renyi_graph

#: Fields of a RunRecord compared bit-for-bit (everything except runtime
#: and the config record, whose sweep_mode field names the execution path).
COMPARED_FIELDS = ("success", "final_opacity", "distortion", "degree_emd",
                   "geodesic_emd", "mean_cc_difference", "steps", "evaluations")

THETAS = (0.9, 0.7, 0.5)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


def assert_records_match(checkpointed, reference):
    assert len(checkpointed) == len(reference)
    for ours, theirs in zip(checkpointed, reference):
        assert ours.config.theta == theirs.config.theta
        assert replace(ours.config, sweep_mode="checkpointed") == \
               replace(theirs.config, sweep_mode="checkpointed")
        for field in COMPARED_FIELDS:
            assert getattr(ours, field) == getattr(theirs, field), \
                (field, ours.config.label(), ours.config.theta)


class TestRunSweepParity:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_checkpointed_matches_independent_runs(self, runner, algorithm):
        plan = SweepPlan(dataset="gnutella", sample_size=30,
                         algorithm=algorithm, thetas=THETAS, seed=0,
                         insertion_candidate_cap=100)
        checkpointed = runner.run_sweep(plan)
        reference = [runner.run(config) for config in plan.configs()]
        assert_records_match(checkpointed, reference)

    @pytest.mark.parametrize("algorithm", ("rem", "rem-ins"))
    def test_checkpointed_matches_independent_mode_at_l2(self, runner, algorithm):
        plan = SweepPlan(dataset="enron", sample_size=30, algorithm=algorithm,
                         thetas=(0.8, 0.6), length_threshold=2, seed=0,
                         insertion_candidate_cap=100)
        checkpointed = runner.run_sweep(plan)
        independent = runner.run_sweep(replace(plan, sweep_mode="independent"))
        assert_records_match(checkpointed, independent)

    def test_records_follow_plan_theta_order(self, runner):
        plan = SweepPlan(dataset="gnutella", sample_size=30, algorithm="rem",
                         thetas=(0.5, 0.9, 0.7), seed=0)
        records = runner.run_sweep(plan)
        assert [record.config.theta for record in records] == [0.5, 0.9, 0.7]

    def test_duplicate_thetas_share_one_checkpoint(self, runner):
        plan = SweepPlan(dataset="gnutella", sample_size=30, algorithm="rem",
                         thetas=(0.7, 0.7), seed=0)
        records = runner.run_sweep(plan)
        assert len(records) == 2
        assert records[0].final_opacity == records[1].final_opacity
        assert records[0].evaluations == records[1].evaluations

    def test_lookahead_plan_parity(self, runner):
        plan = SweepPlan(dataset="gnutella", sample_size=25, algorithm="rem",
                         thetas=(0.8, 0.6), lookahead=2, seed=0)
        checkpointed = runner.run_sweep(plan)
        reference = [runner.run(config) for config in plan.configs()]
        assert_records_match(checkpointed, reference)


class TestBaselineCache:
    def test_baseline_is_cached_per_sample(self, runner):
        config = ExperimentConfig(dataset="gnutella", sample_size=30,
                                  algorithm="rem", theta=0.7, seed=0)
        first = runner.baseline_for(config)
        again = runner.baseline_for(config.with_theta(0.5))
        assert first is again

    def test_cached_baseline_changes_no_metric(self, runner):
        from repro.metrics import graph_baseline, utility_report

        config = ExperimentConfig(dataset="gnutella", sample_size=30,
                                  algorithm="rem", theta=0.7, seed=0)
        result = EdgeRemovalAnonymizer(theta=0.7, seed=0).anonymize(
            runner.graph_for(config))
        plain = utility_report(result.original_graph, result.anonymized_graph)
        cached = utility_report(result.original_graph, result.anonymized_graph,
                                baseline=graph_baseline(result.original_graph,
                                                        include_spectral=True))
        assert plain == cached


#: Random descending-able θ grids drawn from the percent scale the paper
#: sweeps; duplicates and unsorted orders are deliberately allowed.
theta_grids = st.lists(
    st.sampled_from([i / 10 for i in range(11)]), min_size=1, max_size=5)


class TestRandomGridParity:
    @settings(max_examples=15, deadline=None)
    @given(grid=theta_grids, seed=st.integers(min_value=0, max_value=3))
    def test_rem_schedule_matches_independent(self, grid, seed):
        graph = erdos_renyi_graph(16, 0.3, seed=seed)
        scheduled = EdgeRemovalAnonymizer(theta=min(grid), seed=seed)\
            .anonymize_schedule(graph, grid)
        for run in scheduled:
            independent = EdgeRemovalAnonymizer(theta=run.config.theta,
                                                seed=seed).anonymize(graph)
            assert [s.edges for s in run.steps] == \
                   [s.edges for s in independent.steps]
            assert run.final_opacity == independent.final_opacity
            assert run.evaluations == independent.evaluations
            assert run.anonymized_graph == independent.anonymized_graph
            assert run.stop_reason == independent.stop_reason

    @settings(max_examples=10, deadline=None)
    @given(grid=theta_grids, seed=st.integers(min_value=0, max_value=3))
    def test_gades_schedule_matches_independent(self, grid, seed):
        graph = erdos_renyi_graph(14, 0.3, seed=seed)
        scheduled = GadesAnonymizer(theta=min(grid), seed=seed,
                                    swap_sample_size=50)\
            .anonymize_schedule(graph, grid)
        for run in scheduled:
            independent = GadesAnonymizer(theta=run.config.theta, seed=seed,
                                          swap_sample_size=50).anonymize(graph)
            assert [s.edges for s in run.steps] == \
                   [s.edges for s in independent.steps]
            assert run.final_opacity == independent.final_opacity
            assert run.evaluations == independent.evaluations
            assert run.stop_reason == independent.stop_reason


class TestRunAllGrouping:
    def test_serial_run_all_groups_and_preserves_order(self, runner):
        configs = []
        for algorithm in ("rem", "gaded-max"):
            for theta in (0.9, 0.6):
                configs.append(ExperimentConfig(
                    dataset="gnutella", sample_size=30, algorithm=algorithm,
                    theta=theta, seed=0))
        # Interleave so grouping must re-scatter records into input order.
        interleaved = [configs[0], configs[2], configs[1], configs[3]]
        grouped = runner.run_all(interleaved)
        assert [record.config for record in grouped] == interleaved
        reference = [runner.run(config) for config in interleaved]
        for ours, theirs in zip(grouped, reference):
            for field in COMPARED_FIELDS:
                assert getattr(ours, field) == getattr(theirs, field)

    def test_independent_sweep_mode_skips_grouping(self, runner):
        configs = [ExperimentConfig(dataset="gnutella", sample_size=30,
                                    algorithm="rem", theta=theta, seed=0,
                                    sweep_mode="independent")
                   for theta in (0.8, 0.6)]
        records = runner.run_all(configs)
        reference = [runner.run(config) for config in configs]
        for ours, theirs in zip(records, reference):
            for field in COMPARED_FIELDS:
                assert getattr(ours, field) == getattr(theirs, field)
