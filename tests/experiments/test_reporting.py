"""Unit tests for plain-text reporting helpers."""

from repro.experiments.reporting import format_series, format_table, records_to_csv


class TestFormatTable:
    def test_renders_header_and_rows(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "22" in lines[3]

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        assert text.splitlines()[0].split() == ["c", "a"]
        assert "2" not in text.splitlines()[2].split()

    def test_empty_input(self):
        assert format_table([]) == "(no rows)"


class TestCsv:
    def test_round_trips_headers_and_values(self):
        rows = [{"x": 1, "y": "a"}, {"x": 2, "y": "b"}]
        text = records_to_csv(rows)
        lines = text.strip().splitlines()
        assert lines[0] == "x,y"
        assert lines[2] == "2,b"

    def test_empty_input(self):
        assert records_to_csv([]) == ""


class TestFormatSeries:
    def test_renders_labels_and_points(self):
        text = format_series({"rem la=1": [(0.9, 0.05), (0.5, 0.2)]},
                             y_label="distortion")
        assert "rem la=1" in text
        assert "theta=0.9" in text
        assert "distortion=0.2000" in text
