"""Tests for the experiments-layer grid execution (shared L_max distances)."""

import pytest

import repro.graph.distance_cache as distance_cache_module
from repro.experiments.config import SweepPlan
from repro.experiments.figures import figure6_lsweep_series, figure10_series
from repro.experiments.runner import ExperimentRunner

#: RunRecord fields compared bit-for-bit (everything except runtime).
COMPARED_FIELDS = ("success", "final_opacity", "distortion", "degree_emd",
                   "geodesic_emd", "mean_cc_difference", "steps", "evaluations")

THETAS = (0.9, 0.7, 0.5)


@pytest.fixture
def runner():
    return ExperimentRunner()


def _plan(length, algorithm="rem", dataset="gnutella", size=30, **kwargs):
    return SweepPlan(dataset=dataset, sample_size=size, algorithm=algorithm,
                     thetas=THETAS, length_threshold=length, seed=0,
                     insertion_candidate_cap=100, **kwargs)


def assert_records_match(grid_records, reference_records):
    assert len(grid_records) == len(reference_records)
    for ours, theirs in zip(grid_records, reference_records):
        assert ours.config.theta == theirs.config.theta
        for field in COMPARED_FIELDS:
            assert getattr(ours, field) == getattr(theirs, field), field


class TestRunGrid:
    def test_grid_matches_per_plan_sweeps(self, runner):
        plans = [_plan(length, algorithm)
                 for length in (1, 2) for algorithm in ("rem", "rem-ins")]
        grid = runner.run_grid(plans)
        for plan, records in zip(plans, grid):
            assert_records_match(records, runner.run_sweep(plan))

    def test_l_sweep_group_computes_distances_once(self, runner, monkeypatch):
        computes = []
        original = distance_cache_module.bounded_distance_matrix

        def counting(graph, length_bound, engine="numpy"):
            computes.append(length_bound)
            return original(graph, length_bound, engine=engine)

        monkeypatch.setattr(distance_cache_module, "bounded_distance_matrix",
                            counting)
        plans = [_plan(length) for length in (1, 2, 3)]
        runner.run_grid(plans)
        # One engine run at L_max = 3 seeds all three plans' passes.
        assert computes == [3]

    def test_multiple_samples_compute_once_each(self, runner, monkeypatch):
        computes = []
        original = distance_cache_module.bounded_distance_matrix
        monkeypatch.setattr(
            distance_cache_module, "bounded_distance_matrix",
            lambda graph, length_bound, engine="numpy":
                computes.append(length_bound) or original(graph, length_bound,
                                                          engine=engine))
        plans = [_plan(length, size=size)
                 for size in (25, 30) for length in (1, 2)]
        runner.run_grid(plans)
        assert sorted(computes) == [2, 2]

    def test_independent_plans_skip_the_shared_matrix(self, runner):
        plans = [_plan(length, sweep_mode="independent") for length in (1, 2)]
        grid = runner.run_grid(plans)
        for plan, records in zip(plans, grid):
            assert_records_match(records, runner.run_sweep(plan))

    def test_parallel_grid_matches_serial(self, runner):
        plans = [_plan(length) for length in (1, 2)]
        serial = runner.run_grid(plans)
        parallel = runner.run_grid(plans, max_workers=2)
        for ours, theirs in zip(parallel, serial):
            assert_records_match(ours, theirs)

    def test_record_lists_in_plan_order(self, runner):
        plans = [_plan(2), _plan(1)]
        grid = runner.run_grid(plans)
        assert [records[0].config.length_threshold for records in grid] == [2, 1]


class TestFigureBuildersOnGrid:
    def test_lsweep_builder_matches_independent_mode(self, runner):
        shared = figure6_lsweep_series("gnutella", lengths=(1, 2),
                                       sample_size=30, thetas=(0.8, 0.6),
                                       insertion_cap=100, runner=runner)
        independent = figure6_lsweep_series("gnutella", lengths=(1, 2),
                                            sample_size=30, thetas=(0.8, 0.6),
                                            insertion_cap=100,
                                            sweep_mode="independent",
                                            runner=runner)
        assert shared == independent

    def test_lsweep_builder_is_one_grid_job(self, runner, monkeypatch):
        calls = []
        original = ExperimentRunner.run_grid

        def spying(self, plans, max_workers=0):
            calls.append(len(list(plans)))
            return original(self, plans, max_workers)

        monkeypatch.setattr(ExperimentRunner, "run_grid", spying)
        figure6_lsweep_series("gnutella", lengths=(1, 2), sample_size=25,
                              thetas=(0.8,), insertion_cap=100, runner=runner)
        assert calls == [4]  # 2 lengths x {rem, rem-ins}, one grid job

    def test_figure10_series_shape(self, runner):
        series = figure10_series("gnutella", sample_sizes=(25, 30),
                                 lengths=(1, 2), theta=0.6, runner=runner)
        assert set(series) == {"rem L=1", "rem L=2",
                               "rem-ins L=1", "rem-ins L=2"}
        for points in series.values():
            assert [size for size, _ in points] == [25, 30]


class TestLegacyScheduleSignature:
    def test_replaced_algorithm_without_kwarg_runs_cold(self, runner, monkeypatch):
        # A registry-replaced algorithm with the pre-grid schedule signature
        # (no initial_distances) must run cold instead of crashing.
        from repro.api.registry import register_anonymizer
        from repro.core import EdgeRemovalAnonymizer

        class LegacySchedule(EdgeRemovalAnonymizer):
            def anonymize_schedule(self, graph, thetas=None, typing=None,
                                   observer=None):
                return super().anonymize_schedule(graph, thetas, typing,
                                                  observer)

        register_anonymizer(
            "rem", LegacySchedule, replace=True,
            accepts=("theta", "length_threshold", "lookahead", "seed",
                     "engine", "evaluation_mode", "scan_mode", "sweep_mode",
                     "max_steps", "prune_candidates", "max_combinations",
                     "strict"))
        try:
            grid = runner.run_grid([_plan(1), _plan(2)])
            assert all(records for records in grid)
        finally:
            register_anonymizer(
                "rem", EdgeRemovalAnonymizer, replace=True,
                accepts=("theta", "length_threshold", "lookahead", "seed",
                         "engine", "evaluation_mode", "scan_mode",
                         "sweep_mode", "max_steps", "prune_candidates",
                         "max_combinations", "strict"))


class TestMixedSweepModes:
    def test_parallel_grid_honours_per_plan_sweep_mode(self, runner):
        plans = [_plan(1), _plan(1, algorithm="rem-ins",
                                 sweep_mode="independent")]
        serial = runner.run_grid(plans)
        parallel = runner.run_grid(plans, max_workers=2)
        for ours, theirs in zip(parallel, serial):
            assert_records_match(ours, theirs)
        assert [records[0].config.sweep_mode for records in parallel] == \
               ["checkpointed", "independent"]
