"""Unit tests for the experiment runner."""

import pytest

from repro.baselines import GadedMaxAnonymizer, GadedRandAnonymizer, GadesAnonymizer
from repro.core import EdgeRemovalAnonymizer, EdgeRemovalInsertionAnonymizer
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner, request_for


def _config(**overrides):
    base = dict(dataset="gnutella", sample_size=40, algorithm="rem", theta=0.6, seed=0)
    base.update(overrides)
    return ExperimentConfig(**base)


class TestRequestFor:
    def test_mirrors_the_configuration(self):
        config = _config(algorithm="rem-ins", theta=0.4, length_threshold=2,
                         lookahead=2, insertion_candidate_cap=50, max_steps=7)
        request = request_for(config)
        assert request.algorithm == "rem-ins"
        assert request.dataset == "gnutella"
        assert request.sample_size == 40
        assert request.theta == 0.4
        assert request.length_threshold == 2
        assert request.lookahead == 2
        assert request.insertion_candidate_cap == 50
        assert request.max_steps == 7
        assert request.include_utility  # records need the utility metrics

    @pytest.mark.parametrize("name,cls", [
        ("rem", EdgeRemovalAnonymizer),
        ("rem-ins", EdgeRemovalInsertionAnonymizer),
        ("gaded-rand", GadedRandAnonymizer),
        ("gaded-max", GadedMaxAnonymizer),
        ("gades", GadesAnonymizer),
    ])
    def test_runner_resolves_each_algorithm_through_the_registry(self, name, cls):
        # The registry (not an if/elif chain) backs every runner execution.
        from repro.api.registry import create_anonymizer

        config = _config(algorithm=name)
        assert isinstance(
            create_anonymizer(name, **{key: value
                                       for key, value in request_for(config)
                                       .algorithm_params().items()}), cls)


class TestExperimentRunner:
    def test_run_produces_complete_record(self):
        runner = ExperimentRunner()
        record = runner.run(_config())
        assert record.success
        assert 0.0 <= record.final_opacity <= 0.6
        assert record.distortion >= 0.0
        assert record.runtime_seconds >= 0.0
        payload = record.as_dict()
        assert payload["dataset"] == "gnutella"
        assert payload["L"] == 1

    def test_graph_cache_reuses_same_sample(self):
        runner = ExperimentRunner()
        first = runner.graph_for(_config(theta=0.9))
        second = runner.graph_for(_config(theta=0.3))
        assert first is second

    def test_different_seeds_load_different_graphs(self):
        runner = ExperimentRunner()
        first = runner.graph_for(_config(seed=0))
        second = runner.graph_for(_config(seed=1))
        assert first is not second

    def test_baselines_restricted_to_l1(self):
        runner = ExperimentRunner()
        with pytest.raises(ConfigurationError):
            runner.run(_config(algorithm="gaded-max", length_threshold=2))

    def test_run_all_preserves_order(self):
        runner = ExperimentRunner()
        configs = [_config(theta=theta) for theta in (0.9, 0.7)]
        records = runner.run_all(configs)
        assert [record.config.theta for record in records] == [0.9, 0.7]

    def test_run_all_parallel_matches_serial(self):
        runner = ExperimentRunner()
        configs = [_config(sample_size=30, theta=theta) for theta in (0.8, 0.6)]
        serial = runner.run_all(configs)
        parallel = runner.run_all(configs, max_workers=2)
        assert [r.config for r in parallel] == [r.config for r in serial]
        for left, right in zip(serial, parallel):
            assert left.success == right.success
            assert left.final_opacity == pytest.approx(right.final_opacity)
            assert left.distortion == pytest.approx(right.distortion)
            assert left.degree_emd == pytest.approx(right.degree_emd)
