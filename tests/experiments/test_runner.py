"""Unit tests for the experiment runner."""

import pytest

from repro.baselines import GadedMaxAnonymizer, GadedRandAnonymizer, GadesAnonymizer
from repro.core import EdgeRemovalAnonymizer, EdgeRemovalInsertionAnonymizer
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner, make_algorithm


def _config(**overrides):
    base = dict(dataset="gnutella", sample_size=40, algorithm="rem", theta=0.6, seed=0)
    base.update(overrides)
    return ExperimentConfig(**base)


class TestMakeAlgorithm:
    @pytest.mark.parametrize("name,cls", [
        ("rem", EdgeRemovalAnonymizer),
        ("rem-ins", EdgeRemovalInsertionAnonymizer),
        ("gaded-rand", GadedRandAnonymizer),
        ("gaded-max", GadedMaxAnonymizer),
        ("gades", GadesAnonymizer),
    ])
    def test_instantiates_correct_class(self, name, cls):
        assert isinstance(make_algorithm(_config(algorithm=name)), cls)

    def test_parameters_are_forwarded(self):
        algorithm = make_algorithm(_config(theta=0.4, length_threshold=2, lookahead=2))
        assert algorithm.config.theta == 0.4
        assert algorithm.config.length_threshold == 2
        assert algorithm.config.lookahead == 2


class TestExperimentRunner:
    def test_run_produces_complete_record(self):
        runner = ExperimentRunner()
        record = runner.run(_config())
        assert record.success
        assert 0.0 <= record.final_opacity <= 0.6
        assert record.distortion >= 0.0
        assert record.runtime_seconds >= 0.0
        payload = record.as_dict()
        assert payload["dataset"] == "gnutella"
        assert payload["L"] == 1

    def test_graph_cache_reuses_same_sample(self):
        runner = ExperimentRunner()
        first = runner.graph_for(_config(theta=0.9))
        second = runner.graph_for(_config(theta=0.3))
        assert first is second

    def test_different_seeds_load_different_graphs(self):
        runner = ExperimentRunner()
        first = runner.graph_for(_config(seed=0))
        second = runner.graph_for(_config(seed=1))
        assert first is not second

    def test_baselines_restricted_to_l1(self):
        runner = ExperimentRunner()
        with pytest.raises(ConfigurationError):
            runner.run(_config(algorithm="gaded-max", length_threshold=2))

    def test_run_all_preserves_order(self):
        runner = ExperimentRunner()
        configs = [_config(theta=theta) for theta in (0.9, 0.7)]
        records = runner.run_all(configs)
        assert [record.config.theta for record in records] == [0.9, 0.7]
