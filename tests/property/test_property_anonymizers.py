"""Property-based tests for the anonymization heuristics."""

from hypothesis import given, settings

from repro.core.edge_removal import EdgeRemovalAnonymizer
from repro.core.edge_removal_insertion import EdgeRemovalInsertionAnonymizer
from repro.core.opacity import OpacityComputer
from repro.core.pair_types import DegreePairTyping
from tests.property.strategies import graphs, length_bounds, thetas


class TestEdgeRemovalProperties:
    @given(graphs(max_vertices=10), length_bounds, thetas)
    @settings(max_examples=25, deadline=None)
    def test_removal_always_reaches_any_threshold(self, graph, length_bound, theta):
        # Pure edge removal can always succeed: the empty graph has opacity 0.
        result = EdgeRemovalAnonymizer(length_threshold=length_bound, theta=theta,
                                       seed=0).anonymize(graph)
        assert result.success
        assert result.final_opacity <= theta + 1e-12

    @given(graphs(max_vertices=10), length_bounds, thetas)
    @settings(max_examples=25, deadline=None)
    def test_reported_opacity_matches_recomputation(self, graph, length_bound, theta):
        typing = DegreePairTyping(graph)
        result = EdgeRemovalAnonymizer(length_threshold=length_bound, theta=theta,
                                       seed=0).anonymize(graph)
        recomputed = OpacityComputer(typing, length_bound).max_opacity(result.anonymized_graph)
        assert abs(recomputed - result.final_opacity) < 1e-12

    @given(graphs(max_vertices=10), length_bounds, thetas)
    @settings(max_examples=25, deadline=None)
    def test_removed_edges_and_distortion_are_consistent(self, graph, length_bound, theta):
        result = EdgeRemovalAnonymizer(length_threshold=length_bound, theta=theta,
                                       seed=0).anonymize(graph)
        assert result.anonymized_graph.edge_set() == graph.edge_set() - result.removed_edges
        assert not result.inserted_edges
        if graph.num_edges:
            assert result.distortion == len(result.removed_edges) / graph.num_edges

    @given(graphs(max_vertices=10), thetas)
    @settings(max_examples=25, deadline=None)
    def test_input_graph_is_never_mutated(self, graph, theta):
        snapshot = graph.edge_set()
        EdgeRemovalAnonymizer(length_threshold=1, theta=theta, seed=0).anonymize(graph)
        assert graph.edge_set() == snapshot


class TestEdgeRemovalInsertionProperties:
    @given(graphs(max_vertices=9), thetas)
    @settings(max_examples=20, deadline=None)
    def test_removal_and_insertion_sets_are_disjoint(self, graph, theta):
        result = EdgeRemovalInsertionAnonymizer(length_threshold=1, theta=theta,
                                                seed=0).anonymize(graph)
        assert not (result.removed_edges & result.inserted_edges)
        original = graph.edge_set()
        assert result.removed_edges <= original
        assert not (result.inserted_edges & original)

    @given(graphs(max_vertices=9), thetas)
    @settings(max_examples=20, deadline=None)
    def test_edge_set_algebra_matches_recorded_operations(self, graph, theta):
        result = EdgeRemovalInsertionAnonymizer(length_threshold=1, theta=theta,
                                                seed=0).anonymize(graph)
        expected = (graph.edge_set() - result.removed_edges) | result.inserted_edges
        assert result.anonymized_graph.edge_set() == expected

    @given(graphs(max_vertices=9), thetas)
    @settings(max_examples=20, deadline=None)
    def test_success_implies_threshold_met(self, graph, theta):
        result = EdgeRemovalInsertionAnonymizer(length_threshold=1, theta=theta,
                                                seed=0).anonymize(graph)
        if result.success:
            assert result.final_opacity <= theta + 1e-12
        # Whatever the outcome, the run terminates and reports a sane value.
        assert 0.0 <= result.final_opacity <= 1.0
