"""Differential property tests: shm-plane grids vs in-process execution.

Bit-identity between the shared-memory data plane and ``max_workers=0``
is the tentpole's non-negotiable contract — workers threshold the same
L_max matrix the serial path computes, so every response field except
runtime must agree exactly, whatever the grid shape.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import AnonymizationRequest, GridRequest, run_grid
from tests.property.strategies import graphs

PARITY_FIELDS = ("success", "final_opacity", "distortion", "num_steps",
                 "evaluations", "num_vertices", "removed_edges",
                 "inserted_edges", "anonymized_edges", "stop_reason", "metrics")


@st.composite
def grid_requests(draw):
    """Small random grids over an explicit-edge sample (no disk, no seed axis)."""
    graph = draw(graphs(min_vertices=4, max_vertices=10))
    if graph.num_edges == 0:
        graph.add_edge(0, 1)
    base = AnonymizationRequest(edges=tuple(graph.edge_list()),
                                num_vertices=graph.num_vertices,
                                include_utility=draw(st.booleans()))
    algorithms = draw(st.sampled_from([("rem",), ("rem", "rem-ins")]))
    length_thresholds = draw(st.sampled_from([(1,), (1, 2), (2, 3)]))
    thetas = draw(st.sampled_from([(0.8, 0.4), (0.9, 0.6, 0.3)]))
    return GridRequest.from_axes(base, algorithms=algorithms,
                                 length_thresholds=length_thresholds,
                                 thetas=thetas)


class TestShmPlaneParity:
    @given(grid_requests())
    @settings(max_examples=5, deadline=None)
    def test_shm_grid_bit_identical_to_in_process(self, grid):
        serial = run_grid(grid, max_workers=0)
        pooled = run_grid(grid, max_workers=2)
        assert pooled.num_sample_loads == serial.num_sample_loads
        assert pooled.num_distance_computes == serial.num_distance_computes
        for ours, theirs in zip(pooled.responses, serial.responses):
            for field in PARITY_FIELDS:
                assert getattr(ours, field) == getattr(theirs, field), field
