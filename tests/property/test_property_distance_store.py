"""Property-based differential tests: TiledStore ≡ DenseStore.

The tiled tier's whole claim is *bit-identical* distances to the dense
plane — same values, same dtype, same sentinel — under every tile size and
cache budget, including budgets small enough to force evictions and
temp-file spills on graphs of a dozen vertices.  These tests drive both
stores through the same operations and compare exact arrays.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.distance import available_engines, bounded_distance_matrix
from repro.graph.distance_store import CSRAdjacency, DenseStore, TiledStore
from tests.property.strategies import graphs, length_bounds

tile_rows_values = st.integers(min_value=1, max_value=6)
#: Budgets from "one tile fits" to "everything fits"; the low end forces
#: the LRU to evict and spill even on the tiny strategy graphs.
budget_values = st.sampled_from([64, 256, 1 << 20])


class TestTiledDenseEquivalence:
    @given(graphs(), length_bounds, tile_rows_values, budget_values)
    @settings(max_examples=40, deadline=None)
    def test_full_matrix_is_bit_identical(self, graph, length_bound,
                                          tile_rows, budget):
        dense = bounded_distance_matrix(graph, length_bound)
        tiled = TiledStore(graph, length_bound, tile_rows=tile_rows,
                           budget_bytes=budget)
        out = tiled.to_array()
        assert out.dtype == dense.dtype
        np.testing.assert_array_equal(out, dense)

    @given(graphs(), length_bounds, tile_rows_values, st.data())
    @settings(max_examples=40, deadline=None)
    def test_row_blocks_match_under_spill_pressure(self, graph, length_bound,
                                                   tile_rows, data):
        n = graph.num_vertices
        dense = bounded_distance_matrix(graph, length_bound)
        tiled = TiledStore(graph, length_bound, tile_rows=tile_rows,
                           budget_bytes=64)
        block = data.draw(st.lists(st.integers(min_value=0, max_value=n - 1),
                                   min_size=1, max_size=n))
        block = np.asarray(block, dtype=np.int64)
        np.testing.assert_array_equal(tiled.rows(block), dense[block])
        # Reads interleaved with evictions never change later reads.
        np.testing.assert_array_equal(tiled.to_array(), dense)

    @given(graphs(min_vertices=3), length_bounds, tile_rows_values)
    @settings(max_examples=40, deadline=None)
    def test_csr_snapshot_agrees_with_every_engine(self, graph, length_bound,
                                                   tile_rows):
        csr = CSRAdjacency.from_graph(graph)
        tiled = TiledStore(None, length_bound, csr=csr, tile_rows=tile_rows)
        out = tiled.to_array()
        for engine in available_engines():
            reference = bounded_distance_matrix(graph, length_bound,
                                                engine=engine)
            np.testing.assert_array_equal(out, reference, err_msg=engine)

    @given(graphs(), st.integers(min_value=2, max_value=4), tile_rows_values,
           budget_values)
    @settings(max_examples=40, deadline=None)
    def test_thresholded_children_match_dense_thresholding(
            self, graph, l_max, tile_rows, budget):
        base = TiledStore(graph, l_max, tile_rows=tile_rows,
                          budget_bytes=budget)
        for length in range(1, l_max + 1):
            reference = bounded_distance_matrix(graph, length)
            child = base.thresholded(length)
            out = child.to_array()
            assert out.dtype == reference.dtype
            np.testing.assert_array_equal(out, reference)

    @given(graphs(min_vertices=3), length_bounds, tile_rows_values,
           budget_values, st.data())
    @settings(max_examples=40, deadline=None)
    def test_write_rows_keeps_both_stores_identical(self, graph, length_bound,
                                                    tile_rows, budget, data):
        n = graph.num_vertices
        matrix = bounded_distance_matrix(graph, length_bound)
        dense = DenseStore(matrix.copy(), length_bound)
        tiled = TiledStore(graph, length_bound, tile_rows=tile_rows,
                           budget_bytes=budget)
        for _ in range(data.draw(st.integers(min_value=1, max_value=3))):
            rows = data.draw(st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=1, max_size=3, unique=True))
            rows = np.asarray(rows, dtype=np.int64)
            new_rows = dense.rows(rows)
            # Flip some cells to other in-range distances, then restore the
            # contract the callers guarantee: the slab is symmetric-
            # consistent on its rows × rows overlap (it carries distances).
            value = data.draw(st.integers(min_value=1, max_value=length_bound))
            stride = data.draw(st.integers(min_value=1, max_value=3))
            new_rows[:, ::stride] = value
            overlap = new_rows[:, rows]
            new_rows[:, rows] = np.minimum(overlap, overlap.T)
            dense.write_rows(rows, new_rows.copy())
            tiled.write_rows(rows, new_rows.copy())
        np.testing.assert_array_equal(tiled.to_array(), dense.to_array())
