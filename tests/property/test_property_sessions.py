"""Property-based differential tests for the evaluation-session layer.

The incremental sessions promise *bit-identical* results to the stateless
from-scratch evaluator: same ``Fraction`` opacities, same ``types_at_max``,
same per-type counts, and — for whole anonymization runs — the same step
sequence under a fixed seed.  These tests drive random graphs through random
edit sequences across every distance engine and check exactly that.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    GadedMaxAnonymizer,
    GadedRandAnonymizer,
    GadesAnonymizer,
)
from repro.core import (
    DegreePairTyping,
    EdgeRemovalAnonymizer,
    EdgeRemovalInsertionAnonymizer,
    OpacityComputer,
    OpacitySession,
)
from repro.graph.distance import available_engines, bounded_distance_matrix
from repro.graph.distance_delta import DistanceSession
from repro.graph.graph import Graph
from tests.property.strategies import graphs, length_bounds, thetas

engines = st.sampled_from(sorted(available_engines()))
fallback_fractions = st.sampled_from([0.0, 0.5, 1.0])


@st.composite
def edit_scripts(draw, max_edits: int = 8):
    """A graph plus a feasible sequence of alternating random edits.

    Each entry is ``("remove" | "insert", edge)``; feasibility (edges exist /
    are absent at that point) is guaranteed by replaying the script while it
    is generated.
    """
    graph = draw(graphs(max_vertices=10))
    working = graph.copy()
    script = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_edits))):
        edges = working.edge_list()
        non_edges = sorted(working.non_edges())
        choices = []
        if edges:
            choices.append("remove")
        if non_edges:
            choices.append("insert")
        if not choices:
            break
        kind = draw(st.sampled_from(choices))
        pool = edges if kind == "remove" else non_edges
        edge = pool[draw(st.integers(min_value=0, max_value=len(pool) - 1))]
        if kind == "remove":
            working.remove_edge(*edge)
        else:
            working.add_edge(*edge)
        script.append((kind, edge))
    return graph, script


class TestDistanceSessionProperties:
    @given(edit_scripts(), length_bounds, engines, fallback_fractions)
    @settings(max_examples=40, deadline=None)
    def test_applied_edits_track_scratch_matrices(self, script_case, length,
                                                  engine, fallback):
        graph, script = script_case
        session = DistanceSession(graph, length, engine=engine,
                                  fallback_row_fraction=fallback)
        for kind, edge in script:
            if kind == "remove":
                session.apply(removals=[edge])
            else:
                session.apply(insertions=[edge])
            expected = bounded_distance_matrix(graph, length, engine=engine)
            assert np.array_equal(session.distances, expected)

    @given(edit_scripts(max_edits=4), length_bounds, fallback_fractions)
    @settings(max_examples=40, deadline=None)
    def test_previews_match_scratch_and_leave_no_trace(self, script_case,
                                                       length, fallback):
        graph, script = script_case
        session = DistanceSession(graph, length, fallback_row_fraction=fallback)
        for kind, edge in script:
            before = graph.edge_set()
            matrix_before = session.distances.copy()
            delta = session.preview(
                removals=[edge] if kind == "remove" else (),
                insertions=[edge] if kind == "insert" else ())
            assert graph.edge_set() == before
            assert np.array_equal(session.distances, matrix_before)
            if delta.from_scratch:
                materialized = delta.new_rows
            else:
                materialized = session.distances.copy()
                if delta.rows.size:
                    materialized[delta.rows, :] = delta.new_rows
                    materialized[:, delta.rows] = delta.new_rows.T
            if kind == "remove":
                graph.remove_edge(*edge)
            else:
                graph.add_edge(*edge)
            assert np.array_equal(materialized, bounded_distance_matrix(graph, length))
            session.refresh()


class TestOpacitySessionProperties:
    @given(edit_scripts(), length_bounds, engines)
    @settings(max_examples=40, deadline=None)
    def test_session_state_matches_from_scratch_evaluation(self, script_case,
                                                           length, engine):
        graph, script = script_case
        typing = DegreePairTyping(graph)
        computer = OpacityComputer(typing, length, engine=engine)
        session = OpacitySession(computer, graph, mode="incremental")
        for kind, edge in script:
            session.apply_edit(
                removals=[edge] if kind == "remove" else (),
                insertions=[edge] if kind == "insert" else ())
            expected = computer.evaluate(graph)
            observed = session.current()
            assert observed.max_fraction == expected.max_fraction
            assert observed.types_at_max == expected.types_at_max
            assert dict(observed.per_type) == dict(expected.per_type)

    @given(edit_scripts(max_edits=5), length_bounds)
    @settings(max_examples=40, deadline=None)
    def test_tentative_evaluations_match_scratch_mode(self, script_case, length):
        graph, script = script_case
        typing = DegreePairTyping(graph)
        computer = OpacityComputer(typing, length)
        incremental = OpacitySession(computer, graph.copy(), mode="incremental")
        scratch = OpacitySession(computer, graph.copy(), mode="scratch")
        for kind, edge in script:
            removals = [edge] if kind == "remove" else ()
            insertions = [edge] if kind == "insert" else ()
            assert incremental.evaluate_edit(removals, insertions) == \
                scratch.evaluate_edit(removals, insertions)
            incremental.apply_edit(removals, insertions)
            scratch.apply_edit(removals, insertions)


class TestEndToEndModeEquivalence:
    @given(graphs(max_vertices=9), length_bounds, thetas,
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_edge_removal_runs_identically(self, graph, length, theta, seed):
        self._assert_identical(
            EdgeRemovalAnonymizer,
            dict(length_threshold=length, theta=theta, seed=seed), graph)

    @given(graphs(max_vertices=8), thetas, st.integers(min_value=0, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_edge_removal_insertion_runs_identically(self, graph, theta, seed):
        self._assert_identical(
            EdgeRemovalInsertionAnonymizer,
            dict(length_threshold=2, theta=theta, seed=seed), graph)

    @given(graphs(max_vertices=8), thetas, st.integers(min_value=0, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_gaded_max_runs_identically(self, graph, theta, seed):
        self._assert_identical(GadedMaxAnonymizer,
                               dict(theta=theta, seed=seed), graph)

    @given(graphs(max_vertices=8), thetas, st.integers(min_value=0, max_value=3))
    @settings(max_examples=10, deadline=None)
    def test_gaded_rand_runs_identically(self, graph, theta, seed):
        self._assert_identical(GadedRandAnonymizer,
                               dict(theta=theta, seed=seed), graph)

    @given(graphs(max_vertices=8), st.integers(min_value=0, max_value=3))
    @settings(max_examples=10, deadline=None)
    def test_gades_runs_identically(self, graph, seed):
        self._assert_identical(
            GadesAnonymizer,
            dict(theta=0.5, seed=seed, max_steps=3, swap_sample_size=50), graph)

    @staticmethod
    def _assert_identical(algorithm, params, graph):
        reference = algorithm(evaluation_mode="scratch",
                              scan_mode="per_candidate", **params).anonymize(graph)
        for evaluation_mode, scan_mode in (("incremental", "batched"),
                                           ("incremental", "per_candidate")):
            observed = algorithm(evaluation_mode=evaluation_mode,
                                 scan_mode=scan_mode, **params).anonymize(graph)
            assert [(step.operation, step.edges) for step in observed.steps] == \
                   [(step.operation, step.edges) for step in reference.steps]
            assert observed.final_opacity == reference.final_opacity
            assert observed.evaluations == reference.evaluations
            assert observed.distortion == reference.distortion
            assert observed.anonymized_graph == reference.anonymized_graph


@st.composite
def candidate_scans(draw, max_candidates: int = 12):
    """A graph plus a list of independent single-candidate edits.

    Each candidate is ``(removals, insertions)`` evaluated against the *same*
    graph state — exactly the scans the greedy algorithms batch.  The list is
    drawn homogeneous (all single-edge removals, all single-edge insertions)
    or mixed (multi-edge swaps included) to exercise both the stacked and
    the sequential-fallback batch paths.
    """
    graph = draw(graphs(max_vertices=10))
    edges = graph.edge_list()
    non_edges = sorted(graph.non_edges())
    shape = draw(st.sampled_from(["removals", "insertions", "mixed"]))
    count = draw(st.integers(min_value=0, max_value=max_candidates))
    candidates = []
    for _ in range(count):
        if shape == "removals" and edges:
            pool = draw(st.integers(min_value=0, max_value=len(edges) - 1))
            candidates.append(((edges[pool],), ()))
        elif shape == "insertions" and non_edges:
            pool = draw(st.integers(min_value=0, max_value=len(non_edges) - 1))
            candidates.append(((), (non_edges[pool],)))
        elif shape == "mixed" and len(edges) >= 2 and len(non_edges) >= 2:
            removal_pair = draw(st.permutations(range(len(edges))))[:2]
            insertion_pair = draw(st.permutations(range(len(non_edges))))[:2]
            candidates.append((tuple(edges[p] for p in removal_pair),
                               tuple(non_edges[p] for p in insertion_pair)))
    return graph, candidates


class TestEvaluateEditsProperties:
    @given(candidate_scans(), length_bounds, fallback_fractions)
    @settings(max_examples=60, deadline=None)
    def test_batch_matches_per_candidate_exactly(self, scan_case, length,
                                                 fallback):
        graph, candidates = scan_case
        computer = OpacityComputer(DegreePairTyping(graph), length)
        session = OpacitySession(computer, graph, mode="incremental",
                                 fallback_row_fraction=fallback)
        expected = [session.evaluate_edit(removals, insertions)
                    for removals, insertions in candidates]
        observed = session.evaluate_edits(candidates)
        assert observed == expected

    @given(candidate_scans(), length_bounds)
    @settings(max_examples=40, deadline=None)
    def test_batch_matches_scratch_mode(self, scan_case, length):
        graph, candidates = scan_case
        computer = OpacityComputer(DegreePairTyping(graph), length)
        incremental = OpacitySession(computer, graph.copy(), mode="incremental")
        scratch = OpacitySession(computer, graph.copy(), mode="scratch")
        assert incremental.evaluate_edits(candidates) == \
            scratch.evaluate_edits(candidates)

    @given(candidate_scans(max_candidates=6), length_bounds, engines,
           fallback_fractions)
    @settings(max_examples=30, deadline=None)
    def test_preview_batch_matches_sequential_previews(self, scan_case, length,
                                                       engine, fallback):
        graph, candidates = scan_case
        single_removals = [removals[0] for removals, insertions in candidates
                           if len(removals) == 1 and not insertions]
        single_insertions = [insertions[0] for removals, insertions in candidates
                             if len(insertions) == 1 and not removals]
        sequential = DistanceSession(graph.copy(), length, engine=engine,
                                     fallback_row_fraction=fallback)
        expected = [sequential.preview(removals=[edge])
                    for edge in single_removals]
        expected += [sequential.preview(insertions=[edge])
                     for edge in single_insertions]
        batch = DistanceSession(graph, length, engine=engine,
                                fallback_row_fraction=fallback)
        observed = batch.preview_batch(removals=single_removals,
                                       insertions=single_insertions)
        assert len(observed) == len(expected)
        for got, want in zip(observed, expected):
            assert got.removals == want.removals
            assert got.insertions == want.insertions
            assert got.from_scratch == want.from_scratch
            assert np.array_equal(got.rows, want.rows)
            assert np.array_equal(got.new_rows, want.new_rows)
