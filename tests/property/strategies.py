"""Hypothesis strategies shared by the property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.graph.graph import Graph


@st.composite
def graphs(draw, min_vertices: int = 2, max_vertices: int = 12,
           edge_probability: float = 0.35) -> Graph:
    """Random simple graphs with a bounded number of vertices.

    Every possible edge is included independently, so the strategy covers
    empty graphs, sparse graphs, and (rarely) near-complete graphs.
    """
    num_vertices = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    edges = []
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            if draw(st.booleans() if edge_probability == 0.5
                    else st.floats(min_value=0.0, max_value=1.0)) < edge_probability:
                edges.append((u, v))
    return Graph(num_vertices, edges=edges)


@st.composite
def graphs_with_edge(draw, **kwargs):
    """Random graphs guaranteed to contain at least one edge, plus one of its edges."""
    graph = draw(graphs(**kwargs))
    if graph.num_edges == 0:
        graph.add_edge(0, 1)
    edges = graph.edge_list()
    index = draw(st.integers(min_value=0, max_value=len(edges) - 1))
    return graph, edges[index]


length_bounds = st.integers(min_value=1, max_value=4)
thetas = st.sampled_from([0.0, 0.25, 0.5, 0.75, 0.9, 1.0])
