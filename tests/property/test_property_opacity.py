"""Property-based tests for the L-opacity computation."""

from fractions import Fraction

from hypothesis import given, settings

from repro.core.opacity import OpacityComputer
from repro.core.pair_types import DegreePairTyping
from tests.property.strategies import graphs, graphs_with_edge, length_bounds


class TestOpacityInvariants:
    @given(graphs(), length_bounds)
    @settings(max_examples=50, deadline=None)
    def test_opacities_are_probabilities(self, graph, length_bound):
        result = OpacityComputer(DegreePairTyping(graph), length_bound).evaluate(graph)
        assert 0.0 <= result.max_opacity <= 1.0
        for entry in result.per_type.values():
            assert 0 <= entry.within_threshold <= entry.total_pairs
            assert Fraction(0) <= entry.fraction <= Fraction(1)

    @given(graphs(), length_bounds)
    @settings(max_examples=50, deadline=None)
    def test_max_is_attained_and_counted(self, graph, length_bound):
        result = OpacityComputer(DegreePairTyping(graph), length_bound).evaluate(graph)
        if result.per_type:
            fractions = [entry.fraction for entry in result.per_type.values()]
            assert max(fractions) == result.max_fraction
            assert result.types_at_max == sum(
                1 for fraction in fractions if fraction == result.max_fraction)

    @given(graphs(), length_bounds)
    @settings(max_examples=40, deadline=None)
    def test_opacity_monotone_in_length_threshold(self, graph, length_bound):
        typing = DegreePairTyping(graph)
        tight = OpacityComputer(typing, length_bound).evaluate(graph)
        loose = OpacityComputer(typing, length_bound + 1).evaluate(graph)
        assert loose.max_fraction >= tight.max_fraction
        for key, entry in tight.per_type.items():
            assert loose.per_type[key].within_threshold >= entry.within_threshold

    @given(graphs_with_edge(), length_bounds)
    @settings(max_examples=40, deadline=None)
    def test_edge_removal_never_increases_any_opacity(self, graph_and_edge, length_bound):
        graph, edge = graph_and_edge
        typing = DegreePairTyping(graph)
        computer = OpacityComputer(typing, length_bound)
        before = computer.evaluate(graph)
        graph.remove_edge(*edge)
        after = computer.evaluate(graph)
        assert after.max_fraction <= before.max_fraction
        for key, entry in after.per_type.items():
            assert entry.within_threshold <= before.per_type[key].within_threshold

    @given(graphs(), length_bounds)
    @settings(max_examples=40, deadline=None)
    def test_within_counts_bounded_by_total_pairs(self, graph, length_bound):
        typing = DegreePairTyping(graph)
        result = OpacityComputer(typing, length_bound).evaluate(graph)
        n = graph.num_vertices
        total_within = sum(entry.within_threshold for entry in result.per_type.values())
        assert total_within <= n * (n - 1) // 2
