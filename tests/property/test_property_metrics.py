"""Property-based tests for the utility metrics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.clustering import mean_clustering_difference
from repro.metrics.distortion import edge_edit_distance, edit_distance_ratio
from repro.metrics.distributions import degree_distribution, geodesic_distribution
from repro.metrics.emd import emd_between_histograms
from tests.property.strategies import graphs, graphs_with_edge

histograms = st.dictionaries(st.integers(min_value=0, max_value=15),
                             st.floats(min_value=0.0, max_value=10.0,
                                       allow_nan=False, allow_infinity=False),
                             max_size=8)


class TestDistortionProperties:
    @given(graphs())
    @settings(max_examples=50, deadline=None)
    def test_self_distance_is_zero(self, graph):
        assert edge_edit_distance(graph, graph.copy()) == 0

    @given(graphs_with_edge())
    @settings(max_examples=50, deadline=None)
    def test_single_edit_costs_one(self, graph_and_edge):
        graph, edge = graph_and_edge
        modified = graph.copy()
        modified.remove_edge(*edge)
        assert edge_edit_distance(graph, modified) == 1
        assert edit_distance_ratio(graph, modified) == 1 / graph.num_edges

    @given(graphs(), graphs())
    @settings(max_examples=40, deadline=None)
    def test_symmetry_of_edit_distance(self, first, second):
        if first.num_vertices != second.num_vertices:
            return
        assert edge_edit_distance(first, second) == edge_edit_distance(second, first)


class TestEmdProperties:
    @given(histograms)
    @settings(max_examples=60, deadline=None)
    def test_identity(self, histogram):
        assert emd_between_histograms(histogram, dict(histogram)) <= 1e-9

    @given(histograms, histograms)
    @settings(max_examples=60, deadline=None)
    def test_symmetry_and_nonnegativity(self, first, second):
        forward = emd_between_histograms(first, second)
        backward = emd_between_histograms(second, first)
        assert forward >= 0.0
        assert abs(forward - backward) < 1e-9

    @given(histograms, st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_translation_invariance(self, histogram, shift):
        shifted = {key + shift: value for key, value in histogram.items()}
        other = {key + shift + 1: value for key, value in histogram.items()}
        base = {key + 1: value for key, value in histogram.items()}
        assert abs(emd_between_histograms(histogram, base)
                   - emd_between_histograms(shifted, other)) < 1e-9


class TestGraphMetricProperties:
    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_distributions_sum_to_one(self, graph):
        degree = degree_distribution(graph)
        if graph.num_vertices:
            assert abs(sum(degree.values()) - 1.0) < 1e-9
        geodesic = geodesic_distribution(graph)
        if graph.num_vertices >= 2:
            assert abs(sum(geodesic.values()) - 1.0) < 1e-9

    @given(graphs_with_edge())
    @settings(max_examples=30, deadline=None)
    def test_clustering_difference_bounded(self, graph_and_edge):
        graph, edge = graph_and_edge
        modified = graph.copy()
        modified.remove_edge(*edge)
        value = mean_clustering_difference(graph, modified)
        assert 0.0 <= value <= 1.0
