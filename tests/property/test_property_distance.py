"""Property-based tests for the distance engines."""

import numpy as np
from hypothesis import given, settings

from repro.graph.distance import available_engines, bounded_distance_matrix
from repro.graph.matrices import unreachable_value
from tests.property.strategies import graphs, graphs_with_edge, length_bounds


class TestEngineEquivalence:
    @given(graphs(), length_bounds)
    @settings(max_examples=40, deadline=None)
    def test_all_engines_produce_identical_matrices(self, graph, length_bound):
        reference = bounded_distance_matrix(graph, length_bound, engine="floyd-warshall")
        for engine in available_engines():
            candidate = bounded_distance_matrix(graph, length_bound, engine=engine)
            assert np.array_equal(candidate, reference), engine


class TestDistanceMatrixProperties:
    @given(graphs(), length_bounds)
    @settings(max_examples=40, deadline=None)
    def test_symmetry_and_zero_diagonal(self, graph, length_bound):
        distances = bounded_distance_matrix(graph, length_bound)
        assert np.array_equal(distances, distances.T)
        assert (np.diag(distances) == 0).all()

    @given(graphs(), length_bounds)
    @settings(max_examples=40, deadline=None)
    def test_values_are_valid_distances(self, graph, length_bound):
        distances = bounded_distance_matrix(graph, length_bound)
        off_diagonal = distances[~np.eye(graph.num_vertices, dtype=bool)]
        finite = off_diagonal[off_diagonal != unreachable_value(distances.dtype)]
        assert ((finite >= 1) & (finite <= length_bound)).all()

    @given(graphs(), length_bounds)
    @settings(max_examples=40, deadline=None)
    def test_distance_one_iff_edge(self, graph, length_bound):
        distances = bounded_distance_matrix(graph, length_bound)
        for u, v in graph.edges():
            assert distances[u, v] == 1
        ones = np.argwhere(distances == 1)
        for u, v in ones:
            assert graph.has_edge(int(u), int(v))

    @given(graphs_with_edge(), length_bounds)
    @settings(max_examples=40, deadline=None)
    def test_edge_removal_never_shortens_distances(self, graph_and_edge, length_bound):
        graph, edge = graph_and_edge
        before = bounded_distance_matrix(graph, length_bound).astype(np.int64)
        graph.remove_edge(*edge)
        after = bounded_distance_matrix(graph, length_bound).astype(np.int64)
        # UNREACHABLE is the largest representable value, so >= holds pointwise.
        assert (after >= before).all()

    @given(graphs(), length_bounds)
    @settings(max_examples=30, deadline=None)
    def test_larger_bound_reveals_no_shorter_distances(self, graph, length_bound):
        tight_raw = bounded_distance_matrix(graph, length_bound)
        loose_raw = bounded_distance_matrix(graph, length_bound + 1)
        tight_sentinel = unreachable_value(tight_raw.dtype)
        loose_sentinel = unreachable_value(loose_raw.dtype)
        tight = tight_raw.astype(np.int64)
        loose = loose_raw.astype(np.int64)
        visible = tight != tight_sentinel
        assert (loose[visible] == tight[visible]).all()
        newly_visible = (tight == tight_sentinel) & (loose != loose_sentinel)
        assert (loose[newly_visible] == length_bound + 1).all()
