"""Property-based tests for the Graph data structure."""

from hypothesis import given, settings

from tests.property.strategies import graphs, graphs_with_edge


class TestGraphInvariants:
    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_handshake_lemma(self, graph):
        assert sum(graph.degrees()) == 2 * graph.num_edges

    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_edges_and_non_edges_partition_all_pairs(self, graph):
        n = graph.num_vertices
        edges = graph.edge_set()
        non_edges = set(graph.non_edges())
        assert edges.isdisjoint(non_edges)
        assert len(edges) + len(non_edges) == n * (n - 1) // 2

    @given(graphs_with_edge())
    @settings(max_examples=60, deadline=None)
    def test_remove_then_add_is_identity(self, graph_and_edge):
        graph, edge = graph_and_edge
        snapshot = graph.edge_set()
        graph.remove_edge(*edge)
        graph.add_edge(*edge)
        assert graph.edge_set() == snapshot

    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_copy_equals_original_but_is_independent(self, graph):
        clone = graph.copy()
        assert clone == graph
        if clone.num_edges:
            clone.remove_edge(*next(iter(clone.edges())))
            assert clone != graph

    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_adjacency_matrix_row_sums_are_degrees(self, graph):
        matrix = graph.adjacency_matrix(dtype=int)
        assert list(matrix.sum(axis=1)) == graph.degrees()

    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_connected_components_partition_vertices(self, graph):
        components = graph.connected_components()
        vertices = [v for component in components for v in component]
        assert sorted(vertices) == list(range(graph.num_vertices))
