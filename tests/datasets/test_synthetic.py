"""Unit tests for the calibrated synthetic dataset proxies."""

import pytest

from repro.datasets.registry import get_dataset
from repro.datasets.synthetic import synthesize_dataset, synthesize_sample
from repro.errors import DatasetError
from repro.graph.properties import average_clustering_coefficient


class TestSynthesizeSample:
    @pytest.mark.parametrize("name,size", [
        ("google", 100), ("enron", 100), ("gnutella", 100),
        ("epinions", 100), ("wikipedia", 100)])
    def test_matches_table3_node_and_edge_counts(self, name, size):
        spec = get_dataset(name).sample_spec(size)
        graph = synthesize_sample(name, size, seed=0)
        assert graph.num_vertices == size
        assert graph.num_edges == spec.links

    def test_unreported_size_scales_density(self):
        graph = synthesize_sample("gnutella", 60, seed=0)
        assert graph.num_vertices == 60
        assert graph.num_edges >= 59  # at least tree density

    def test_clustered_family_is_more_clustered_than_sparse_family(self):
        clustered = synthesize_sample("google", 100, seed=0)
        sparse = synthesize_sample("gnutella", 100, seed=0)
        assert (average_clustering_coefficient(clustered)
                > average_clustering_coefficient(sparse))

    def test_seed_reproducibility(self):
        assert synthesize_sample("enron", 100, seed=5) == synthesize_sample("enron", 100, seed=5)

    def test_different_seeds_differ(self):
        assert synthesize_sample("enron", 100, seed=1) != synthesize_sample("enron", 100, seed=2)

    def test_too_small_size_rejected(self):
        with pytest.raises(DatasetError):
            synthesize_sample("google", 1)

    def test_acm_clustered_heavy_tail_family(self):
        graph = synthesize_sample("acm", 120, seed=0)
        assert graph.num_vertices == 120
        # Co-authorship proxies stay sparse but clustered, with a few
        # high-degree "prolific author" hubs.
        assert average_clustering_coefficient(graph) > 0.05
        degrees = sorted(graph.degrees(), reverse=True)
        assert degrees[0] >= 2 * (2 * graph.num_edges / graph.num_vertices)


class TestSynthesizeDataset:
    def test_default_size(self):
        graph = synthesize_dataset("gnutella", seed=0)
        assert graph.num_vertices == 2000

    def test_explicit_size_and_density(self):
        graph = synthesize_dataset("gnutella", num_nodes=300, seed=0)
        spec = get_dataset("gnutella")
        assert graph.num_vertices == 300
        expected_edges = int(spec.average_degree * 300 / 2)
        assert abs(graph.num_edges - expected_edges) <= expected_edges * 0.05 + 2
