"""Unit tests for dataset loading (real SNAP files vs synthetic fallback)."""

import pytest

from repro.datasets.loaders import load_dataset, load_sample
from repro.datasets.registry import get_dataset
from repro.graph.generators import erdos_renyi_graph
from repro.graph.io import write_edge_list


class TestSyntheticFallback:
    def test_sample_fallback_when_no_data_dir(self, tmp_path):
        graph = load_sample("gnutella", 80, data_dir=tmp_path, seed=0)
        assert graph.num_vertices == 80

    def test_dataset_fallback(self, tmp_path):
        graph = load_dataset("gnutella", data_dir=tmp_path, num_nodes=200, seed=0)
        assert graph.num_vertices == 200

    def test_acm_always_synthetic(self, tmp_path):
        graph = load_sample("acm", 90, data_dir=tmp_path, seed=0)
        assert graph.num_vertices == 90

    def test_fallback_is_deterministic(self, tmp_path):
        first = load_sample("enron", 70, data_dir=tmp_path, seed=3)
        second = load_sample("enron", 70, data_dir=tmp_path, seed=3)
        assert first == second


class TestRealFileLoading:
    def test_real_edge_list_is_used_when_present(self, tmp_path):
        # Write a fake "SNAP" file under the expected filename and confirm the
        # loader prefers it over synthesis.
        spec = get_dataset("gnutella")
        source = erdos_renyi_graph(150, 0.05, seed=1)
        write_edge_list(source, tmp_path / spec.snap_filename)
        full = load_dataset("gnutella", data_dir=tmp_path)
        assert full.num_edges == source.num_edges

    def test_real_file_sampling(self, tmp_path):
        spec = get_dataset("gnutella")
        source = erdos_renyi_graph(150, 0.05, seed=1)
        write_edge_list(source, tmp_path / spec.snap_filename)
        sampled = load_sample("gnutella", 40, data_dir=tmp_path, seed=0)
        assert sampled.num_vertices == 40
