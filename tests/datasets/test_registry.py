"""Unit tests for the dataset registry (Tables 1-3 descriptors)."""

import pytest

from repro.datasets.registry import DATASETS, dataset_names, get_dataset
from repro.errors import DatasetError


class TestRegistry:
    def test_all_seven_paper_datasets_present(self):
        assert set(dataset_names()) == {
            "google", "berkeley-stanford", "epinions", "enron",
            "gnutella", "acm", "wikipedia"}

    def test_table1_values(self):
        google = get_dataset("google")
        assert google.nodes == 875_713
        assert google.links == 5_105_039
        enron = get_dataset("enron")
        assert enron.nodes == 36_692
        assert enron.links == 367_662

    def test_table2_values(self):
        wikipedia = get_dataset("wikipedia")
        assert wikipedia.diameter == 7
        assert wikipedia.average_degree == pytest.approx(29.1)
        assert wikipedia.clustering == pytest.approx(0.2089)

    def test_table3_sample_rows(self):
        gnutella = get_dataset("gnutella")
        sample = gnutella.sample_spec(500)
        assert sample is not None
        assert sample.links == 721
        assert sample.average_degree == pytest.approx(2.88)
        assert gnutella.sample_spec(250) is None

    def test_lookup_is_case_insensitive(self):
        assert get_dataset("Google").name == "google"
        assert get_dataset("  ENRON ").name == "enron"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            get_dataset("facebook")

    def test_acm_has_no_snap_file(self):
        assert get_dataset("acm").snap_filename is None
        assert all(spec.snap_filename for name, spec in DATASETS.items() if name != "acm")
