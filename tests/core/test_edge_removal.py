"""Unit tests for the Edge Removal heuristic (Algorithm 4)."""

import pytest

from repro.core.edge_removal import EdgeRemovalAnonymizer
from repro.core.opacity import OpacityComputer, max_lo
from repro.core.pair_types import DegreePairTyping
from repro.graph.generators import complete_graph, erdos_renyi_graph, star_graph
from repro.graph.graph import Graph


class TestBasicBehaviour:
    @pytest.mark.parametrize("theta", [0.9, 0.7, 0.5])
    def test_reaches_threshold_on_paper_example(self, paper_example_graph, theta):
        result = EdgeRemovalAnonymizer(length_threshold=1, theta=theta,
                                       seed=0).anonymize(paper_example_graph)
        assert result.success
        assert result.final_opacity <= theta

    def test_final_opacity_is_measured_against_original_degrees(self, paper_example_graph):
        typing = DegreePairTyping(paper_example_graph)
        result = EdgeRemovalAnonymizer(length_threshold=1, theta=0.6,
                                       seed=0).anonymize(paper_example_graph)
        recomputed = OpacityComputer(typing, 1).max_opacity(result.anonymized_graph)
        assert recomputed == pytest.approx(result.final_opacity)
        assert recomputed <= 0.6

    def test_only_removes_edges(self, paper_example_graph):
        result = EdgeRemovalAnonymizer(length_threshold=1, theta=0.5,
                                       seed=0).anonymize(paper_example_graph)
        assert not result.inserted_edges
        assert result.anonymized_graph.edge_set() <= paper_example_graph.edge_set()
        assert len(result.removed_edges) == result.anonymized_graph.num_edges * 0 + (
            paper_example_graph.num_edges - result.anonymized_graph.num_edges)

    def test_distortion_counts_removals_only(self, paper_example_graph):
        result = EdgeRemovalAnonymizer(length_threshold=1, theta=0.5,
                                       seed=0).anonymize(paper_example_graph)
        expected = len(result.removed_edges) / paper_example_graph.num_edges
        assert result.distortion == pytest.approx(expected)

    @pytest.mark.parametrize("length", [1, 2, 3])
    def test_multi_hop_threshold(self, length):
        graph = erdos_renyi_graph(25, 0.12, seed=3)
        result = EdgeRemovalAnonymizer(length_threshold=length, theta=0.6,
                                       seed=0).anonymize(graph)
        assert result.final_opacity <= 0.6
        typing = DegreePairTyping(graph)
        assert max_lo(result.anonymized_graph, typing, length) <= 0.6

    def test_theta_zero_on_star_removes_all_edges(self):
        # Every edge of a star is a (1, k) pair; the only way to get opacity 0
        # for L=1 is to delete all edges.
        graph = star_graph(4)
        result = EdgeRemovalAnonymizer(length_threshold=1, theta=0.0,
                                       seed=0).anonymize(graph)
        assert result.success
        assert result.anonymized_graph.num_edges == 0

    def test_steps_record_monotone_progress_information(self, paper_example_graph):
        result = EdgeRemovalAnonymizer(length_threshold=1, theta=0.5,
                                       seed=0).anonymize(paper_example_graph)
        assert result.num_steps == len(result.steps)
        assert all(step.operation == "remove" for step in result.steps)
        assert result.steps[-1].max_opacity_after == pytest.approx(result.final_opacity)

    def test_max_steps_cap_is_respected(self):
        graph = complete_graph(8)
        result = EdgeRemovalAnonymizer(length_threshold=1, theta=0.1, seed=0,
                                       max_steps=3).anonymize(graph)
        assert result.num_steps <= 3


class TestDeterminismAndSeeding:
    def test_same_seed_same_result(self):
        graph = erdos_renyi_graph(30, 0.15, seed=1)
        first = EdgeRemovalAnonymizer(length_threshold=1, theta=0.5, seed=7).anonymize(graph)
        second = EdgeRemovalAnonymizer(length_threshold=1, theta=0.5, seed=7).anonymize(graph)
        assert first.anonymized_graph == second.anonymized_graph
        assert first.removed_edges == second.removed_edges

    def test_different_seeds_may_differ_but_both_succeed(self):
        graph = erdos_renyi_graph(30, 0.15, seed=1)
        first = EdgeRemovalAnonymizer(length_threshold=1, theta=0.5, seed=1).anonymize(graph)
        second = EdgeRemovalAnonymizer(length_threshold=1, theta=0.5, seed=2).anonymize(graph)
        assert first.success and second.success


class TestCandidatePruning:
    @pytest.mark.parametrize("theta", [0.7, 0.5])
    def test_pruned_and_unpruned_reach_same_threshold(self, theta):
        graph = erdos_renyi_graph(25, 0.2, seed=2)
        pruned = EdgeRemovalAnonymizer(length_threshold=1, theta=theta, seed=0,
                                       prune_candidates=True).anonymize(graph)
        unpruned = EdgeRemovalAnonymizer(length_threshold=1, theta=theta, seed=0,
                                         prune_candidates=False).anonymize(graph)
        assert pruned.success and unpruned.success
        assert pruned.final_opacity <= theta
        assert unpruned.final_opacity <= theta

    def test_pruning_never_scans_more_candidates(self):
        graph = erdos_renyi_graph(25, 0.2, seed=2)
        pruned = EdgeRemovalAnonymizer(length_threshold=2, theta=0.7, seed=0,
                                       prune_candidates=True).anonymize(graph)
        unpruned = EdgeRemovalAnonymizer(length_threshold=2, theta=0.7, seed=0,
                                         prune_candidates=False).anonymize(graph)
        assert pruned.evaluations <= unpruned.evaluations


class TestLookAhead:
    def test_lookahead_two_succeeds(self, paper_example_graph):
        result = EdgeRemovalAnonymizer(length_threshold=1, theta=0.5, seed=0,
                                       lookahead=2).anonymize(paper_example_graph)
        assert result.success

    def test_lookahead_never_hurts_distortion_on_small_graph(self):
        graph = erdos_renyi_graph(18, 0.25, seed=4)
        base = EdgeRemovalAnonymizer(length_threshold=1, theta=0.4, seed=0,
                                     lookahead=1).anonymize(graph)
        wide = EdgeRemovalAnonymizer(length_threshold=1, theta=0.4, seed=0,
                                     lookahead=2).anonymize(graph)
        assert wide.success
        assert base.success
        # Look-ahead explores a superset of the la=1 moves, so it should not
        # end up with a dramatically worse edit distance.
        assert wide.distortion <= base.distortion + 0.25


class TestEdgeCases:
    def test_graph_with_no_edges(self):
        graph = Graph(5)
        result = EdgeRemovalAnonymizer(length_threshold=2, theta=0.5, seed=0).anonymize(graph)
        assert result.success
        assert result.num_steps == 0

    def test_two_vertices_single_edge(self):
        graph = Graph(2, edges=[(0, 1)])
        result = EdgeRemovalAnonymizer(length_threshold=1, theta=0.5, seed=0).anonymize(graph)
        assert result.success
        assert result.anonymized_graph.num_edges == 0
