"""Tests for the adversary inference model (Section 3 / Figure 2)."""

import pytest

from repro.core.adversary import DegreeAdversary
from repro.core.edge_removal import EdgeRemovalAnonymizer
from repro.core.opacity import OpacityComputer
from repro.core.pair_types import DegreePairTyping
from repro.errors import ConfigurationError
from repro.graph.graph import Graph


def _figure2_graph(links_to_c1: int, links_to_c2: int) -> Graph:
    """Build the Figure 2 scenario: suspects S1-S3, criminal candidates C1, C2.

    ``links_to_c1`` / ``links_to_c2`` say how many of the three suspect
    candidates are adjacent to each criminal candidate.
    """
    # Vertices: 0, 1, 2 = S1..S3; 3 = C1; 4 = C2.
    graph = Graph(5)
    for suspect in range(links_to_c1):
        graph.add_edge(suspect, 3)
    for suspect in range(links_to_c2):
        graph.add_edge(suspect, 4)
    return graph


class TestFigure2Scenario:
    def test_full_confidence_when_linked_to_both(self):
        graph = _figure2_graph(3, 3)
        adversary = DegreeAdversary(graph)
        inference = adversary.linkage_confidence([0, 1, 2], [3, 4], length_threshold=1)
        assert inference.confidence == pytest.approx(1.0)   # Figure 2a

    def test_half_confidence_when_linked_to_one_candidate(self):
        graph = _figure2_graph(3, 0)
        adversary = DegreeAdversary(graph)
        inference = adversary.linkage_confidence([0, 1, 2], [3, 4], length_threshold=1)
        assert inference.confidence == pytest.approx(0.5)   # Figure 2b

    def test_zero_confidence_when_unlinked(self):
        graph = _figure2_graph(0, 0)
        adversary = DegreeAdversary(graph)
        inference = adversary.linkage_confidence([0, 1, 2], [3, 4], length_threshold=1)
        assert inference.confidence == 0.0                   # Figure 2c

    def test_counts_are_reported(self):
        graph = _figure2_graph(3, 0)
        adversary = DegreeAdversary(graph)
        inference = adversary.linkage_confidence([0, 1, 2], [3, 4], length_threshold=1)
        assert inference.total_pairs == 6
        assert inference.linked_pairs == 3


class TestFigure1Scenario:
    def test_charles_and_agatha_must_be_friends(self, paper_example_graph):
        # Charles and Agatha both have four friends; the three degree-4
        # vertices form a triangle, so any assignment makes them adjacent.
        adversary = DegreeAdversary(paper_example_graph)
        inference = adversary.degree_linkage_confidence(4, 4, length_threshold=1)
        assert inference.confidence == pytest.approx(1.0)

    def test_oliver_is_cynthias_friend(self, paper_example_graph):
        # Oliver has one friend (vertex 6), Timothy three (vertex 5): linked.
        adversary = DegreeAdversary(paper_example_graph)
        inference = adversary.degree_linkage_confidence(1, 3, length_threshold=1)
        assert inference.confidence == pytest.approx(1.0)

    def test_degree_confidence_equals_type_opacity(self, paper_example_graph):
        typing = DegreePairTyping(paper_example_graph)
        opacity = OpacityComputer(typing, 1).evaluate(paper_example_graph)
        adversary = DegreeAdversary(paper_example_graph, original_typing=typing)
        for (low, high), entry in opacity.per_type.items():
            inference = adversary.degree_linkage_confidence(low, high, 1)
            assert inference.confidence == pytest.approx(entry.opacity)

    def test_most_confident_inferences_ranked(self, paper_example_graph):
        adversary = DegreeAdversary(paper_example_graph)
        top = adversary.most_confident_inferences(length_threshold=1, top=3)
        confidences = [inference.confidence for inference in top]
        assert confidences == sorted(confidences, reverse=True)
        assert confidences[0] == pytest.approx(1.0)


class TestAnonymizationBoundsTheAdversary:
    def test_confidence_bounded_by_theta_after_anonymization(self, paper_example_graph):
        theta = 0.5
        typing = DegreePairTyping(paper_example_graph)
        result = EdgeRemovalAnonymizer(length_threshold=1, theta=theta,
                                       seed=0).anonymize(paper_example_graph)
        adversary = DegreeAdversary(result.anonymized_graph, original_typing=typing)
        for inference in adversary.most_confident_inferences(length_threshold=1, top=10):
            assert inference.confidence <= theta + 1e-9


class TestValidation:
    def test_mismatched_typing_rejected(self, paper_example_graph):
        other = Graph(3, edges=[(0, 1)])
        with pytest.raises(ConfigurationError):
            DegreeAdversary(paper_example_graph, original_typing=DegreePairTyping(other))

    def test_invalid_length_rejected(self, paper_example_graph):
        adversary = DegreeAdversary(paper_example_graph)
        with pytest.raises(ConfigurationError):
            adversary.linkage_confidence([0], [1], length_threshold=0)

    def test_overlapping_candidate_sets_skip_identical_vertices(self, paper_example_graph):
        adversary = DegreeAdversary(paper_example_graph)
        inference = adversary.degree_linkage_confidence(2, 2, length_threshold=1)
        # Two degree-2 vertices: only the single cross pair is counted.
        assert inference.total_pairs == 2  # ordered candidate products minus identical pairs
