"""Unit tests for vertex-pair typings (Definition 1)."""

import pytest

from repro.core.pair_types import DegreePairTyping, ExplicitPairTyping
from repro.errors import ConfigurationError
from repro.graph.generators import complete_graph, erdos_renyi_graph
from repro.graph.graph import Graph


class TestDegreePairTyping:
    def test_types_are_ordered_degree_pairs(self, paper_example_graph):
        typing = DegreePairTyping(paper_example_graph)
        assert typing.type_of(6, 5) == (1, 3)   # v7 (deg 1) with v6 (deg 3)
        assert typing.type_of(5, 6) == (1, 3)
        assert typing.type_of(1, 2) == (4, 4)

    def test_self_pair_has_no_type(self, paper_example_graph):
        typing = DegreePairTyping(paper_example_graph)
        assert typing.type_of(3, 3) is None

    def test_pair_counts_match_paper_example(self, paper_example_graph):
        typing = DegreePairTyping(paper_example_graph)
        # Degrees: one vertex of degree 1, two of degree 2, one of degree 3,
        # three of degree 4.
        assert typing.pair_count((1, 2)) == 2
        assert typing.pair_count((1, 4)) == 3
        assert typing.pair_count((2, 4)) == 6
        assert typing.pair_count((3, 4)) == 3
        assert typing.pair_count((4, 4)) == 3
        assert typing.pair_count((2, 2)) == 1
        assert typing.pair_count((1, 1)) == 0
        assert typing.pair_count((3, 3)) == 0

    def test_total_pairs_partition_all_vertex_pairs(self):
        graph = erdos_renyi_graph(25, 0.2, seed=0)
        typing = DegreePairTyping(graph)
        total = sum(typing.pair_count(key) for key in typing.types())
        n = graph.num_vertices
        assert total == n * (n - 1) // 2

    def test_typing_is_frozen_against_graph_mutation(self, paper_example_graph):
        typing = DegreePairTyping(paper_example_graph)
        paper_example_graph.remove_edge(5, 6)
        # v7's original degree stays 1 even after its only edge is removed.
        assert typing.type_of(6, 5) == (1, 3)
        assert typing.vertices_with_degree(1) == 1

    def test_vertices_with_degree(self, paper_example_graph):
        typing = DegreePairTyping(paper_example_graph)
        assert typing.vertices_with_degree(4) == 3
        assert typing.vertices_with_degree(9) == 0

    def test_regular_graph_has_single_type(self):
        typing = DegreePairTyping(complete_graph(5))
        assert list(typing.types()) == [(4, 4)]
        assert typing.pair_count((4, 4)) == 10

    def test_num_types(self, paper_example_graph):
        typing = DegreePairTyping(paper_example_graph)
        # Degrees present: 1, 2, 3, 4 -> pairs with nonzero count:
        # (1,2),(1,3),(1,4),(2,2),(2,3),(2,4),(3,4),(4,4) = 8
        assert typing.num_types() == 8


class TestExplicitPairTyping:
    def test_lookup_both_orientations(self):
        typing = ExplicitPairTyping({(3, 1): "a", (2, 4): "b"})
        assert typing.type_of(1, 3) == "a"
        assert typing.type_of(4, 2) == "b"
        assert typing.type_of(1, 2) is None

    def test_pair_counts(self):
        typing = ExplicitPairTyping({(0, 1): "t", (2, 3): "t", (4, 5): "u"})
        assert typing.pair_count("t") == 2
        assert typing.pair_count("u") == 1
        assert typing.pair_count("v") == 0

    def test_conflicting_assignment_rejected(self):
        with pytest.raises(ConfigurationError):
            ExplicitPairTyping({(0, 1): "a", (1, 0): "b"})

    def test_duplicate_consistent_assignment_allowed(self):
        typing = ExplicitPairTyping({(0, 1): "a", (1, 0): "a"})
        assert typing.pair_count("a") == 1

    def test_pairs_of_type(self):
        typing = ExplicitPairTyping({(0, 1): "t", (2, 3): "t", (4, 5): "u"})
        assert sorted(typing.pairs_of_type("t")) == [(0, 1), (2, 3)]
        assert typing.all_pairs() and len(typing.all_pairs()) == 3

    def test_self_pair_rejected(self):
        from repro.errors import InvalidEdgeError
        with pytest.raises(InvalidEdgeError):
            ExplicitPairTyping({(2, 2): "a"})
