"""Resume bit-parity: a continued schedule pass equals the uninterrupted one."""

import pytest

from repro.api.progress import CheckpointBuffer
from repro.api.registry import default_registry
from repro.datasets import load_sample

THETAS = [0.9, 0.7, 0.5, 0.3]
SPLIT = 2  # interrupt after the first two grid points


def _result_key(result):
    return (result.config.theta, result.final_opacity, tuple(result.steps),
            tuple(sorted(result.removed_edges)),
            tuple(sorted(result.inserted_edges)), result.evaluations,
            result.success, result.stop_reason,
            tuple(sorted(result.anonymized_graph.edges())))


@pytest.fixture(scope="module")
def graph():
    return load_sample("gnutella", 30, seed=0)


@pytest.mark.parametrize("algorithm", ["rem", "rem-ins"])
class TestResumeParity:
    def test_resumed_tail_equals_uninterrupted_pass(self, graph, algorithm):
        registry = default_registry()
        full = registry.create(algorithm, theta=THETAS[-1], length_threshold=1,
                               seed=0).anonymize_schedule(graph, THETAS)
        buffer = CheckpointBuffer()
        registry.create(algorithm, theta=THETAS[SPLIT - 1], length_threshold=1,
                        seed=0).anonymize_schedule(graph, THETAS[:SPLIT],
                                                   observer=buffer)
        checkpoint = buffer.records[-1][1]
        resumed = registry.create(
            algorithm, theta=THETAS[-1], length_threshold=1,
            seed=0).anonymize_schedule(graph, THETAS[SPLIT:],
                                       resume_from=checkpoint)
        assert [_result_key(result) for result in resumed] \
            == [_result_key(result) for result in full[SPLIT:]]

    def test_resume_from_every_split_point(self, graph, algorithm):
        registry = default_registry()
        buffer = CheckpointBuffer()
        full = registry.create(algorithm, theta=THETAS[-1], length_threshold=1,
                               seed=0).anonymize_schedule(graph, THETAS,
                                                          observer=buffer)
        # Every checkpoint of the full pass is a valid continuation point.
        for split in range(1, len(THETAS)):
            checkpoint = buffer.records[split - 1][1]
            if checkpoint.stop_reason is not None:
                continue
            resumed = registry.create(
                algorithm, theta=THETAS[-1], length_threshold=1,
                seed=0).anonymize_schedule(graph, THETAS[split:],
                                           resume_from=checkpoint)
            assert [_result_key(result) for result in resumed] \
                == [_result_key(result) for result in full[split:]], split

    def test_runtime_keeps_accumulating(self, graph, algorithm):
        registry = default_registry()
        buffer = CheckpointBuffer()
        registry.create(algorithm, theta=THETAS[SPLIT - 1], length_threshold=1,
                        seed=0).anonymize_schedule(graph, THETAS[:SPLIT],
                                                   observer=buffer)
        checkpoint = buffer.records[-1][1]
        resumed = registry.create(
            algorithm, theta=THETAS[-1], length_threshold=1,
            seed=0).anonymize_schedule(graph, THETAS[SPLIT:],
                                       resume_from=checkpoint)
        # The resumed pass's clock starts where the checkpoint left off, so
        # per-θ runtimes stay comparable to the uninterrupted pass.
        assert all(result.runtime_seconds >= checkpoint.runtime_seconds
                   for result in resumed)


class TestResumeValidation:
    def test_checkpoint_without_rng_state_rejected(self, graph):
        from dataclasses import replace

        from repro.errors import ConfigurationError

        registry = default_registry()
        buffer = CheckpointBuffer()
        registry.create("rem", theta=0.7, length_threshold=1,
                        seed=0).anonymize_schedule(graph, [0.9, 0.7],
                                                   observer=buffer)
        stripped = replace(buffer.records[-1][1], rng_state=None)
        with pytest.raises(ConfigurationError, match="RNG"):
            registry.create("rem", theta=0.5, length_threshold=1,
                            seed=0).anonymize_schedule(graph, [0.5],
                                                       resume_from=stripped)

    def test_independent_mode_ignores_resume(self, graph):
        registry = default_registry()
        buffer = CheckpointBuffer()
        registry.create("rem", theta=0.7, length_threshold=1,
                        seed=0).anonymize_schedule(graph, [0.9, 0.7],
                                                   observer=buffer)
        checkpoint = buffer.records[-1][1]
        independent = registry.create(
            "rem", theta=0.5, length_threshold=1, seed=0,
            sweep_mode="independent")
        full = registry.create("rem", theta=0.5, length_threshold=1, seed=0)
        resumed = independent.anonymize_schedule(graph, [0.5, 0.3],
                                                 resume_from=checkpoint)
        reference = full.anonymize_schedule(graph, [0.9, 0.7, 0.5, 0.3])
        assert [_result_key(result) for result in resumed] \
            == [_result_key(result) for result in reference[2:]]
