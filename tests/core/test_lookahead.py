"""Unit tests for the look-ahead combination search."""

import random
from fractions import Fraction

import pytest

from repro.core.anonymizer import CandidateOutcome
from repro.core.lookahead import _combinations_capped, search_best_combination


def _make_evaluator(scores):
    """Build an evaluate() function from a mapping frozenset(edges) -> fraction."""
    calls = []

    def evaluate(combo):
        calls.append(tuple(combo))
        fraction = scores[frozenset(combo)]
        return CandidateOutcome(edges=tuple(combo), fraction=fraction, types_at_max=1)

    evaluate.calls = calls
    return evaluate


class TestSearchBestCombination:
    def test_single_improving_move_is_taken_without_escalation(self):
        edges = [(0, 1), (0, 2)]
        scores = {
            frozenset({(0, 1)}): Fraction(1, 2),
            frozenset({(0, 2)}): Fraction(3, 4),
        }
        evaluate = _make_evaluator(scores)
        best = search_best_combination(edges, evaluate, current_fraction=Fraction(1),
                                       lookahead=2, rng=random.Random(0),
                                       max_combinations=100)
        assert best.edges == ((0, 1),)
        # No size-2 combination should have been evaluated.
        assert all(len(call) == 1 for call in evaluate.calls)

    def test_escalates_to_pairs_when_singles_do_not_improve(self):
        edges = [(0, 1), (0, 2)]
        scores = {
            frozenset({(0, 1)}): Fraction(1),
            frozenset({(0, 2)}): Fraction(1),
            frozenset({(0, 1), (0, 2)}): Fraction(1, 3),
        }
        evaluate = _make_evaluator(scores)
        best = search_best_combination(edges, evaluate, current_fraction=Fraction(1),
                                       lookahead=2, rng=random.Random(0),
                                       max_combinations=100)
        assert set(best.edges) == {(0, 1), (0, 2)}

    def test_lookahead_one_never_evaluates_pairs(self):
        edges = [(0, 1), (0, 2), (1, 2)]
        scores = {frozenset({edge}): Fraction(1) for edge in edges}
        evaluate = _make_evaluator(scores)
        best = search_best_combination(edges, evaluate, current_fraction=Fraction(1),
                                       lookahead=1, rng=random.Random(0),
                                       max_combinations=100)
        assert len(best.edges) == 1
        assert all(len(call) == 1 for call in evaluate.calls)

    def test_returns_best_overall_when_nothing_improves(self):
        edges = [(0, 1), (0, 2)]
        scores = {
            frozenset({(0, 1)}): Fraction(4, 5),
            frozenset({(0, 2)}): Fraction(9, 10),
            frozenset({(0, 1), (0, 2)}): Fraction(1),
        }
        evaluate = _make_evaluator(scores)
        best = search_best_combination(edges, evaluate, current_fraction=Fraction(1, 2),
                                       lookahead=2, rng=random.Random(0),
                                       max_combinations=100)
        assert best.edges == ((0, 1),)

    def test_empty_candidate_list_returns_none(self):
        best = search_best_combination([], lambda combo: None,
                                       current_fraction=Fraction(1), lookahead=2,
                                       rng=random.Random(0), max_combinations=100)
        assert best is None


class TestCombinationCapping:
    def test_exact_enumeration_below_cap(self):
        edges = [(0, i) for i in range(1, 6)]
        combos = list(_combinations_capped(edges, 2, cap=100, rng=random.Random(0)))
        assert len(combos) == 10
        assert len(set(map(frozenset, combos))) == 10

    def test_sampling_beyond_cap(self):
        edges = [(0, i) for i in range(1, 30)]
        combos = list(_combinations_capped(edges, 3, cap=50, rng=random.Random(0)))
        assert len(combos) == 50
        assert len(set(combos)) == 50
        assert all(len(combo) == 3 for combo in combos)


class TestCappedSamplingNearPoolSize:
    """Regression tests for the overestimating partial-product bug: with
    ``size`` close to the pool, a running product of partial binomials peaks
    mid-way (e.g. C(30, 15) for pool=30) and wrongly trips the cap, making
    the rejection-sampling loop ask for more distinct combinations than
    exist — an infinite loop.  The count is now exact."""

    def test_size_near_pool_enumerates_exactly(self):
        # C(30, 28) = 435 <= cap, but the old partial product exceeded it.
        edges = [(0, i) for i in range(1, 31)]
        combos = list(_combinations_capped(edges, 28, cap=1000,
                                           rng=random.Random(0)))
        assert len(combos) == 435
        assert len(set(map(frozenset, combos))) == 435

    def test_size_equal_to_pool_is_single_combination(self):
        edges = [(0, i) for i in range(1, 21)]
        combos = list(_combinations_capped(edges, 20, cap=5,
                                           rng=random.Random(0)))
        assert combos == [tuple(edges)]

    def test_sampling_just_under_distinct_count_terminates(self):
        # cap one below the exact count: sampling must collect cap distinct
        # combinations and stop (the old code could never have).
        edges = [(0, i) for i in range(1, 31)]
        combos = list(_combinations_capped(edges, 28, cap=434,
                                           rng=random.Random(3)))
        assert len(combos) == 434
        assert len(set(combos)) == 434

    def test_sampling_is_seed_deterministic(self):
        edges = [(0, i) for i in range(1, 31)]
        first = list(_combinations_capped(edges, 28, cap=100,
                                          rng=random.Random(7)))
        second = list(_combinations_capped(edges, 28, cap=100,
                                           rng=random.Random(7)))
        assert first == second

    def test_search_with_lookahead_near_pool_size(self):
        edges = [(0, 1), (0, 2), (0, 3), (1, 2)]
        scores = {}
        for size in range(1, 5):
            from itertools import combinations as iter_combinations
            for combo in iter_combinations(edges, size):
                scores[frozenset(combo)] = Fraction(1)
        scores[frozenset(edges)] = Fraction(1, 4)
        evaluate = _make_evaluator(scores)
        best = search_best_combination(edges, evaluate,
                                       current_fraction=Fraction(1),
                                       lookahead=4, rng=random.Random(0),
                                       max_combinations=3)
        # Every level is capped at 3 sampled combinations; the search must
        # terminate and return a candidate even when C(4, size) > 3.
        assert best is not None

    def test_search_near_pool_size_is_seed_deterministic(self):
        edges = [(0, i) for i in range(1, 9)]
        scores = {}
        from itertools import combinations as iter_combinations
        for size in range(1, 9):
            for combo in iter_combinations(edges, size):
                scores[frozenset(combo)] = Fraction(len(combo), len(combo) + 1)
        runs = []
        for _ in range(2):
            evaluate = _make_evaluator(scores)
            best = search_best_combination(edges, evaluate,
                                           current_fraction=Fraction(1, 10),
                                           lookahead=7, rng=random.Random(11),
                                           max_combinations=5)
            runs.append((best.edges, tuple(evaluate.calls)))
        assert runs[0] == runs[1]


class TestBatchEvaluation:
    def test_size_one_level_uses_the_batch_evaluator(self):
        edges = [(0, 1), (0, 2)]
        scores = {
            frozenset({(0, 1)}): Fraction(1, 2),
            frozenset({(0, 2)}): Fraction(3, 4),
        }
        sequential = _make_evaluator(scores)
        batch_calls = []

        def evaluate_batch(combos):
            batch_calls.append(list(combos))
            for combo in combos:
                yield CandidateOutcome(edges=tuple(combo),
                                       fraction=scores[frozenset(combo)],
                                       types_at_max=1)

        best = search_best_combination(edges, sequential,
                                       current_fraction=Fraction(1),
                                       lookahead=2, rng=random.Random(0),
                                       max_combinations=100,
                                       evaluate_batch=evaluate_batch)
        assert best.edges == ((0, 1),)
        assert batch_calls == [[((0, 1),), ((0, 2),)]]
        assert sequential.calls == []  # size 1 went through the batch path

    def test_larger_sizes_stay_per_combination(self):
        edges = [(0, 1), (0, 2)]
        scores = {
            frozenset({(0, 1)}): Fraction(1),
            frozenset({(0, 2)}): Fraction(1),
            frozenset({(0, 1), (0, 2)}): Fraction(1, 3),
        }
        sequential = _make_evaluator(scores)

        def evaluate_batch(combos):
            for combo in combos:
                yield CandidateOutcome(edges=tuple(combo),
                                       fraction=scores[frozenset(combo)],
                                       types_at_max=1)

        best = search_best_combination(edges, sequential,
                                       current_fraction=Fraction(1),
                                       lookahead=2, rng=random.Random(0),
                                       max_combinations=100,
                                       evaluate_batch=evaluate_batch)
        assert set(best.edges) == {(0, 1), (0, 2)}
        assert all(len(call) == 2 for call in sequential.calls)
