"""Unit tests for the look-ahead combination search."""

import random
from fractions import Fraction

import pytest

from repro.core.anonymizer import CandidateOutcome
from repro.core.lookahead import _combinations_capped, search_best_combination


def _make_evaluator(scores):
    """Build an evaluate() function from a mapping frozenset(edges) -> fraction."""
    calls = []

    def evaluate(combo):
        calls.append(tuple(combo))
        fraction = scores[frozenset(combo)]
        return CandidateOutcome(edges=tuple(combo), fraction=fraction, types_at_max=1)

    evaluate.calls = calls
    return evaluate


class TestSearchBestCombination:
    def test_single_improving_move_is_taken_without_escalation(self):
        edges = [(0, 1), (0, 2)]
        scores = {
            frozenset({(0, 1)}): Fraction(1, 2),
            frozenset({(0, 2)}): Fraction(3, 4),
        }
        evaluate = _make_evaluator(scores)
        best = search_best_combination(edges, evaluate, current_fraction=Fraction(1),
                                       lookahead=2, rng=random.Random(0),
                                       max_combinations=100)
        assert best.edges == ((0, 1),)
        # No size-2 combination should have been evaluated.
        assert all(len(call) == 1 for call in evaluate.calls)

    def test_escalates_to_pairs_when_singles_do_not_improve(self):
        edges = [(0, 1), (0, 2)]
        scores = {
            frozenset({(0, 1)}): Fraction(1),
            frozenset({(0, 2)}): Fraction(1),
            frozenset({(0, 1), (0, 2)}): Fraction(1, 3),
        }
        evaluate = _make_evaluator(scores)
        best = search_best_combination(edges, evaluate, current_fraction=Fraction(1),
                                       lookahead=2, rng=random.Random(0),
                                       max_combinations=100)
        assert set(best.edges) == {(0, 1), (0, 2)}

    def test_lookahead_one_never_evaluates_pairs(self):
        edges = [(0, 1), (0, 2), (1, 2)]
        scores = {frozenset({edge}): Fraction(1) for edge in edges}
        evaluate = _make_evaluator(scores)
        best = search_best_combination(edges, evaluate, current_fraction=Fraction(1),
                                       lookahead=1, rng=random.Random(0),
                                       max_combinations=100)
        assert len(best.edges) == 1
        assert all(len(call) == 1 for call in evaluate.calls)

    def test_returns_best_overall_when_nothing_improves(self):
        edges = [(0, 1), (0, 2)]
        scores = {
            frozenset({(0, 1)}): Fraction(4, 5),
            frozenset({(0, 2)}): Fraction(9, 10),
            frozenset({(0, 1), (0, 2)}): Fraction(1),
        }
        evaluate = _make_evaluator(scores)
        best = search_best_combination(edges, evaluate, current_fraction=Fraction(1, 2),
                                       lookahead=2, rng=random.Random(0),
                                       max_combinations=100)
        assert best.edges == ((0, 1),)

    def test_empty_candidate_list_returns_none(self):
        best = search_best_combination([], lambda combo: None,
                                       current_fraction=Fraction(1), lookahead=2,
                                       rng=random.Random(0), max_combinations=100)
        assert best is None


class TestCombinationCapping:
    def test_exact_enumeration_below_cap(self):
        edges = [(0, i) for i in range(1, 6)]
        combos = list(_combinations_capped(edges, 2, cap=100, rng=random.Random(0)))
        assert len(combos) == 10
        assert len(set(map(frozenset, combos))) == 10

    def test_sampling_beyond_cap(self):
        edges = [(0, i) for i in range(1, 30)]
        combos = list(_combinations_capped(edges, 3, cap=50, rng=random.Random(0)))
        assert len(combos) == 50
        assert len(set(combos)) == 50
        assert all(len(combo) == 3 for combo in combos)
