"""Unit tests for the checkpointed θ-schedule engine (core layer)."""

import pytest

from repro.api.progress import CallbackObserver
from repro.baselines import GadedMaxAnonymizer, GadedRandAnonymizer, GadesAnonymizer
from repro.core import (
    AnonymizerConfig,
    EdgeRemovalAnonymizer,
    EdgeRemovalInsertionAnonymizer,
    SWEEP_MODES,
    validate_theta_schedule,
)
from repro.errors import ConfigurationError, InfeasibleError
from repro.graph import erdos_renyi_graph

#: One factory per registered algorithm, all seeded.
ALGORITHM_FACTORIES = {
    "rem": lambda theta, **kw: EdgeRemovalAnonymizer(theta=theta, seed=0, **kw),
    "rem-ins": lambda theta, **kw: EdgeRemovalInsertionAnonymizer(theta=theta, seed=0, **kw),
    "gaded-rand": lambda theta, **kw: GadedRandAnonymizer(theta=theta, seed=0, **kw),
    "gaded-max": lambda theta, **kw: GadedMaxAnonymizer(theta=theta, seed=0, **kw),
    "gades": lambda theta, **kw: GadesAnonymizer(theta=theta, seed=0,
                                                 swap_sample_size=100, **kw),
}


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_graph(30, 0.2, seed=11)


class TestValidateThetaSchedule:
    def test_sorts_descending_and_dedupes(self):
        assert validate_theta_schedule([0.5, 0.9, 0.7, 0.9]) == (0.9, 0.7, 0.5)

    def test_empty_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_theta_schedule([])

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_theta_schedule([0.5, 1.5])

    def test_sweep_mode_validated_on_config(self):
        with pytest.raises(ConfigurationError):
            AnonymizerConfig(sweep_mode="sideways").validate()
        for mode in SWEEP_MODES:
            AnonymizerConfig(sweep_mode=mode).validate()


class TestScheduleResults:
    def test_single_theta_schedule_equals_anonymize(self, graph):
        anonymizer = EdgeRemovalAnonymizer(theta=0.5, seed=0)
        single = anonymizer.anonymize(graph)
        scheduled = anonymizer.anonymize_schedule(graph, (0.5,))
        assert len(scheduled) == 1
        run = scheduled[0]
        assert run.config == single.config
        assert run.final_opacity == single.final_opacity
        assert [s.edges for s in run.steps] == [s.edges for s in single.steps]
        assert run.evaluations == single.evaluations
        assert run.anonymized_graph == single.anonymized_graph

    def test_results_come_back_in_descending_theta_order(self, graph):
        results = EdgeRemovalAnonymizer(theta=0.5, seed=0).anonymize_schedule(
            graph, (0.6, 0.9, 0.5))
        assert [run.config.theta for run in results] == [0.9, 0.6, 0.5]

    def test_lower_theta_steps_extend_higher_theta_steps(self, graph):
        results = EdgeRemovalAnonymizer(theta=0.5, seed=0).anonymize_schedule(
            graph, (0.9, 0.7, 0.5))
        for higher, lower in zip(results, results[1:]):
            assert len(higher.steps) <= len(lower.steps)
            assert lower.steps[:len(higher.steps)] == higher.steps
            assert higher.removed_edges <= lower.removed_edges

    def test_step_records_split_removals_and_insertions(self, graph):
        result = EdgeRemovalInsertionAnonymizer(theta=0.6, seed=0).anonymize(graph)
        for step in result.steps:
            assert step.edges == step.removals + step.insertions
            if step.operation == "remove+insert":
                assert step.removals and step.insertions

    def test_checkpoint_runtime_split_is_monotone(self, graph):
        results = EdgeRemovalAnonymizer(theta=0.5, seed=0).anonymize_schedule(
            graph, (0.9, 0.7, 0.5))
        elapsed = [run.runtime_seconds for run in results]
        assert elapsed == sorted(elapsed)

    @pytest.mark.parametrize("name", sorted(ALGORITHM_FACTORIES))
    def test_schedule_matches_independent_runs(self, graph, name):
        make = ALGORITHM_FACTORIES[name]
        thetas = (0.9, 0.7, 0.5)
        scheduled = make(0.5).anonymize_schedule(graph, thetas)
        for theta, run in zip(thetas, scheduled):
            independent = make(theta).anonymize(graph)
            assert run.config.theta == theta
            assert [(s.operation, s.edges) for s in run.steps] == \
                   [(s.operation, s.edges) for s in independent.steps]
            assert run.final_opacity == independent.final_opacity
            assert run.evaluations == independent.evaluations
            assert run.removed_edges == independent.removed_edges
            assert run.inserted_edges == independent.inserted_edges
            assert run.anonymized_graph == independent.anonymized_graph
            assert run.success == independent.success
            assert run.stop_reason == independent.stop_reason

    @pytest.mark.parametrize("name", sorted(ALGORITHM_FACTORIES))
    def test_independent_sweep_mode_matches_checkpointed(self, graph, name):
        make = ALGORITHM_FACTORIES[name]
        thetas = (0.8, 0.6)
        checkpointed = make(0.6).anonymize_schedule(graph, thetas)
        independent = make(0.6, sweep_mode="independent").anonymize_schedule(
            graph, thetas)
        for a, b in zip(checkpointed, independent):
            assert a.config.theta == b.config.theta
            assert [s.edges for s in a.steps] == [s.edges for s in b.steps]
            assert a.final_opacity == b.final_opacity
            assert a.evaluations == b.evaluations
            assert a.anonymized_graph == b.anonymized_graph


class TestStopPropagation:
    def test_max_steps_fills_remaining_grid_points(self, graph):
        results = EdgeRemovalAnonymizer(theta=0.0, seed=0, max_steps=1)\
            .anonymize_schedule(graph, (0.9, 0.2, 0.1))
        # One removal cannot reach 0.2 on this sample: the unreached grid
        # points must report the stop reason, matching independent runs.
        by_theta = {run.config.theta: run for run in results}
        independent = EdgeRemovalAnonymizer(theta=0.1, seed=0, max_steps=1)\
            .anonymize(graph)
        assert by_theta[0.1].stop_reason == independent.stop_reason == "max_steps"
        assert by_theta[0.1].success is False
        assert by_theta[0.1].num_steps == independent.num_steps == 1

    def test_exhausted_fills_remaining_grid_points(self):
        # A graph whose maximum opacity cannot reach 0: removing everything
        # still leaves the empty-graph disclosure at 0, so "exhausted" can
        # only come from an unimprovable step; a single edge suffices.
        from repro.graph.graph import Graph
        graph = Graph(3, edges=[(0, 1)])
        results = GadesAnonymizer(theta=0.0, seed=0).anonymize_schedule(
            graph, (0.9, 0.0))
        assert results[-1].stop_reason == "exhausted"
        independent = GadesAnonymizer(theta=0.0, seed=0).anonymize(graph)
        assert independent.stop_reason == "exhausted"
        assert results[-1].final_opacity == independent.final_opacity

    def test_observer_stop_reports_remaining_as_observer(self, graph):
        observer = CallbackObserver(should_stop=lambda: True)
        results = EdgeRemovalAnonymizer(theta=0.0, seed=0).anonymize_schedule(
            graph, (0.2, 0.1), observer=observer)
        assert all(run.stop_reason == "observer" for run in results)

    def test_strict_schedule_raises_on_unreachable_theta(self, graph):
        with pytest.raises(InfeasibleError):
            EdgeRemovalAnonymizer(theta=0.0, seed=0, max_steps=1, strict=True)\
                .anonymize_schedule(graph, (0.9, 0.0))
