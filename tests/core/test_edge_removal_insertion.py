"""Unit tests for the Edge Removal/Insertion heuristic (Algorithm 5)."""

import pytest

from repro.core.edge_removal_insertion import EdgeRemovalInsertionAnonymizer
from repro.core.opacity import max_lo
from repro.core.pair_types import DegreePairTyping
from repro.graph.generators import complete_graph, erdos_renyi_graph
from repro.graph.graph import Graph


class TestBasicBehaviour:
    @pytest.mark.parametrize("theta", [0.9, 0.7])
    def test_reaches_threshold_on_paper_example(self, paper_example_graph, theta):
        result = EdgeRemovalInsertionAnonymizer(
            length_threshold=1, theta=theta, seed=0).anonymize(paper_example_graph)
        assert result.success
        assert result.final_opacity <= theta

    def test_may_stall_where_pure_removal_succeeds(self, paper_example_graph):
        # Section 6 observation: the Removal heuristic is "more capable of
        # always arriving at an alteration that satisfies the constraints",
        # because Rem-Ins must compensate every removal with an insertion and
        # on tiny graphs every insertion re-creates a short link of some type.
        from repro.core.edge_removal import EdgeRemovalAnonymizer
        removal = EdgeRemovalAnonymizer(
            length_threshold=1, theta=0.5, seed=0).anonymize(paper_example_graph)
        both = EdgeRemovalInsertionAnonymizer(
            length_threshold=1, theta=0.5, seed=0).anonymize(paper_example_graph)
        assert removal.success
        # Rem-Ins terminates (no infinite loop) and reports its outcome honestly.
        assert both.final_opacity >= 0.0
        assert both.num_steps >= 1

    def test_edge_count_is_preserved_when_insertions_possible(self, paper_example_graph):
        result = EdgeRemovalInsertionAnonymizer(
            length_threshold=1, theta=0.6, seed=0).anonymize(paper_example_graph)
        assert result.anonymized_graph.num_edges == paper_example_graph.num_edges

    def test_never_reinserts_a_removed_edge(self):
        graph = erdos_renyi_graph(20, 0.2, seed=1)
        result = EdgeRemovalInsertionAnonymizer(
            length_threshold=1, theta=0.5, seed=0).anonymize(graph)
        assert not (result.removed_edges & result.inserted_edges)

    def test_inserted_edges_were_absent_originally(self):
        graph = erdos_renyi_graph(20, 0.2, seed=1)
        result = EdgeRemovalInsertionAnonymizer(
            length_threshold=1, theta=0.5, seed=0).anonymize(graph)
        original_edges = graph.edge_set()
        assert all(edge not in original_edges for edge in result.inserted_edges)

    def test_final_graph_matches_recorded_operations(self):
        graph = erdos_renyi_graph(18, 0.25, seed=2)
        result = EdgeRemovalInsertionAnonymizer(
            length_threshold=1, theta=0.5, seed=0).anonymize(graph)
        expected = (graph.edge_set() - result.removed_edges) | result.inserted_edges
        assert result.anonymized_graph.edge_set() == expected

    def test_multi_hop_threshold_holds(self):
        graph = erdos_renyi_graph(22, 0.12, seed=5)
        result = EdgeRemovalInsertionAnonymizer(
            length_threshold=2, theta=0.6, seed=0).anonymize(graph)
        assert result.final_opacity <= 0.6
        typing = DegreePairTyping(graph)
        assert max_lo(result.anonymized_graph, typing, 2) <= 0.6

    def test_distortion_counts_removals_and_insertions(self):
        graph = erdos_renyi_graph(18, 0.25, seed=2)
        result = EdgeRemovalInsertionAnonymizer(
            length_threshold=1, theta=0.6, seed=0).anonymize(graph)
        expected = (len(result.removed_edges) + len(result.inserted_edges)) / graph.num_edges
        assert result.distortion == pytest.approx(expected)

    def test_step_records_name_both_phases(self, paper_example_graph):
        result = EdgeRemovalInsertionAnonymizer(
            length_threshold=1, theta=0.6, seed=0).anonymize(paper_example_graph)
        assert result.num_steps >= 1
        assert all(step.operation in ("remove", "remove+insert") for step in result.steps)


class TestInsertionCandidateCap:
    def test_cap_limits_evaluations(self):
        graph = erdos_renyi_graph(25, 0.15, seed=3)
        uncapped = EdgeRemovalInsertionAnonymizer(
            length_threshold=1, theta=0.6, seed=0).anonymize(graph)
        capped = EdgeRemovalInsertionAnonymizer(
            length_threshold=1, theta=0.6, seed=0,
            insertion_candidate_cap=20).anonymize(graph)
        assert capped.evaluations <= uncapped.evaluations
        assert capped.success

    def test_cap_still_preserves_edge_count(self):
        graph = erdos_renyi_graph(25, 0.15, seed=3)
        result = EdgeRemovalInsertionAnonymizer(
            length_threshold=1, theta=0.6, seed=0,
            insertion_candidate_cap=10).anonymize(graph)
        assert result.anonymized_graph.num_edges == graph.num_edges


class TestEdgeCases:
    def test_complete_graph_has_no_insertion_slots(self):
        # On a complete graph there is no absent edge to insert, so the
        # heuristic degenerates to pure removal but must still progress.
        graph = complete_graph(6)
        result = EdgeRemovalInsertionAnonymizer(
            length_threshold=1, theta=0.8, seed=0).anonymize(graph)
        assert result.final_opacity <= 0.8

    def test_empty_graph(self):
        graph = Graph(4)
        result = EdgeRemovalInsertionAnonymizer(
            length_threshold=1, theta=0.5, seed=0).anonymize(graph)
        assert result.success
        assert result.num_steps == 0

    def test_determinism_with_seed(self):
        graph = erdos_renyi_graph(20, 0.2, seed=4)
        first = EdgeRemovalInsertionAnonymizer(
            length_threshold=1, theta=0.5, seed=9).anonymize(graph)
        second = EdgeRemovalInsertionAnonymizer(
            length_threshold=1, theta=0.5, seed=9).anonymize(graph)
        assert first.anonymized_graph == second.anonymized_graph
