"""Tests for the intra-group parallel candidate scan (``scan_mode="parallel"``).

The scan pool promises three things, and these tests pin all of them:

* **Bit-identity** — sharding a candidate scan across workers over the
  shared-memory arena returns exactly the evaluations (``Fraction``
  maxima, tie counts, per-type counts) of the serial batched scan, so
  whole anonymization runs produce identical step sequences under a
  fixed seed, on the dense and the tiled tier alike.
* **Crash safety** — the arena segment is unlinked the moment every
  worker has attached, so even ``SIGKILL``-ing workers mid-run leaks
  nothing under ``/dev/shm``; the session falls back to the serial scan
  permanently and keeps producing identical results.
* **No nested pools** — pool workers (θ-group or scan) never start scan
  pools of their own.

The CI machine may be single-core, so every test passes an explicit
``scan_workers`` (the auto heuristic resolves to 0 there by design).
"""

from __future__ import annotations

import glob
import os
import signal

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DegreePairTyping,
    EdgeRemovalAnonymizer,
    EdgeRemovalInsertionAnonymizer,
    OpacityComputer,
    OpacitySession,
)
from repro.core import scan_pool as scan_pool_module
from repro.core.anonymizer import AnonymizerConfig
from repro.core.scan_pool import (
    in_pool_worker,
    mark_pool_worker,
    resolve_scan_workers,
)
from repro.errors import ConfigurationError
from repro.graph import erdos_renyi_graph
from repro.graph.distance import available_engines
from repro.graph.distance_delta import DistanceSession
from repro.graph.distance_store import StoreConfig
from tests.property.strategies import graphs, length_bounds

engines = st.sampled_from(sorted(available_engines()))

#: Explicit pool size used throughout — the auto heuristic returns 0 on
#: the single-core CI machine, which would silently skip the pool path.
WORKERS = 2


def leaked_arenas():
    return glob.glob("/dev/shm/repro-arena*")


def make_candidates(graph, insertions=4):
    """Every single-edge removal plus a few insertions — a greedy-style scan."""
    pairs = [((edge,), ()) for edge in graph.edges()]
    pairs += [((), (edge,)) for edge in sorted(graph.non_edges())[:insertions]]
    return pairs


class TestResolveScanWorkers:
    def test_serial_modes_never_start_pools(self):
        assert resolve_scan_workers("batched", 4) == 0
        assert resolve_scan_workers("per_candidate", 4) == 0

    def test_explicit_request_wins(self):
        assert resolve_scan_workers("parallel", 3) == 3
        assert resolve_scan_workers("parallel", 0) == 0

    def test_auto_sizes_by_core_count(self, monkeypatch):
        monkeypatch.setattr(scan_pool_module.os, "cpu_count", lambda: 8)
        assert resolve_scan_workers("parallel", None) == 4
        monkeypatch.setattr(scan_pool_module.os, "cpu_count", lambda: 2)
        assert resolve_scan_workers("parallel", None) == 2
        monkeypatch.setattr(scan_pool_module.os, "cpu_count", lambda: 1)
        assert resolve_scan_workers("parallel", None) == 0

    def test_pool_workers_refuse_nested_pools(self, monkeypatch):
        monkeypatch.setattr(scan_pool_module, "_IN_POOL_WORKER", False)
        assert not in_pool_worker()
        assert resolve_scan_workers("parallel", 3) == 3
        mark_pool_worker()
        assert in_pool_worker()
        assert resolve_scan_workers("parallel", 3) == 0
        assert resolve_scan_workers("parallel", None) == 0

    def test_parallel_scratch_config_rejected(self):
        with pytest.raises(ConfigurationError, match="scratch"):
            AnonymizerConfig(scan_mode="parallel",
                             evaluation_mode="scratch").validate()

    def test_negative_scan_workers_rejected(self):
        with pytest.raises(ConfigurationError, match="scan_workers"):
            AnonymizerConfig(scan_workers=-1).validate()


class TestParallelScanEquivalence:
    """Differential suite: ``parallel`` ≡ ``batched`` ≡ ``per_candidate``."""

    @given(graphs(min_vertices=6, max_vertices=12), length_bounds, engines)
    @settings(max_examples=10, deadline=None)
    def test_parallel_evaluate_edits_matches_serial(self, graph, length,
                                                    engine):
        computer = OpacityComputer(DegreePairTyping(graph), length,
                                   engine=engine)
        serial = OpacitySession(computer, graph.copy(), mode="incremental")
        parallel = OpacitySession(computer, graph.copy(), mode="incremental",
                                  scan_workers=WORKERS)
        try:
            pairs = make_candidates(graph)
            expected = serial.evaluate_edits(pairs)
            assert parallel.evaluate_edits(pairs) == expected
            assert [parallel.evaluate_edit(removals, insertions)
                    for removals, insertions in pairs] == expected
            assert parallel.graph == serial.graph
        finally:
            serial.close()
            parallel.close()
        assert leaked_arenas() == []

    @given(graphs(min_vertices=6, max_vertices=12), length_bounds,
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=8, deadline=None)
    def test_scan_survives_applied_edits(self, graph, length, seed):
        """Apply a few edits between scans — pool stays in sync with parent."""
        computer = OpacityComputer(DegreePairTyping(graph), length)
        serial = OpacitySession(computer, graph.copy(), mode="incremental")
        parallel = OpacitySession(computer, graph.copy(), mode="incremental",
                                  scan_workers=WORKERS)
        try:
            for _ in range(3):
                pairs = make_candidates(parallel.graph)
                if not pairs:
                    break
                assert parallel.evaluate_edits(pairs) == \
                    serial.evaluate_edits(pairs)
                removals, insertions = pairs[seed % len(pairs)]
                serial.apply_edit(removals=removals, insertions=insertions)
                parallel.apply_edit(removals=removals, insertions=insertions)
                assert parallel.current() == serial.current()
        finally:
            serial.close()
            parallel.close()
        assert leaked_arenas() == []

    @given(st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=5, deadline=None)
    def test_rem_runs_identically(self, seed):
        graph = erdos_renyi_graph(18, 0.25, seed=seed % 97)
        self._assert_identical(
            EdgeRemovalAnonymizer,
            dict(length_threshold=2, theta=0.5, seed=seed, max_steps=4),
            graph)

    @given(st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=3, deadline=None)
    def test_rem_ins_with_lookahead_runs_identically(self, seed):
        graph = erdos_renyi_graph(14, 0.3, seed=seed % 89)
        self._assert_identical(
            EdgeRemovalInsertionAnonymizer,
            dict(length_threshold=2, theta=0.4, seed=seed, max_steps=2,
                 lookahead=2, max_combinations=40,
                 insertion_candidate_cap=20),
            graph)

    @pytest.mark.parametrize("engine", sorted(available_engines()))
    def test_engines_run_identically(self, engine):
        graph = erdos_renyi_graph(20, 0.2, seed=11)
        self._assert_identical(
            EdgeRemovalAnonymizer,
            dict(length_threshold=3, theta=0.5, seed=0, max_steps=3,
                 engine=engine),
            graph)

    def test_tiled_tier_matches_dense_serial(self):
        """Parallel scan over streamed tiles ≡ serial scan over the dense
        matrix — the strongest cross-tier differential."""
        graph = erdos_renyi_graph(24, 0.18, seed=5)
        params = dict(length_threshold=2, theta=0.5, seed=0, max_steps=4)
        reference = EdgeRemovalAnonymizer(
            evaluation_mode="incremental", scan_mode="batched",
            scale_tier="dense", **params).anonymize(graph)
        observed = EdgeRemovalAnonymizer(
            evaluation_mode="incremental", scan_mode="parallel",
            scan_workers=WORKERS, scale_tier="tiled",
            scale_budget_bytes=4096, **params).anonymize(graph)
        self._assert_results_equal(observed, reference)
        assert observed.debug_info["scan_workers"] == WORKERS
        assert leaked_arenas() == []

    @staticmethod
    def _assert_results_equal(observed, reference):
        assert [(step.operation, step.edges) for step in observed.steps] == \
               [(step.operation, step.edges) for step in reference.steps]
        assert observed.final_opacity == reference.final_opacity
        assert observed.evaluations == reference.evaluations
        assert observed.distortion == reference.distortion
        assert observed.anonymized_graph == reference.anonymized_graph

    @classmethod
    def _assert_identical(cls, algorithm, params, graph):
        reference = algorithm(evaluation_mode="incremental",
                              scan_mode="batched", **params).anonymize(graph)
        serial = algorithm(evaluation_mode="incremental",
                           scan_mode="per_candidate", **params).anonymize(graph)
        observed = algorithm(evaluation_mode="incremental",
                             scan_mode="parallel", scan_workers=WORKERS,
                             **params).anonymize(graph)
        cls._assert_results_equal(serial, reference)
        cls._assert_results_equal(observed, reference)
        assert observed.debug_info["scan_workers"] == WORKERS
        assert leaked_arenas() == []


class TestCrashSafety:
    def test_arena_is_unlinked_while_the_pool_runs(self):
        graph = erdos_renyi_graph(20, 0.25, seed=3)
        computer = OpacityComputer(DegreePairTyping(graph), 2)
        session = OpacitySession(computer, graph.copy(), mode="incremental",
                                 scan_workers=WORKERS)
        try:
            pairs = make_candidates(graph)
            session.evaluate_edits(pairs)
            assert session.parallel_scans == 1
            assert session._scan_pool is not None
            # The segment was unlinked right after the ready handshake;
            # the live pool holds only private mappings.
            assert leaked_arenas() == []
        finally:
            session.close()
        assert leaked_arenas() == []

    def test_sigkilled_worker_falls_back_serially(self):
        graph = erdos_renyi_graph(20, 0.25, seed=3)
        computer = OpacityComputer(DegreePairTyping(graph), 2)
        serial = OpacitySession(computer, graph.copy(), mode="incremental")
        parallel = OpacitySession(computer, graph.copy(), mode="incremental",
                                  scan_workers=WORKERS)
        try:
            pairs = make_candidates(graph)
            expected = serial.evaluate_edits(pairs)
            assert parallel.evaluate_edits(pairs) == expected
            pool = parallel._scan_pool
            assert pool is not None and pool.num_workers == WORKERS
            for pid in pool.worker_pids:
                os.kill(pid, signal.SIGKILL)
            # The next scan notices the dead pool, tears it down, and
            # falls back to the serial path — bit-identically, for good.
            assert parallel.evaluate_edits(pairs) == expected
            assert parallel._scan_pool is None
            assert parallel.scan_parallelism == 1
            assert parallel.evaluate_edits(pairs) == expected
        finally:
            serial.close()
            parallel.close()
        assert leaked_arenas() == []

    def test_sigkill_mid_greedy_run_keeps_results_identical(self):
        graph = erdos_renyi_graph(18, 0.25, seed=7)
        params = dict(length_threshold=2, theta=0.5, seed=0, max_steps=4)
        reference = EdgeRemovalAnonymizer(
            evaluation_mode="incremental", scan_mode="batched",
            **params).anonymize(graph)

        killed = []

        class KillAfterFirstStep(EdgeRemovalAnonymizer):
            """SIGKILL every pool worker right after the first greedy step."""

            def _perform_step(self, session, current, rng, result):
                outcome = super()._perform_step(session, current, rng, result)
                pool = session._scan_pool
                if pool is not None and not killed:
                    killed.extend(pool.worker_pids)
                    for pid in pool.worker_pids:
                        os.kill(pid, signal.SIGKILL)
                return outcome

        observed = KillAfterFirstStep(
            evaluation_mode="incremental", scan_mode="parallel",
            scan_workers=WORKERS, **params).anonymize(graph)
        assert killed, "the run never started a scan pool"
        TestParallelScanEquivalence._assert_results_equal(observed, reference)
        assert observed.debug_info["parallel_scans"] >= 1
        assert leaked_arenas() == []


class TestDebugInfoAndFallbackFraction:
    def test_debug_info_reports_the_scan_configuration(self):
        graph = erdos_renyi_graph(18, 0.25, seed=2)
        params = dict(length_threshold=2, theta=0.5, seed=0, max_steps=3)
        serial = EdgeRemovalAnonymizer(
            evaluation_mode="incremental", scan_mode="batched",
            **params).anonymize(graph)
        assert serial.debug_info["scan_workers"] == 0
        assert serial.debug_info["parallel_scans"] == 0
        assert 0.05 <= serial.debug_info["fallback_row_fraction"] <= 1.0
        parallel = EdgeRemovalAnonymizer(
            evaluation_mode="incremental", scan_mode="parallel",
            scan_workers=WORKERS, **params).anonymize(graph)
        assert parallel.debug_info["scan_workers"] == WORKERS
        assert parallel.debug_info["parallel_scans"] > 0
        assert parallel.debug_info["fallback_row_fraction"] == \
            serial.debug_info["fallback_row_fraction"]

    def test_debug_info_does_not_affect_result_equality(self):
        graph = erdos_renyi_graph(14, 0.3, seed=4)
        params = dict(length_threshold=1, theta=0.5, seed=0, max_steps=2)
        first = EdgeRemovalAnonymizer(**params).anonymize(graph)
        second = EdgeRemovalAnonymizer(**params).anonymize(graph)
        second.runtime_seconds = first.runtime_seconds
        second.debug_info["scan_workers"] = 99
        assert first == second

    def test_auto_fraction_recalibrates_from_observed_rows(self):
        graph = erdos_renyi_graph(40, 0.05, seed=9)
        session = DistanceSession(graph, 2)
        assert session.requested_fallback_fraction is None
        initial = session.fallback_row_fraction
        assert 0.05 <= initial <= 1.0
        edges = graph.edge_list()
        assert len(edges) >= 16
        for edge in edges:
            session.preview(removals=[edge])
        rows, candidates = session.take_observed_stats()
        assert candidates == len(edges)
        # The default is now measurement-driven: re-derived from the mean
        # affected-row count of the observed candidates.
        expected = min(1.0, max(
            0.05, 8.0 * (rows / candidates) / graph.num_vertices))
        assert session.fallback_row_fraction == expected
        # take_observed_stats drained the counters for the next window.
        assert session.take_observed_stats() == (0, 0)

    def test_explicit_fraction_is_never_recalibrated(self):
        graph = erdos_renyi_graph(30, 0.1, seed=9)
        session = DistanceSession(graph, 2, fallback_row_fraction=0.5)
        assert session.requested_fallback_fraction == 0.5
        for edge in graph.edge_list():
            session.preview(removals=[edge])
        assert session.fallback_row_fraction == 0.5


class TestChunkScaling:
    def test_scan_parallelism_reflects_the_pool(self):
        graph = erdos_renyi_graph(16, 0.3, seed=1)
        computer = OpacityComputer(DegreePairTyping(graph), 2)
        session = OpacitySession(computer, graph.copy(), mode="incremental",
                                 scan_workers=4)
        assert session.scan_parallelism == 4
        session.close()
        serial = OpacitySession(computer, graph.copy(), mode="incremental")
        assert serial.scan_parallelism == 1
        serial.close()
        scratch = OpacitySession(computer, graph.copy(), mode="scratch",
                                 scan_workers=4)
        assert scratch.scan_parallelism == 1
        scratch.close()

    def test_l1_sessions_stay_serial(self):
        graph = erdos_renyi_graph(16, 0.3, seed=1)
        computer = OpacityComputer(DegreePairTyping(graph), 1)
        session = OpacitySession(computer, graph.copy(), mode="incremental",
                                 scan_workers=4)
        assert session.scan_parallelism == 1
        session.close()
