"""Tests for the Theorem 1 reduction (3-SAT -> L-opacification)."""

import pytest

from repro.core.hardness import (
    SatInstance,
    brute_force_satisfiable,
    build_lopacification_instance,
    random_sat_instance,
)
from repro.errors import ConfigurationError

#: The example formula from the paper's proof of Theorem 1:
#: (a v ~b v c)(~a v ~c v d)(a v b v ~d)(a v ~b v ~c)(~b v c v d)(~a v b v ~d)
PAPER_FORMULA = SatInstance(
    num_variables=4,
    clauses=(
        ((0, False), (1, True), (2, False)),
        ((0, True), (2, True), (3, False)),
        ((0, False), (1, False), (3, True)),
        ((0, False), (1, True), (2, True)),
        ((1, True), (2, False), (3, False)),
        ((0, True), (1, False), (3, True)),
    ),
)


class TestSatInstance:
    def test_evaluate_satisfying_assignment(self):
        # a=True, b=True, c=True, d=True satisfies the paper formula.
        assert PAPER_FORMULA.evaluate((True, True, True, True))

    def test_evaluate_falsifying_assignment(self):
        instance = SatInstance(3, (((0, False), (1, False), (2, False)),))
        assert not instance.evaluate((False, False, False))

    def test_clause_arity_enforced(self):
        with pytest.raises(ConfigurationError):
            SatInstance(3, (((0, False), (1, False)),))  # type: ignore[arg-type]

    def test_variable_range_enforced(self):
        with pytest.raises(ConfigurationError):
            SatInstance(2, (((0, False), (1, False), (5, False)),))

    def test_brute_force_finds_model_for_satisfiable(self):
        assignment = brute_force_satisfiable(PAPER_FORMULA)
        assert assignment is not None
        assert PAPER_FORMULA.evaluate(assignment)

    def test_brute_force_detects_unsatisfiable(self):
        # All eight sign patterns over three variables: unsatisfiable.
        clauses = tuple(
            ((0, a), (1, b), (2, c))
            for a in (False, True) for b in (False, True) for c in (False, True))
        instance = SatInstance(3, clauses)
        assert brute_force_satisfiable(instance) is None

    def test_random_instance_shape(self):
        instance = random_sat_instance(6, 10, seed=1)
        assert instance.num_variables == 6
        assert len(instance.clauses) == 10
        for clause in instance.clauses:
            assert len({var for var, _neg in clause}) == 3


class TestReductionConstruction:
    def test_gadget_sizes_match_paper(self):
        reduction = build_lopacification_instance(PAPER_FORMULA)
        # 4 vertices per variable + 2 per literal occurrence (3 per clause).
        expected_vertices = 4 * 4 + 2 * 3 * 6
        assert reduction.graph.num_vertices == expected_vertices
        # 2 edges per variable + 2 per literal occurrence.
        assert reduction.graph.num_edges == 2 * 4 + 2 * 3 * 6
        assert reduction.length_threshold == 3
        assert reduction.removal_budget == 4

    def test_variable_types_have_two_pairs_and_clause_types_three(self):
        reduction = build_lopacification_instance(PAPER_FORMULA)
        for variable in range(PAPER_FORMULA.num_variables):
            assert reduction.typing.pair_count(("var", variable)) == 2
        for clause_index in range(len(PAPER_FORMULA.clauses)):
            assert reduction.typing.pair_count(("clause", clause_index)) == 3

    def test_clause_pairs_are_at_distance_three_initially(self):
        reduction = build_lopacification_instance(PAPER_FORMULA)
        from repro.graph.distance import floyd_warshall
        distances = floyd_warshall(reduction.graph)
        for pairs in reduction.clause_pairs.values():
            for a_vertex, b_vertex in pairs:
                assert distances[a_vertex, b_vertex] == 3

    def test_original_gadget_is_not_opacified(self):
        reduction = build_lopacification_instance(PAPER_FORMULA)
        assert not reduction.is_opacified(reduction.graph)


class TestReductionEquivalence:
    def test_satisfying_assignment_yields_opacification(self):
        reduction = build_lopacification_instance(PAPER_FORMULA)
        assignment = brute_force_satisfiable(PAPER_FORMULA)
        removals = reduction.removals_for_assignment(assignment)
        assert len(removals) == reduction.removal_budget
        assert reduction.is_opacified(reduction.apply_removals(removals))

    def test_falsifying_assignment_does_not_opacify(self):
        # a=b=c=d=False violates clause 3 (a v b v ~d)?  No: ~d is true.
        # Use an assignment that brute-force checking confirms is falsifying.
        falsifying = None
        from itertools import product
        for candidate in product((False, True), repeat=4):
            if not PAPER_FORMULA.evaluate(candidate):
                falsifying = candidate
                break
        assert falsifying is not None
        reduction = build_lopacification_instance(PAPER_FORMULA)
        removals = reduction.removals_for_assignment(falsifying)
        assert not reduction.is_opacified(reduction.apply_removals(removals))

    def test_assignment_roundtrip(self):
        reduction = build_lopacification_instance(PAPER_FORMULA)
        assignment = (True, False, True, False)
        removals = reduction.removals_for_assignment(assignment)
        assert reduction.assignment_from_removals(removals) == assignment

    def test_non_encoding_removals_rejected(self):
        reduction = build_lopacification_instance(PAPER_FORMULA)
        positive, negative = reduction.variable_edges[0]
        assert reduction.assignment_from_removals({positive, negative}) is None

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_equivalence_on_random_instances(self, seed):
        instance = random_sat_instance(4, 6, seed=seed)
        reduction = build_lopacification_instance(instance)
        sat_answer = brute_force_satisfiable(instance) is not None
        opacification_answer = reduction.solvable_with_budget() is not None
        assert sat_answer == opacification_answer
