"""Unit tests for the shared anonymizer machinery (config, tie-breaking, result)."""

import random
from fractions import Fraction

import pytest

from repro.core.anonymizer import (
    AnonymizerConfig,
    CandidateOutcome,
    TieBreaker,
)
from repro.core.edge_removal import EdgeRemovalAnonymizer
from repro.errors import ConfigurationError, InfeasibleError
from repro.graph.generators import complete_graph, erdos_renyi_graph
from repro.graph.graph import Graph


class TestAnonymizerConfig:
    def test_defaults_are_valid(self):
        AnonymizerConfig().validate()

    @pytest.mark.parametrize("field,value", [
        ("length_threshold", 0),
        ("theta", -0.1),
        ("theta", 1.5),
        ("lookahead", 0),
        ("max_steps", 0),
        ("max_combinations", 0),
        ("insertion_candidate_cap", 0),
        ("engine", "no-such-engine"),
        ("evaluation_mode", "lazy"),
        ("scan_mode", "vectorized"),
        ("swap_sample_size", 0),
    ])
    def test_invalid_values_rejected(self, field, value):
        config = AnonymizerConfig(**{field: value})
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_every_available_engine_is_valid(self):
        from repro.graph import available_engines

        for engine in available_engines():
            AnonymizerConfig(engine=engine).validate()

    def test_invalid_engine_rejected_up_front_at_construction(self):
        with pytest.raises(ConfigurationError, match="engine"):
            EdgeRemovalAnonymizer(engine="typo")

    def test_constructor_accepts_either_config_or_kwargs(self):
        config = AnonymizerConfig(theta=0.4)
        assert EdgeRemovalAnonymizer(config).config.theta == 0.4
        assert EdgeRemovalAnonymizer(theta=0.4).config.theta == 0.4
        with pytest.raises(ConfigurationError):
            EdgeRemovalAnonymizer(config, theta=0.3)

    def test_invalid_kwargs_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            EdgeRemovalAnonymizer(theta=2.0)


class TestTieBreaker:
    def _outcome(self, edge, fraction, types_at_max):
        return CandidateOutcome(edges=(edge,), fraction=fraction, types_at_max=types_at_max)

    def test_lower_opacity_wins(self):
        breaker = TieBreaker(random.Random(0))
        breaker.offer(self._outcome((0, 1), Fraction(1, 2), 3))
        breaker.offer(self._outcome((0, 2), Fraction(1, 3), 5))
        assert breaker.best.edges == ((0, 2),)

    def test_fewer_types_at_max_break_ties(self):
        breaker = TieBreaker(random.Random(0))
        breaker.offer(self._outcome((0, 1), Fraction(1, 2), 3))
        breaker.offer(self._outcome((0, 2), Fraction(1, 2), 1))
        assert breaker.best.edges == ((0, 2),)

    def test_worse_candidate_never_replaces(self):
        breaker = TieBreaker(random.Random(0))
        breaker.offer(self._outcome((0, 1), Fraction(1, 4), 1))
        breaker.offer(self._outcome((0, 2), Fraction(1, 2), 1))
        breaker.offer(self._outcome((0, 3), Fraction(1, 4), 2))
        assert breaker.best.edges == ((0, 1),)

    def test_random_tie_break_is_uniformish(self):
        counts = {(0, 1): 0, (0, 2): 0}
        for seed in range(200):
            breaker = TieBreaker(random.Random(seed))
            breaker.offer(self._outcome((0, 1), Fraction(1, 2), 1))
            breaker.offer(self._outcome((0, 2), Fraction(1, 2), 1))
            counts[breaker.best.edges[0]] += 1
        # Both candidates should win a non-trivial share of the seeds.
        assert counts[(0, 1)] > 40
        assert counts[(0, 2)] > 40


class TestAnonymizationResult:
    def test_already_opaque_graph_returns_immediately(self):
        graph = erdos_renyi_graph(20, 0.1, seed=0)
        result = EdgeRemovalAnonymizer(length_threshold=1, theta=1.0, seed=0).anonymize(graph)
        assert result.success
        assert result.num_steps == 0
        assert result.distortion == 0.0
        assert result.anonymized_graph == graph

    def test_strict_mode_raises_when_infeasible(self):
        # A complete graph needs many removals to reach theta=0; capping the
        # number of greedy steps at 1 makes the target unreachable, which the
        # strict mode must turn into an exception.
        graph = complete_graph(5)
        anonymizer = EdgeRemovalAnonymizer(length_threshold=1, theta=0.0, seed=0,
                                           max_steps=1, strict=True)
        with pytest.raises(InfeasibleError):
            anonymizer.anonymize(graph)

    def test_best_effort_mode_reports_failure(self):
        graph = complete_graph(5)
        result = EdgeRemovalAnonymizer(length_threshold=1, theta=0.0, seed=0,
                                       max_steps=1).anonymize(graph)
        assert not result.success
        assert result.final_opacity > 0.0

    def test_distortion_is_cached(self):
        graph = complete_graph(5)
        result = EdgeRemovalAnonymizer(length_threshold=1, theta=0.9, seed=0).anonymize(graph)
        first = result.distortion
        assert first > 0.0
        # Mutating the graph after the first read must not change the cached
        # value (the edit-distance comparison is not recomputed per access).
        result.anonymized_graph.remove_edge(*next(iter(result.anonymized_graph.edges())))
        assert result.distortion == first

    def test_summary_mentions_key_fields(self):
        graph = complete_graph(5)
        result = EdgeRemovalAnonymizer(length_threshold=1, theta=0.9, seed=0).anonymize(graph)
        text = result.summary()
        assert "theta=0.90" in text
        assert "distortion=" in text

    def test_original_graph_is_untouched(self):
        graph = complete_graph(6)
        before = graph.edge_set()
        EdgeRemovalAnonymizer(length_threshold=1, theta=0.5, seed=0).anonymize(graph)
        assert graph.edge_set() == before
