"""Unit tests for the stateful opacity session and the evaluation modes."""

from __future__ import annotations

import pytest

from repro.api.progress import NullObserver
from repro.baselines import (
    GadedMaxAnonymizer,
    GadedRandAnonymizer,
    GadesAnonymizer,
)
from repro.core import (
    DegreePairTyping,
    EdgeRemovalAnonymizer,
    EdgeRemovalInsertionAnonymizer,
    ExplicitPairTyping,
    OpacityComputer,
    OpacitySession,
)
from repro.errors import ConfigurationError
from repro.graph import Graph, erdos_renyi_graph

ALL_ALGORITHMS = [
    (EdgeRemovalAnonymizer, dict(length_threshold=2, theta=0.4, seed=0)),
    (EdgeRemovalInsertionAnonymizer,
     dict(length_threshold=2, theta=0.5, seed=1, insertion_candidate_cap=40)),
    (GadedRandAnonymizer, dict(theta=0.4, seed=0)),
    (GadedMaxAnonymizer, dict(theta=0.4, seed=0)),
    (GadesAnonymizer, dict(theta=0.55, seed=0, max_steps=4, swap_sample_size=200)),
]


def assert_results_identical(first, second):
    assert [(step.operation, step.edges, step.max_opacity_after)
            for step in first.steps] == \
           [(step.operation, step.edges, step.max_opacity_after)
            for step in second.steps]
    assert first.final_opacity == second.final_opacity
    assert first.evaluations == second.evaluations
    assert first.success == second.success
    assert first.stop_reason == second.stop_reason
    assert first.anonymized_graph == second.anonymized_graph
    assert first.distortion == second.distortion


class TestSessionBasics:
    def test_rejects_unknown_mode(self, paper_example_graph):
        computer = OpacityComputer(DegreePairTyping(paper_example_graph), 2)
        with pytest.raises(ConfigurationError):
            OpacitySession(computer, paper_example_graph, mode="lazy")

    @pytest.mark.parametrize("mode", ["scratch", "incremental"])
    def test_current_matches_stateless_evaluator(self, paper_example_graph, mode):
        computer = OpacityComputer(DegreePairTyping(paper_example_graph), 2)
        session = OpacitySession(computer, paper_example_graph, mode=mode)
        expected = computer.evaluate(paper_example_graph)
        observed = session.current()
        assert observed.max_fraction == expected.max_fraction
        assert observed.types_at_max == expected.types_at_max
        assert dict(observed.per_type) == dict(expected.per_type)

    @pytest.mark.parametrize("mode", ["scratch", "incremental"])
    def test_evaluate_edit_leaves_no_trace(self, paper_example_graph, mode):
        computer = OpacityComputer(DegreePairTyping(paper_example_graph), 2)
        session = OpacitySession(computer, paper_example_graph, mode=mode)
        before = paper_example_graph.edge_set()
        session.evaluate_edit(removals=[(0, 1)])
        session.evaluate_edit(insertions=[(0, 6)])
        assert paper_example_graph.edge_set() == before

    def test_evaluate_edit_matches_scratch_reference(self, paper_example_graph):
        typing = DegreePairTyping(paper_example_graph)
        computer = OpacityComputer(typing, 2)
        incremental = OpacitySession(computer, paper_example_graph.copy(),
                                     mode="incremental")
        scratch = OpacitySession(computer, paper_example_graph.copy(),
                                 mode="scratch")
        for edge in list(paper_example_graph.edges()):
            left = incremental.evaluate_edit(removals=[edge])
            right = scratch.evaluate_edit(removals=[edge])
            assert left == right
        for edge in list(paper_example_graph.non_edges()):
            left = incremental.evaluate_edit(insertions=[edge])
            right = scratch.evaluate_edit(insertions=[edge])
            assert left == right

    def test_apply_edit_keeps_state_in_sync(self, paper_example_graph):
        typing = DegreePairTyping(paper_example_graph)
        computer = OpacityComputer(typing, 2)
        session = OpacitySession(computer, paper_example_graph, mode="incremental")
        session.apply_edit(removals=[(0, 1)])
        session.apply_edit(insertions=[(0, 6)])
        expected = computer.evaluate(paper_example_graph)
        observed = session.current()
        assert observed.max_fraction == expected.max_fraction
        assert dict(observed.per_type) == dict(expected.per_type)

    def test_explicit_typing_deltas(self):
        graph = Graph(5, edges=[(0, 1), (1, 2), (2, 3), (3, 4)])
        typing = ExplicitPairTyping({(0, 2): "near", (0, 4): "far", (1, 3): "near"})
        computer = OpacityComputer(typing, 2)
        incremental = OpacitySession(computer, graph.copy(), mode="incremental")
        scratch = OpacitySession(computer, graph.copy(), mode="scratch")
        assert incremental.evaluate_edit(removals=[(1, 2)]) == \
            scratch.evaluate_edit(removals=[(1, 2)])
        assert incremental.evaluate_edit(insertions=[(0, 4)]) == \
            scratch.evaluate_edit(insertions=[(0, 4)])
        incremental.apply_edit(removals=[(1, 2)])
        expected = computer.evaluate(incremental.graph)
        assert incremental.current().max_fraction == expected.max_fraction


class TestModeEquivalence:
    @pytest.mark.parametrize("algorithm,params", ALL_ALGORITHMS)
    def test_end_to_end_runs_are_bit_identical(self, algorithm, params):
        graph = erdos_renyi_graph(22, 0.25, seed=9)
        incremental = algorithm(evaluation_mode="incremental", **params).anonymize(graph)
        scratch = algorithm(evaluation_mode="scratch", **params).anonymize(graph)
        assert_results_identical(incremental, scratch)


class _StopAfterEvaluations(NullObserver):
    """Stop the run once ``limit`` tentative evaluations have been observed."""

    def __init__(self, limit):
        self.limit = limit
        self.seen = 0

    def on_evaluation(self, evaluations):
        self.seen = evaluations

    def should_stop(self):
        return self.seen >= self.limit


class TestObserverParity:
    """Cancellation latency is unchanged by the session refactor: observers
    are still polled after *every* tentative evaluation inside a scan, so an
    eval-count stop fires at the same point in both modes (satellite #6)."""

    @pytest.mark.parametrize("algorithm,params", ALL_ALGORITHMS)
    @pytest.mark.parametrize("limit", [3, 17])
    def test_stop_mid_scan_is_mode_independent(self, algorithm, params, limit):
        graph = erdos_renyi_graph(22, 0.25, seed=9)
        outcomes = {}
        for mode in ("incremental", "scratch"):
            observer = _StopAfterEvaluations(limit)
            result = algorithm(evaluation_mode=mode, **params).anonymize(
                graph, observer=observer)
            outcomes[mode] = (result.evaluations, result.stop_reason,
                              [step.edges for step in result.steps],
                              result.anonymized_graph.edge_set())
        assert outcomes["incremental"] == outcomes["scratch"]
        # The stop happened promptly: no more than one full step beyond the
        # evaluation budget was recorded.
        assert outcomes["incremental"][1] in ("observer", None)

    def test_stop_interrupts_within_a_single_scan(self):
        graph = erdos_renyi_graph(25, 0.3, seed=2)
        limit = 5
        for mode in ("incremental", "scratch"):
            observer = _StopAfterEvaluations(limit)
            result = EdgeRemovalAnonymizer(
                length_threshold=2, theta=0.0, seed=0,
                evaluation_mode=mode).anonymize(graph, observer=observer)
            assert result.stop_reason == "observer"
            # The scan for a single step spans |E| evaluations, so stopping
            # at 5 proves per-evaluation polling survived the refactor.
            assert result.evaluations <= limit + 2


class TestEvaluateEdits:
    """The batched scan API must reproduce per-candidate evaluation exactly."""

    @pytest.mark.parametrize("mode", ["scratch", "incremental"])
    def test_single_edge_batches_match_per_candidate(self, paper_example_graph, mode):
        computer = OpacityComputer(DegreePairTyping(paper_example_graph), 2)
        session = OpacitySession(computer, paper_example_graph, mode=mode)
        removals = [((edge,), ()) for edge in paper_example_graph.edges()]
        insertions = [((), (edge,)) for edge in paper_example_graph.non_edges()]
        for candidates in (removals, insertions):
            expected = [session.evaluate_edit(r, i) for r, i in candidates]
            assert session.evaluate_edits(candidates) == expected

    @pytest.mark.parametrize("mode", ["scratch", "incremental"])
    def test_multi_edge_candidates_match_per_candidate(self, mode):
        graph = erdos_renyi_graph(14, 0.3, seed=5)
        computer = OpacityComputer(DegreePairTyping(graph), 1)
        session = OpacitySession(computer, graph, mode=mode)
        edges = list(graph.edges())
        absent = list(graph.non_edges())
        candidates = [((edges[0], edges[1]), (absent[0], absent[1])),
                      ((edges[2],), (absent[2],)),
                      ((), (absent[3], absent[4]))]
        expected = [session.evaluate_edit(r, i) for r, i in candidates]
        assert session.evaluate_edits(candidates) == expected

    def test_batch_leaves_no_trace(self, paper_example_graph):
        computer = OpacityComputer(DegreePairTyping(paper_example_graph), 2)
        session = OpacitySession(computer, paper_example_graph, mode="incremental")
        before = paper_example_graph.edge_set()
        current = session.current()
        session.evaluate_edits([((edge,), ()) for edge in before])
        assert paper_example_graph.edge_set() == before
        assert session.current().max_fraction == current.max_fraction

    def test_empty_candidate_list(self, paper_example_graph):
        computer = OpacityComputer(DegreePairTyping(paper_example_graph), 2)
        session = OpacitySession(computer, paper_example_graph, mode="incremental")
        assert session.evaluate_edits([]) == []

    def test_explicit_typing_batches_match_per_candidate(self):
        graph = Graph(5, edges=[(0, 1), (1, 2), (2, 3), (3, 4)])
        typing = ExplicitPairTyping({(0, 2): "near", (0, 4): "far", (1, 3): "near"})
        computer = OpacityComputer(typing, 2)
        session = OpacitySession(computer, graph, mode="incremental")
        candidates = [((edge,), ()) for edge in graph.edges()]
        expected = [session.evaluate_edit(r, i) for r, i in candidates]
        assert session.evaluate_edits(candidates) == expected

    def test_batches_interleaved_with_applied_edits(self, paper_example_graph):
        computer = OpacityComputer(DegreePairTyping(paper_example_graph), 2)
        session = OpacitySession(computer, paper_example_graph, mode="incremental")
        for _ in range(3):
            candidates = [((edge,), ()) for edge in session.graph.edges()]
            evaluations = session.evaluate_edits(candidates)
            expected = [session.evaluate_edit(r, i) for r, i in candidates]
            assert evaluations == expected
            best = min(range(len(evaluations)),
                       key=lambda pos: evaluations[pos].fraction)
            session.apply_edit(*candidates[best])


class TestViolatingPairIndices:
    def _max_types(self, session):
        current = session.current()
        return {key for key, entry in current.per_type.items()
                if entry.fraction == current.max_fraction}

    def test_incremental_mask_tracks_scratch_across_edits(self):
        graph = erdos_renyi_graph(16, 0.25, seed=3)
        computer = OpacityComputer(DegreePairTyping(graph), 2)
        incremental = OpacitySession(computer, graph.copy(), mode="incremental")
        scratch = OpacitySession(computer, graph.copy(), mode="scratch")
        for _ in range(6):
            max_types = self._max_types(incremental)
            left = incremental.violating_pair_indices(max_types)
            right = scratch.violating_pair_indices(max_types)
            assert left[0].tolist() == right[0].tolist()
            assert left[1].tolist() == right[1].tolist()
            edges = list(incremental.graph.edges())
            if not edges:
                break
            incremental.apply_edit(removals=[edges[0]])
            scratch.apply_edit(removals=[edges[0]])

    def test_mask_survives_from_scratch_fallback_deltas(self):
        graph = erdos_renyi_graph(16, 0.25, seed=4)
        computer = OpacityComputer(DegreePairTyping(graph), 2)
        incremental = OpacitySession(computer, graph.copy(), mode="incremental",
                                     fallback_row_fraction=0.0)
        scratch = OpacitySession(computer, graph.copy(), mode="scratch")
        max_types = self._max_types(incremental)
        incremental.violating_pair_indices(max_types)  # materialize the mask
        for edge in list(graph.edges())[:4]:
            incremental.apply_edit(removals=[edge])
            scratch.apply_edit(removals=[edge])
        max_types = self._max_types(incremental)
        left = incremental.violating_pair_indices(max_types)
        right = scratch.violating_pair_indices(max_types)
        assert left[0].tolist() == right[0].tolist()
        assert left[1].tolist() == right[1].tolist()


class TestScanModeEquivalence:
    @pytest.mark.parametrize("algorithm,params", ALL_ALGORITHMS)
    def test_end_to_end_runs_are_bit_identical(self, algorithm, params):
        graph = erdos_renyi_graph(22, 0.25, seed=9)
        batched = algorithm(scan_mode="batched", **params).anonymize(graph)
        sequential = algorithm(scan_mode="per_candidate", **params).anonymize(graph)
        assert_results_identical(batched, sequential)

    @pytest.mark.parametrize("algorithm,params", ALL_ALGORITHMS)
    def test_stop_mid_scan_is_scan_mode_independent(self, algorithm, params):
        graph = erdos_renyi_graph(22, 0.25, seed=9)
        outcomes = {}
        for scan_mode in ("per_candidate", "batched"):
            observer = _StopAfterEvaluations(9)
            result = algorithm(scan_mode=scan_mode, **params).anonymize(
                graph, observer=observer)
            outcomes[scan_mode] = (result.evaluations, result.stop_reason,
                                   [step.edges for step in result.steps],
                                   result.anonymized_graph.edge_set())
        assert outcomes["per_candidate"] == outcomes["batched"]

    def test_rejects_unknown_scan_mode(self):
        with pytest.raises(ConfigurationError):
            EdgeRemovalAnonymizer(scan_mode="vectorized")
        with pytest.raises(ConfigurationError):
            GadesAnonymizer(scan_mode="vectorized")


class TestLengthOneFastPath:
    """At L = 1 a batched scan skips the distance machinery entirely; its
    results (and the graph left behind) must match the slow paths exactly."""

    def test_l1_batch_matches_per_candidate_and_scratch(self):
        graph = erdos_renyi_graph(16, 0.3, seed=9)
        computer = OpacityComputer(DegreePairTyping(graph), 1)
        incremental = OpacitySession(computer, graph.copy(), mode="incremental")
        scratch = OpacitySession(computer, graph.copy(), mode="scratch")
        edges = list(graph.edges())
        absent = list(graph.non_edges())
        candidates = ([((edge,), ()) for edge in edges[:8]]
                      + [((), (edge,)) for edge in absent[:5]]
                      # a GADES-style swap: two removals plus two insertions
                      + [((edges[0], edges[1]), (absent[5], absent[6]))])
        batched = incremental.evaluate_edits(candidates)
        assert batched == [incremental.evaluate_edit(r, i) for r, i in candidates]
        assert batched == scratch.evaluate_edits(candidates)

    def test_l1_batch_leaves_no_trace(self):
        graph = erdos_renyi_graph(12, 0.3, seed=4)
        computer = OpacityComputer(DegreePairTyping(graph), 1)
        session = OpacitySession(computer, graph, mode="incremental")
        before = graph.edge_set()
        session.evaluate_edits([((edge,), ()) for edge in before])
        assert graph.edge_set() == before

    def test_l1_batch_after_applied_edits(self):
        graph = erdos_renyi_graph(12, 0.35, seed=6)
        computer = OpacityComputer(DegreePairTyping(graph), 1)
        session = OpacitySession(computer, graph, mode="incremental")
        for _ in range(2):
            candidates = [((edge,), ()) for edge in session.graph.edges()]
            evaluations = session.evaluate_edits(candidates)
            assert evaluations == [session.evaluate_edit(r, i)
                                   for r, i in candidates]
            best = min(range(len(evaluations)),
                       key=lambda pos: evaluations[pos].fraction)
            session.apply_edit(*candidates[best])
