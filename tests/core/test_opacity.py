"""Unit tests for the opacity computation (Algorithm 1, Figures 4 and 5)."""

from fractions import Fraction

import pytest

from repro.core.opacity import OpacityComputer, max_lo
from repro.core.pair_types import DegreePairTyping, ExplicitPairTyping
from repro.errors import ConfigurationError
from repro.graph.distance import available_engines
from repro.graph.generators import complete_graph, erdos_renyi_graph, path_graph
from repro.graph.graph import Graph


class TestPaperExampleOpacity:
    """Figure 5c of the paper gives the full opacity matrix for L = 1."""

    EXPECTED_L1 = {
        (1, 3): Fraction(1, 1),
        (2, 4): Fraction(2, 3),    # 4 of 6 pairs connected
        (3, 4): Fraction(2, 3),    # 2 of 3 pairs connected
        (4, 4): Fraction(1, 1),    # the triangle v2-v3-v5
        (1, 2): Fraction(0),
        (1, 4): Fraction(0),
        (2, 2): Fraction(0),
        (2, 3): Fraction(0),
    }

    def test_per_type_opacities_match_figure_5c(self, paper_example_graph):
        typing = DegreePairTyping(paper_example_graph)
        computer = OpacityComputer(typing, length_threshold=1)
        result = computer.evaluate(paper_example_graph)
        for type_key, expected in self.EXPECTED_L1.items():
            assert result.per_type[type_key].fraction == expected, type_key

    def test_within_counts_match_figure_5a(self, paper_example_graph):
        typing = DegreePairTyping(paper_example_graph)
        result = OpacityComputer(typing, 1).evaluate(paper_example_graph)
        assert result.per_type[(2, 4)].within_threshold == 4
        assert result.per_type[(3, 4)].within_threshold == 2
        assert result.per_type[(4, 4)].within_threshold == 3
        assert result.per_type[(1, 3)].within_threshold == 1

    def test_max_opacity_is_one_with_two_types_at_max(self, paper_example_graph):
        typing = DegreePairTyping(paper_example_graph)
        result = OpacityComputer(typing, 1).evaluate(paper_example_graph)
        assert result.max_opacity == 1.0
        assert result.types_at_max == 2   # (1,3) and (4,4)

    @pytest.mark.parametrize("engine", available_engines())
    def test_all_engines_agree_on_example(self, paper_example_graph, engine):
        typing = DegreePairTyping(paper_example_graph)
        for length in (1, 2, 3):
            value = OpacityComputer(typing, length, engine=engine).max_opacity(
                paper_example_graph)
            reference = OpacityComputer(typing, length).max_opacity(paper_example_graph)
            assert value == pytest.approx(reference)

    def test_l3_makes_everything_visible(self, paper_example_graph):
        # The example's diameter is 3, so with L = 3 every pair is within
        # threshold and every non-empty type has opacity 1.
        typing = DegreePairTyping(paper_example_graph)
        result = OpacityComputer(typing, 3).evaluate(paper_example_graph)
        assert all(entry.fraction == 1 for entry in result.per_type.values())


class TestOpacityResult:
    def test_is_opaque_strict_and_nonstrict(self, paper_example_graph):
        typing = DegreePairTyping(paper_example_graph)
        result = OpacityComputer(typing, 1).evaluate(paper_example_graph)
        assert result.is_opaque(1.0) is True            # algorithm semantics: <=
        assert result.is_opaque(1.0, strict=True) is False  # Definition 3: <
        assert result.is_opaque(0.5) is False

    def test_violating_types(self, paper_example_graph):
        typing = DegreePairTyping(paper_example_graph)
        result = OpacityComputer(typing, 1).evaluate(paper_example_graph)
        violating = set(result.violating_types(0.7))
        assert violating == {(1, 3), (4, 4)}

    def test_opacity_of_unknown_type_is_zero(self, paper_example_graph):
        typing = DegreePairTyping(paper_example_graph)
        result = OpacityComputer(typing, 1).evaluate(paper_example_graph)
        assert result.opacity_of((9, 9)) == 0.0


class TestEdgeCases:
    def test_empty_graph(self):
        graph = Graph(4)
        result = OpacityComputer(DegreePairTyping(graph), 2).evaluate(graph)
        assert result.max_opacity == 0.0

    def test_single_vertex(self):
        graph = Graph(1)
        result = OpacityComputer(DegreePairTyping(graph), 1).evaluate(graph)
        assert result.max_opacity == 0.0
        assert result.types_at_max == 0

    def test_complete_graph_is_fully_disclosed(self):
        graph = complete_graph(6)
        assert max_lo(graph, DegreePairTyping(graph), 1) == 1.0

    def test_path_graph_l1(self):
        graph = path_graph(4)
        typing = DegreePairTyping(graph)
        result = OpacityComputer(typing, 1).evaluate(graph)
        # Degree-1 endpoints never touch each other, both touch a degree-2 vertex.
        assert result.per_type[(1, 1)].fraction == 0
        assert result.per_type[(1, 2)].fraction == Fraction(2, 4)
        assert result.per_type[(2, 2)].fraction == Fraction(1, 1)

    def test_invalid_length_rejected(self, triangle_graph):
        with pytest.raises(ConfigurationError):
            OpacityComputer(DegreePairTyping(triangle_graph), 0)

    def test_caller_supplied_distances_are_used(self, paper_example_graph):
        typing = DegreePairTyping(paper_example_graph)
        computer = OpacityComputer(typing, 2)
        distances = computer.distances(paper_example_graph)
        direct = computer.evaluate(paper_example_graph)
        reused = computer.evaluate(paper_example_graph, distances=distances)
        assert direct.max_fraction == reused.max_fraction


class TestExplicitTypingOpacity:
    def test_only_listed_pairs_counted(self, paper_example_graph):
        typing = ExplicitPairTyping({(0, 1): "watched", (0, 6): "watched"})
        result = OpacityComputer(typing, 1).evaluate(paper_example_graph)
        # (0,1) is an edge, (0,6) is at distance 3.
        assert result.per_type["watched"].fraction == Fraction(1, 2)

    def test_generic_fallback_for_custom_typing(self, paper_example_graph):
        class EverythingSameType(DegreePairTyping.__bases__[0]):  # PairTyping
            def type_of(self, u, v):
                return "all" if u != v else None

            def types(self):
                return iter(["all"])

            def pair_count(self, type_key):
                return 21 if type_key == "all" else 0

        typing = EverythingSameType()
        result = OpacityComputer(typing, 1).evaluate(paper_example_graph)
        assert result.per_type["all"].fraction == Fraction(10, 21)


class TestExplicitTypingVectorizedCounts:
    """The interned-code bincount tally must match a per-pair reference loop."""

    def test_counts_match_reference_loop(self):
        import random

        from repro.graph.generators import erdos_renyi_graph
        from repro.graph.matrices import UNREACHABLE

        rng = random.Random(17)
        graph = erdos_renyi_graph(25, 0.2, seed=17)
        pair_types = {}
        for u in range(25):
            for v in range(u + 1, 25):
                if rng.random() < 0.4:
                    pair_types[(u, v)] = f"t{rng.randrange(4)}"
        typing = ExplicitPairTyping(pair_types)
        for length in (1, 2, 3):
            computer = OpacityComputer(typing, length)
            distances = computer.distances(graph)
            reference = {}
            for (u, v) in typing.all_pairs():
                distance = int(distances[u, v])
                if distance != UNREACHABLE and distance <= length:
                    key = typing.type_of(u, v)
                    reference[key] = reference.get(key, 0) + 1
            assert computer.within_counts(distances) == reference

    def test_interned_arrays_are_cached(self):
        typing = ExplicitPairTyping({(0, 1): "a", (1, 2): "b"})
        computer = OpacityComputer(typing, 1)
        first = computer._explicit_pair_arrays()
        assert computer._explicit_pair_arrays() is first
