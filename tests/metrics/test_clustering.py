"""Unit tests for the clustering-coefficient utility metric (Figure 8)."""

import pytest

from repro.errors import ConfigurationError
from repro.graph.generators import complete_graph, erdos_renyi_graph
from repro.graph.graph import Graph
from repro.metrics.clustering import (
    clustering_coefficient_differences,
    mean_clustering_difference,
)


class TestClusteringDifferences:
    def test_identical_graphs_have_zero_difference(self, paper_example_graph):
        assert mean_clustering_difference(paper_example_graph,
                                          paper_example_graph.copy()) == 0.0

    def test_breaking_a_triangle_changes_cc(self, triangle_graph):
        modified = triangle_graph.copy()
        modified.remove_edge(0, 1)
        differences = clustering_coefficient_differences(triangle_graph, modified)
        # Vertex 2 keeps both neighbors but they are no longer connected.
        assert differences[2] == pytest.approx(1.0)
        assert mean_clustering_difference(triangle_graph, modified) == pytest.approx(1.0)

    def test_per_vertex_length(self, paper_example_graph):
        modified = paper_example_graph.copy()
        modified.remove_edge(1, 2)
        differences = clustering_coefficient_differences(paper_example_graph, modified)
        assert len(differences) == paper_example_graph.num_vertices
        assert all(value >= 0 for value in differences)

    def test_mismatched_graphs_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_clustering_difference(Graph(3), Graph(4))

    def test_empty_graphs(self):
        assert mean_clustering_difference(Graph(0), Graph(0)) == 0.0

    def test_removal_from_complete_graph_reduces_clustering(self):
        graph = complete_graph(6)
        modified = graph.copy()
        modified.remove_edge(0, 1)
        assert mean_clustering_difference(graph, modified) > 0.0

    def test_metric_is_symmetric(self):
        original = erdos_renyi_graph(20, 0.3, seed=0)
        modified = original.copy()
        edge = next(iter(modified.edges()))
        modified.remove_edge(*edge)
        assert mean_clustering_difference(original, modified) == pytest.approx(
            mean_clustering_difference(modified, original))
