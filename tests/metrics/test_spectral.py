"""Unit tests for the spectral utility metrics."""

import math

import pytest

from repro.graph.generators import complete_graph, cycle_graph, path_graph
from repro.graph.graph import Graph
from repro.metrics.spectral import (
    algebraic_connectivity,
    laplacian_matrix,
    largest_adjacency_eigenvalue,
    spectral_gap,
)


class TestAdjacencySpectrum:
    def test_complete_graph_largest_eigenvalue(self):
        # K_n has largest adjacency eigenvalue n - 1.
        assert largest_adjacency_eigenvalue(complete_graph(6)) == pytest.approx(5.0)

    def test_single_edge_eigenvalue(self):
        assert largest_adjacency_eigenvalue(Graph(2, edges=[(0, 1)])) == pytest.approx(1.0)

    def test_empty_graph(self):
        assert largest_adjacency_eigenvalue(Graph(0)) == 0.0

    def test_spectral_gap_of_complete_graph(self):
        # Eigenvalues of K_n: n-1 once and -1 with multiplicity n-1 -> gap n.
        assert spectral_gap(complete_graph(5)) == pytest.approx(5.0)


class TestLaplacian:
    def test_laplacian_rows_sum_to_zero(self, paper_example_graph):
        laplacian = laplacian_matrix(paper_example_graph)
        assert laplacian.sum(axis=1) == pytest.approx([0.0] * 7)

    def test_connected_graph_has_positive_connectivity(self):
        assert algebraic_connectivity(cycle_graph(6)) > 0.0

    def test_disconnected_graph_has_zero_connectivity(self, disconnected_graph):
        assert algebraic_connectivity(disconnected_graph) == pytest.approx(0.0, abs=1e-9)

    def test_path_graph_known_value(self):
        # Algebraic connectivity of P_n is 2(1 - cos(pi/n)).
        expected = 2 * (1 - math.cos(math.pi / 4))
        assert algebraic_connectivity(path_graph(4)) == pytest.approx(expected)

    def test_tiny_graph_returns_zero(self):
        assert algebraic_connectivity(Graph(1)) == 0.0
