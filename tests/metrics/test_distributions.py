"""Unit tests for degree and geodesic distributions."""

import pytest

from repro.graph.generators import complete_graph, path_graph
from repro.graph.graph import Graph
from repro.graph.matrices import UNREACHABLE
from repro.metrics.distributions import (
    degree_distribution,
    geodesic_distribution,
    normalize_distribution,
)


class TestDegreeDistribution:
    def test_complete_graph(self):
        distribution = degree_distribution(complete_graph(5))
        assert distribution == {4: 1.0}

    def test_paper_example(self, paper_example_graph):
        distribution = degree_distribution(paper_example_graph)
        assert distribution[4] == pytest.approx(3 / 7)
        assert distribution[2] == pytest.approx(2 / 7)
        assert distribution[1] == pytest.approx(1 / 7)
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_empty_graph(self):
        assert degree_distribution(Graph(0)) == {}


class TestGeodesicDistribution:
    def test_path_graph(self):
        distribution = geodesic_distribution(path_graph(4))
        assert distribution[1] == pytest.approx(3 / 6)
        assert distribution[2] == pytest.approx(2 / 6)
        assert distribution[3] == pytest.approx(1 / 6)

    def test_includes_unreachable_mass(self, disconnected_graph):
        distribution = geodesic_distribution(disconnected_graph)
        assert distribution[UNREACHABLE] == pytest.approx(8 / 10)
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_can_exclude_unreachable(self, disconnected_graph):
        distribution = geodesic_distribution(disconnected_graph, include_unreachable=False)
        assert UNREACHABLE not in distribution

    def test_single_vertex(self):
        assert geodesic_distribution(Graph(1)) == {}


class TestNormalize:
    def test_normalizes_to_unit_mass(self):
        normalized = normalize_distribution({1: 2.0, 2: 6.0})
        assert normalized == {1: 0.25, 2: 0.75}

    def test_empty_histogram_passthrough(self):
        assert normalize_distribution({}) == {}

    def test_zero_mass_passthrough(self):
        assert normalize_distribution({3: 0.0}) == {3: 0.0}
