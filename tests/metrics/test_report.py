"""Unit tests for the combined utility report."""

import pytest

from repro.core.edge_removal import EdgeRemovalAnonymizer
from repro.graph.generators import erdos_renyi_graph
from repro.metrics.report import UtilityReport, utility_report


class TestUtilityReport:
    def test_identity_report_is_all_zero(self, paper_example_graph):
        report = utility_report(paper_example_graph, paper_example_graph.copy())
        assert report.distortion == 0.0
        assert report.degree_emd == pytest.approx(0.0)
        assert report.geodesic_emd == pytest.approx(0.0)
        assert report.mean_clustering_difference == 0.0
        assert report.eigenvalue_shift == pytest.approx(0.0)

    def test_report_after_anonymization_is_consistent(self):
        graph = erdos_renyi_graph(25, 0.25, seed=1)
        result = EdgeRemovalAnonymizer(length_threshold=1, theta=0.5, seed=0).anonymize(graph)
        report = utility_report(result.original_graph, result.anonymized_graph)
        assert report.distortion == pytest.approx(result.distortion)
        assert report.degree_emd >= 0.0
        assert report.geodesic_emd >= 0.0
        assert report.mean_clustering_difference >= 0.0

    def test_spectral_metrics_optional(self, paper_example_graph):
        modified = paper_example_graph.copy()
        modified.remove_edge(1, 2)
        with_spectral = utility_report(paper_example_graph, modified)
        without = utility_report(paper_example_graph, modified, include_spectral=False)
        assert with_spectral.eigenvalue_shift > 0.0
        assert without.eigenvalue_shift == 0.0
        assert with_spectral.distortion == without.distortion

    def test_as_dict_round_trip(self, paper_example_graph):
        report = utility_report(paper_example_graph, paper_example_graph.copy())
        payload = report.as_dict()
        assert set(payload) == {"distortion", "degree_emd", "geodesic_emd",
                                "mean_cc_diff", "eigenvalue_shift", "connectivity_shift"}
        assert isinstance(report, UtilityReport)
