"""Unit tests for the distortion measure (Equation 1)."""

import pytest

from repro.errors import ConfigurationError
from repro.graph.generators import complete_graph, erdos_renyi_graph
from repro.graph.graph import Graph
from repro.metrics.distortion import edge_edit_distance, edit_distance_ratio


class TestEditDistance:
    def test_identical_graphs(self, paper_example_graph):
        assert edge_edit_distance(paper_example_graph, paper_example_graph.copy()) == 0
        assert edit_distance_ratio(paper_example_graph, paper_example_graph.copy()) == 0.0

    def test_single_removal(self, paper_example_graph):
        modified = paper_example_graph.copy()
        modified.remove_edge(5, 6)
        assert edge_edit_distance(paper_example_graph, modified) == 1
        assert edit_distance_ratio(paper_example_graph, modified) == pytest.approx(0.1)

    def test_removal_plus_insertion_counts_both(self, paper_example_graph):
        modified = paper_example_graph.copy()
        modified.remove_edge(5, 6)
        modified.add_edge(0, 6)
        assert edge_edit_distance(paper_example_graph, modified) == 2
        assert edit_distance_ratio(paper_example_graph, modified) == pytest.approx(0.2)

    def test_symmetric_in_the_difference(self):
        first = complete_graph(5)
        second = Graph(5)
        assert edge_edit_distance(first, second) == 10
        assert edge_edit_distance(second, first) == 10

    def test_ratio_normalized_by_original_edges(self):
        original = Graph(4, edges=[(0, 1), (1, 2)])
        modified = Graph(4, edges=[(0, 1), (1, 2), (2, 3), (0, 3)])
        assert edit_distance_ratio(original, modified) == pytest.approx(1.0)

    def test_empty_original_graph(self):
        empty = Graph(3)
        assert edit_distance_ratio(empty, empty.copy()) == 0.0
        assert edit_distance_ratio(empty, Graph(3, edges=[(0, 1)])) == float("inf")

    def test_mismatched_vertex_sets_rejected(self):
        with pytest.raises(ConfigurationError):
            edit_distance_ratio(Graph(3), Graph(4))

    def test_random_graph_self_distance_zero(self):
        graph = erdos_renyi_graph(20, 0.3, seed=0)
        assert edit_distance_ratio(graph, graph.copy()) == 0.0
