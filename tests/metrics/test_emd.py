"""Unit tests for the Earth Mover's Distance implementation."""

import pytest

from repro.graph.matrices import UNREACHABLE
from repro.metrics.emd import earth_movers_distance, emd_between_histograms


class TestEmdBetweenHistograms:
    def test_identical_histograms(self):
        histogram = {1: 0.5, 2: 0.3, 3: 0.2}
        assert emd_between_histograms(histogram, dict(histogram)) == pytest.approx(0.0)

    def test_unit_shift_by_one_bin(self):
        assert emd_between_histograms({0: 1.0}, {1: 1.0}) == pytest.approx(1.0)

    def test_shift_distance_scales_with_gap(self):
        assert emd_between_histograms({0: 1.0}, {5: 1.0}) == pytest.approx(5.0)

    def test_partial_mass_move(self):
        first = {0: 0.5, 1: 0.5}
        second = {0: 1.0}
        assert emd_between_histograms(first, second) == pytest.approx(0.5)

    def test_symmetry(self):
        first = {0: 0.7, 2: 0.3}
        second = {1: 0.4, 3: 0.6}
        assert emd_between_histograms(first, second) == pytest.approx(
            emd_between_histograms(second, first))

    def test_triangle_inequality_on_samples(self):
        a = {0: 0.5, 1: 0.5}
        b = {1: 1.0}
        c = {2: 1.0}
        assert emd_between_histograms(a, c) <= (
            emd_between_histograms(a, b) + emd_between_histograms(b, c) + 1e-12)

    def test_unnormalized_inputs_are_normalized(self):
        first = {0: 2.0, 1: 2.0}
        second = {0: 1.0, 1: 1.0}
        assert emd_between_histograms(first, second) == pytest.approx(0.0)

    def test_empty_histograms(self):
        assert emd_between_histograms({}, {}) == 0.0

    def test_unreachable_mapped_next_to_largest_finite_bin(self):
        # One pair moved from distance 2 to "unreachable": should cost exactly
        # one step (the unreachable bin sits at max finite distance + 1).
        first = {1: 0.5, 2: 0.5}
        second = {1: 0.5, UNREACHABLE: 0.5}
        assert emd_between_histograms(first, second) == pytest.approx(0.5)


class TestAlignedSequences:
    def test_aligned_sequences(self):
        assert earth_movers_distance([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            earth_movers_distance([1.0], [0.5, 0.5])
