"""Unit tests for the GADES edge-swap baseline."""

import pytest

from repro.baselines.gades import GadesAnonymizer
from repro.errors import ConfigurationError
from repro.graph.generators import complete_graph, erdos_renyi_graph, star_graph


class TestGades:
    def test_preserves_every_degree(self):
        graph = erdos_renyi_graph(25, 0.2, seed=0)
        result = GadesAnonymizer(theta=0.3, seed=0, max_steps=10).anonymize(graph)
        assert result.anonymized_graph.degrees() == graph.degrees()

    def test_preserves_edge_count(self):
        graph = erdos_renyi_graph(25, 0.2, seed=0)
        result = GadesAnonymizer(theta=0.3, seed=0, max_steps=10).anonymize(graph)
        assert result.anonymized_graph.num_edges == graph.num_edges

    def test_stops_when_no_improving_swap_exists(self):
        # On a star, any swap would create a self-edge or duplicate, so GADES
        # must stop immediately without reaching the threshold.
        graph = star_graph(5)
        result = GadesAnonymizer(theta=0.1, seed=0).anonymize(graph)
        assert result.num_steps == 0
        assert not result.success

    def test_complete_graph_cannot_be_improved(self):
        graph = complete_graph(6)
        result = GadesAnonymizer(theta=0.5, seed=0).anonymize(graph)
        # Swapping edges of a complete graph is impossible (every candidate
        # insertion already exists), so GADES terminates with no progress —
        # the paper's observation that GADES often cannot find a solution.
        assert result.num_steps == 0
        assert not result.success

    def test_may_reduce_disclosure_when_swaps_help(self):
        graph = erdos_renyi_graph(30, 0.15, seed=3)
        before = GadesAnonymizer(theta=0.0, seed=0, max_steps=0).anonymize(graph)
        after = GadesAnonymizer(theta=0.0, seed=0, max_steps=15).anonymize(graph)
        assert after.final_opacity <= before.final_opacity

    def test_seeded_determinism(self):
        graph = erdos_renyi_graph(20, 0.25, seed=4)
        first = GadesAnonymizer(theta=0.4, seed=8, max_steps=5).anonymize(graph)
        second = GadesAnonymizer(theta=0.4, seed=8, max_steps=5).anonymize(graph)
        assert first.anonymized_graph == second.anonymized_graph

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            GadesAnonymizer(theta=-0.1)
        with pytest.raises(ConfigurationError):
            GadesAnonymizer(swap_sample_size=0)

    def test_swap_steps_record_four_edges(self):
        graph = erdos_renyi_graph(30, 0.15, seed=3)
        result = GadesAnonymizer(theta=0.0, seed=0, max_steps=3).anonymize(graph)
        for step in result.steps:
            assert step.operation == "swap"
            assert len(step.edges) == 4
