"""Unit tests for the GADES edge-swap baseline."""

import pytest

from repro.baselines.gades import GadesAnonymizer
from repro.errors import ConfigurationError
from repro.graph.generators import complete_graph, erdos_renyi_graph, star_graph


class TestGades:
    def test_preserves_every_degree(self):
        graph = erdos_renyi_graph(25, 0.2, seed=0)
        result = GadesAnonymizer(theta=0.3, seed=0, max_steps=10).anonymize(graph)
        assert result.anonymized_graph.degrees() == graph.degrees()

    def test_preserves_edge_count(self):
        graph = erdos_renyi_graph(25, 0.2, seed=0)
        result = GadesAnonymizer(theta=0.3, seed=0, max_steps=10).anonymize(graph)
        assert result.anonymized_graph.num_edges == graph.num_edges

    def test_stops_when_no_improving_swap_exists(self):
        # On a star, any swap would create a self-edge or duplicate, so GADES
        # must stop immediately without reaching the threshold.
        graph = star_graph(5)
        result = GadesAnonymizer(theta=0.1, seed=0).anonymize(graph)
        assert result.num_steps == 0
        assert not result.success

    def test_complete_graph_cannot_be_improved(self):
        graph = complete_graph(6)
        result = GadesAnonymizer(theta=0.5, seed=0).anonymize(graph)
        # Swapping edges of a complete graph is impossible (every candidate
        # insertion already exists), so GADES terminates with no progress —
        # the paper's observation that GADES often cannot find a solution.
        assert result.num_steps == 0
        assert not result.success

    def test_may_reduce_disclosure_when_swaps_help(self):
        graph = erdos_renyi_graph(30, 0.15, seed=3)
        before = GadesAnonymizer(theta=0.0, seed=0, max_steps=0).anonymize(graph)
        after = GadesAnonymizer(theta=0.0, seed=0, max_steps=15).anonymize(graph)
        assert after.final_opacity <= before.final_opacity

    def test_seeded_determinism(self):
        graph = erdos_renyi_graph(20, 0.25, seed=4)
        first = GadesAnonymizer(theta=0.4, seed=8, max_steps=5).anonymize(graph)
        second = GadesAnonymizer(theta=0.4, seed=8, max_steps=5).anonymize(graph)
        assert first.anonymized_graph == second.anonymized_graph

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            GadesAnonymizer(theta=-0.1)
        with pytest.raises(ConfigurationError):
            GadesAnonymizer(swap_sample_size=0)

    def test_swap_steps_record_four_edges(self):
        graph = erdos_renyi_graph(30, 0.15, seed=3)
        result = GadesAnonymizer(theta=0.0, seed=0, max_steps=3).anonymize(graph)
        for step in result.steps:
            assert step.operation == "swap"
            assert len(step.edges) == 4


class _ScriptedRng:
    """Deterministic stand-in for ``random.Random`` with scripted draws."""

    def __init__(self, randranges, randoms):
        self._randranges = iter(randranges)
        self._randoms = iter(randoms)

    def randrange(self, _n):
        return next(self._randranges)

    def random(self):
        return next(self._randoms)


class TestCandidateSwapSampling:
    def test_no_duplicate_normalized_swaps(self):
        graph = erdos_renyi_graph(12, 0.25, seed=0)
        anonymizer = GadesAnonymizer(theta=0.5, seed=0, swap_sample_size=500)
        import random
        swaps = anonymizer._candidate_swaps(graph, random.Random(0))
        keys = [(frozenset(swap[:2]), frozenset(swap[2:])) for swap in swaps]
        assert len(keys) == len(set(keys))

    def test_alternate_rewiring_used_when_first_collides(self):
        # Edges (0,1), (0,3), (2,3); drawing the pair (0,1)/(2,3) with the
        # coin choosing the (a-d, c-b) rewiring first collides on the
        # existing edge (0,3) — the alternate (a-c, b-d) rewiring is valid
        # and must be used instead of discarding the draw.
        from repro.graph.graph import Graph
        graph = Graph(4, edges=[(0, 1), (0, 3), (2, 3)])
        edges = list(graph.edges())
        first, second = edges.index((0, 1)), edges.index((2, 3))
        anonymizer = GadesAnonymizer(theta=0.5, swap_sample_size=1)
        rng = _ScriptedRng([first, second], [0.4])
        swaps = anonymizer._candidate_swaps(graph, rng)
        assert swaps == [((0, 1), (2, 3), (0, 2), (1, 3))]

    def test_repeated_draws_are_deduplicated(self):
        from itertools import cycle
        from repro.graph.graph import Graph
        graph = Graph(4, edges=[(0, 1), (2, 3)])
        edges = list(graph.edges())
        first, second = edges.index((0, 1)), edges.index((2, 3))
        anonymizer = GadesAnonymizer(theta=0.5, swap_sample_size=5)
        # Every attempt draws the same edge pair and the same coin, so the
        # same normalized swap: it must be scored exactly once.
        rng = _ScriptedRng(cycle([first, second]), cycle([0.4]))
        swaps = anonymizer._candidate_swaps(graph, rng)
        assert swaps == [((0, 1), (2, 3), (0, 3), (1, 2))]

    def test_result_config_records_full_constructor_state(self):
        graph = erdos_renyi_graph(15, 0.2, seed=1)
        result = GadesAnonymizer(theta=0.4, seed=3, max_steps=2,
                                 swap_sample_size=77).anonymize(graph)
        assert result.config.max_steps == 2
        assert result.config.swap_sample_size == 77
        assert result.config.seed == 3
        assert result.config.theta == 0.4
