"""Unit tests for the GADED-Rand and GADED-Max baselines."""

import pytest

from repro.baselines.disclosure import max_link_disclosure
from repro.baselines.gaded import GadedMaxAnonymizer, GadedRandAnonymizer
from repro.core.edge_removal import EdgeRemovalAnonymizer
from repro.core.pair_types import DegreePairTyping
from repro.errors import ConfigurationError, InfeasibleError
from repro.graph.generators import complete_graph, erdos_renyi_graph


class TestGadedRand:
    @pytest.mark.parametrize("theta", [0.8, 0.5])
    def test_reaches_threshold(self, paper_example_graph, theta):
        result = GadedRandAnonymizer(theta=theta, seed=0).anonymize(paper_example_graph)
        assert result.success
        typing = DegreePairTyping(paper_example_graph)
        assert max_link_disclosure(result.anonymized_graph, typing=typing) <= theta

    def test_only_removes_edges(self, paper_example_graph):
        result = GadedRandAnonymizer(theta=0.5, seed=0).anonymize(paper_example_graph)
        assert not result.inserted_edges
        assert result.anonymized_graph.edge_set() <= paper_example_graph.edge_set()

    def test_seeded_determinism(self):
        graph = erdos_renyi_graph(25, 0.2, seed=1)
        first = GadedRandAnonymizer(theta=0.5, seed=3).anonymize(graph)
        second = GadedRandAnonymizer(theta=0.5, seed=3).anonymize(graph)
        assert first.anonymized_graph == second.anonymized_graph

    def test_invalid_theta_rejected(self):
        with pytest.raises(ConfigurationError):
            GadedRandAnonymizer(theta=1.2)

    def test_max_steps_cap(self):
        graph = complete_graph(8)
        result = GadedRandAnonymizer(theta=0.1, seed=0, max_steps=2).anonymize(graph)
        assert result.num_steps <= 2


class TestGadedMax:
    @pytest.mark.parametrize("theta", [0.8, 0.5])
    def test_reaches_threshold(self, paper_example_graph, theta):
        result = GadedMaxAnonymizer(theta=theta, seed=0).anonymize(paper_example_graph)
        assert result.success
        assert result.final_opacity <= theta

    def test_strict_mode_raises_when_capped(self):
        graph = complete_graph(6)
        with pytest.raises(InfeasibleError):
            GadedMaxAnonymizer(theta=0.0, seed=0, max_steps=1,
                               strict=True).anonymize(graph)

    def test_tends_to_need_no_more_removals_than_random(self):
        # GADED-Max picks the most effective edge each step, so across a few
        # seeds it should never need substantially more removals than the
        # uniformly random variant for the same threshold.
        graph = erdos_renyi_graph(30, 0.2, seed=2)
        greedy = GadedMaxAnonymizer(theta=0.5, seed=0).anonymize(graph)
        random_result = GadedRandAnonymizer(theta=0.5, seed=0).anonymize(graph)
        assert greedy.success and random_result.success
        assert len(greedy.removed_edges) <= len(random_result.removed_edges) + 2

    def test_paper_claim_rem_not_worse_than_gaded_max(self, paper_example_graph):
        # Figure 6: the paper's Removal heuristic achieves at most the
        # distortion of GADED-Max on the L=1 problem.
        rem = EdgeRemovalAnonymizer(length_threshold=1, theta=0.5,
                                    seed=0).anonymize(paper_example_graph)
        gaded = GadedMaxAnonymizer(theta=0.5, seed=0).anonymize(paper_example_graph)
        assert rem.success and gaded.success
        assert rem.distortion <= gaded.distortion + 1e-9
