"""Unit tests for the Zhang & Zhang single-edge disclosure model."""

import pytest

from repro.baselines.disclosure import (
    link_disclosure_summary,
    max_link_disclosure,
    total_link_disclosure,
)
from repro.core.opacity import max_lo
from repro.core.pair_types import DegreePairTyping
from repro.graph.generators import complete_graph, erdos_renyi_graph
from repro.graph.graph import Graph


class TestDisclosureSummary:
    def test_equals_l1_opacity(self, paper_example_graph):
        typing = DegreePairTyping(paper_example_graph)
        summary = link_disclosure_summary(paper_example_graph)
        assert summary.maximum == pytest.approx(max_lo(paper_example_graph, typing, 1))

    def test_per_type_values_match_figure_5c(self, paper_example_graph):
        summary = link_disclosure_summary(paper_example_graph)
        assert summary.per_type[(2, 4)] == pytest.approx(2 / 3)
        assert summary.per_type[(4, 4)] == pytest.approx(1.0)
        assert summary.per_type[(1, 2)] == 0.0

    def test_total_is_sum_of_per_type(self, paper_example_graph):
        summary = link_disclosure_summary(paper_example_graph)
        assert summary.total == pytest.approx(sum(summary.per_type.values()))
        assert total_link_disclosure(paper_example_graph) == pytest.approx(summary.total)

    def test_exceeds_threshold(self, paper_example_graph):
        summary = link_disclosure_summary(paper_example_graph)
        assert summary.exceeds(0.9)
        assert not summary.exceeds(1.0)

    def test_complete_graph_full_disclosure(self):
        assert max_link_disclosure(complete_graph(5)) == 1.0

    def test_empty_graph_zero_disclosure(self):
        assert max_link_disclosure(Graph(5)) == 0.0

    def test_disclosure_uses_original_degrees_of_supplied_typing(self):
        graph = erdos_renyi_graph(15, 0.3, seed=0)
        typing = DegreePairTyping(graph)
        modified = graph.copy()
        edge = next(iter(modified.edges()))
        modified.remove_edge(*edge)
        # Evaluating the modified graph against the original typing must use
        # the original degrees, not the new ones.
        summary = link_disclosure_summary(modified, typing=typing)
        assert set(summary.per_type) <= set(DegreePairTyping(graph).totals())
