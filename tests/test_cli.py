"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_opacity_defaults(self):
        args = build_parser().parse_args(["opacity", "--dataset", "gnutella"])
        args_dict = vars(args)
        assert args_dict["dataset"] == "gnutella"
        assert args_dict["length"] == 1

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["opacity", "--dataset", "facebook"])


class TestCommands:
    def test_opacity_command(self, capsys):
        exit_code = main(["opacity", "--dataset", "gnutella", "--size", "40",
                          "--length", "2", "--seed", "0"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "max L-opacity=" in captured

    def test_anonymize_command_writes_output(self, tmp_path, capsys):
        output = tmp_path / "anon.edges"
        exit_code = main(["anonymize", "--dataset", "gnutella", "--size", "40",
                          "--algorithm", "rem", "--theta", "0.6", "--length", "1",
                          "--seed", "0", "--output", str(output)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert output.exists()
        assert "distortion=" in captured

    def test_anonymize_command_evaluation_modes_agree(self, tmp_path, capsys):
        outputs = {}
        for mode in ("incremental", "scratch"):
            output = tmp_path / f"anon-{mode}.edges"
            exit_code = main(["anonymize", "--dataset", "gnutella", "--size", "40",
                              "--algorithm", "rem", "--theta", "0.6", "--length", "1",
                              "--seed", "0", "--evaluation-mode", mode,
                              "--output", str(output)])
            assert exit_code == 0
            outputs[mode] = output.read_text()
        assert outputs["incremental"] == outputs["scratch"]

    def test_anonymize_command_rejects_unknown_evaluation_mode(self, capsys):
        with pytest.raises(SystemExit):
            main(["anonymize", "--dataset", "gnutella", "--size", "40",
                  "--evaluation-mode", "lazy"])

    def test_anonymize_command_scan_modes_agree(self, tmp_path, capsys):
        outputs = {}
        for mode in ("batched", "per_candidate"):
            output = tmp_path / f"anon-{mode}.edges"
            exit_code = main(["anonymize", "--dataset", "gnutella", "--size", "40",
                              "--algorithm", "rem", "--theta", "0.6", "--length", "1",
                              "--seed", "0", "--scan-mode", mode,
                              "--output", str(output)])
            assert exit_code == 0
            outputs[mode] = output.read_text()
        assert outputs["batched"] == outputs["per_candidate"]

    def test_anonymize_command_rejects_unknown_scan_mode(self, capsys):
        with pytest.raises(SystemExit):
            main(["anonymize", "--dataset", "gnutella", "--size", "40",
                  "--scan-mode", "turbo"])

    def test_anonymize_command_parallel_scan_agrees_with_batched(
            self, tmp_path, capsys):
        outputs = {}
        for mode, extra in (("batched", []),
                            ("parallel", ["--scan-workers", "2"])):
            output = tmp_path / f"anon-{mode}.edges"
            exit_code = main(["anonymize", "--dataset", "gnutella",
                              "--size", "40", "--algorithm", "rem",
                              "--theta", "0.6", "--length", "2",
                              "--seed", "0", "--scan-mode", mode,
                              "--output", str(output)] + extra)
            assert exit_code == 0
            outputs[mode] = output.read_text()
        assert outputs["batched"] == outputs["parallel"]

    def test_anonymize_command_rejects_negative_scan_workers(self, capsys):
        exit_code = main(["anonymize", "--dataset", "gnutella", "--size", "40",
                          "--scan-mode", "parallel", "--scan-workers", "-1"])
        assert exit_code != 0

    def test_anonymize_command_reads_edge_list(self, tmp_path, capsys):
        from repro.graph.generators import erdos_renyi_graph
        from repro.graph.io import write_edge_list
        path = tmp_path / "input.edges"
        write_edge_list(erdos_renyi_graph(30, 0.2, seed=0), path)
        exit_code = main(["anonymize", "--input", str(path), "--theta", "0.6",
                          "--seed", "0"])
        assert exit_code == 0
        assert "theta=0.60" in capsys.readouterr().out

    def test_tables_command_published_only(self, capsys):
        exit_code = main(["tables", "--no-measure"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Table 1" in captured and "Table 3" in captured
        assert "google" in captured

    def test_figure_command(self, capsys):
        exit_code = main(["figure", "--name", "fig6", "--dataset", "gnutella",
                          "--size", "30", "--thetas", "0.8"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "rem la=1" in captured

    def test_anonymize_command_progress_and_timeout(self, capsys):
        exit_code = main(["anonymize", "--dataset", "gnutella", "--size", "40",
                          "--theta", "0.6", "--seed", "0", "--timeout", "60",
                          "--progress"])
        assert exit_code == 0
        assert "distortion=" in capsys.readouterr().out

    def test_batch_command_runs_job_spec(self, tmp_path, capsys):
        spec = {
            "defaults": {"dataset": "gnutella", "sample_size": 30,
                         "theta": 0.6, "seed": 0},
            "max_workers": 0,
            "jobs": [
                {"algorithm": "rem", "request_id": "first"},
                {"algorithm": "gaded-max", "request_id": "second"},
            ],
        }
        spec_path = tmp_path / "jobs.json"
        spec_path.write_text(json.dumps(spec))
        output = tmp_path / "results.json"
        exit_code = main(["batch", str(spec_path), "--output", str(output)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "[first]" in captured and "[second]" in captured
        results = json.loads(output.read_text())
        assert [r["request"]["request_id"] for r in results] == ["first", "second"]
        assert all(r["error"] is None for r in results)

    def test_batch_command_reports_failures_with_exit_code(self, tmp_path, capsys):
        spec = [
            {"algorithm": "rem", "dataset": "gnutella", "sample_size": 30,
             "theta": 0.6, "seed": 0},
            {"algorithm": "no-such-algorithm", "dataset": "gnutella",
             "sample_size": 30},
        ]
        spec_path = tmp_path / "jobs.json"
        spec_path.write_text(json.dumps(spec))
        exit_code = main(["batch", str(spec_path), "--max-workers", "0"])
        captured = capsys.readouterr().out
        assert exit_code == 1
        assert "unknown algorithm" in captured

    @pytest.mark.parametrize("spec,message", [
        (["rem"], "must be an object"),
        ({"jobs": []}, "no jobs"),
        ({"jobs": [{"algorithm": "rem"}], "max_workers": "4"},
         "non-negative integer"),
        ({"jobs": [{"algorithm": "rem"}], "defaults": "x"},
         "'defaults' must be an object"),
        ("just-a-string", "must be a JSON array"),
    ])
    def test_batch_command_rejects_malformed_specs(self, tmp_path, capsys,
                                                   spec, message):
        spec_path = tmp_path / "jobs.json"
        spec_path.write_text(json.dumps(spec))
        exit_code = main(["batch", str(spec_path)])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert message in captured.err

    def test_batch_command_rejects_invalid_json(self, tmp_path, capsys):
        spec_path = tmp_path / "jobs.json"
        spec_path.write_text("{broken")
        assert main(["batch", str(spec_path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_domain_errors_exit_cleanly(self, capsys):
        exit_code = main(["anonymize", "--dataset", "gnutella", "--size", "30",
                          "--algorithm", "gades", "--length", "2"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error: gades only supports L = 1" in captured.err

    def test_figure_command_chart_mode(self, capsys):
        exit_code = main(["figure", "--name", "fig6", "--dataset", "gnutella",
                          "--size", "30", "--thetas", "0.8", "0.6", "--chart"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 6 — gnutella" in captured
        assert "distortion" in captured
        assert "o rem la=1" in captured


class TestSweepAxes:
    def test_sweep_command_runs_theta_grid(self, capsys):
        exit_code = main(["sweep", "--dataset", "gnutella", "--size", "30",
                          "--thetas", "0.8", "0.6", "--no-utility"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "2 runs in 1 group(s) over 1 sample group(s)" in captured

    def test_sweep_command_axis_expands_grid(self, capsys):
        exit_code = main(["sweep", "--dataset", "gnutella", "--size", "30",
                          "--thetas", "0.8", "0.6", "--no-utility",
                          "--axis", "l=1,2"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "4 runs in 2 group(s) over 1 sample group(s)" in captured
        assert "L=2" in captured

    def test_sweep_command_dataset_axis_splits_sample_groups(self, capsys):
        exit_code = main(["sweep", "--size", "25", "--thetas", "0.8",
                          "--no-utility", "--axis", "dataset=gnutella,google"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "2 runs in 2 group(s) over 2 sample group(s)" in captured

    def test_sweep_command_axis_overrides_flag(self, capsys):
        exit_code = main(["sweep", "--dataset", "gnutella", "--size", "25",
                          "--thetas", "0.9", "0.7", "--no-utility",
                          "--axis", "theta=0.8"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "1 runs in 1 group(s)" in captured
        assert "theta=0.80" in captured

    def test_sweep_command_pooled_shm_grid(self, capsys):
        # Default --shared-memory on: the pooled grid runs on the
        # zero-copy plane (θ-groups fan out over one published sample).
        exit_code = main(["sweep", "--dataset", "gnutella", "--size", "25",
                          "--thetas", "0.8", "0.6", "--no-utility",
                          "--axis", "l=1,2", "--max-workers", "2"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "4 runs in 2 group(s) over 1 sample group(s)" in captured

    def test_sweep_command_shared_memory_off(self, capsys):
        exit_code = main(["sweep", "--dataset", "gnutella", "--size", "25",
                          "--thetas", "0.8", "0.6", "--no-utility",
                          "--axis", "l=1,2", "--max-workers", "2",
                          "--shared-memory", "off"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "4 runs in 2 group(s) over 1 sample group(s)" in captured

    def test_sweep_command_writes_grid_response(self, tmp_path, capsys):
        output = tmp_path / "grid.json"
        exit_code = main(["sweep", "--dataset", "gnutella", "--size", "25",
                          "--thetas", "0.8", "--no-utility",
                          "--axis", "size=20,25", "--output", str(output)])
        assert exit_code == 0
        payload = json.loads(output.read_text())
        assert payload["num_sample_groups"] == 2
        assert len(payload["responses"]) == 2

    @pytest.mark.parametrize("axis,message", [
        ("bogus=3", "bad --axis"),
        ("l", "bad --axis"),
        ("l=", "lists no values"),
        ("l=two", "bad --axis value"),
        ("dataset=facebook", "unknown dataset"),
        ("algorithm=typo", "unknown algorithm"),
    ])
    def test_sweep_command_rejects_bad_axes(self, capsys, axis, message):
        exit_code = main(["sweep", "--dataset", "gnutella", "--size", "25",
                          "--axis", axis])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert message in captured.err

    def test_sweep_command_rejects_repeated_axis(self, capsys):
        exit_code = main(["sweep", "--dataset", "gnutella", "--size", "25",
                          "--axis", "l=1", "--axis", "l=2"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "repeats axis" in captured.err
