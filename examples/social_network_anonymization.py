#!/usr/bin/env python3
"""Publishing a social-network sample without exposing close connections.

Scenario from the paper's introduction: a social network wants to publish a
de-identified friendship graph, but an adversary who knows how many friends
Albert and Bruce each have must not be able to conclude, with confidence
above 50%, that the two are direct friends (single-edge linkage, L = 1).

The workload is a sample of the Enron e-mail network (or its calibrated
synthetic proxy when the SNAP file is absent).  The Edge Removal/Insertion
heuristic (Algorithm 5) is used because it preserves the edge count and
therefore the degree distribution of the published graph.  Single-edge
linkage (L = 1) is the setting where Rem-Ins shines; for dense graphs and
larger L the paper recommends falling back to pure Removal (see
``coauthorship_privacy.py`` for that trade-off).

Everything goes through the service-layer API: the job is described by an
:class:`repro.AnonymizationRequest` (with a wall-clock budget), executed by
:func:`repro.anonymize`, and observed live through a progress observer —
the same request record could be serialized to JSON and shipped to a
``repro-lopacity batch`` worker unchanged.

Run with::

    python examples/social_network_anonymization.py [sample_size]
"""

import sys

from repro import AnonymizationRequest, anonymize, compute_opacity
from repro.api import ConsoleProgressObserver

LENGTH_THRESHOLD = 1
THETA = 0.5
TIME_BUDGET_SECONDS = 120.0


def main() -> None:
    sample_size = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    request = AnonymizationRequest(
        algorithm="rem-ins",
        dataset="enron",
        sample_size=sample_size,
        theta=THETA,
        length_threshold=LENGTH_THRESHOLD,
        seed=7,
        insertion_candidate_cap=200,
        timeout_seconds=TIME_BUDGET_SECONDS,
        include_utility=True,
        request_id="enron-publication",
    )

    before = compute_opacity(request, top=5)
    print(f"Loaded Enron sample: {before.num_vertices} people, "
          f"{before.num_edges} e-mail links")
    print(f"Before publication: max {LENGTH_THRESHOLD}-opacity = {before.max_opacity:.2f}")
    print("Most exposed degree pairs:")
    for type_key, within, total, opacity in before.worst_types:
        print(f"  degrees {type_key}: confidence {opacity:.0%} "
              f"({within}/{total} pairs within {LENGTH_THRESHOLD} hops)")

    print(f"\nAnonymizing (budget {TIME_BUDGET_SECONDS:.0f}s, live steps below) ...")
    response = anonymize(request, observer=ConsoleProgressObserver(stream=sys.stdout))

    status = "succeeded" if response.success else "best effort"
    if response.stop_reason == "observer":
        status += " (stopped by the time budget)"
    print(f"\nAnonymization ({status}): {response.num_steps} steps, "
          f"{len(response.removed_edges)} removals, "
          f"{len(response.inserted_edges)} insertions")
    published = response.anonymized_graph()
    print(f"Published graph keeps {published.num_edges} edges "
          f"(original: {before.num_edges})")
    print(f"After publication: max {LENGTH_THRESHOLD}-opacity = "
          f"{response.final_opacity:.2f} (target <= {THETA:.0%})")

    metrics = response.metrics or {}
    print("\nHow much did the published graph change?")
    print(f"  edit-distance distortion : {response.distortion:.1%}")
    print(f"  degree-distribution EMD  : {metrics.get('degree_emd', 0.0):.4f}")
    print(f"  geodesic-distribution EMD: {metrics.get('geodesic_emd', 0.0):.4f}")
    print(f"  mean |delta clustering|  : {metrics.get('mean_cc_diff', 0.0):.4f}")


if __name__ == "__main__":
    main()
