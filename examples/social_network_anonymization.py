#!/usr/bin/env python3
"""Publishing a social-network sample without exposing close connections.

Scenario from the paper's introduction: a social network wants to publish a
de-identified friendship graph, but an adversary who knows how many friends
Albert and Bruce each have must not be able to conclude, with confidence
above 50%, that the two are direct friends (single-edge linkage, L = 1).

The workload is a sample of the Enron e-mail network (or its calibrated
synthetic proxy when the SNAP file is absent).  The Edge Removal/Insertion
heuristic (Algorithm 5) is used because it preserves the edge count and
therefore the degree distribution of the published graph.  Single-edge
linkage (L = 1) is the setting where Rem-Ins shines; for dense graphs and
larger L the paper recommends falling back to pure Removal (see
``coauthorship_privacy.py`` for that trade-off).

Run with::

    python examples/social_network_anonymization.py [sample_size]
"""

import sys

from repro import (
    DegreePairTyping,
    EdgeRemovalInsertionAnonymizer,
    OpacityComputer,
    load_sample,
    utility_report,
)

LENGTH_THRESHOLD = 1
THETA = 0.5


def main() -> None:
    sample_size = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    graph = load_sample("enron", sample_size, seed=7)
    typing = DegreePairTyping(graph)
    computer = OpacityComputer(typing, LENGTH_THRESHOLD)

    before = computer.evaluate(graph)
    print(f"Loaded Enron sample: {graph.num_vertices} people, {graph.num_edges} e-mail links")
    print(f"Before publication: max {LENGTH_THRESHOLD}-opacity = {before.max_opacity:.2f}")
    print("Most exposed degree pairs:")
    for entry in sorted(before.per_type.values(), key=lambda e: -e.opacity)[:5]:
        print(f"  degrees {entry.type_key}: confidence {entry.opacity:.0%} "
              f"({entry.within_threshold}/{entry.total_pairs} pairs within "
              f"{LENGTH_THRESHOLD} hops)")

    anonymizer = EdgeRemovalInsertionAnonymizer(
        length_threshold=LENGTH_THRESHOLD, theta=THETA, seed=0,
        insertion_candidate_cap=200)
    result = anonymizer.anonymize(graph)

    print(f"\nAnonymization ({'succeeded' if result.success else 'best effort'}): "
          f"{result.num_steps} steps, "
          f"{len(result.removed_edges)} removals, {len(result.inserted_edges)} insertions")
    print(f"Published graph keeps {result.anonymized_graph.num_edges} edges "
          f"(original: {graph.num_edges})")

    after = computer.evaluate(result.anonymized_graph)
    print(f"After publication: max {LENGTH_THRESHOLD}-opacity = {after.max_opacity:.2f} "
          f"(target <= {THETA:.0%})")

    report = utility_report(result.original_graph, result.anonymized_graph)
    print("\nHow much did the published graph change?")
    print(f"  edit-distance distortion : {report.distortion:.1%}")
    print(f"  degree-distribution EMD  : {report.degree_emd:.4f}")
    print(f"  geodesic-distribution EMD: {report.geodesic_emd:.4f}")
    print(f"  mean |delta clustering|  : {report.mean_clustering_difference:.4f}")


if __name__ == "__main__":
    main()
