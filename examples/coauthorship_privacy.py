#!/usr/bin/env python3
"""Concealing close co-authorship links before releasing a collaboration graph.

The paper's DBLP example: a path of length 2 between two authors (one shared
co-author) is far more revealing than a path of length 5.  This example
loads the ACM Digital Library co-authorship proxy, requires that no
degree-pair type discloses a <=2-hop connection with more than 30%
confidence, and compares the two heuristics of the paper on the same input.
The anonymized graph is written as an edge list next to this script.

Run with::

    python examples/coauthorship_privacy.py [sample_size]
"""

import sys
from pathlib import Path

from repro import (
    DegreePairTyping,
    EdgeRemovalAnonymizer,
    EdgeRemovalInsertionAnonymizer,
    OpacityComputer,
    load_sample,
    utility_report,
    write_edge_list,
)

LENGTH_THRESHOLD = 2
THETA = 0.3


def describe(name, graph, result):
    report = utility_report(result.original_graph, result.anonymized_graph)
    status = "ok" if result.success else "best effort"
    print(f"  {name:<22} [{status}]  distortion={report.distortion:6.1%}  "
          f"degree EMD={report.degree_emd:.4f}  |dCC|={report.mean_clustering_difference:.4f}  "
          f"steps={result.num_steps}  runtime={result.runtime_seconds:.2f}s")
    return report


def main() -> None:
    sample_size = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    graph = load_sample("acm", sample_size, seed=11)
    typing = DegreePairTyping(graph)
    computer = OpacityComputer(typing, LENGTH_THRESHOLD)

    before = computer.evaluate(graph)
    print(f"ACM co-authorship sample: {graph.num_vertices} authors, "
          f"{graph.num_edges} co-authorships")
    print(f"Before anonymization: max {LENGTH_THRESHOLD}-opacity = {before.max_opacity:.2f}, "
          f"target <= {THETA:.0%}\n")

    print("Comparing the paper's two heuristics on the same input:")
    removal = EdgeRemovalAnonymizer(
        length_threshold=LENGTH_THRESHOLD, theta=THETA, seed=0).anonymize(graph)
    describe("Edge Removal", graph, removal)

    removal_insertion = EdgeRemovalInsertionAnonymizer(
        length_threshold=LENGTH_THRESHOLD, theta=THETA, seed=0,
        insertion_candidate_cap=200).anonymize(graph)
    describe("Edge Removal/Insertion", graph, removal_insertion)

    # Keep the variant that reached the target with the smallest distortion;
    # fall back to pure removal if only it succeeded (the common case the
    # paper reports for hard-to-attain thresholds).
    candidates = [result for result in (removal, removal_insertion) if result.success]
    chosen = min(candidates or [removal], key=lambda result: result.distortion)
    output = Path(__file__).with_name("acm_anonymized.edges")
    write_edge_list(chosen.anonymized_graph, output,
                    header=f"ACM sample, L={LENGTH_THRESHOLD}, theta={THETA}")
    print(f"\nWrote the published graph to {output}")

    after = computer.evaluate(chosen.anonymized_graph)
    print(f"Published graph: max {LENGTH_THRESHOLD}-opacity = {after.max_opacity:.2f}")


if __name__ == "__main__":
    main()
