#!/usr/bin/env python3
"""Simulating the adversary: does anonymization actually stop the attack?

The paper's Section 3 describes the attack L-opacity defends against: the
adversary knows how many acquaintances two individuals have, locates the
candidate vertices with those degrees in the published graph, and measures
the fraction of candidate pairs connected by a path of length at most L —
that fraction is their confidence that the two individuals are closely
linked (Figure 2).

This example mounts that attack on a Gnutella sample twice — against the
naively de-identified graph and against its 2-opaque form — and shows the
confidence dropping below the chosen threshold for every degree pair.

Run with::

    python examples/adversary_attack.py [sample_size]
"""

import sys

from repro import (
    DegreeAdversary,
    DegreePairTyping,
    EdgeRemovalAnonymizer,
    load_sample,
)

LENGTH_THRESHOLD = 2
THETA = 0.3


def show_attack(title: str, adversary: DegreeAdversary) -> None:
    print(f"\n{title}")
    print("  most confident 'within 2 hops' inferences by degree pair:")
    for inference in adversary.most_confident_inferences(LENGTH_THRESHOLD, top=5):
        degrees = "unknown"
        if inference.target_candidates and inference.subject_candidates:
            degrees = (f"{len(inference.target_candidates)} vs "
                       f"{len(inference.subject_candidates)} candidates")
        print(f"    confidence {inference.confidence:6.1%}  "
              f"({inference.linked_pairs}/{inference.total_pairs} linked pairs, {degrees})")


def main() -> None:
    sample_size = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    graph = load_sample("gnutella", sample_size, seed=3)
    typing = DegreePairTyping(graph)
    print(f"Gnutella sample: {graph.num_vertices} hosts, {graph.num_edges} connections")

    # Attack the naive publication (identities removed, structure untouched).
    show_attack("Attack on the naive publication:", DegreeAdversary(graph))

    # Anonymize to 2-opacity with confidence threshold 30% and attack again.
    result = EdgeRemovalAnonymizer(
        length_threshold=LENGTH_THRESHOLD, theta=THETA, seed=0).anonymize(graph)
    print(f"\nAnonymized with Edge Removal: {result.summary()}")

    protected = DegreeAdversary(result.anonymized_graph, original_typing=typing)
    show_attack(f"Attack on the {LENGTH_THRESHOLD}-opaque publication "
                f"(theta = {THETA:.0%}):", protected)

    worst = protected.most_confident_inferences(LENGTH_THRESHOLD, top=1)
    if worst:
        bound = worst[0].confidence
        print(f"\nWorst-case adversary confidence after anonymization: {bound:.1%} "
              f"(guaranteed <= {THETA:.0%})")


if __name__ == "__main__":
    main()
