#!/usr/bin/env python3
"""Scalability study: how runtime and distortion evolve with graph size.

Miniature version of the paper's Figures 11 and 12: the Edge Removal
heuristic is run on ACM co-authorship proxies of increasing size for several
confidence thresholds.  The paper's observation to look for: the *relative*
distortion needed for a fixed privacy level shrinks as the graph grows,
while runtime grows roughly linearly in practice.

Run with::

    python examples/scalability_study.py [max_size]
"""

import sys

from repro.experiments import figure11_series, figure12_series


def main() -> None:
    max_size = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    sizes = tuple(size for size in (50, 100, 150, 200, 300) if size <= max_size)
    thetas = (0.9, 0.7, 0.5)

    print(f"Edge Removal, L = 1, ACM co-authorship proxies, sizes {sizes}\n")

    runtime = figure11_series(sample_sizes=sizes, thetas=thetas, seed=0)
    print("Runtime (seconds) — Figure 11 analogue:")
    header = "  theta " + "".join(f"{f'|V|={size}':>12}" for size in sizes)
    print(header)
    for theta in sorted(thetas, reverse=True):
        cells = "".join(f"{seconds:>12.3f}" for _size, seconds in runtime[theta])
        print(f"  {theta:<6}{cells}")

    distortion = figure12_series(sample_sizes=sizes, thetas=thetas, seed=0)
    print("\nDistortion (edit-distance ratio) — Figure 12 analogue:")
    print(header)
    for theta in sorted(thetas, reverse=True):
        cells = "".join(f"{value:>12.4f}" for _size, value in distortion[theta])
        print(f"  {theta:<6}{cells}")

    print("\nExpected trends: runtime grows with size and with tighter theta;")
    print("distortion for a fixed theta falls (or stays flat) as the graph grows,")
    print("which is the paper's argument for publishing large L-opaque graphs.")


if __name__ == "__main__":
    main()
