#!/usr/bin/env python3
"""Head-to-head comparison with the Zhang & Zhang heuristics (Figure 6 style).

Runs the paper's Edge Removal and Edge Removal/Insertion heuristics next to
GADED-Rand, GADED-Max, and GADES on the same sampled graph for a sweep of
confidence thresholds, printing a table of distortion, degree-distribution
EMD, clustering change, and runtime — the quantities plotted in Figures 6-9.

Run with::

    python examples/baseline_comparison.py [dataset] [sample_size]
"""

import sys

from repro.experiments import ExperimentConfig, ExperimentRunner, format_table

THETAS = (0.8, 0.6, 0.5)
ALGORITHMS = ("rem", "rem-ins", "gaded-rand", "gaded-max", "gades")


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "google"
    sample_size = int(sys.argv[2]) if len(sys.argv) > 2 else 50

    runner = ExperimentRunner()
    rows = []
    for algorithm in ALGORITHMS:
        for theta in THETAS:
            config = ExperimentConfig(
                dataset=dataset, sample_size=sample_size, algorithm=algorithm,
                theta=theta, length_threshold=1, lookahead=1, seed=0,
                insertion_candidate_cap=100)
            record = runner.run(config)
            rows.append(record.as_dict())

    graph = runner.graph_for(ExperimentConfig(
        dataset=dataset, sample_size=sample_size, algorithm="rem", theta=0.5))
    print(f"Dataset: {dataset} sample, {graph.num_vertices} nodes, {graph.num_edges} edges")
    print(f"Comparison at L = 1 (the only setting the baselines support):\n")
    print(format_table(rows, columns=[
        "algorithm", "theta", "success", "opacity", "distortion",
        "degree_emd", "mean_cc_diff", "runtime_s"]))

    print("\nReading guide (paper Section 6.3-6.6):")
    print(" * 'rem' should need the least distortion; GADES usually cannot reach")
    print("   the threshold at all (success=False with little or no change).")
    print(" * 'rem-ins' trades extra edits for a better-preserved degree")
    print("   distribution (lower degree_emd at loose thresholds).")
    print(" * GADED-Max is the strongest baseline but is slower than 'rem'.")


if __name__ == "__main__":
    main()
