#!/usr/bin/env python3
"""Head-to-head comparison with the Zhang & Zhang heuristics (Figure 6 style).

Runs the paper's Edge Removal and Edge Removal/Insertion heuristics next to
GADED-Rand, GADED-Max, and GADES on the same sampled graph for a sweep of
confidence thresholds, printing a table of distortion, degree-distribution
EMD, clustering change, and runtime — the quantities plotted in Figures 6-9.

The whole grid goes through the service-layer API: one base
:class:`repro.AnonymizationRequest` expanded with :func:`repro.sweep` over
(algorithm × theta) and fanned across worker processes by the batch runner.

Run with::

    python examples/baseline_comparison.py [dataset] [sample_size]
"""

import sys

from repro import AnonymizationRequest, available_algorithms, sweep
from repro.experiments import format_table

THETAS = (0.8, 0.6, 0.5)


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "google"
    sample_size = int(sys.argv[2]) if len(sys.argv) > 2 else 50

    base = AnonymizationRequest(
        algorithm="rem", dataset=dataset, sample_size=sample_size,
        theta=0.5, length_threshold=1, lookahead=1, seed=0,
        insertion_candidate_cap=100, include_utility=True)

    # Every registered algorithm takes part — a newly registered method
    # joins the comparison without touching this script.
    responses = sweep(base, algorithms=available_algorithms(), thetas=THETAS,
                      max_workers=None)

    rows = []
    for response in responses:
        if response.error is not None:
            print(f"!! {response.request.algorithm} theta={response.request.theta}: "
                  f"{response.error}", file=sys.stderr)
            continue
        metrics = response.metrics or {}
        rows.append({
            "algorithm": response.request.algorithm,
            "theta": response.request.theta,
            "success": response.success,
            "opacity": round(response.final_opacity, 4),
            "distortion": round(response.distortion, 4),
            "degree_emd": round(metrics.get("degree_emd", 0.0), 5),
            "mean_cc_diff": round(metrics.get("mean_cc_diff", 0.0), 5),
            "runtime_s": round(response.runtime_seconds, 4),
        })

    graph = base.resolve_graph()
    print(f"Dataset: {dataset} sample, {graph.num_vertices} nodes, {graph.num_edges} edges")
    print("Comparison at L = 1 (the only setting the baselines support):\n")
    print(format_table(rows, columns=[
        "algorithm", "theta", "success", "opacity", "distortion",
        "degree_emd", "mean_cc_diff", "runtime_s"]))

    print("\nReading guide (paper Section 6.3-6.6):")
    print(" * 'rem' should need the least distortion; GADES usually cannot reach")
    print("   the threshold at all (success=False with little or no change).")
    print(" * 'rem-ins' trades extra edits for a better-preserved degree")
    print("   distribution (lower degree_emd at loose thresholds).")
    print(" * GADED-Max is the strongest baseline but is slower than 'rem'.")


if __name__ == "__main__":
    main()
