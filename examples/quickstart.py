#!/usr/bin/env python3
"""Quickstart: measure L-opacity and anonymize a small social graph.

Reproduces, on the paper's own 7-vertex running example (Figure 1), the
opacity matrix of Figure 5 and then applies the Edge Removal heuristic
(Algorithm 4) to make the graph 1-opaque with confidence threshold 50%.

Run with::

    python examples/quickstart.py
"""

from repro import (
    DegreePairTyping,
    EdgeRemovalAnonymizer,
    Graph,
    OpacityComputer,
    utility_report,
)

#: The example graph of Figure 1 (vertices renumbered 0-6; degrees 2,4,4,2,4,3,1).
FIGURE1_EDGES = [
    (0, 1), (0, 2),
    (1, 2), (1, 3), (1, 4),
    (2, 4), (2, 5),
    (3, 4),
    (4, 5),
    (5, 6),
]


def main() -> None:
    graph = Graph(7, edges=FIGURE1_EDGES)
    typing = DegreePairTyping(graph)

    print("== The paper's running example (Figure 1) ==")
    print(f"vertices: {graph.num_vertices}, edges: {graph.num_edges}")
    print(f"original degrees: {graph.degrees()}")

    # Opacity for single-edge linkage (L = 1), i.e. the adversary wants to
    # learn whether two people of known degree are direct friends.
    computer = OpacityComputer(typing, length_threshold=1)
    before = computer.evaluate(graph)
    print("\n== L-opacity before anonymization (L = 1) ==")
    for entry in sorted(before.per_type.values(), key=lambda e: -e.opacity):
        print(f"  degree pair {entry.type_key}: {entry.within_threshold}/{entry.total_pairs}"
              f" = {entry.opacity:.2f}")
    print(f"max L-opacity = {before.max_opacity:.2f} "
          f"({before.types_at_max} types at the maximum)")

    # An adversary knowing that Charles and Agatha both have four friends can
    # conclude they are friends (the (4,4) type has opacity 1).  Bring the
    # confidence below 50% with minimal edits.
    anonymizer = EdgeRemovalAnonymizer(length_threshold=1, theta=0.5, seed=0)
    result = anonymizer.anonymize(graph)

    print("\n== Edge Removal (Algorithm 4), theta = 50% ==")
    print(result.summary())
    print(f"removed edges: {sorted(result.removed_edges)}")

    after = computer.evaluate(result.anonymized_graph)
    print("\n== L-opacity after anonymization ==")
    for entry in sorted(after.per_type.values(), key=lambda e: -e.opacity):
        print(f"  degree pair {entry.type_key}: {entry.within_threshold}/{entry.total_pairs}"
              f" = {entry.opacity:.2f}")

    report = utility_report(result.original_graph, result.anonymized_graph)
    print("\n== Utility report ==")
    for name, value in report.as_dict().items():
        print(f"  {name}: {value:.4f}")


if __name__ == "__main__":
    main()
