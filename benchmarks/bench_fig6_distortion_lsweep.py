"""Figure 6(g, h): distortion vs θ while varying L from 1 to 4 (la = 1).

Expected shape: larger L requires more modification for the same θ (more
pairs fall within the sensitive distance), and the effect is milder on the
sparser network (Epinions sample) than on Gnutella, as the paper notes.
"""

import pytest

from benchmarks.conftest import print_series, run_once, smoke
from repro.experiments import figure6_lsweep_series

CASES = {
    # The Epinions sample is very sparse, so modification is only needed at
    # tight thresholds; Gnutella already violates looser ones.
    "epinions": dict(sample_size=smoke(100, 50), thetas=smoke((0.15, 0.1), (0.15,))),
    "gnutella": dict(sample_size=smoke(60, 30), thetas=smoke((0.3, 0.2), (0.3,))),
}
LENGTHS = (1, 2, 3)


@pytest.mark.parametrize("dataset", sorted(CASES))
def bench_fig6_lsweep(benchmark, runner, dataset):
    parameters = CASES[dataset]
    series = run_once(benchmark, figure6_lsweep_series, dataset, lengths=LENGTHS,
                      sample_size=parameters["sample_size"],
                      thetas=parameters["thetas"], insertion_cap=100, seed=0,
                      runner=runner)
    print_series(f"Figure 6 (L sweep) — {dataset}", series, y_label="distortion")

    tightest = parameters["thetas"][-1]
    removal_by_length = {length: dict(series[f"rem L={length}"])[tightest]
                         for length in LENGTHS}
    # A longer sensitive path length can only add privacy constraints, so
    # the *minimum* distortion is non-decreasing in L.  The greedy's
    # achieved distortion tracks that trend but is not pointwise monotone
    # (a step at a looser L can overshoot), so only the endpoints are
    # compared: L=1 must not need more modification than the largest L.
    assert removal_by_length[1] <= removal_by_length[LENGTHS[-1]] + 1e-9
    assert all(0.0 <= value <= 1.0 for value in removal_by_length.values())
    for length in LENGTHS:
        rem = dict(series[f"rem L={length}"])
        rem_ins = dict(series[f"rem-ins L={length}"])
        for theta in parameters["thetas"]:
            assert rem[theta] <= rem_ins[theta] + 1e-9
