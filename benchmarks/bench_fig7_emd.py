"""Figure 7: Earth Mover's Distance of the degree (7a) and geodesic (7b)
distributions vs θ, Enron sample, L = 1.

Expected shape: both EMD measures grow as θ tightens; for moderate θ the
Removal/Insertion heuristic preserves the degree distribution better than
pure Removal (it keeps the edge count constant); the Zhang & Zhang baselines
alter the distributions at least as much as our heuristics.
"""

from benchmarks.conftest import print_series, run_once, smoke
from repro.experiments import figure7_series

SAMPLE_SIZE = smoke(50, 30)
THETAS = smoke((0.8, 0.6, 0.5), (0.8,))


def bench_fig7_enron_emd(benchmark, runner):
    result = run_once(benchmark, figure7_series, "enron", sample_size=SAMPLE_SIZE,
                      thetas=THETAS, lookaheads=(1, 2), insertion_cap=100, seed=0,
                      include_baselines=True, runner=runner)
    print_series("Figure 7a — EMD of degree distributions (Enron, L=1)",
                 result["degree_emd"], y_label="emd")
    print_series("Figure 7b — EMD of geodesic distributions (Enron, L=1)",
                 result["geodesic_emd"], y_label="emd")

    degree = result["degree_emd"]
    geodesic = result["geodesic_emd"]
    assert set(degree) == set(geodesic)
    for series in (degree, geodesic):
        for label, points in series.items():
            # EMD is a non-negative quantity for every heuristic and θ.
            assert all(value >= 0 for _theta, value in points)
    # The Removal heuristic only deletes edges, so its degree-distribution
    # alteration (weakly) grows as θ tightens; the paper notes that
    # Removal/Insertion may fluctuate, so no monotonicity is asserted for it.
    rem_degree = dict(degree["rem la=1"])
    assert rem_degree[THETAS[-1]] >= rem_degree[THETAS[0]] - 1e-9
    # Figure 7b's claim: insertion compensates some of the geodesics destroyed
    # by removal, so Removal/Insertion alters the geodesic distribution less
    # than pure Removal at moderate thresholds.
    rem_geodesic = dict(geodesic["rem la=1"])
    rem_ins_geodesic = dict(geodesic["rem-ins la=1"])
    assert rem_ins_geodesic[THETAS[0]] <= rem_geodesic[THETAS[0]] + 0.01
    # The look-ahead variants alter the distributions no more than their
    # la=1 counterparts plus a small tolerance (they explore a superset of moves).
    rem_ins_la2 = dict(degree["rem-ins la=2"])
    rem_ins_la1 = dict(degree["rem-ins la=1"])
    assert rem_ins_la2[THETAS[-1]] <= rem_ins_la1[THETAS[-1]] + 0.05
