"""Condense a pytest-benchmark JSON dump into a ``BENCH_<pr>.json`` entry.

The CI benchmark jobs run every ``bench_*.py`` at smoke size with
``--benchmark-json``; this script reduces that verbose dump to the small,
diff-friendly trajectory format committed at the repo root (ROADMAP:
performance trajectory as a first-class artifact)::

    {"pr": 6, "created": "...", "env": {...}, "benchmarks": [
        {"name": "bench_grid_direct", "group": "...", "seconds": 0.0268},
        ...
    ]}

Usage::

    python -m pytest benchmarks -q -o python_files='bench_*.py' \\
        -o python_functions='bench_*' --benchmark-json=/tmp/bench.json
    python benchmarks/persist_trajectory.py /tmp/bench.json \\
        --pr 6 --output BENCH_6.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time


def _group_for(bench: dict) -> str:
    """Benchmark group, falling back to the bench module's stem.

    Benches that never assign ``benchmark.group`` used to persist
    ``"group": null``, which sorts all ungrouped entries into one
    indistinguishable bucket across files. The module stem
    (``benchmarks/bench_grid_cache.py::bench_x`` -> ``bench_grid_cache``)
    is always available in the dump and keeps the trajectory diffable.
    """
    group = bench.get("group")
    if group:
        return group
    module = bench.get("fullname", "").split("::", 1)[0]
    stem = module.replace("\\", "/").rsplit("/", 1)[-1]
    if stem.endswith(".py"):
        stem = stem[:-3]
    return stem or "ungrouped"


def condense(raw: dict, pr: int) -> dict:
    """Reduce a pytest-benchmark dump to the trajectory entry format."""
    machine = raw.get("machine_info", {})
    entries = []
    for bench in raw.get("benchmarks", []):
        entries.append({
            "name": bench["name"],
            "group": _group_for(bench),
            "seconds": round(bench["stats"]["mean"], 6),
            "rounds": bench["stats"]["rounds"],
        })
    entries.sort(key=lambda entry: (entry["group"], entry["name"]))
    return {
        "pr": pr,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "env": {
            "python": machine.get("python_version",
                                  platform.python_version()),
            "machine": machine.get("machine", platform.machine()),
            "system": machine.get("system", platform.system()),
            "smoke": bool(raw.get("_smoke", False)),
        },
        "benchmarks": entries,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("dump", help="pytest-benchmark --benchmark-json file")
    parser.add_argument("--pr", type=int, required=True,
                        help="PR number this run belongs to")
    parser.add_argument("--output", required=True,
                        help="trajectory file to write (BENCH_<pr>.json)")
    parser.add_argument("--smoke", action="store_true",
                        help="mark the entry as a smoke-sized run")
    args = parser.parse_args(argv)
    with open(args.dump, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    raw["_smoke"] = args.smoke
    entry = condense(raw, args.pr)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(entry, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output} ({len(entry['benchmarks'])} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
