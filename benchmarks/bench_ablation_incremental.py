"""Ablation: delta-evaluated candidate scans vs from-scratch recounts.

The greedy heuristics spend nearly all of their runtime evaluating tentative
edge edits (the runtime wall of Figures 9-11).  Two orthogonal knobs govern
that cost:

* ``evaluation_mode`` — ``"incremental"`` routes every scan through an
  ``OpacitySession`` that updates only the distance-matrix rows an edit can
  touch, while ``"scratch"`` recomputes the bounded matrix and the
  Algorithm 1 recount per candidate.
* ``scan_mode`` — ``"batched"`` evaluates all single-edge candidates of a
  greedy step in one stacked numpy pass (shared removal slab, grouped
  bincount), while ``"per_candidate"`` previews them one at a time.

This bench measures candidate evaluations per second along both axes on the
same workload and verifies every configuration chooses bit-identical edits.

``max_steps`` caps the greedy loop so the measurement stays smoke-sized:
all configurations walk the exact same steps, so evaluations/sec is an
apples-to-apples throughput comparison.
"""

import time

import pytest

from benchmarks.conftest import smoke
from repro.core import EdgeRemovalAnonymizer
from repro.datasets import load_sample

DATASET = "google"
SAMPLE_SIZES = smoke((40, 80), (40, 80))
LENGTH = 2
THETA = 0.3
MAX_STEPS = 4

#: (evaluation_mode, scan_mode) points of the ablation grid; the first entry
#: is the fully-optimized default, the last the from-scratch reference.
CONFIGURATIONS = (
    ("incremental", "batched"),
    ("incremental", "per_candidate"),
    ("scratch", "per_candidate"),
)

#: At the largest sample, incremental/per-candidate must beat scratch and
#: batched must beat per-candidate, each by at least this much; the measured
#: margins are ~3-6x and ~2-3x locally, so 2x absorbs scheduler noise.
#: Under the CI smoke knob only the bit-identity assertions run — a shared
#: runner must not fail the build on a timing measurement.
MIN_SPEEDUP_LARGEST = smoke(2.0, None)


def _run(graph, evaluation_mode, scan_mode):
    anonymizer = EdgeRemovalAnonymizer(
        length_threshold=LENGTH, theta=THETA, seed=0, max_steps=MAX_STEPS,
        evaluation_mode=evaluation_mode, scan_mode=scan_mode)
    started = time.perf_counter()
    result = anonymizer.anonymize(graph)
    elapsed = time.perf_counter() - started
    return result, result.evaluations / max(elapsed, 1e-9)


@pytest.mark.parametrize("size", SAMPLE_SIZES)
def bench_incremental_vs_scratch(benchmark, size):
    benchmark.group = f"candidate evaluations/sec, {DATASET} L={LENGTH}"
    graph = load_sample(DATASET, size, seed=0)
    results, rates = {}, {}
    for evaluation_mode, scan_mode in CONFIGURATIONS[1:]:
        results[evaluation_mode, scan_mode], rates[evaluation_mode, scan_mode] = \
            _run(graph, evaluation_mode, scan_mode)
    results["incremental", "batched"], rates["incremental", "batched"] = \
        benchmark.pedantic(_run, args=(graph, "incremental", "batched"),
                           rounds=1, iterations=1)
    print(f"\n  |V|={size}:")
    for key in CONFIGURATIONS:
        print(f"    {key[0]:>11s}/{key[1]:<13s} {rates[key]:>10,.0f} evals/s")

    # Every configuration must walk the identical greedy trajectory ...
    reference = results["scratch", "per_candidate"]
    for key in CONFIGURATIONS[:2]:
        observed = results[key]
        assert [(step.operation, step.edges, step.max_opacity_after)
                for step in observed.steps] == \
               [(step.operation, step.edges, step.max_opacity_after)
                for step in reference.steps]
        assert observed.final_opacity == reference.final_opacity
        assert observed.evaluations == reference.evaluations
    # ... and each optimization layer must pay off where the matrices are
    # big enough for fixed per-step overheads not to dominate.
    if MIN_SPEEDUP_LARGEST is not None and size == max(SAMPLE_SIZES):
        incremental_over_scratch = (rates["incremental", "per_candidate"]
                                    / rates["scratch", "per_candidate"])
        batched_over_per_candidate = (rates["incremental", "batched"]
                                      / rates["incremental", "per_candidate"])
        assert incremental_over_scratch >= MIN_SPEEDUP_LARGEST
        assert batched_over_per_candidate >= MIN_SPEEDUP_LARGEST
