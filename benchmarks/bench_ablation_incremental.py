"""Ablation: delta-evaluated candidate scans vs from-scratch recounts.

The greedy heuristics spend nearly all of their runtime evaluating tentative
edge edits (the runtime wall of Figures 9-11).  ``evaluation_mode =
"incremental"`` routes every scan through an ``OpacitySession`` that updates
only the distance-matrix rows an edit can touch and applies count deltas for
the flipped cells, while ``"scratch"`` recomputes the bounded matrix and the
Algorithm 1 recount per candidate.  This bench measures candidate
evaluations per second in both modes on the same workload and verifies the
modes choose bit-identical edits.

``max_steps`` caps the greedy loop so the measurement stays smoke-sized:
both modes walk the exact same steps, so evaluations/sec is an
apples-to-apples throughput comparison.
"""

import time

import pytest

from benchmarks.conftest import smoke
from repro.core import EdgeRemovalAnonymizer
from repro.datasets import load_sample

DATASET = "google"
SAMPLE_SIZES = smoke((40, 80), (40, 80))
LENGTH = 2
THETA = 0.3
MAX_STEPS = 4

#: The largest sample must beat scratch throughput at least this much; the
#: measured margin is ~5-6x locally, so 2x absorbs scheduler noise.  Under
#: the CI smoke knob only the bit-identity assertions run — a shared runner
#: must not fail the build on a timing measurement.
MIN_SPEEDUP_LARGEST = smoke(2.0, None)


def _run(graph, mode):
    anonymizer = EdgeRemovalAnonymizer(
        length_threshold=LENGTH, theta=THETA, seed=0, max_steps=MAX_STEPS,
        evaluation_mode=mode)
    started = time.perf_counter()
    result = anonymizer.anonymize(graph)
    elapsed = time.perf_counter() - started
    return result, result.evaluations / max(elapsed, 1e-9)


@pytest.mark.parametrize("size", SAMPLE_SIZES)
def bench_incremental_vs_scratch(benchmark, size):
    benchmark.group = f"candidate evaluations/sec, {DATASET} L={LENGTH}"
    graph = load_sample(DATASET, size, seed=0)
    scratch_result, scratch_rate = _run(graph, "scratch")
    incremental_result, incremental_rate = benchmark.pedantic(
        _run, args=(graph, "incremental"), rounds=1, iterations=1)
    ratio = incremental_rate / scratch_rate
    print(f"\n  |V|={size}: scratch {scratch_rate:,.0f} evals/s, "
          f"incremental {incremental_rate:,.0f} evals/s  ({ratio:.1f}x)")

    # Both modes must walk the identical greedy trajectory ...
    assert [(step.operation, step.edges, step.max_opacity_after)
            for step in incremental_result.steps] == \
           [(step.operation, step.edges, step.max_opacity_after)
            for step in scratch_result.steps]
    assert incremental_result.final_opacity == scratch_result.final_opacity
    assert incremental_result.evaluations == scratch_result.evaluations
    # ... and the delta evaluation must pay off where the matrices are big
    # enough for the recount to dominate fixed per-step overheads.
    if MIN_SPEEDUP_LARGEST is not None and size == max(SAMPLE_SIZES):
        assert ratio >= MIN_SPEEDUP_LARGEST
