"""Shared helpers for the benchmark harness.

Every module in this directory regenerates one table or figure of the paper
(see DESIGN.md §4 for the index).  Each benchmark runs its experiment once
(``rounds=1``) — the quantities of interest are the experiment's *outputs*
(distortion, EMD, runtime series), not microsecond-level timing stability —
and prints the regenerated rows/series so they can be compared with the
paper (run pytest with ``-s`` to see them).
"""

from __future__ import annotations

import os
from typing import Callable, Mapping, Sequence, Tuple, TypeVar

import pytest

from repro.experiments import ExperimentRunner

T = TypeVar("T")


def smoke(full: T, small: T) -> T:
    """Pick the smoke-sized variant of a workload knob under CI.

    The CI benchmark job sets ``REPRO_BENCH_SMOKE=1`` and runs every bench
    at its smallest size — enough to catch rotted imports, renamed builder
    keyword arguments, and broken assertions without paying for the full
    grids.  Locally (unset) the full workload runs.
    """
    return small if os.environ.get("REPRO_BENCH_SMOKE") else full


def run_once(benchmark, func: Callable, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_series(title: str, series: Mapping[str, Sequence[Tuple[float, float]]],
                 x_label: str = "theta", y_label: str = "value") -> None:
    """Print a figure's series in the same layout the paper plots."""
    print(f"\n== {title} ==")
    for label, points in series.items():
        rendered = ", ".join(f"{x_label}={x:g}: {y_label}={y:.4f}" for x, y in points)
        print(f"  {label:<16} {rendered}")


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """One experiment runner shared across benchmarks (caches dataset samples)."""
    return ExperimentRunner()
