"""Table 1: description of the original datasets (nodes, links, domains)."""

from benchmarks.conftest import run_once
from repro.experiments import format_table, table1_rows


def bench_table1(benchmark):
    rows = run_once(benchmark, table1_rows)
    print("\n== Table 1: original datasets ==")
    print(format_table(rows))
    assert len(rows) == 7
    assert {row["dataset"] for row in rows} == {
        "google", "berkeley-stanford", "epinions", "enron",
        "gnutella", "acm", "wikipedia"}
