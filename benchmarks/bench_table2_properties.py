"""Table 2: structural properties of the original datasets.

The published values are reported verbatim; alongside them the same
statistics are measured on a mid-size synthetic proxy of each dataset so the
offline stand-ins can be compared against the originals they emulate.
"""

from benchmarks.conftest import run_once
from repro.datasets import synthesize_dataset
from repro.experiments import format_table, table2_rows
from repro.graph.properties import graph_properties

#: Proxy size used for the measured columns (full graphs are millions of nodes).
PROXY_NODES = 300


def _published_and_measured():
    rows = []
    for row in table2_rows():
        proxy = synthesize_dataset(row["dataset"], num_nodes=PROXY_NODES, seed=7)
        measured = graph_properties(proxy)
        merged = dict(row)
        merged.update({
            "proxy_nodes": PROXY_NODES,
            "proxy_avg_degree": round(measured.average_degree, 2),
            "proxy_stdd": round(measured.degree_stddev, 2),
            "proxy_acc": round(measured.average_clustering, 3),
        })
        rows.append(merged)
    return rows


def bench_table2(benchmark):
    rows = run_once(benchmark, _published_and_measured)
    print("\n== Table 2: dataset properties (published vs synthetic proxies) ==")
    print(format_table(rows))
    assert len(rows) == 7
    clustered = {row["dataset"]: row["proxy_acc"] for row in rows}
    # The proxies must land in the right clustering regime: web/e-mail graphs
    # clustered, peer-to-peer graphs essentially unclustered.
    assert clustered["google"] > clustered["gnutella"]
    assert clustered["enron"] > clustered["gnutella"]
