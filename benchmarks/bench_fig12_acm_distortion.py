"""Figure 12: Edge Removal distortion vs graph size for several θ (ACM proxy).

The paper's headline scaling observation: as the published graph grows, the
*same* privacy level is achievable with a *smaller* relative distortion, so
publishing large L-opaque graphs becomes increasingly attractive.
"""

from benchmarks.conftest import run_once, smoke
from repro.experiments import figure12_series

SIZES = smoke((50, 100, 150, 200), (50,))
THETAS = smoke((0.9, 0.7, 0.5), (0.9,))


def bench_fig12_acm_distortion(benchmark, runner):
    result = run_once(benchmark, figure12_series, sample_sizes=SIZES, thetas=THETAS,
                      seed=0, runner=runner)
    print("\n== Figure 12 — Edge Removal distortion vs size, ACM proxy ==")
    for theta, points in sorted(result.items(), reverse=True):
        rendered = ", ".join(f"|V|={size}: {distortion:.4f}"
                             for size, distortion in points)
        print(f"  theta={theta:<4} {rendered}")

    assert set(result) == set(THETAS)
    for theta, points in result.items():
        values = dict(points)
        # Distortion stays a sane ratio everywhere.
        assert all(0.0 <= value <= 1.0 for value in values.values())
        # The paper's trend: relative distortion does not grow with size; on
        # the largest size it is at most what the smallest size required.
        assert values[SIZES[-1]] <= values[SIZES[0]] + 0.02
    # Tighter θ never needs less distortion at a fixed size.
    tight = dict(result[min(THETAS)])
    loose = dict(result[max(THETAS)])
    for size in SIZES:
        assert tight[size] >= loose[size] - 1e-9
