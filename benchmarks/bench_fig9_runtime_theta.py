"""Figure 9: runtime vs θ for growing Google samples.

The paper uses 100/500/1000-node samples on a compute cluster; this harness
uses smaller proxies but reproduces the qualitative claims: runtime grows as
the sample grows and as θ tightens, and GADED-Max is slower than our Removal
heuristic.  The look-ahead runtime trade-off is measured separately in
``bench_ablation_lookahead.py``.
"""

from benchmarks.conftest import run_once, smoke
from repro.experiments import figure9_series

SIZES = smoke((40, 60, 80), (40,))
THETAS = smoke((0.9, 0.8), (0.9,))


def bench_fig9_google_runtime(benchmark, runner):
    result = run_once(benchmark, figure9_series, "google", sample_sizes=SIZES,
                      thetas=THETAS, lookaheads=(1,), insertion_cap=80, seed=0,
                      include_baselines=True, runner=runner)
    print("\n== Figure 9 — runtime (s) vs theta, Google samples ==")
    for size, series in result.items():
        print(f"  |V| = {size}")
        for label, points in series.items():
            rendered = ", ".join(f"theta={theta:g}: {seconds:.3f}s"
                                 for theta, seconds in points)
            print(f"    {label:<16} {rendered}")

    assert set(result) == set(SIZES)
    # Total work grows with the sample size (sum over the sweep).  The samples
    # keep the Table-3 density, so the largest sample has strictly more edges
    # and pairs to process; a generous tolerance absorbs scheduler noise on
    # these second-scale runs.
    def total_runtime(size):
        return sum(seconds for series in result[size].values()
                   for _theta, seconds in series)
    assert total_runtime(SIZES[-1]) >= 0.5 * total_runtime(SIZES[0])
    # GADED-Max does per-step full scans like our Removal but with a weaker
    # objective, and the paper reports it is consistently slower; allow a
    # small tolerance since these runs are sub-second.
    largest = result[SIZES[-1]]
    rem_total = sum(seconds for _theta, seconds in largest["rem la=1"])
    gaded_total = sum(seconds for _theta, seconds in largest["gaded-max"])
    assert rem_total <= gaded_total * 3 + 0.5
