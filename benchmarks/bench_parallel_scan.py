"""Intra-group parallel candidate scanning: one θ-group, many workers.

The tentpole scenario of the scan pool (DESIGN.md §14): a *single*
anonymization run — one sample, one θ — whose per-step candidate scans
shard across ``scan_workers`` processes attached to the session's
shared-memory publication.  The §12 plane cannot help here (there is
only one θ-group); the scan pool parallelizes *inside* it.

Two assertions, mirroring the other accelerator benchmarks:

* **Bit-identity, every size** — the parallel run's step sequence,
  opacities, and evaluation counters equal the serial batched run's.
* **Throughput, core-gated** — candidate evaluations per second must
  beat the serial batched scan by ``MIN_SPEEDUP`` whenever the machine
  actually has ``WORKERS`` cores; on smaller boxes the numbers are
  printed for inspection but a speedup is physically impossible.

The tiled-tier companion (`bench_parallel_scan_tiled_rss`) re-runs the
scenario on `scale_tier="tiled"` in a fresh ``spawn`` subprocess and
asserts the peak-RSS deltas — the measuring parent's own, and the pool
workers' over the parent's baseline — stay under the tile budget plus a
fixed overhead slack, i.e. parallel scans stream tiles instead of
materializing the matrix per worker.
"""

import multiprocessing
import os
import resource
import time

from benchmarks.conftest import smoke
from repro.api import AnonymizationRequest, anonymize
from repro.graph.distance_store import dense_matrix_bytes
from repro.graph.matrices import distance_dtype

DATASET = "gnutella"
#: The scan must dominate pool startup.  rem-ins at L=2 scans every
#: absent edge in its insertion phase — ~40k candidate evaluations per
#: step at n=300 (~2.4s/step serial), the exact single-θ-group workload
#: the pool shards; the smoke shape keeps tens of thousands of
#: evaluations at CI cost.
SAMPLE_SIZE = smoke(300, 200)
ALGORITHM = "rem-ins"
LENGTH = 2
THETA = 0.1
MAX_STEPS = smoke(3, 2)
WORKERS = 4
#: Required candidate-evaluations/sec win over the serial batched scan
#: when the cores exist (the acceptance bar of PR 10).
MIN_SPEEDUP = 1.5

PARITY_FIELDS = ("success", "final_opacity", "distortion", "num_steps",
                 "evaluations", "anonymized_edges", "stop_reason")


def _request(**overrides) -> AnonymizationRequest:
    params = dict(dataset=DATASET, sample_size=SAMPLE_SIZE, seed=0,
                  algorithm=ALGORITHM, theta=THETA, length_threshold=LENGTH,
                  max_steps=MAX_STEPS)
    params.update(overrides)
    return AnonymizationRequest(**params)


def bench_parallel_scan(benchmark):
    benchmark.group = (f"parallel scan, {DATASET} n={SAMPLE_SIZE} "
                       f"L={LENGTH} x{WORKERS}w")

    start = time.perf_counter()
    serial = anonymize(_request())
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = benchmark.pedantic(
        anonymize, args=(_request(scan_mode="parallel",
                                  scan_workers=WORKERS),),
        rounds=1, iterations=1)
    parallel_s = time.perf_counter() - start

    assert serial.ok and parallel.ok
    cores = os.cpu_count() or 1
    serial_eps = serial.evaluations / serial_s if serial_s else float("inf")
    parallel_eps = (parallel.evaluations / parallel_s
                    if parallel_s else float("inf"))
    speedup = parallel_eps / serial_eps if serial_eps else float("inf")
    print(f"\n  serial batched:  {serial.evaluations} evaluations in "
          f"{serial_s:8.3f}s ({serial_eps:10.0f} eval/s)"
          f"\n  parallel x{WORKERS}w:   {parallel.evaluations} evaluations in "
          f"{parallel_s:8.3f}s ({parallel_eps:10.0f} eval/s)"
          f"\n  throughput speedup {speedup:.2f}x on {cores} core(s) "
          f"(asserting >= {MIN_SPEEDUP}x only when cores >= {WORKERS})")

    # Deterministic acceptance, asserted at every size: the sharded scan
    # is bit-identical to the serial batched scan.
    for field in PARITY_FIELDS:
        assert getattr(parallel, field) == getattr(serial, field), field
    if cores >= WORKERS:
        assert speedup >= MIN_SPEEDUP, (
            f"parallel scan throughput {speedup:.2f}x below "
            f"{MIN_SPEEDUP}x on {cores} cores")


# -- tiled tier: bounded tile streaming under the byte budget ----------

#: Same premise as bench_scale_tier: the dense matrix must not fit the
#: budget + slack, so the RSS bound is unsatisfiable if any process
#: materializes it.
RSS_SAMPLE_SIZE = smoke(16000, 12000)
RSS_MAX_STEPS = smoke(2, 1)
RSS_WORKERS = 2
BUDGET_BYTES = 8 << 20
#: Interpreter + numpy temporaries + the sample's edge arrays + the
#: budget-capped stacked scan slabs — all O(n + m + budget).
OVERHEAD_SLACK = 64 << 20


def _measure_parallel_tiled_run(queue, sample_size, budget_bytes):
    warm = AnonymizationRequest(dataset=DATASET, sample_size=50, seed=0,
                                algorithm="rem", theta=THETA,
                                length_threshold=LENGTH)
    anonymize(warm)
    rss0 = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    request = AnonymizationRequest(dataset=DATASET, sample_size=sample_size,
                                   seed=0, algorithm="rem", theta=THETA,
                                   length_threshold=LENGTH,
                                   max_steps=RSS_MAX_STEPS,
                                   scan_mode="parallel",
                                   scan_workers=RSS_WORKERS,
                                   scale_tier="tiled",
                                   scale_budget_bytes=budget_bytes)
    response = anonymize(request)
    rss1 = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    # The pool workers were forked from this process and joined when the
    # session closed, so RUSAGE_CHILDREN holds their high-water mark.
    rss_workers = resource.getrusage(
        resource.RUSAGE_CHILDREN).ru_maxrss * 1024
    queue.put((rss0, rss1, rss_workers, response.success, response.error))


def bench_parallel_scan_tiled_rss(benchmark):
    dense_bytes = dense_matrix_bytes(RSS_SAMPLE_SIZE, distance_dtype(LENGTH))
    benchmark.group = (f"parallel tiled scan RSS, {DATASET} "
                       f"n={RSS_SAMPLE_SIZE} budget={BUDGET_BYTES >> 20}MiB "
                       f"x{RSS_WORKERS}w")
    # Premise: the RSS bound below is unsatisfiable for the dense tier.
    assert dense_bytes > BUDGET_BYTES + OVERHEAD_SLACK

    def run_child():
        context = multiprocessing.get_context("spawn")
        queue = context.Queue()
        child = context.Process(target=_measure_parallel_tiled_run,
                                args=(queue, RSS_SAMPLE_SIZE, BUDGET_BYTES))
        child.start()
        result = queue.get(timeout=540)
        child.join(timeout=60)
        return result

    start = time.perf_counter()
    rss0, rss1, rss_workers, success, error = benchmark.pedantic(
        run_child, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start

    bound = BUDGET_BYTES + OVERHEAD_SLACK
    delta = rss1 - rss0
    worker_delta = max(0, rss_workers - rss0)
    print(f"\n  dense matrix would need {dense_bytes / 2**20:8.1f} MiB"
          f"\n  parent peak-RSS delta:   {delta / 2**20:8.1f} MiB"
          f"\n  worker peak over base:   {worker_delta / 2**20:8.1f} MiB"
          f"\n  bound (budget + slack):  {bound / 2**20:8.1f} MiB"
          f"\n  run: success={success} in {elapsed:.1f}s")
    assert error is None
    # Every process of the sharded tiled scan streams tiles under the
    # byte budget — nobody materializes the n x n matrix.
    assert delta <= bound, (
        f"parent peak RSS delta {delta / 2**20:.1f} MiB exceeds "
        f"{bound / 2**20:.1f} MiB")
    assert worker_delta <= bound, (
        f"scan-worker peak RSS {worker_delta / 2**20:.1f} MiB over the "
        f"parent baseline exceeds {bound / 2**20:.1f} MiB")
