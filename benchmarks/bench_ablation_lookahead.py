"""Ablation: cost and benefit of the look-ahead parameter.

Look-ahead widens the greedy search space; the paper reports that it lets
Removal/Insertion find solutions (or better solutions) at the price of a
significantly higher runtime, while Removal's runtime is affected only
mildly.  This bench quantifies both effects on one workload.
"""

import pytest

from benchmarks.conftest import run_once, smoke
from repro.core import EdgeRemovalAnonymizer, EdgeRemovalInsertionAnonymizer
from repro.datasets import load_sample

DATASET = "wikipedia"
SAMPLE_SIZE = smoke(40, 25)
THETA = 0.5


@pytest.fixture(scope="module")
def workload():
    return load_sample(DATASET, SAMPLE_SIZE, seed=0)


@pytest.mark.parametrize("lookahead", [1, 2])
def bench_lookahead_removal(benchmark, workload, lookahead):
    benchmark.group = f"Edge Removal, {DATASET} |V|={SAMPLE_SIZE}, theta={THETA}"
    anonymizer = EdgeRemovalAnonymizer(length_threshold=1, theta=THETA, seed=0,
                                       lookahead=lookahead)
    result = run_once(benchmark, anonymizer.anonymize, workload)
    print(f"\n  removal la={lookahead}: {result.summary()}")
    assert result.success


@pytest.mark.parametrize("lookahead", [1, 2])
def bench_lookahead_removal_insertion(benchmark, workload, lookahead):
    benchmark.group = f"Edge Removal/Insertion, {DATASET} |V|={SAMPLE_SIZE}, theta={THETA}"
    anonymizer = EdgeRemovalInsertionAnonymizer(length_threshold=1, theta=THETA, seed=0,
                                                lookahead=lookahead,
                                                insertion_candidate_cap=100)
    result = run_once(benchmark, anonymizer.anonymize, workload)
    print(f"\n  removal/insertion la={lookahead}: {result.summary()}")
    assert 0.0 <= result.final_opacity <= 1.0
