"""Out-of-core scale tier: peak RSS stays under the tile-cache budget.

The tentpole claim of the `DistanceStore` seam (DESIGN.md §13): an
anonymization run whose dense ``n × n`` matrix would blow the configured
byte budget completes on ``scale_tier="tiled"`` without ever holding
more than the budget's worth of distance tiles — cold tiles spill to a
temp file and the LRU keeps the resident set bounded.

The run executes in a fresh ``spawn`` subprocess so ``ru_maxrss`` is an
honest per-run high-water mark (in this process, earlier benchmarks
would already have pushed the peak past anything this one allocates).
The child warms the dataset/import machinery at a tiny sample size,
snapshots its peak RSS, runs the real sample on the tiled tier, and
reports the delta.  The assertion leaves ``OVERHEAD_SLACK`` of headroom
for the interpreter, the sample's edge arrays, and evaluation
temporaries — all O(n + m), none of it the n×n matrix — and the premise
check guarantees the bound would be *unsatisfiable* if the dense matrix
were materialized.
"""

import multiprocessing
import resource
import time

from benchmarks.conftest import smoke
from repro.api import AnonymizationRequest, anonymize
from repro.graph.distance_store import dense_matrix_bytes
from repro.graph.matrices import distance_dtype

DATASET = "gnutella"
#: Full shape: a 244 MiB dense matrix against an 8 MiB tile budget.
#: The smoke shape keeps the same 10x-over-budget premise at CI cost.
SAMPLE_SIZE = smoke(16000, 10000)
LENGTH = 2
THETA = 0.5
BUDGET_BYTES = 8 << 20
#: Non-distance overhead allowance: interpreter + numpy temporaries +
#: the sample's edge arrays + per-tile evaluation slabs.  Measured
#: 40-48 MiB across the two shapes; the premise check below asserts the
#: dense matrix alone would exceed budget + slack, so the RSS bound
#: cannot be met by a run that materializes it.
OVERHEAD_SLACK = 64 << 20


def _measure_tiled_run(queue, sample_size, budget_bytes):
    warm = AnonymizationRequest(dataset=DATASET, sample_size=50, seed=0,
                                algorithm="rem", theta=THETA,
                                length_threshold=LENGTH)
    anonymize(warm)
    rss0 = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    request = AnonymizationRequest(dataset=DATASET, sample_size=sample_size,
                                   seed=0, algorithm="rem", theta=THETA,
                                   length_threshold=LENGTH,
                                   scale_tier="tiled",
                                   scale_budget_bytes=budget_bytes)
    response = anonymize(request)
    rss1 = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    queue.put((rss0, rss1, response.success, response.error,
               response.final_opacity))


def _run_child():
    context = multiprocessing.get_context("spawn")
    queue = context.Queue()
    child = context.Process(target=_measure_tiled_run,
                            args=(queue, SAMPLE_SIZE, BUDGET_BYTES))
    child.start()
    result = queue.get(timeout=540)
    child.join(timeout=60)
    return result


def bench_scale_tier(benchmark):
    dense_bytes = dense_matrix_bytes(SAMPLE_SIZE, distance_dtype(LENGTH))
    benchmark.group = (f"scale tier, {DATASET} n={SAMPLE_SIZE} L={LENGTH} "
                       f"budget={BUDGET_BYTES >> 20}MiB")
    # Premise: the RSS bound below is unsatisfiable for the dense tier.
    assert dense_bytes > BUDGET_BYTES + OVERHEAD_SLACK

    start = time.perf_counter()
    rss0, rss1, success, error, opacity = benchmark.pedantic(
        _run_child, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start

    overhead = rss1 - rss0
    print(f"\n  dense matrix would need:  {dense_bytes / 2**20:8.1f} MiB"
          f"\n  tile-cache budget:        {BUDGET_BYTES / 2**20:8.1f} MiB"
          f"\n  peak RSS over baseline:   {overhead / 2**20:8.1f} MiB"
          f"\n  tiled run:                {elapsed:8.2f} s"
          f"  (opacity={opacity:.4f})")

    assert success, error
    assert overhead <= BUDGET_BYTES + OVERHEAD_SLACK, (
        f"peak RSS overhead {overhead / 2**20:.1f} MiB exceeds the "
        f"{(BUDGET_BYTES + OVERHEAD_SLACK) / 2**20:.1f} MiB bound")
    assert overhead < dense_bytes
