"""Figure 6(e, f): distortion vs θ at L = 2 (Epinions and Gnutella samples).

Only the paper's own heuristics appear here — the Zhang & Zhang baselines
cannot handle multi-edge linkage.  Expected shape: distortion rises as θ
tightens, and the Removal heuristic achieves lower distortion than
Removal/Insertion for the same threshold.
"""

import pytest

from benchmarks.conftest import print_series, run_once, smoke
from repro.experiments import figure6_series

#: Per-dataset sweep parameters; the sparse samples need tighter thresholds
#: before any modification is required (their baseline opacity is low).
CASES = {
    "epinions": dict(sample_size=smoke(100, 50),
                     thetas=smoke((0.15, 0.1, 0.05), (0.15,))),
    "gnutella": dict(sample_size=smoke(80, 40),
                     thetas=smoke((0.5, 0.3, 0.2), (0.5,))),
}


@pytest.mark.parametrize("dataset", sorted(CASES))
def bench_fig6_l2(benchmark, runner, dataset):
    parameters = CASES[dataset]
    series = run_once(benchmark, figure6_series, dataset, length_threshold=2,
                      sample_size=parameters["sample_size"],
                      thetas=parameters["thetas"], lookaheads=(1, 2),
                      insertion_cap=100, seed=0, runner=runner)
    print_series(f"Figure 6 (L=2) — {dataset}", series, y_label="distortion")

    assert set(series) == {"rem la=1", "rem la=2", "rem-ins la=1", "rem-ins la=2"}
    rem = dict(series["rem la=1"])
    rem_ins = dict(series["rem-ins la=1"])
    thetas = parameters["thetas"]
    # Tightening θ never reduces the required distortion.
    assert rem[thetas[-1]] >= rem[thetas[0]] - 1e-9
    # Removal needs at most the alteration of Removal/Insertion (paper 6.3:
    # "For every L, the Removal heuristic always finds an opaque graph with
    # lower distortion").
    for theta in thetas:
        assert rem[theta] <= rem_ins[theta] + 1e-9
