"""Service-layer overhead: direct grid vs HTTP round-trip vs dedup replay.

Three timings of the same tiny θ-grid quantify what the
anonymization-as-a-service layer (DESIGN.md §11) costs and saves:

* ``direct`` — ``run_grid`` in-process, the floor every other number is
  compared against.
* ``service`` — submit over HTTP to a live server (store writes, job
  queue, checkpoint persistence, result fetch included).
* ``dedup`` — resubmit the identical grid: answered from the store by
  fingerprint with zero new candidate evaluations, so this should cost
  milliseconds regardless of the workload.
"""

import threading

import pytest

from benchmarks.conftest import run_once, smoke
from repro.api import AnonymizationRequest, GridRequest, run_grid
from repro.service.client import ServiceClient
from repro.service.http import create_server
from repro.service.jobs import JobManager
from repro.service.store import RunStore

DATASET = "enron"
SAMPLE_SIZE = smoke(120, 40)
THETAS = smoke((0.9, 0.7, 0.5, 0.3), (0.9, 0.6))
LENGTH = smoke(2, 1)

BASE = AnonymizationRequest(dataset=DATASET, sample_size=SAMPLE_SIZE, seed=0,
                            length_threshold=LENGTH)


@pytest.fixture(scope="module")
def grid():
    return GridRequest.from_axes(BASE, thetas=THETAS)


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    store = RunStore(str(tmp_path_factory.mktemp("service") / "runs.db"))
    manager = JobManager(store)
    manager.start()
    server = create_server("127.0.0.1", 0, manager, store)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield ServiceClient(f"http://{host}:{port}")
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)
    manager.stop()
    store.close()


def bench_grid_direct(benchmark, grid):
    benchmark.group = f"{DATASET} |V|={SAMPLE_SIZE}, L={LENGTH}, {len(THETAS)} thetas"
    response = run_once(benchmark, run_grid, grid, max_workers=1)
    assert all(item.ok for item in response.responses)
    print(f"\n  direct: {len(response.responses)} responses")


def bench_grid_via_service(benchmark, grid, service):
    benchmark.group = f"{DATASET} |V|={SAMPLE_SIZE}, L={LENGTH}, {len(THETAS)} thetas"

    def round_trip():
        submitted = service.submit(grid)
        status = service.wait(submitted["job_id"], timeout=600,
                              poll_seconds=0.01)
        assert status["status"] == "done"
        return service.result(submitted["job_id"]), submitted

    response, submitted = run_once(benchmark, round_trip)
    assert all(item.ok for item in response.responses)
    assert submitted["deduped"] is False
    print(f"\n  service: job {submitted['job_id']} done, "
          f"{len(response.responses)} responses")


def bench_grid_dedup_replay(benchmark, grid, service):
    """Must run after ``bench_grid_via_service`` (same module, same store)."""
    benchmark.group = f"{DATASET} |V|={SAMPLE_SIZE}, L={LENGTH}, {len(THETAS)} thetas"
    first = service.submit(grid)  # warm: either deduped already or computes
    service.wait(first["job_id"], timeout=600)

    def replay():
        submitted = service.submit(grid)
        assert submitted["deduped"] is True
        return service.result(submitted["job_id"])

    response = run_once(benchmark, replay)
    assert all(item.ok for item in response.responses)
    print(f"\n  dedup: served from store, {len(response.responses)} responses")
