"""Shared-memory data plane: parallel θ-groups over one published sample.

The tentpole scenario of the zero-copy plane (DESIGN.md §12): a
*single-sample* grid — one dataset/size/seed, several algorithms and L
values, a θ grid per combination — whose θ-sweep groups fan out across a
process pool while the parent performs exactly **one** sample load and
**one** L_max bounded-distance computation, published once into
shared-memory segments that every worker attaches read-only.

Two baselines bracket the plane:

* ``serial`` — ``max_workers=0``, the in-process reference the responses
  must be bit-identical to;
* ``legacy`` — ``shared_memory=False``, the PR-6 fan-out where each
  worker re-derives its own sample artifacts (the redundant work the
  arena removes).

The work counters are deterministic engine properties and are asserted
under the CI smoke knob as well; the wall-clock comparison is only
*asserted* when the machine actually has the cores to parallelize
(``os.cpu_count() >= workers``) — on smaller boxes the numbers are
printed for inspection but a speedup is physically impossible.
"""

import os
import time

from benchmarks.conftest import smoke
from repro.api import AnonymizationRequest, GridRequest, run_grid

DATASET = "gnutella"
#: n=200 is the sweet spot for this sample: the rem-ins L=2 groups take
#: ~1.2s each (well past pool startup), while smaller samples converge in
#: milliseconds and would only measure process-pool overhead.
SAMPLE_SIZE = 200
ALGORITHMS = ("rem", "rem-ins")
LENGTHS = (1, 2)
#: Each extra lookahead adds another ~1.2s rem-ins L=2 θ-group, which is
#: what actually fans out: 3 heavy groups for the full shape (4 workers),
#: 2 for the smoke shape (2-worker CI runners).
LOOKAHEADS = smoke((1, 2, 3), (1, 2))
THETAS = (0.9, 0.8, 0.7, 0.6, 0.5)
WORKERS = smoke(4, 2)
#: Minimum pooled-vs-serial speedup asserted when the cores exist: the
#: full shape (4 workers on >= 4 cores) must beat 2x; the CI smoke shape
#: (2-core runners) just has to show a real win over serial.
MIN_SPEEDUP = smoke(2.0, 1.05)

PARITY_FIELDS = ("success", "final_opacity", "distortion", "num_steps",
                 "evaluations", "anonymized_edges", "stop_reason")


def _grid() -> GridRequest:
    base = AnonymizationRequest(dataset=DATASET, sample_size=SAMPLE_SIZE,
                                seed=0)
    return GridRequest.from_axes(base, algorithms=ALGORITHMS,
                                 length_thresholds=LENGTHS,
                                 lookaheads=LOOKAHEADS, thetas=THETAS)


def bench_shm_grid(benchmark):
    grid = _grid()
    benchmark.group = (f"shm grid, {DATASET} n={SAMPLE_SIZE} "
                       f"{len(grid.groups())} theta-groups x{WORKERS}w")

    start = time.perf_counter()
    serial = run_grid(grid, max_workers=0)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    legacy = run_grid(grid, max_workers=WORKERS, shared_memory=False)
    legacy_s = time.perf_counter() - start

    pooled = benchmark.pedantic(
        run_grid, args=(grid,), kwargs={"max_workers": WORKERS},
        rounds=1, iterations=1)

    print(f"\n  grid: {len(grid.requests)} configs in {len(grid.groups())} "
          f"theta group(s) over {len(grid.sample_groups())} sample group(s)"
          f"\n  serial (max_workers=0):        {serial_s:8.3f}s"
          f"\n  legacy plane ({WORKERS} workers):      {legacy_s:8.3f}s"
          f"\n  shm plane ({WORKERS} workers): see benchmark timing above"
          f"\n  shm grid work: {pooled.num_sample_loads} load(s), "
          f"{pooled.num_distance_computes} distance computation(s) "
          f"(legacy plane pays both per worker)")

    # Deterministic acceptance, asserted at every size: one load and one
    # L_max computation for the whole pooled grid, bit-identical responses.
    assert pooled.ok
    assert pooled.num_sample_loads == 1
    assert pooled.num_distance_computes == 1
    for ours, theirs in zip(pooled.responses, serial.responses):
        for field in PARITY_FIELDS:
            assert getattr(ours, field) == getattr(theirs, field), field
    for ours, theirs in zip(legacy.responses, serial.responses):
        for field in PARITY_FIELDS:
            assert getattr(ours, field) == getattr(theirs, field), field


def bench_shm_grid_speedup(benchmark):
    """Wall-clock: θ-group fan-out vs the serial baseline (core-gated)."""
    grid = _grid()
    benchmark.group = f"shm grid speedup x{WORKERS}w"

    start = time.perf_counter()
    run_grid(grid, max_workers=0)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    pooled = benchmark.pedantic(
        run_grid, args=(grid,), kwargs={"max_workers": WORKERS},
        rounds=1, iterations=1)
    pooled_s = time.perf_counter() - start

    cores = os.cpu_count() or 1
    speedup = serial_s / pooled_s if pooled_s else float("inf")
    print(f"\n  serial {serial_s:.3f}s vs shm x{WORKERS}w {pooled_s:.3f}s "
          f"-> speedup {speedup:.2f}x on {cores} core(s) "
          f"(asserting >= {MIN_SPEEDUP}x only when cores >= workers)")
    assert pooled.ok
    if cores >= WORKERS:
        assert speedup >= MIN_SPEEDUP, (
            f"shm plane speedup {speedup:.2f}x below {MIN_SPEEDUP}x "
            f"on {cores} cores")
