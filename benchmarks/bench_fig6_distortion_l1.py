"""Figure 6(a-d): distortion vs θ at L = 1, our heuristics vs Zhang & Zhang.

The paper plots the edit-distance ratio against the confidence threshold θ
for the Google, Wikipedia, Enron, and Berkeley-Stanford samples.  The shapes
to reproduce: distortion grows as θ tightens, the Removal heuristic needs at
most the distortion of GADED-Max, and GADES stalls (near-zero distortion
because it cannot reach the threshold at all).
"""

import pytest

from benchmarks.conftest import print_series, run_once, smoke
from repro.experiments import figure6_series

#: Scaled-down experiment parameters (paper: 100-500 node samples, θ 0.9→0.3).
SAMPLE_SIZE = smoke(50, 30)
THETAS = smoke((0.8, 0.6, 0.5), (0.8,))


@pytest.mark.parametrize("dataset", ["google", "wikipedia", "enron", "berkeley-stanford"])
def bench_fig6_l1(benchmark, runner, dataset):
    series = run_once(benchmark, figure6_series, dataset, length_threshold=1,
                      sample_size=SAMPLE_SIZE, thetas=THETAS, lookaheads=(1, 2),
                      insertion_cap=100, seed=0, runner=runner)
    print_series(f"Figure 6 (L=1) — {dataset}", series, y_label="distortion")

    rem = dict(series["rem la=1"])
    rem_ins = dict(series["rem-ins la=1"])
    gaded_max = dict(series["gaded-max"])
    gades = dict(series["gades"])
    for theta in THETAS:
        # Distortion is a valid ratio and Rem never exceeds GADED-Max (paper's
        # headline comparison).
        assert 0.0 <= rem[theta] <= 1.0
        assert rem[theta] <= gaded_max[theta] + 1e-9
        # Rem preserves more edges than Rem-Ins removes+inserts, so its edit
        # distance is never larger on these workloads.
        assert rem[theta] <= rem_ins[theta] + 1e-9
    # Distortion is non-decreasing as θ tightens.
    assert rem[THETAS[-1]] >= rem[THETAS[0]] - 1e-9
    # GADES cannot do better than the removal-based methods; typically it
    # stalls with little or no change.
    assert min(gades.values()) >= 0.0
