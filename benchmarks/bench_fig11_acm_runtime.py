"""Figure 11: Edge Removal runtime vs graph size for several θ (ACM proxy).

The paper scales the ACM co-authorship crawl from 1,000 to 10,000 nodes
(multi-day runs); the proxy grid here is laptop-scale but exercises the same
sweep.  Expected shape: runtime grows with graph size and with decreasing θ.
"""

from benchmarks.conftest import run_once, smoke
from repro.experiments import figure11_series

SIZES = smoke((50, 100, 150), (50,))
THETAS = smoke((0.9, 0.7, 0.5), (0.9,))


def bench_fig11_acm_runtime(benchmark, runner):
    result = run_once(benchmark, figure11_series, sample_sizes=SIZES, thetas=THETAS,
                      seed=0, runner=runner)
    print("\n== Figure 11 — Edge Removal runtime (s) vs size, ACM proxy ==")
    for theta, points in sorted(result.items(), reverse=True):
        rendered = ", ".join(f"|V|={size}: {seconds:.3f}s" for size, seconds in points)
        print(f"  theta={theta:<4} {rendered}")

    assert set(result) == set(THETAS)
    # More vertices means at least as much total work for the tightest θ.
    tight = dict(result[min(THETAS)])
    assert tight[SIZES[-1]] >= tight[SIZES[0]] - 0.05
    # Tightening θ cannot reduce the work at the largest size.
    loose = dict(result[max(THETAS)])
    assert tight[SIZES[-1]] >= loose[SIZES[-1]] - 0.05
