"""Grid engine cache ablation: shared sample loads and L_max distance reuse.

A figure6-style grid job — one sample, several L values, a θ grid per L —
used to pay one sample load *per θ-sweep group* and one full
bounded-distance computation *per distinct L*.  The grid engine
(:mod:`repro.api.sweeps`, DESIGN.md §10) collapses both: the sample group
loads its graph once through an :class:`~repro.api.cache.ExecutionCache`,
and a single engine run at the group's maximum L serves every smaller L by
thresholding.

The cache counters are deterministic properties of the engine (not
timings), so they are asserted under the CI smoke knob as well:

* exactly **1 sample load** for the whole grid (the per-worker cache
  eliminates the per-group reloads), and
* exactly **1 full distance computation** for the L-sweep group (the
  L_max matrix serves both L = 1 and L = 2 by thresholding),

with responses bit-identical to independent ``anonymize()`` runs.
"""

import pytest

from benchmarks.conftest import smoke
from repro.api import AnonymizationRequest, ExecutionCache, GridRequest, anonymize
from repro.api.sweeps import execute_sample_group

DATASET = "gnutella"
SAMPLE_SIZE = smoke(60, 40)
LENGTHS = (1, 2)
THETAS = smoke((0.9, 0.8, 0.7, 0.6, 0.5), (0.8, 0.6))
SEED = 0

#: Response fields compared against independent runs (runtime aside).
PARITY_FIELDS = ("success", "final_opacity", "distortion", "num_steps",
                 "evaluations", "anonymized_edges", "stop_reason")


def _grid() -> GridRequest:
    base = AnonymizationRequest(dataset=DATASET, sample_size=SAMPLE_SIZE,
                                seed=SEED)
    return GridRequest.from_axes(base, length_thresholds=LENGTHS,
                                 thetas=THETAS)


def bench_grid_cache(benchmark):
    grid = _grid()
    cache = ExecutionCache()
    benchmark.group = f"grid cache, {DATASET} n={SAMPLE_SIZE} L={LENGTHS}"
    responses = benchmark.pedantic(
        execute_sample_group, args=(list(grid.requests),),
        kwargs={"cache": cache}, rounds=1, iterations=1)

    groups = grid.groups()
    print(f"\n  grid: {len(grid.requests)} configs in {len(groups)} theta "
          f"group(s) over {len(grid.sample_groups())} sample group(s)"
          f"\n  sample loads: {cache.sample_loads} (naive: {len(groups)})"
          f"\n  full distance computations: {cache.distance_computes} "
          f"(naive: {len(LENGTHS)})")

    # The acceptance contract: one load, one L_max computation, parity.
    assert len(groups) == len(LENGTHS) > 1
    assert cache.sample_loads == 1
    assert cache.distance_computes == 1
    for request, response in zip(grid.requests, responses):
        assert response.ok
        reference = anonymize(request)
        for field in PARITY_FIELDS:
            assert getattr(response, field) == getattr(reference, field), field


def bench_grid_cache_repeat_groups(benchmark):
    """Re-running more groups against a warm cache adds no loads/computes."""
    grid = _grid()
    cache = ExecutionCache()
    execute_sample_group(list(grid.requests), cache=cache)
    loads, computes = cache.sample_loads, cache.distance_computes

    extra = GridRequest.from_axes(
        AnonymizationRequest(dataset=DATASET, sample_size=SAMPLE_SIZE,
                             seed=SEED, lookahead=2),
        length_thresholds=(min(LENGTHS),), thetas=THETAS[-1:])
    benchmark.pedantic(execute_sample_group, args=(list(extra.requests),),
                       kwargs={"cache": cache}, rounds=1, iterations=1)
    print(f"\n  after warm re-run: loads {cache.sample_loads} "
          f"(was {loads}), computes {cache.distance_computes} (was {computes})")
    assert cache.sample_loads == loads
    assert cache.distance_computes == computes
