"""Figure 8: mean clustering-coefficient difference vs θ.

8(a): Wikipedia sample, L = 1, our heuristics vs the Zhang & Zhang baselines.
8(b): Epinions sample, L = 2 (our heuristics only).
8(c): Epinions, look-ahead 1, varying L.

Expected shape: |ΔCC| grows as θ tightens, and the Removal heuristic changes
the clustering coefficient no more than GADED-Max (the paper's Figure 8a).
"""

from benchmarks.conftest import print_series, run_once, smoke
from repro.experiments import figure8_series
from repro.experiments.figures import figure8_lsweep_series

THETAS = smoke((0.8, 0.6, 0.5), (0.8,))


def bench_fig8a_wikipedia_l1(benchmark, runner):
    series = run_once(benchmark, figure8_series, "wikipedia", length_threshold=1,
                      sample_size=smoke(50, 30), thetas=THETAS, lookaheads=(1, 2),
                      insertion_cap=100, seed=0, runner=runner)
    print_series("Figure 8a — mean |dCC| (Wikipedia, L=1)", series, y_label="dCC")
    rem = dict(series["rem la=1"])
    gaded_max = dict(series["gaded-max"])
    for theta in THETAS:
        assert 0.0 <= rem[theta] <= 1.0
        assert rem[theta] <= gaded_max[theta] + 0.05
    assert rem[THETAS[-1]] >= rem[THETAS[0]] - 1e-9


def bench_fig8b_epinions_l2(benchmark, runner):
    thetas = smoke((0.15, 0.1, 0.05), (0.15,))
    series = run_once(benchmark, figure8_series, "epinions", length_threshold=2,
                      sample_size=smoke(100, 40), thetas=thetas, lookaheads=(1, 2),
                      insertion_cap=100, seed=0, runner=runner)
    print_series("Figure 8b — mean |dCC| (Epinions, L=2)", series, y_label="dCC")
    assert set(series) == {"rem la=1", "rem la=2", "rem-ins la=1", "rem-ins la=2"}
    for points in series.values():
        assert all(0.0 <= value <= 1.0 for _theta, value in points)


def bench_fig8c_epinions_lsweep(benchmark, runner):
    thetas = smoke((0.15, 0.1), (0.15,))
    series = run_once(benchmark, figure8_lsweep_series, "epinions", lengths=(1, 2, 3),
                      sample_size=smoke(100, 40), thetas=thetas, insertion_cap=100,
                      seed=0, runner=runner)
    print_series("Figure 8c — mean |dCC| (Epinions, varying L)", series, y_label="dCC")
    assert set(series) == {f"{algorithm} L={length}"
                           for algorithm in ("rem", "rem-ins") for length in (1, 2, 3)}
