"""Ablation: the truncated all-pairs-shortest-path engines (Algorithms 2 and 3).

The paper motivates the pointer-based L-pruned Floyd–Warshall (Algorithm 3)
as an improvement over the scan-based L-pruned variant (Algorithm 2); this
bench times both faithful implementations plus the BFS and NumPy engines the
experiments actually use, on the same graph, verifying they agree.
"""

import numpy as np
import pytest

from benchmarks.conftest import smoke
from repro.datasets import load_sample
from repro.graph.distance import available_engines, bounded_distance_matrix

SAMPLE_SIZE = smoke(80, 40)
LENGTH = 2


@pytest.fixture(scope="module")
def ablation_graph():
    return load_sample("google", SAMPLE_SIZE, seed=0)


@pytest.fixture(scope="module")
def reference_matrix(ablation_graph):
    return bounded_distance_matrix(ablation_graph, LENGTH, engine="floyd-warshall")


@pytest.mark.parametrize("engine", sorted(available_engines()))
def bench_distance_engine(benchmark, ablation_graph, reference_matrix, engine):
    benchmark.group = f"bounded APSP, |V|={SAMPLE_SIZE}, L={LENGTH}"
    result = benchmark(bounded_distance_matrix, ablation_graph, LENGTH, engine=engine)
    assert np.array_equal(result, reference_matrix)
