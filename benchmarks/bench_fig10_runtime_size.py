"""Figure 10: runtime of Rem and Rem-Ins for growing Gnutella samples, L in {1, 2}.

Expected shape: runtime grows with graph size and with L, and the Removal
algorithm is faster than Removal/Insertion (whose insertion phase scans
absent edges, a larger candidate set than the existing edges).
"""

from benchmarks.conftest import run_once, smoke
from repro.experiments import figure10_series

SIZES = smoke((40, 60, 80), (40,))


def bench_fig10_gnutella_runtime(benchmark, runner):
    series = run_once(benchmark, figure10_series, "gnutella", sample_sizes=SIZES,
                      lengths=(1, 2), theta=0.2, seed=0, insertion_cap=100,
                      runner=runner)
    print("\n== Figure 10 — runtime (s) vs size, Gnutella, theta=0.2 ==")
    for label, points in series.items():
        rendered = ", ".join(f"|V|={size}: {seconds:.3f}s" for size, seconds in points)
        print(f"  {label:<14} {rendered}")

    assert set(series) == {"rem L=1", "rem L=2", "rem-ins L=1", "rem-ins L=2"}
    # Removal is not slower than Removal/Insertion on the largest size, for
    # both values of L (paper Section 6.6).
    for length in (1, 2):
        rem_largest = dict(series[f"rem L={length}"])[SIZES[-1]]
        rem_ins_largest = dict(series[f"rem-ins L={length}"])[SIZES[-1]]
        assert rem_largest <= rem_ins_largest + 0.25
