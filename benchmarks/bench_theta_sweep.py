"""Ablation: checkpointed θ sweeps vs independent per-θ runs.

Every figure of the paper's evaluation (Figures 6-12) sweeps the confidence
threshold θ for an otherwise fixed configuration.  θ only gates the greedy
loops' termination, so a descending θ grid can be served by *one*
anonymization pass with per-θ checkpoints (``sweep_mode="checkpointed"``,
DESIGN.md §9) instead of one full run per grid point
(``sweep_mode="independent"``).

This bench runs the paper's default 5-point grid in both modes on the same
sample, verifies the per-θ records are identical (edits, opacity,
distortion, evaluation counts), and asserts the headline speedup: the
checkpointed pass performs at least ``MIN_EVALUATION_RATIO``× fewer
candidate evaluations than the independent runs combined.  Unlike the
timing assertions of the other benches, the evaluation-count ratio is a
deterministic property of the engine, so it is asserted under the CI smoke
knob as well.
"""

from dataclasses import replace

import pytest

from benchmarks.conftest import print_series, smoke
from repro.experiments import SweepPlan

DATASET = "google"
SAMPLE_SIZE = smoke(60, 40)
LENGTH = 1
THETAS = (0.9, 0.8, 0.7, 0.6, 0.5)
SEED = 0

#: The checkpointed pass must do at least this many times fewer candidate
#: evaluations than the five independent runs combined.  The independent
#: total is the sum over the grid, the checkpointed cost the single pass's
#: maximum; with a 5-point grid and nested prefixes the measured ratios are
#: ~3.3-3.7x here, so 3x is the contract of the acceptance criterion.
MIN_EVALUATION_RATIO = 3.0


def _plan(sweep_mode: str) -> SweepPlan:
    return SweepPlan(dataset=DATASET, sample_size=SAMPLE_SIZE, algorithm="rem",
                     thetas=THETAS, length_threshold=LENGTH, seed=SEED,
                     sweep_mode=sweep_mode)


@pytest.mark.parametrize("sweep_mode", ["checkpointed", "independent"])
def bench_theta_sweep(benchmark, runner, sweep_mode):
    benchmark.group = f"theta sweep, {DATASET} n={SAMPLE_SIZE} L={LENGTH}"
    records = benchmark.pedantic(runner.run_sweep, args=(_plan(sweep_mode),),
                                 rounds=1, iterations=1)
    print_series(f"Figure-series sweep ({sweep_mode})",
                 {"rem L=1": [(record.config.theta, record.distortion)
                              for record in records]},
                 y_label="distortion")

    # Differential parity: the records must be indistinguishable from
    # independent per-θ runs (runtime aside) regardless of sweep mode.
    reference = [runner.run(replace(config, sweep_mode="independent"))
                 for config in _plan(sweep_mode).configs()]
    for record, expected in zip(records, reference):
        assert record.final_opacity == expected.final_opacity
        assert record.distortion == expected.distortion
        assert record.steps == expected.steps
        assert record.evaluations == expected.evaluations

    # The headline speedup: one checkpointed pass serves the whole grid.
    # Each record's ``evaluations`` reports what an independent run at its
    # θ would count, so the independent cost is their sum while the
    # checkpointed pass's true cost is the deepest (lowest-θ) checkpoint.
    independent_cost = sum(record.evaluations for record in reference)
    checkpointed_cost = max(record.evaluations for record in records)
    ratio = independent_cost / max(checkpointed_cost, 1)
    print(f"\n  independent evaluations: {independent_cost:,}"
          f"\n  checkpointed evaluations: {checkpointed_cost:,}"
          f"\n  ratio: {ratio:.2f}x (required >= {MIN_EVALUATION_RATIO}x)")
    if sweep_mode == "checkpointed":
        assert ratio >= MIN_EVALUATION_RATIO
