"""Ablation: restricting removal candidates to edges on violating short paths.

DESIGN.md §5.3 argues that only edges lying on a ≤L path between a pair of a
type at the current maximum opacity can lower that maximum, so the scan can
be pruned without changing what the greedy step can achieve.  This bench
measures the evaluation-count and wall-clock effect of the pruning and checks
that both variants reach the threshold.
"""

import pytest

from benchmarks.conftest import run_once, smoke
from repro.core import EdgeRemovalAnonymizer
from repro.datasets import load_sample

DATASET = "enron"
SAMPLE_SIZE = smoke(60, 30)
THETA = 0.5
LENGTH = 2


@pytest.fixture(scope="module")
def workload():
    return load_sample(DATASET, SAMPLE_SIZE, seed=0)


@pytest.mark.parametrize("prune", [True, False], ids=["pruned", "full-scan"])
def bench_candidate_pruning(benchmark, workload, prune):
    benchmark.group = f"Edge Removal, {DATASET} |V|={SAMPLE_SIZE}, L={LENGTH}, theta={THETA}"
    anonymizer = EdgeRemovalAnonymizer(length_threshold=LENGTH, theta=THETA, seed=0,
                                       prune_candidates=prune)
    result = run_once(benchmark, anonymizer.anonymize, workload)
    print(f"\n  prune={prune}: evaluations={result.evaluations} {result.summary()}")
    assert result.success
    assert result.final_opacity <= THETA
