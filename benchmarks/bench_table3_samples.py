"""Table 3: properties of the sampled graphs the experiments run on."""

from benchmarks.conftest import run_once, smoke
from repro.experiments import format_table, table3_rows


def bench_table3_100_node_samples(benchmark):
    rows = run_once(benchmark, table3_rows, sample_sizes=[100], seed=42)
    print("\n== Table 3: 100-node samples (paper vs measured proxy) ==")
    print(format_table(rows))
    assert rows
    for row in rows:
        # The proxies are calibrated to the published edge counts exactly.
        assert row["links"] == row["paper_links"]
        assert abs(row["avg_degree"] - row["paper_avg_degree"]) < 0.1


def bench_table3_500_node_samples(benchmark):
    rows = run_once(benchmark, table3_rows, sample_sizes=[smoke(500, 150)], seed=42)
    print("\n== Table 3: 500-node samples (paper vs measured proxy) ==")
    print(format_table(rows))
    assert all(row["links"] == row["paper_links"] for row in rows)
