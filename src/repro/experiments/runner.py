"""Sweep driver: run anonymization configurations and collect metric records.

The runner caches loaded dataset samples (one graph per dataset/size/seed) so
a sweep over θ reuses the same input graph, exactly as the paper evaluates
one sampled graph across all thresholds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.baselines import GadedMaxAnonymizer, GadedRandAnonymizer, GadesAnonymizer
from repro.core import EdgeRemovalAnonymizer, EdgeRemovalInsertionAnonymizer
from repro.core.anonymizer import AnonymizationResult
from repro.datasets import load_sample
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.graph.graph import Graph
from repro.metrics import utility_report


@dataclass(frozen=True)
class RunRecord:
    """Metrics of one completed run (one point of a figure series)."""

    config: ExperimentConfig
    success: bool
    final_opacity: float
    distortion: float
    degree_emd: float
    geodesic_emd: float
    mean_cc_difference: float
    runtime_seconds: float
    steps: int
    evaluations: int

    def as_dict(self) -> Dict[str, object]:
        """Flatten the record for CSV / tabular output."""
        return {
            "dataset": self.config.dataset,
            "size": self.config.sample_size,
            "algorithm": self.config.label(),
            "L": self.config.length_threshold,
            "theta": self.config.theta,
            "lookahead": self.config.lookahead,
            "success": self.success,
            "opacity": round(self.final_opacity, 4),
            "distortion": round(self.distortion, 4),
            "degree_emd": round(self.degree_emd, 5),
            "geodesic_emd": round(self.geodesic_emd, 5),
            "mean_cc_diff": round(self.mean_cc_difference, 5),
            "runtime_s": round(self.runtime_seconds, 4),
            "steps": self.steps,
            "evaluations": self.evaluations,
        }


def make_algorithm(config: ExperimentConfig):
    """Instantiate the anonymizer named by ``config.algorithm``."""
    if config.algorithm == "rem":
        return EdgeRemovalAnonymizer(
            length_threshold=config.length_threshold, theta=config.theta,
            lookahead=config.lookahead, seed=config.seed, engine=config.engine,
            max_steps=config.max_steps)
    if config.algorithm == "rem-ins":
        return EdgeRemovalInsertionAnonymizer(
            length_threshold=config.length_threshold, theta=config.theta,
            lookahead=config.lookahead, seed=config.seed, engine=config.engine,
            max_steps=config.max_steps,
            insertion_candidate_cap=config.insertion_candidate_cap)
    if config.algorithm == "gaded-rand":
        return GadedRandAnonymizer(theta=config.theta, seed=config.seed,
                                   max_steps=config.max_steps, engine=config.engine)
    if config.algorithm == "gaded-max":
        return GadedMaxAnonymizer(theta=config.theta, seed=config.seed,
                                  max_steps=config.max_steps, engine=config.engine)
    if config.algorithm == "gades":
        return GadesAnonymizer(theta=config.theta, seed=config.seed,
                               max_steps=config.max_steps, engine=config.engine)
    raise ConfigurationError(f"unknown algorithm {config.algorithm!r}")


class ExperimentRunner:
    """Runs experiment configurations, caching dataset samples between runs."""

    def __init__(self, data_dir: Optional[str] = None,
                 compute_spectral: bool = False) -> None:
        self._data_dir = data_dir
        self._compute_spectral = compute_spectral
        self._graph_cache: Dict[Tuple[str, int, int], Graph] = {}

    # ------------------------------------------------------------------
    # graph access
    # ------------------------------------------------------------------
    def graph_for(self, config: ExperimentConfig) -> Graph:
        """The input graph of a configuration (cached per dataset/size/seed)."""
        key = (config.dataset, config.sample_size, config.seed)
        if key not in self._graph_cache:
            self._graph_cache[key] = load_sample(
                config.dataset, config.sample_size,
                data_dir=self._data_dir, seed=config.seed)
        return self._graph_cache[key]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, config: ExperimentConfig) -> RunRecord:
        """Execute one configuration and return its metric record.

        The baselines only address single-edge linkage, so requesting them
        with L > 1 raises (the paper likewise restricts the comparison to
        L = 1).
        """
        if config.algorithm.startswith("gade") and config.length_threshold != 1:
            raise ConfigurationError(
                f"{config.algorithm} only supports L = 1 (requested L={config.length_threshold})")
        graph = self.graph_for(config)
        algorithm = make_algorithm(config)
        started = time.perf_counter()
        result: AnonymizationResult = algorithm.anonymize(graph)
        elapsed = time.perf_counter() - started
        report = utility_report(result.original_graph, result.anonymized_graph,
                                include_spectral=self._compute_spectral)
        return RunRecord(
            config=config,
            success=result.success,
            final_opacity=result.final_opacity,
            distortion=report.distortion,
            degree_emd=report.degree_emd,
            geodesic_emd=report.geodesic_emd,
            mean_cc_difference=report.mean_clustering_difference,
            runtime_seconds=elapsed,
            steps=result.num_steps,
            evaluations=result.evaluations,
        )

    def run_all(self, configs: Iterable[ExperimentConfig]) -> List[RunRecord]:
        """Execute every configuration and return the records in order."""
        return [self.run(config) for config in configs]
