"""Sweep driver: run anonymization configurations and collect metric records.

The runner caches loaded dataset samples (one graph per dataset/size/seed)
*and* their original-graph utility baselines (degree/geodesic histograms,
per-vertex clustering coefficients) so a sweep over θ reuses both, exactly
as the paper evaluates one sampled graph across all thresholds.  Algorithms
are resolved through the service-layer registry
(:mod:`repro.api.registry`), so any registered anonymizer — built-in or
third-party — can appear in an experiment grid.

:meth:`ExperimentRunner.run_sweep` executes a whole
:class:`~repro.experiments.config.SweepPlan` — a θ grid for one fixed
configuration — as a *single* checkpointed anonymization pass
(DESIGN.md §9), producing per-θ records identical to independent
:meth:`ExperimentRunner.run` calls.  :meth:`ExperimentRunner.run_grid`
executes *many* plans as one grid job (DESIGN.md §10): plans sharing a
sample additionally share one L_max bounded-distance computation (smaller
L matrices are thresholded slices, so an L sweep costs one engine run),
and ``max_workers`` fans the grid's sample groups across worker processes
via :class:`repro.api.BatchRunner`; ``run_all(..., max_workers=...)``
does the same for an explicit configuration list.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import create_anonymizer
from repro.api.requests import AnonymizationRequest
from repro.core.anonymizer import AnonymizationResult
from repro.datasets import load_sample
from repro.errors import ReproError
from repro.experiments.config import ExperimentConfig, SweepPlan
from repro.graph.distance_cache import LMaxDistanceCache
from repro.graph.graph import Graph
from repro.metrics import GraphBaseline, graph_baseline, utility_report


@dataclass(frozen=True)
class RunRecord:
    """Metrics of one completed run (one point of a figure series)."""

    config: ExperimentConfig
    success: bool
    final_opacity: float
    distortion: float
    degree_emd: float
    geodesic_emd: float
    mean_cc_difference: float
    runtime_seconds: float
    steps: int
    evaluations: int

    def as_dict(self) -> Dict[str, object]:
        """Flatten the record for CSV / tabular output."""
        return {
            "dataset": self.config.dataset,
            "size": self.config.sample_size,
            "algorithm": self.config.label(),
            "L": self.config.length_threshold,
            "theta": self.config.theta,
            "lookahead": self.config.lookahead,
            "success": self.success,
            "opacity": round(self.final_opacity, 4),
            "distortion": round(self.distortion, 4),
            "degree_emd": round(self.degree_emd, 5),
            "geodesic_emd": round(self.geodesic_emd, 5),
            "mean_cc_diff": round(self.mean_cc_difference, 5),
            "runtime_s": round(self.runtime_seconds, 4),
            "steps": self.steps,
            "evaluations": self.evaluations,
        }


def request_for(config: ExperimentConfig) -> AnonymizationRequest:
    """The service-layer request equivalent to an experiment configuration."""
    return AnonymizationRequest(
        algorithm=config.algorithm,
        dataset=config.dataset,
        sample_size=config.sample_size,
        theta=config.theta,
        length_threshold=config.length_threshold,
        lookahead=config.lookahead,
        seed=config.seed,
        engine=config.engine,
        max_steps=config.max_steps,
        insertion_candidate_cap=config.insertion_candidate_cap,
        sweep_mode=config.sweep_mode,
        include_utility=True,
    )


class ExperimentRunner:
    """Runs experiment configurations, caching dataset samples between runs."""

    def __init__(self, data_dir: Optional[str] = None,
                 compute_spectral: bool = False) -> None:
        self._data_dir = data_dir
        self._compute_spectral = compute_spectral
        self._graph_cache: Dict[Tuple[str, int, int], Graph] = {}
        self._baseline_cache: Dict[Tuple[str, int, int], GraphBaseline] = {}

    # ------------------------------------------------------------------
    # graph access
    # ------------------------------------------------------------------
    def sample(self, dataset: str, sample_size: int, seed: int = 0) -> Graph:
        """The loaded sample for a dataset/size/seed (cached)."""
        key = (dataset, sample_size, seed)
        if key not in self._graph_cache:
            self._graph_cache[key] = load_sample(
                dataset, sample_size, data_dir=self._data_dir, seed=seed)
        return self._graph_cache[key]

    def graph_for(self, config: ExperimentConfig) -> Graph:
        """The input graph of a configuration (cached per dataset/size/seed)."""
        return self.sample(config.dataset, config.sample_size, config.seed)

    def baseline_for(self, config: ExperimentConfig) -> GraphBaseline:
        """The original-graph utility baseline of a configuration (cached).

        Degree and geodesic histograms and the per-vertex clustering
        coefficients of the *original* sample depend only on the sample,
        not on the anonymization, so they are computed once per
        dataset/size/seed instead of once per record.
        """
        key = (config.dataset, config.sample_size, config.seed)
        if key not in self._baseline_cache:
            self._baseline_cache[key] = graph_baseline(
                self.graph_for(config), include_spectral=self._compute_spectral)
        return self._baseline_cache[key]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, config: ExperimentConfig) -> RunRecord:
        """Execute one configuration and return its metric record.

        The baselines only address single-edge linkage, so requesting them
        with L > 1 raises (the paper likewise restricts the comparison to
        L = 1; the registry enforces it).
        """
        graph = self.graph_for(config)
        algorithm = self._create(config)
        started = time.perf_counter()
        result: AnonymizationResult = algorithm.anonymize(graph)
        elapsed = time.perf_counter() - started
        return self._record(config, result, runtime_seconds=elapsed)

    def run_sweep(self, plan: SweepPlan,
                  initial_distances: Optional[np.ndarray] = None) -> List[RunRecord]:
        """Execute a θ-sweep plan and return one record per grid point.

        With ``plan.sweep_mode == "checkpointed"`` the whole grid runs as
        one anonymization pass (per-θ checkpoints); the records are
        identical to independent :meth:`run` calls per θ except for
        ``runtime_seconds``, which reports the elapsed time of the shared
        pass when the grid point was crossed.  Records come back in the
        plan's θ order.  ``initial_distances`` may seed the pass with the
        plan's precomputed L-bounded matrix (a
        :class:`~repro.graph.distance_cache.LMaxDistanceCache` slice, as
        :meth:`run_grid` supplies); the pass consumes the array.
        """
        from repro.api.theta_sweep import accepts_initial_distances

        configs = plan.configs()
        algorithm = self._create(configs[0])
        if not hasattr(algorithm, "anonymize_schedule"):
            return [self.run(config) for config in configs]
        graph = self.graph_for(configs[0])
        kwargs = {}
        if initial_distances is not None and \
                accepts_initial_distances(algorithm.anonymize_schedule):
            # Same guard as the api layer: a registry-replaced algorithm
            # with the pre-grid schedule signature runs cold instead of
            # crashing on the unexpected keyword.
            kwargs["initial_distances"] = initial_distances
        results = algorithm.anonymize_schedule(graph, plan.thetas, **kwargs)
        by_theta = {result.config.theta: result for result in results}
        return [self._record(config, by_theta[float(config.theta)],
                             runtime_seconds=None)
                for config in configs]

    def run_grid(self, plans: Sequence[SweepPlan],
                 max_workers: Optional[int] = 0) -> List[List[RunRecord]]:
        """Execute many θ-sweep plans as one grid job, one record list per plan.

        Serially (``max_workers=0``, the default) the plans are grouped by
        sample (dataset/size/seed): the sample comes from the runner's
        cache, and **one** bounded-distance computation at the group's
        maximum L seeds every plan's checkpointed pass (smaller-L matrices
        are thresholded slices — DESIGN.md §10), so an L sweep over one
        sample costs a single engine run.  Any other ``max_workers`` fans
        the grid's sample groups across a
        :class:`repro.api.BatchRunner` process pool (``None`` = one worker
        per CPU), where each worker holds the same caches process-locally.
        Records are identical to per-plan :meth:`run_sweep` calls either
        way; lists come back in plan order.
        """
        plans = list(plans)
        if max_workers != 0:
            # Partition by sweep_mode so a plan's explicit opt-out survives
            # the fan-out (a GridRequest carries one mode for all requests).
            ordered_parallel: List[Optional[List[RunRecord]]] = [None] * len(plans)
            by_mode: Dict[str, List[int]] = {}
            for index, plan in enumerate(plans):
                by_mode.setdefault(plan.sweep_mode, []).append(index)
            for indices in by_mode.values():
                configs = [config for index in indices
                           for config in plans[index].configs()]
                records = self.run_all(configs, max_workers=max_workers)
                cursor = 0
                for index in indices:
                    count = len(plans[index].thetas)
                    ordered_parallel[index] = records[cursor:cursor + count]
                    cursor += count
            return ordered_parallel  # type: ignore[return-value]
        ordered: List[Optional[List[RunRecord]]] = [None] * len(plans)
        groups: Dict[Tuple[str, int, int], List[int]] = {}
        for index, plan in enumerate(plans):
            groups.setdefault((plan.dataset, plan.sample_size, plan.seed),
                              []).append(index)
        for indices in groups.values():
            group = [plans[index] for index in indices]
            # The shared computation bound, per engine, over the plans that
            # will consume a matrix (independent-mode plans run cold and
            # must not inflate the single engine run).
            l_max_by_engine: Dict[str, int] = {}
            for plan in group:
                if plan.sweep_mode != "independent":
                    l_max_by_engine[plan.engine] = max(
                        l_max_by_engine.get(plan.engine, 0),
                        plan.length_threshold)
            caches: Dict[str, LMaxDistanceCache] = {}
            for index, plan in zip(indices, group):
                if plan.sweep_mode == "independent":
                    # The opt-out path keeps per-θ cold runs end to end.
                    ordered[index] = self.run_sweep(plan)
                    continue
                cache = caches.get(plan.engine)
                if cache is None:
                    cache = LMaxDistanceCache(self.graph_for(plan.configs()[0]),
                                              l_max_by_engine[plan.engine],
                                              engine=plan.engine)
                    caches[plan.engine] = cache
                ordered[index] = self.run_sweep(
                    plan, initial_distances=cache.matrix(plan.length_threshold))
        return ordered  # type: ignore[return-value]

    def run_all(self, configs: Iterable[ExperimentConfig],
                max_workers: Optional[int] = 0) -> List[RunRecord]:
        """Execute every configuration and return the records in order.

        Configurations identical in everything but θ form θ-sweep groups
        executed as checkpointed passes (unless their ``sweep_mode`` is
        ``"independent"``), so a grid sweeping k thresholds costs ~1 run
        per group instead of k.  ``max_workers=0`` (the default) runs the
        groups serially in this process; any other value fans the grid's
        *sample groups* over a :class:`repro.api.BatchRunner` process pool
        (``None`` = one worker per CPU), so groups sharing a sample also
        share one loaded graph and one L_max distance computation.  A
        failure in any configuration raises either way.
        """
        configs = list(configs)
        if max_workers == 0 or not configs:
            return self._run_all_serial(configs)
        from repro.api.batch import BatchRunner
        from repro.api.sweeps import GridRequest

        grid = GridRequest(
            requests=tuple(request_for(config) for config in configs),
            sweep_mode=configs[0].sweep_mode)
        runner = BatchRunner(max_workers=max_workers, data_dir=self._data_dir)
        responses = runner.run_grid(grid)
        records = []
        for config, response in zip(configs, responses):
            if response.error is not None:
                raise ReproError(
                    f"parallel run failed for {config.label()!r}: {response.error}")
            metrics = response.metrics or {}
            records.append(RunRecord(
                config=config,
                success=response.success,
                final_opacity=response.final_opacity,
                distortion=response.distortion,
                degree_emd=metrics.get("degree_emd", 0.0),
                geodesic_emd=metrics.get("geodesic_emd", 0.0),
                mean_cc_difference=metrics.get("mean_cc_diff", 0.0),
                runtime_seconds=response.runtime_seconds,
                steps=response.num_steps,
                evaluations=response.evaluations,
            ))
        return records

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _run_all_serial(self, configs: List[ExperimentConfig]) -> List[RunRecord]:
        """In-process execution of a grid, grouped into θ-sweep plans."""
        records: List[Optional[RunRecord]] = [None] * len(configs)
        groups: Dict[ExperimentConfig, List[int]] = {}
        for index, config in enumerate(configs):
            groups.setdefault(replace(config, theta=0.0), []).append(index)
        for indices in groups.values():
            group = [configs[index] for index in indices]
            if len(group) == 1 or group[0].sweep_mode == "independent":
                for index in indices:
                    records[index] = self.run(configs[index])
                continue
            plan = SweepPlan.for_config(group[0],
                                        thetas=[config.theta for config in group])
            for index, record in zip(indices, self.run_sweep(plan)):
                records[index] = record
        return records  # type: ignore[return-value]

    def _create(self, config: ExperimentConfig):
        return create_anonymizer(
            config.algorithm,
            theta=config.theta,
            length_threshold=config.length_threshold,
            lookahead=config.lookahead,
            seed=config.seed,
            engine=config.engine,
            max_steps=config.max_steps,
            insertion_candidate_cap=config.insertion_candidate_cap,
            sweep_mode=config.sweep_mode,
        )

    def _record(self, config: ExperimentConfig, result: AnonymizationResult,
                runtime_seconds: Optional[float]) -> RunRecord:
        report = utility_report(result.original_graph, result.anonymized_graph,
                                include_spectral=self._compute_spectral,
                                baseline=self.baseline_for(config))
        return RunRecord(
            config=config,
            success=result.success,
            final_opacity=result.final_opacity,
            distortion=report.distortion,
            degree_emd=report.degree_emd,
            geodesic_emd=report.geodesic_emd,
            mean_cc_difference=report.mean_clustering_difference,
            runtime_seconds=(runtime_seconds if runtime_seconds is not None
                             else result.runtime_seconds),
            steps=result.num_steps,
            evaluations=result.evaluations,
        )
