"""Sweep driver: run anonymization configurations and collect metric records.

The runner caches loaded dataset samples (one graph per dataset/size/seed) so
a sweep over θ reuses the same input graph, exactly as the paper evaluates
one sampled graph across all thresholds.  Algorithms are resolved through
the service-layer registry (:mod:`repro.api.registry`), so any registered
anonymizer — built-in or third-party — can appear in an experiment grid;
``run_all(..., max_workers=...)`` additionally fans a grid across worker
processes via :class:`repro.api.BatchRunner`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.api.registry import create_anonymizer
from repro.api.requests import AnonymizationRequest
from repro.core.anonymizer import AnonymizationResult
from repro.datasets import load_sample
from repro.errors import ReproError
from repro.experiments.config import ExperimentConfig
from repro.graph.graph import Graph
from repro.metrics import utility_report


@dataclass(frozen=True)
class RunRecord:
    """Metrics of one completed run (one point of a figure series)."""

    config: ExperimentConfig
    success: bool
    final_opacity: float
    distortion: float
    degree_emd: float
    geodesic_emd: float
    mean_cc_difference: float
    runtime_seconds: float
    steps: int
    evaluations: int

    def as_dict(self) -> Dict[str, object]:
        """Flatten the record for CSV / tabular output."""
        return {
            "dataset": self.config.dataset,
            "size": self.config.sample_size,
            "algorithm": self.config.label(),
            "L": self.config.length_threshold,
            "theta": self.config.theta,
            "lookahead": self.config.lookahead,
            "success": self.success,
            "opacity": round(self.final_opacity, 4),
            "distortion": round(self.distortion, 4),
            "degree_emd": round(self.degree_emd, 5),
            "geodesic_emd": round(self.geodesic_emd, 5),
            "mean_cc_diff": round(self.mean_cc_difference, 5),
            "runtime_s": round(self.runtime_seconds, 4),
            "steps": self.steps,
            "evaluations": self.evaluations,
        }


def request_for(config: ExperimentConfig) -> AnonymizationRequest:
    """The service-layer request equivalent to an experiment configuration."""
    return AnonymizationRequest(
        algorithm=config.algorithm,
        dataset=config.dataset,
        sample_size=config.sample_size,
        theta=config.theta,
        length_threshold=config.length_threshold,
        lookahead=config.lookahead,
        seed=config.seed,
        engine=config.engine,
        max_steps=config.max_steps,
        insertion_candidate_cap=config.insertion_candidate_cap,
        include_utility=True,
    )


class ExperimentRunner:
    """Runs experiment configurations, caching dataset samples between runs."""

    def __init__(self, data_dir: Optional[str] = None,
                 compute_spectral: bool = False) -> None:
        self._data_dir = data_dir
        self._compute_spectral = compute_spectral
        self._graph_cache: Dict[Tuple[str, int, int], Graph] = {}

    # ------------------------------------------------------------------
    # graph access
    # ------------------------------------------------------------------
    def graph_for(self, config: ExperimentConfig) -> Graph:
        """The input graph of a configuration (cached per dataset/size/seed)."""
        key = (config.dataset, config.sample_size, config.seed)
        if key not in self._graph_cache:
            self._graph_cache[key] = load_sample(
                config.dataset, config.sample_size,
                data_dir=self._data_dir, seed=config.seed)
        return self._graph_cache[key]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, config: ExperimentConfig) -> RunRecord:
        """Execute one configuration and return its metric record.

        The baselines only address single-edge linkage, so requesting them
        with L > 1 raises (the paper likewise restricts the comparison to
        L = 1; the registry enforces it).
        """
        graph = self.graph_for(config)
        algorithm = create_anonymizer(
            config.algorithm,
            theta=config.theta,
            length_threshold=config.length_threshold,
            lookahead=config.lookahead,
            seed=config.seed,
            engine=config.engine,
            max_steps=config.max_steps,
            insertion_candidate_cap=config.insertion_candidate_cap,
        )
        started = time.perf_counter()
        result: AnonymizationResult = algorithm.anonymize(graph)
        elapsed = time.perf_counter() - started
        report = utility_report(result.original_graph, result.anonymized_graph,
                                include_spectral=self._compute_spectral)
        return RunRecord(
            config=config,
            success=result.success,
            final_opacity=result.final_opacity,
            distortion=report.distortion,
            degree_emd=report.degree_emd,
            geodesic_emd=report.geodesic_emd,
            mean_cc_difference=report.mean_clustering_difference,
            runtime_seconds=elapsed,
            steps=result.num_steps,
            evaluations=result.evaluations,
        )

    def run_all(self, configs: Iterable[ExperimentConfig],
                max_workers: Optional[int] = 0) -> List[RunRecord]:
        """Execute every configuration and return the records in order.

        ``max_workers=0`` (the default) runs serially in this process;
        any other value fans the grid over a
        :class:`repro.api.BatchRunner` process pool (``None`` = one worker
        per CPU).  A failure in any configuration raises either way.
        """
        configs = list(configs)
        if max_workers == 0:
            return [self.run(config) for config in configs]
        from repro.api.batch import BatchRunner

        runner = BatchRunner(max_workers=max_workers, data_dir=self._data_dir)
        responses = runner.run([request_for(config) for config in configs])
        records = []
        for config, response in zip(configs, responses):
            if response.error is not None:
                raise ReproError(
                    f"parallel run failed for {config.label()!r}: {response.error}")
            metrics = response.metrics or {}
            records.append(RunRecord(
                config=config,
                success=response.success,
                final_opacity=response.final_opacity,
                distortion=response.distortion,
                degree_emd=metrics.get("degree_emd", 0.0),
                geodesic_emd=metrics.get("geodesic_emd", 0.0),
                mean_cc_difference=metrics.get("mean_cc_diff", 0.0),
                runtime_seconds=response.runtime_seconds,
                steps=response.num_steps,
                evaluations=response.evaluations,
            ))
        return records
