"""Plain-text rendering of experiment results (tables, CSV, series)."""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Mapping, Sequence, Tuple


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str] = ()) -> str:
    """Render dictionaries as a fixed-width text table.

    ``columns`` selects and orders the columns; by default the keys of the
    first row are used.
    """
    rows = list(rows)
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns else list(rows[0].keys())
    rendered = [[str(row.get(column, "")) for column in columns] for row in rows]
    widths = [max(len(column), *(len(line[i]) for line in rendered))
              for i, column in enumerate(columns)]
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join("  ".join(cell.ljust(width) for cell, width in zip(line, widths))
                     for line in rendered)
    return "\n".join([header, separator, body])


def records_to_csv(rows: Iterable[Mapping[str, object]]) -> str:
    """Serialize dictionaries to CSV text (stable column order from first row)."""
    rows = list(rows)
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def format_series(series: Mapping[str, Sequence[Tuple[float, float]]],
                  x_label: str = "theta", y_label: str = "value") -> str:
    """Render a label -> [(x, y)] mapping as aligned text, one block per label."""
    blocks: List[str] = []
    for label, points in series.items():
        lines = [f"{label}"]
        for x, y in points:
            lines.append(f"  {x_label}={x:<8g} {y_label}={y:.4f}")
        blocks.append("\n".join(lines))
    return "\n".join(blocks)
