"""Reproduction of the paper's Tables 1-3.

Table 1 and Table 2 describe the original SNAP datasets; offline we report
the published numbers side by side with the measured properties of the
synthetic proxies.  Table 3 reports the properties of the sampled graphs the
experiments actually run on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.datasets.registry import DATASETS
from repro.graph.properties import graph_properties

if TYPE_CHECKING:  # pragma: no cover — import kept lazy at runtime
    from repro.experiments.runner import ExperimentRunner


def table1_rows() -> List[Dict[str, object]]:
    """Table 1: original dataset sizes and domains (published values)."""
    rows = []
    for spec in DATASETS.values():
        rows.append({
            "dataset": spec.name,
            "nodes": spec.nodes,
            "links": spec.links,
            "node_kind": spec.node_kind,
            "link_kind": spec.link_kind,
        })
    return rows


def table2_rows() -> List[Dict[str, object]]:
    """Table 2: original dataset properties (published values)."""
    rows = []
    for spec in DATASETS.values():
        rows.append({
            "dataset": spec.name,
            "diameter": spec.diameter,
            "avg_degree": spec.average_degree,
            "stdd": spec.degree_stddev,
            "acc": spec.clustering,
        })
    return rows


def table3_rows(sample_sizes: Optional[Sequence[int]] = None, seed: int = 42,
                data_dir: Optional[str] = None,
                measure: bool = True,
                runner: Optional["ExperimentRunner"] = None) -> List[Dict[str, object]]:
    """Table 3: sampled graph properties — published values and measured proxies.

    For every (dataset, size) pair the paper reports, the row carries the
    published statistics; with ``measure=True`` the same statistics are also
    measured on the graph actually loaded (real sample or synthetic proxy).
    Samples are loaded through an :class:`ExperimentRunner` so they are
    cached and shared with any figure sweeps using the same runner (pass
    the sweep's ``runner`` to reuse its cache).
    """
    if measure and runner is None:
        from repro.experiments.runner import ExperimentRunner

        runner = ExperimentRunner(data_dir=data_dir)
    rows: List[Dict[str, object]] = []
    for spec in DATASETS.values():
        for size, sample in sorted(spec.samples.items()):
            if sample_sizes is not None and size not in sample_sizes:
                continue
            row: Dict[str, object] = {
                "dataset": spec.name,
                "nodes": size,
                "paper_links": sample.links,
                "paper_diameter": sample.diameter,
                "paper_avg_degree": sample.average_degree,
                "paper_stdd": sample.degree_stddev,
                "paper_acc": sample.clustering,
            }
            if measure:
                graph = runner.sample(spec.name, size, seed=seed)
                measured = graph_properties(graph)
                row.update({
                    "links": measured.num_edges,
                    "diameter": measured.diameter,
                    "avg_degree": round(measured.average_degree, 2),
                    "stdd": round(measured.degree_stddev, 2),
                    "acc": round(measured.average_clustering, 2),
                })
            rows.append(row)
    return rows
