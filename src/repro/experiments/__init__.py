"""Experiment harness: parameter sweeps and per-table/figure series builders.

Every table and figure of the paper's Section 6 has a corresponding builder
here (see DESIGN.md §4 for the index); the ``benchmarks/`` directory wires
those builders into pytest-benchmark targets.
"""

from repro.experiments.config import ExperimentConfig, SweepPlan, SweepSpec
from repro.experiments.runner import ExperimentRunner, RunRecord, request_for
from repro.experiments.tables import table1_rows, table2_rows, table3_rows
from repro.experiments.figures import (
    figure6_series,
    figure6_lsweep_series,
    figure7_series,
    figure8_series,
    figure8_lsweep_series,
    figure9_series,
    figure10_series,
    figure11_series,
    figure12_series,
)
from repro.experiments.charts import render_series_chart
from repro.experiments.reporting import format_series, format_table, records_to_csv

__all__ = [
    "ExperimentConfig",
    "SweepPlan",
    "SweepSpec",
    "ExperimentRunner",
    "RunRecord",
    "request_for",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "figure6_series",
    "figure6_lsweep_series",
    "figure7_series",
    "figure8_series",
    "figure8_lsweep_series",
    "figure9_series",
    "figure10_series",
    "figure11_series",
    "figure12_series",
    "format_series",
    "format_table",
    "records_to_csv",
    "render_series_chart",
]
