"""Plain-text charts for the figure series.

The library has no plotting dependency, so the experiment harness renders
its "figures" as fixed-width ASCII charts: one scatter/line panel per
series map, with the same x axis (θ, or graph size) and y axis (distortion,
EMD, runtime, ...) the paper plots.  This is intentionally simple — enough
to eyeball the shapes reproduced in EXPERIMENTS.md directly in a terminal
or a CI log.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

Series = Sequence[Tuple[float, float]]
SeriesMap = Mapping[str, Series]

#: Markers assigned to series in order (re-used cyclically beyond ten series).
_MARKERS = "ox*+#@%&^~"


def _format_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.3g}"


def render_series_chart(series: SeriesMap, width: int = 60, height: int = 15,
                        x_label: str = "theta", y_label: str = "value",
                        title: str = "") -> str:
    """Render a label -> [(x, y)] mapping as an ASCII chart.

    Points from different series share one panel and are distinguished by
    marker characters listed in the legend.  Returns the chart as a string
    (no trailing newline).
    """
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        return "(no data)"
    xs = [x for x, _y in points]
    ys = [y for _x, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        column = round((x - x_low) / (x_high - x_low) * (width - 1))
        row = round((y - y_low) / (y_high - y_low) * (height - 1))
        grid[height - 1 - row][column] = marker

    legend: List[str] = []
    for index, (label, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"  {marker} {label}")
        for x, y in values:
            place(x, y, marker)

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = _format_number(y_high)
    bottom_label = _format_number(y_low)
    gutter = max(len(top_label), len(bottom_label), len(y_label)) + 1
    lines.append(f"{y_label.rjust(gutter)}")
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(gutter)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = (f"{_format_number(x_low)}"
              f"{x_label.center(width - len(_format_number(x_low)) - len(_format_number(x_high)))}"
              f"{_format_number(x_high)}")
    lines.append(" " * (gutter + 1) + x_axis)
    lines.extend(legend)
    return "\n".join(lines)
