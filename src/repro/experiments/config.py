"""Experiment configuration records.

An :class:`ExperimentConfig` fixes everything about a single anonymization
run (dataset sample, algorithm, L, θ, look-ahead, seed); a
:class:`SweepSpec` expands a grid of such configurations, which is how the
figures of the paper (distortion vs θ, runtime vs size, ...) are produced.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import product
from typing import Iterator, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Algorithms understood by the runner.
ALGORITHMS: Tuple[str, ...] = (
    "rem",          # Edge Removal (Algorithm 4)
    "rem-ins",      # Edge Removal/Insertion (Algorithm 5)
    "gaded-rand",   # Zhang & Zhang baseline
    "gaded-max",    # Zhang & Zhang baseline
    "gades",        # Zhang & Zhang baseline
)


@dataclass(frozen=True)
class ExperimentConfig:
    """One anonymization run of the evaluation."""

    dataset: str
    sample_size: int
    algorithm: str
    theta: float
    length_threshold: int = 1
    lookahead: int = 1
    seed: int = 0
    insertion_candidate_cap: Optional[int] = None
    max_steps: Optional[int] = None
    engine: str = "numpy"

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ConfigurationError(
                f"unknown algorithm {self.algorithm!r}; valid: {ALGORITHMS}")
        if not 0.0 <= self.theta <= 1.0:
            raise ConfigurationError(f"theta must be in [0, 1], got {self.theta}")
        if self.length_threshold < 1:
            raise ConfigurationError("length_threshold must be >= 1")
        if self.lookahead < 1:
            raise ConfigurationError("lookahead must be >= 1")

    def label(self) -> str:
        """Short label used in series legends (mirrors the paper's legends)."""
        if self.algorithm in ("rem", "rem-ins"):
            return f"{self.algorithm} la={self.lookahead} L={self.length_threshold}"
        return self.algorithm

    def with_theta(self, theta: float) -> "ExperimentConfig":
        """Copy of this configuration with a different confidence threshold."""
        return replace(self, theta=theta)


@dataclass(frozen=True)
class SweepSpec:
    """A grid of experiment configurations (cartesian product of the axes)."""

    datasets: Sequence[str]
    sample_sizes: Sequence[int]
    algorithms: Sequence[str]
    thetas: Sequence[float]
    length_thresholds: Sequence[int] = (1,)
    lookaheads: Sequence[int] = (1,)
    seed: int = 0
    insertion_candidate_cap: Optional[int] = None
    max_steps: Optional[int] = None
    engine: str = "numpy"

    def configurations(self) -> Iterator[ExperimentConfig]:
        """Iterate over every configuration of the grid."""
        axes = product(self.datasets, self.sample_sizes, self.algorithms,
                       self.length_thresholds, self.lookaheads, self.thetas)
        for dataset, size, algorithm, length, lookahead, theta in axes:
            yield ExperimentConfig(
                dataset=dataset,
                sample_size=size,
                algorithm=algorithm,
                theta=theta,
                length_threshold=length,
                lookahead=lookahead,
                seed=self.seed,
                insertion_candidate_cap=self.insertion_candidate_cap,
                max_steps=self.max_steps,
                engine=self.engine,
            )

    def __len__(self) -> int:
        return (len(self.datasets) * len(self.sample_sizes) * len(self.algorithms)
                * len(self.thetas) * len(self.length_thresholds) * len(self.lookaheads))
