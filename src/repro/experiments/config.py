"""Experiment configuration records.

An :class:`ExperimentConfig` fixes everything about a single anonymization
run (dataset sample, algorithm, L, θ, look-ahead, seed); a
:class:`SweepPlan` declares a θ grid for one otherwise-fixed configuration
— the unit every figure series of the paper is built from, executed as a
single checkpointed anonymization by
:meth:`~repro.experiments.runner.ExperimentRunner.run_sweep`; a
:class:`SweepSpec` expands a full grid of configurations and can emit its
θ-sweep plans.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import product
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.anonymizer import validate_sweep_mode, validate_theta_schedule
from repro.errors import ConfigurationError

#: Algorithms understood by the runner.
ALGORITHMS: Tuple[str, ...] = (
    "rem",          # Edge Removal (Algorithm 4)
    "rem-ins",      # Edge Removal/Insertion (Algorithm 5)
    "gaded-rand",   # Zhang & Zhang baseline
    "gaded-max",    # Zhang & Zhang baseline
    "gades",        # Zhang & Zhang baseline
)


@dataclass(frozen=True)
class ExperimentConfig:
    """One anonymization run of the evaluation."""

    dataset: str
    sample_size: int
    algorithm: str
    theta: float
    length_threshold: int = 1
    lookahead: int = 1
    seed: int = 0
    insertion_candidate_cap: Optional[int] = None
    max_steps: Optional[int] = None
    engine: str = "numpy"
    sweep_mode: str = "checkpointed"

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ConfigurationError(
                f"unknown algorithm {self.algorithm!r}; valid: {ALGORITHMS}")
        if not 0.0 <= self.theta <= 1.0:
            raise ConfigurationError(f"theta must be in [0, 1], got {self.theta}")
        if self.length_threshold < 1:
            raise ConfigurationError("length_threshold must be >= 1")
        if self.lookahead < 1:
            raise ConfigurationError("lookahead must be >= 1")
        validate_sweep_mode(self.sweep_mode)

    def label(self) -> str:
        """Short label used in series legends (mirrors the paper's legends)."""
        if self.algorithm in ("rem", "rem-ins"):
            return f"{self.algorithm} la={self.lookahead} L={self.length_threshold}"
        return self.algorithm

    def with_theta(self, theta: float) -> "ExperimentConfig":
        """Copy of this configuration with a different confidence threshold."""
        return replace(self, theta=theta)


@dataclass(frozen=True)
class SweepPlan:
    """A θ grid for one otherwise-fixed configuration (one figure series).

    The declarative unit the figure builders are written in: every series
    of Figures 6-12 sweeps θ for a fixed (dataset, size, algorithm, L,
    look-ahead, seed) tuple, which
    :meth:`~repro.experiments.runner.ExperimentRunner.run_sweep` serves
    with a *single* checkpointed anonymization pass
    (``sweep_mode="checkpointed"``) or with one run per grid point
    (``"independent"``) — both yielding identical records.
    """

    dataset: str
    sample_size: int
    algorithm: str
    thetas: Tuple[float, ...]
    length_threshold: int = 1
    lookahead: int = 1
    seed: int = 0
    insertion_candidate_cap: Optional[int] = None
    max_steps: Optional[int] = None
    engine: str = "numpy"
    sweep_mode: str = "checkpointed"

    def __post_init__(self) -> None:
        object.__setattr__(self, "thetas", tuple(self.thetas))
        validate_theta_schedule(self.thetas)  # non-empty, all in [0, 1]
        # Delegate the remaining validation to the per-θ config record.
        self.configs()

    def configs(self) -> List[ExperimentConfig]:
        """The grid's per-θ configurations, in the plan's θ order."""
        return [ExperimentConfig(
            dataset=self.dataset,
            sample_size=self.sample_size,
            algorithm=self.algorithm,
            theta=theta,
            length_threshold=self.length_threshold,
            lookahead=self.lookahead,
            seed=self.seed,
            insertion_candidate_cap=self.insertion_candidate_cap,
            max_steps=self.max_steps,
            engine=self.engine,
            sweep_mode=self.sweep_mode,
        ) for theta in self.thetas]

    @classmethod
    def for_config(cls, config: ExperimentConfig,
                   thetas: Sequence[float]) -> "SweepPlan":
        """The plan sweeping ``config`` over ``thetas``."""
        return cls(
            dataset=config.dataset,
            sample_size=config.sample_size,
            algorithm=config.algorithm,
            thetas=tuple(thetas),
            length_threshold=config.length_threshold,
            lookahead=config.lookahead,
            seed=config.seed,
            insertion_candidate_cap=config.insertion_candidate_cap,
            max_steps=config.max_steps,
            engine=config.engine,
            sweep_mode=config.sweep_mode,
        )


@dataclass(frozen=True)
class SweepSpec:
    """A grid of experiment configurations (cartesian product of the axes)."""

    datasets: Sequence[str]
    sample_sizes: Sequence[int]
    algorithms: Sequence[str]
    thetas: Sequence[float]
    length_thresholds: Sequence[int] = (1,)
    lookaheads: Sequence[int] = (1,)
    seed: int = 0
    insertion_candidate_cap: Optional[int] = None
    max_steps: Optional[int] = None
    engine: str = "numpy"
    sweep_mode: str = "checkpointed"

    def configurations(self) -> Iterator[ExperimentConfig]:
        """Iterate over every configuration of the grid (θ varies fastest)."""
        for plan in self.plans():
            yield from plan.configs()

    def plans(self) -> Iterator[SweepPlan]:
        """Iterate over the grid's θ-sweep plans (one per non-θ combination)."""
        axes = product(self.datasets, self.sample_sizes, self.algorithms,
                       self.length_thresholds, self.lookaheads)
        for dataset, size, algorithm, length, lookahead in axes:
            yield SweepPlan(
                dataset=dataset,
                sample_size=size,
                algorithm=algorithm,
                thetas=tuple(self.thetas),
                length_threshold=length,
                lookahead=lookahead,
                seed=self.seed,
                insertion_candidate_cap=self.insertion_candidate_cap,
                max_steps=self.max_steps,
                engine=self.engine,
                sweep_mode=self.sweep_mode,
            )

    def __len__(self) -> int:
        return (len(self.datasets) * len(self.sample_sizes) * len(self.algorithms)
                * len(self.thetas) * len(self.length_thresholds) * len(self.lookaheads))
