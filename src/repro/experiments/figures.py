"""Series builders for every figure of the paper's evaluation (Figures 6-12).

Each function returns plain Python data (label -> list of (x, y) points) so
the benchmark harness and the examples can print the same series the paper
plots.  Default parameters are scaled to laptop-size inputs; the paper's own
settings (sample sizes up to 1000 nodes, θ down to 0) can be requested
explicitly when more time is available.

Every series is declared as a :class:`~repro.experiments.config.SweepPlan`
and executed through
:meth:`~repro.experiments.runner.ExperimentRunner.run_sweep`, so a whole
θ grid costs roughly *one* anonymization run instead of one per grid point
(``sweep_mode="checkpointed"``, the default; pass
``sweep_mode="independent"`` to any builder for the one-run-per-θ path —
both produce identical series).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.config import SweepPlan
from repro.experiments.runner import ExperimentRunner, RunRecord

Series = List[Tuple[float, float]]
SeriesMap = Dict[str, Series]

#: θ grid used by default (the paper sweeps 100% down to 0% in steps of 10).
DEFAULT_THETAS: Tuple[float, ...] = (0.9, 0.8, 0.7, 0.6, 0.5)

#: Default algorithms compared in the L = 1 figures.
L1_ALGORITHMS: Tuple[str, ...] = ("rem", "rem-ins", "gaded-rand", "gaded-max", "gades")


def _run_theta_sweep(runner: ExperimentRunner, dataset: str, sample_size: int,
                     algorithm: str, length_threshold: int, lookahead: int,
                     thetas: Sequence[float], seed: int,
                     insertion_cap: Optional[int],
                     max_steps: Optional[int],
                     sweep_mode: str = "checkpointed") -> List[RunRecord]:
    """One figure series: a θ sweep of one fixed configuration."""
    plan = SweepPlan(
        dataset=dataset, sample_size=sample_size, algorithm=algorithm,
        thetas=tuple(thetas), length_threshold=length_threshold,
        lookahead=lookahead, seed=seed, insertion_candidate_cap=insertion_cap,
        max_steps=max_steps, sweep_mode=sweep_mode)
    return runner.run_sweep(plan)


def _series(records: Iterable[RunRecord], value: str) -> Series:
    return [(record.config.theta, getattr(record, value)) for record in records]


# ----------------------------------------------------------------------
# Figure 6: distortion vs θ
# ----------------------------------------------------------------------
def figure6_series(dataset: str, length_threshold: int = 1, sample_size: int = 60,
                   thetas: Sequence[float] = DEFAULT_THETAS,
                   lookaheads: Sequence[int] = (1, 2),
                   include_baselines: Optional[bool] = None, seed: int = 0,
                   insertion_cap: Optional[int] = 150,
                   max_steps: Optional[int] = None,
                   sweep_mode: str = "checkpointed",
                   runner: Optional[ExperimentRunner] = None) -> SeriesMap:
    """Distortion as a function of θ (Figures 6a-6f).

    Baselines are included only for L = 1, mirroring the paper (they cannot
    handle multi-edge linkage).
    """
    runner = runner or ExperimentRunner()
    if include_baselines is None:
        include_baselines = length_threshold == 1
    series: SeriesMap = {}
    for lookahead in lookaheads:
        for algorithm in ("rem", "rem-ins"):
            records = _run_theta_sweep(runner, dataset, sample_size, algorithm,
                                       length_threshold, lookahead, thetas, seed,
                                       insertion_cap, max_steps, sweep_mode)
            series[f"{algorithm} la={lookahead}"] = _series(records, "distortion")
    if include_baselines:
        for algorithm in ("gaded-rand", "gaded-max", "gades"):
            records = _run_theta_sweep(runner, dataset, sample_size, algorithm,
                                       1, 1, thetas, seed, insertion_cap,
                                       max_steps, sweep_mode)
            series[algorithm] = _series(records, "distortion")
    return series


def figure6_lsweep_series(dataset: str, lengths: Sequence[int] = (1, 2, 3, 4),
                          sample_size: int = 60,
                          thetas: Sequence[float] = DEFAULT_THETAS, seed: int = 0,
                          insertion_cap: Optional[int] = 150,
                          max_steps: Optional[int] = None,
                          sweep_mode: str = "checkpointed",
                          runner: Optional[ExperimentRunner] = None) -> SeriesMap:
    """Distortion vs θ while varying L at fixed look-ahead 1 (Figures 6g, 6h)."""
    runner = runner or ExperimentRunner()
    series: SeriesMap = {}
    for length in lengths:
        for algorithm in ("rem", "rem-ins"):
            records = _run_theta_sweep(runner, dataset, sample_size, algorithm,
                                       length, 1, thetas, seed, insertion_cap,
                                       max_steps, sweep_mode)
            series[f"{algorithm} L={length}"] = _series(records, "distortion")
    return series


# ----------------------------------------------------------------------
# Figure 7: EMD of degree / geodesic distributions vs θ
# ----------------------------------------------------------------------
def figure7_series(dataset: str = "enron", sample_size: int = 60,
                   thetas: Sequence[float] = DEFAULT_THETAS,
                   lookaheads: Sequence[int] = (1, 2), seed: int = 0,
                   insertion_cap: Optional[int] = 150,
                   max_steps: Optional[int] = None,
                   include_baselines: bool = True,
                   sweep_mode: str = "checkpointed",
                   runner: Optional[ExperimentRunner] = None) -> Dict[str, SeriesMap]:
    """EMD of the degree (7a) and geodesic (7b) distributions vs θ, L = 1."""
    runner = runner or ExperimentRunner()
    degree: SeriesMap = {}
    geodesic: SeriesMap = {}
    algorithms: List[Tuple[str, int]] = [
        (algorithm, lookahead) for lookahead in lookaheads
        for algorithm in ("rem", "rem-ins")]
    if include_baselines:
        algorithms += [(name, 1) for name in ("gaded-rand", "gaded-max", "gades")]
    for algorithm, lookahead in algorithms:
        records = _run_theta_sweep(runner, dataset, sample_size, algorithm,
                                   1, lookahead, thetas, seed, insertion_cap,
                                   max_steps, sweep_mode)
        label = (f"{algorithm} la={lookahead}"
                 if algorithm in ("rem", "rem-ins") else algorithm)
        degree[label] = _series(records, "degree_emd")
        geodesic[label] = _series(records, "geodesic_emd")
    return {"degree_emd": degree, "geodesic_emd": geodesic}


# ----------------------------------------------------------------------
# Figure 8: mean clustering-coefficient difference vs θ
# ----------------------------------------------------------------------
def figure8_series(dataset: str = "wikipedia", length_threshold: int = 1,
                   sample_size: int = 60, thetas: Sequence[float] = DEFAULT_THETAS,
                   lookaheads: Sequence[int] = (1, 2), seed: int = 0,
                   insertion_cap: Optional[int] = 150,
                   max_steps: Optional[int] = None,
                   include_baselines: Optional[bool] = None,
                   sweep_mode: str = "checkpointed",
                   runner: Optional[ExperimentRunner] = None) -> SeriesMap:
    """Mean of per-vertex |ΔCC| vs θ (Figures 8a-8b)."""
    runner = runner or ExperimentRunner()
    if include_baselines is None:
        include_baselines = length_threshold == 1
    series: SeriesMap = {}
    for lookahead in lookaheads:
        for algorithm in ("rem", "rem-ins"):
            records = _run_theta_sweep(runner, dataset, sample_size, algorithm,
                                       length_threshold, lookahead, thetas, seed,
                                       insertion_cap, max_steps, sweep_mode)
            series[f"{algorithm} la={lookahead}"] = _series(records, "mean_cc_difference")
    if include_baselines:
        for algorithm in ("gaded-rand", "gaded-max", "gades"):
            records = _run_theta_sweep(runner, dataset, sample_size, algorithm,
                                       1, 1, thetas, seed, insertion_cap,
                                       max_steps, sweep_mode)
            series[algorithm] = _series(records, "mean_cc_difference")
    return series


def figure8_lsweep_series(dataset: str = "epinions", lengths: Sequence[int] = (1, 2, 3, 4),
                          sample_size: int = 60,
                          thetas: Sequence[float] = DEFAULT_THETAS, seed: int = 0,
                          insertion_cap: Optional[int] = 150,
                          max_steps: Optional[int] = None,
                          sweep_mode: str = "checkpointed",
                          runner: Optional[ExperimentRunner] = None) -> SeriesMap:
    """Mean |ΔCC| vs θ while varying L at look-ahead 1 (Figure 8c)."""
    runner = runner or ExperimentRunner()
    series: SeriesMap = {}
    for length in lengths:
        for algorithm in ("rem", "rem-ins"):
            records = _run_theta_sweep(runner, dataset, sample_size, algorithm,
                                       length, 1, thetas, seed, insertion_cap,
                                       max_steps, sweep_mode)
            series[f"{algorithm} L={length}"] = _series(records, "mean_cc_difference")
    return series


# ----------------------------------------------------------------------
# Figure 9: runtime vs θ for growing sample sizes
# ----------------------------------------------------------------------
def figure9_series(dataset: str = "google", sample_sizes: Sequence[int] = (40, 60, 80),
                   thetas: Sequence[float] = DEFAULT_THETAS,
                   lookaheads: Sequence[int] = (1, 2), seed: int = 0,
                   insertion_cap: Optional[int] = 100,
                   max_steps: Optional[int] = None,
                   include_baselines: bool = True,
                   sweep_mode: str = "checkpointed",
                   runner: Optional[ExperimentRunner] = None) -> Dict[int, SeriesMap]:
    """Runtime vs θ for each sample size (Figures 9a-9c).

    The paper uses 100/500/1000-node Google samples; the default sizes here
    are scaled down so the full sweep stays laptop-friendly, preserving the
    growth *shape* across sizes.  In checkpointed mode each point's runtime
    is the elapsed time of the shared pass when it crossed that θ.
    """
    runner = runner or ExperimentRunner()
    results: Dict[int, SeriesMap] = {}
    for size in sample_sizes:
        series: SeriesMap = {}
        for lookahead in lookaheads:
            for algorithm in ("rem", "rem-ins"):
                records = _run_theta_sweep(runner, dataset, size, algorithm, 1,
                                           lookahead, thetas, seed, insertion_cap,
                                           max_steps, sweep_mode)
                series[f"{algorithm} la={lookahead}"] = _series(records, "runtime_seconds")
        if include_baselines:
            for algorithm in ("gaded-rand", "gaded-max", "gades"):
                records = _run_theta_sweep(runner, dataset, size, algorithm, 1, 1,
                                           thetas, seed, insertion_cap, max_steps,
                                           sweep_mode)
                series[algorithm] = _series(records, "runtime_seconds")
        results[size] = series
    return results


# ----------------------------------------------------------------------
# Figure 10: runtime vs size, per algorithm and L
# ----------------------------------------------------------------------
def figure10_series(dataset: str = "gnutella", sample_sizes: Sequence[int] = (40, 60, 80),
                    lengths: Sequence[int] = (1, 2), theta: float = 0.5, seed: int = 0,
                    insertion_cap: Optional[int] = 100,
                    max_steps: Optional[int] = None,
                    sweep_mode: str = "checkpointed",
                    runner: Optional[ExperimentRunner] = None) -> Dict[str, List[Tuple[int, float]]]:
    """Runtime for growing graph sizes, Rem and Rem-Ins, L ∈ {1, 2} (Figure 10)."""
    runner = runner or ExperimentRunner()
    series: Dict[str, List[Tuple[int, float]]] = {}
    for algorithm in ("rem", "rem-ins"):
        for length in lengths:
            label = f"{algorithm} L={length}"
            points: List[Tuple[int, float]] = []
            for size in sample_sizes:
                records = _run_theta_sweep(runner, dataset, size, algorithm,
                                           length, 1, (theta,), seed,
                                           insertion_cap, max_steps, sweep_mode)
                points.append((size, records[0].runtime_seconds))
            series[label] = points
    return series


# ----------------------------------------------------------------------
# Figures 11 and 12: ACM scaling experiment (runtime / distortion vs size)
# ----------------------------------------------------------------------
def _acm_scaling_records(sample_sizes: Sequence[int], thetas: Sequence[float],
                         seed: int, max_steps: Optional[int],
                         sweep_mode: str,
                         runner: Optional[ExperimentRunner]) -> Dict[float, List[RunRecord]]:
    """Per-θ record rows of the ACM sweep, one checkpointed pass per size."""
    runner = runner or ExperimentRunner()
    records: Dict[float, List[RunRecord]] = {theta: [] for theta in thetas}
    for size in sample_sizes:
        rows = _run_theta_sweep(runner, "acm", size, "rem", 1, 1, thetas, seed,
                                None, max_steps, sweep_mode)
        for record in rows:
            records[record.config.theta].append(record)
    return records


def figure11_series(sample_sizes: Sequence[int] = (50, 100, 150, 200),
                    thetas: Sequence[float] = (0.9, 0.8, 0.7, 0.6, 0.5), seed: int = 0,
                    max_steps: Optional[int] = None,
                    sweep_mode: str = "checkpointed",
                    runner: Optional[ExperimentRunner] = None) -> Dict[float, List[Tuple[int, float]]]:
    """Runtime vs graph size for several θ, Edge Removal, L = 1 (Figure 11).

    The paper scales the ACM co-authorship graph from 1000 to 10000 nodes
    (multi-day runtimes); the default grid here is laptop-scale but exercises
    the same sweep so the growth trend can be inspected.  One checkpointed
    pass per sample size serves every θ series at once.
    """
    records = _acm_scaling_records(sample_sizes, thetas, seed, max_steps,
                                   sweep_mode, runner)
    return {theta: [(record.config.sample_size, record.runtime_seconds) for record in rows]
            for theta, rows in records.items()}


def figure12_series(sample_sizes: Sequence[int] = (50, 100, 150, 200),
                    thetas: Sequence[float] = (0.9, 0.8, 0.7, 0.6, 0.5), seed: int = 0,
                    max_steps: Optional[int] = None,
                    sweep_mode: str = "checkpointed",
                    runner: Optional[ExperimentRunner] = None) -> Dict[float, List[Tuple[int, float]]]:
    """Distortion vs graph size for several θ, Edge Removal, L = 1 (Figure 12)."""
    records = _acm_scaling_records(sample_sizes, thetas, seed, max_steps,
                                   sweep_mode, runner)
    return {theta: [(record.config.sample_size, record.distortion) for record in rows]
            for theta, rows in records.items()}
