"""Series builders for every figure of the paper's evaluation (Figures 6-12).

Each function returns plain Python data (label -> list of (x, y) points) so
the benchmark harness and the examples can print the same series the paper
plots.  Default parameters are scaled to laptop-size inputs; the paper's own
settings (sample sizes up to 1000 nodes, θ down to 0) can be requested
explicitly when more time is available.

Every figure is declared as a list of
:class:`~repro.experiments.config.SweepPlan` series and executed as **one
grid job** through
:meth:`~repro.experiments.runner.ExperimentRunner.run_grid`: each θ grid
costs roughly one anonymization pass (``sweep_mode="checkpointed"``, the
default; pass ``sweep_mode="independent"`` to any builder for the
one-run-per-θ path — both produce identical series), and series sharing a
sample — the L sweeps of Figures 6g/6h/8c especially — additionally share
one loaded graph and one L_max bounded-distance computation
(DESIGN.md §10).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.experiments.config import SweepPlan
from repro.experiments.runner import ExperimentRunner, RunRecord

Series = List[Tuple[float, float]]
SeriesMap = Dict[str, Series]
LabelT = TypeVar("LabelT", bound=Hashable)

#: θ grid used by default (the paper sweeps 100% down to 0% in steps of 10).
DEFAULT_THETAS: Tuple[float, ...] = (0.9, 0.8, 0.7, 0.6, 0.5)

#: Default algorithms compared in the L = 1 figures.
L1_ALGORITHMS: Tuple[str, ...] = ("rem", "rem-ins", "gaded-rand", "gaded-max", "gades")


def _plan(dataset: str, sample_size: int, algorithm: str, length_threshold: int,
          lookahead: int, thetas: Sequence[float], seed: int,
          insertion_cap: Optional[int], max_steps: Optional[int],
          sweep_mode: str) -> SweepPlan:
    """One figure series: a θ sweep of one fixed configuration."""
    return SweepPlan(
        dataset=dataset, sample_size=sample_size, algorithm=algorithm,
        thetas=tuple(thetas), length_threshold=length_threshold,
        lookahead=lookahead, seed=seed, insertion_candidate_cap=insertion_cap,
        max_steps=max_steps, sweep_mode=sweep_mode)


def _run_labelled(runner: ExperimentRunner,
                  labelled: Sequence[Tuple[LabelT, SweepPlan]]
                  ) -> List[Tuple[LabelT, List[RunRecord]]]:
    """Execute labelled plans as one grid job, record lists in input order."""
    records = runner.run_grid([plan for _, plan in labelled])
    return [(label, rows) for (label, _), rows in zip(labelled, records)]


def _series(records: Iterable[RunRecord], value: str) -> Series:
    return [(record.config.theta, getattr(record, value)) for record in records]


# ----------------------------------------------------------------------
# Figure 6: distortion vs θ
# ----------------------------------------------------------------------
def figure6_series(dataset: str, length_threshold: int = 1, sample_size: int = 60,
                   thetas: Sequence[float] = DEFAULT_THETAS,
                   lookaheads: Sequence[int] = (1, 2),
                   include_baselines: Optional[bool] = None, seed: int = 0,
                   insertion_cap: Optional[int] = 150,
                   max_steps: Optional[int] = None,
                   sweep_mode: str = "checkpointed",
                   runner: Optional[ExperimentRunner] = None) -> SeriesMap:
    """Distortion as a function of θ (Figures 6a-6f).

    Baselines are included only for L = 1, mirroring the paper (they cannot
    handle multi-edge linkage).
    """
    runner = runner or ExperimentRunner()
    if include_baselines is None:
        include_baselines = length_threshold == 1
    labelled = [(f"{algorithm} la={lookahead}",
                 _plan(dataset, sample_size, algorithm, length_threshold,
                       lookahead, thetas, seed, insertion_cap, max_steps,
                       sweep_mode))
                for lookahead in lookaheads
                for algorithm in ("rem", "rem-ins")]
    if include_baselines:
        labelled += [(algorithm,
                      _plan(dataset, sample_size, algorithm, 1, 1, thetas,
                            seed, insertion_cap, max_steps, sweep_mode))
                     for algorithm in ("gaded-rand", "gaded-max", "gades")]
    return {label: _series(records, "distortion")
            for label, records in _run_labelled(runner, labelled)}


def figure6_lsweep_series(dataset: str, lengths: Sequence[int] = (1, 2, 3, 4),
                          sample_size: int = 60,
                          thetas: Sequence[float] = DEFAULT_THETAS, seed: int = 0,
                          insertion_cap: Optional[int] = 150,
                          max_steps: Optional[int] = None,
                          sweep_mode: str = "checkpointed",
                          runner: Optional[ExperimentRunner] = None) -> SeriesMap:
    """Distortion vs θ while varying L at fixed look-ahead 1 (Figures 6g, 6h).

    The whole L × θ grid is one grid job over a single sample, so every
    series shares one loaded graph and one bounded-distance computation at
    ``max(lengths)`` (smaller-L matrices are thresholded slices).
    """
    runner = runner or ExperimentRunner()
    labelled = [(f"{algorithm} L={length}",
                 _plan(dataset, sample_size, algorithm, length, 1, thetas,
                       seed, insertion_cap, max_steps, sweep_mode))
                for length in lengths
                for algorithm in ("rem", "rem-ins")]
    return {label: _series(records, "distortion")
            for label, records in _run_labelled(runner, labelled)}


# ----------------------------------------------------------------------
# Figure 7: EMD of degree / geodesic distributions vs θ
# ----------------------------------------------------------------------
def figure7_series(dataset: str = "enron", sample_size: int = 60,
                   thetas: Sequence[float] = DEFAULT_THETAS,
                   lookaheads: Sequence[int] = (1, 2), seed: int = 0,
                   insertion_cap: Optional[int] = 150,
                   max_steps: Optional[int] = None,
                   include_baselines: bool = True,
                   sweep_mode: str = "checkpointed",
                   runner: Optional[ExperimentRunner] = None) -> Dict[str, SeriesMap]:
    """EMD of the degree (7a) and geodesic (7b) distributions vs θ, L = 1."""
    runner = runner or ExperimentRunner()
    algorithms: List[Tuple[str, int]] = [
        (algorithm, lookahead) for lookahead in lookaheads
        for algorithm in ("rem", "rem-ins")]
    if include_baselines:
        algorithms += [(name, 1) for name in ("gaded-rand", "gaded-max", "gades")]
    labelled = [(f"{algorithm} la={lookahead}"
                 if algorithm in ("rem", "rem-ins") else algorithm,
                 _plan(dataset, sample_size, algorithm, 1, lookahead, thetas,
                       seed, insertion_cap, max_steps, sweep_mode))
                for algorithm, lookahead in algorithms]
    degree: SeriesMap = {}
    geodesic: SeriesMap = {}
    for label, records in _run_labelled(runner, labelled):
        degree[label] = _series(records, "degree_emd")
        geodesic[label] = _series(records, "geodesic_emd")
    return {"degree_emd": degree, "geodesic_emd": geodesic}


# ----------------------------------------------------------------------
# Figure 8: mean clustering-coefficient difference vs θ
# ----------------------------------------------------------------------
def figure8_series(dataset: str = "wikipedia", length_threshold: int = 1,
                   sample_size: int = 60, thetas: Sequence[float] = DEFAULT_THETAS,
                   lookaheads: Sequence[int] = (1, 2), seed: int = 0,
                   insertion_cap: Optional[int] = 150,
                   max_steps: Optional[int] = None,
                   include_baselines: Optional[bool] = None,
                   sweep_mode: str = "checkpointed",
                   runner: Optional[ExperimentRunner] = None) -> SeriesMap:
    """Mean of per-vertex |ΔCC| vs θ (Figures 8a-8b)."""
    runner = runner or ExperimentRunner()
    if include_baselines is None:
        include_baselines = length_threshold == 1
    labelled = [(f"{algorithm} la={lookahead}",
                 _plan(dataset, sample_size, algorithm, length_threshold,
                       lookahead, thetas, seed, insertion_cap, max_steps,
                       sweep_mode))
                for lookahead in lookaheads
                for algorithm in ("rem", "rem-ins")]
    if include_baselines:
        labelled += [(algorithm,
                      _plan(dataset, sample_size, algorithm, 1, 1, thetas,
                            seed, insertion_cap, max_steps, sweep_mode))
                     for algorithm in ("gaded-rand", "gaded-max", "gades")]
    return {label: _series(records, "mean_cc_difference")
            for label, records in _run_labelled(runner, labelled)}


def figure8_lsweep_series(dataset: str = "epinions", lengths: Sequence[int] = (1, 2, 3, 4),
                          sample_size: int = 60,
                          thetas: Sequence[float] = DEFAULT_THETAS, seed: int = 0,
                          insertion_cap: Optional[int] = 150,
                          max_steps: Optional[int] = None,
                          sweep_mode: str = "checkpointed",
                          runner: Optional[ExperimentRunner] = None) -> SeriesMap:
    """Mean |ΔCC| vs θ while varying L at look-ahead 1 (Figure 8c).

    Like :func:`figure6_lsweep_series`, the L × θ grid runs as one grid
    job sharing a single L_max distance computation.
    """
    runner = runner or ExperimentRunner()
    labelled = [(f"{algorithm} L={length}",
                 _plan(dataset, sample_size, algorithm, length, 1, thetas,
                       seed, insertion_cap, max_steps, sweep_mode))
                for length in lengths
                for algorithm in ("rem", "rem-ins")]
    return {label: _series(records, "mean_cc_difference")
            for label, records in _run_labelled(runner, labelled)}


# ----------------------------------------------------------------------
# Figure 9: runtime vs θ for growing sample sizes
# ----------------------------------------------------------------------
def figure9_series(dataset: str = "google", sample_sizes: Sequence[int] = (40, 60, 80),
                   thetas: Sequence[float] = DEFAULT_THETAS,
                   lookaheads: Sequence[int] = (1, 2), seed: int = 0,
                   insertion_cap: Optional[int] = 100,
                   max_steps: Optional[int] = None,
                   include_baselines: bool = True,
                   sweep_mode: str = "checkpointed",
                   runner: Optional[ExperimentRunner] = None) -> Dict[int, SeriesMap]:
    """Runtime vs θ for each sample size (Figures 9a-9c).

    The paper uses 100/500/1000-node Google samples; the default sizes here
    are scaled down so the full sweep stays laptop-friendly, preserving the
    growth *shape* across sizes.  In checkpointed mode each point's runtime
    is the elapsed time of the shared pass when it crossed that θ.  All
    sizes run as one grid job (one sample group per size).
    """
    runner = runner or ExperimentRunner()
    algorithms: List[Tuple[str, int]] = [
        (algorithm, lookahead) for lookahead in lookaheads
        for algorithm in ("rem", "rem-ins")]
    if include_baselines:
        algorithms += [(name, 1) for name in ("gaded-rand", "gaded-max", "gades")]
    labelled = [((size, f"{algorithm} la={lookahead}"
                  if algorithm in ("rem", "rem-ins") else algorithm),
                 _plan(dataset, size, algorithm, 1, lookahead, thetas, seed,
                       insertion_cap, max_steps, sweep_mode))
                for size in sample_sizes
                for algorithm, lookahead in algorithms]
    results: Dict[int, SeriesMap] = {size: {} for size in sample_sizes}
    for (size, label), records in _run_labelled(runner, labelled):
        results[size][label] = _series(records, "runtime_seconds")
    return results


# ----------------------------------------------------------------------
# Figure 10: runtime vs size, per algorithm and L
# ----------------------------------------------------------------------
def figure10_series(dataset: str = "gnutella", sample_sizes: Sequence[int] = (40, 60, 80),
                    lengths: Sequence[int] = (1, 2), theta: float = 0.5, seed: int = 0,
                    insertion_cap: Optional[int] = 100,
                    max_steps: Optional[int] = None,
                    sweep_mode: str = "checkpointed",
                    runner: Optional[ExperimentRunner] = None) -> Dict[str, List[Tuple[int, float]]]:
    """Runtime for growing graph sizes, Rem and Rem-Ins, L ∈ {1, 2} (Figure 10).

    One grid job covers the whole algorithm × L × size grid; per size, the
    L ∈ {1, 2} series share one distance computation at L = 2.
    """
    runner = runner or ExperimentRunner()
    labelled = [((f"{algorithm} L={length}", size),
                 _plan(dataset, size, algorithm, length, 1, (theta,), seed,
                       insertion_cap, max_steps, sweep_mode))
                for algorithm in ("rem", "rem-ins")
                for length in lengths
                for size in sample_sizes]
    series: Dict[str, List[Tuple[int, float]]] = {}
    for (label, size), records in _run_labelled(runner, labelled):
        series.setdefault(label, []).append((size, records[0].runtime_seconds))
    return series


# ----------------------------------------------------------------------
# Figures 11 and 12: ACM scaling experiment (runtime / distortion vs size)
# ----------------------------------------------------------------------
def _acm_scaling_records(sample_sizes: Sequence[int], thetas: Sequence[float],
                         seed: int, max_steps: Optional[int],
                         sweep_mode: str,
                         runner: Optional[ExperimentRunner]) -> Dict[float, List[RunRecord]]:
    """Per-θ record rows of the ACM sweep, one checkpointed pass per size."""
    runner = runner or ExperimentRunner()
    plans = [_plan("acm", size, "rem", 1, 1, thetas, seed, None, max_steps,
                   sweep_mode)
             for size in sample_sizes]
    records: Dict[float, List[RunRecord]] = {theta: [] for theta in thetas}
    for rows in runner.run_grid(plans):
        for record in rows:
            records[record.config.theta].append(record)
    return records


def figure11_series(sample_sizes: Sequence[int] = (50, 100, 150, 200),
                    thetas: Sequence[float] = (0.9, 0.8, 0.7, 0.6, 0.5), seed: int = 0,
                    max_steps: Optional[int] = None,
                    sweep_mode: str = "checkpointed",
                    runner: Optional[ExperimentRunner] = None) -> Dict[float, List[Tuple[int, float]]]:
    """Runtime vs graph size for several θ, Edge Removal, L = 1 (Figure 11).

    The paper scales the ACM co-authorship graph from 1000 to 10000 nodes
    (multi-day runtimes); the default grid here is laptop-scale but exercises
    the same sweep so the growth trend can be inspected.  One checkpointed
    pass per sample size serves every θ series at once.
    """
    records = _acm_scaling_records(sample_sizes, thetas, seed, max_steps,
                                   sweep_mode, runner)
    return {theta: [(record.config.sample_size, record.runtime_seconds) for record in rows]
            for theta, rows in records.items()}


def figure12_series(sample_sizes: Sequence[int] = (50, 100, 150, 200),
                    thetas: Sequence[float] = (0.9, 0.8, 0.7, 0.6, 0.5), seed: int = 0,
                    max_steps: Optional[int] = None,
                    sweep_mode: str = "checkpointed",
                    runner: Optional[ExperimentRunner] = None) -> Dict[float, List[Tuple[int, float]]]:
    """Distortion vs graph size for several θ, Edge Removal, L = 1 (Figure 12)."""
    records = _acm_scaling_records(sample_sizes, thetas, seed, max_steps,
                                   sweep_mode, runner)
    return {theta: [(record.config.sample_size, record.distortion) for record in rows]
            for theta, rows in records.items()}
