"""GADED-Rand and GADED-Max (Zhang & Zhang).

Both heuristics operate by edge deletion until the maximum single-edge
disclosure drops to the requested confidence threshold:

* **GADED-Rand** removes, at every step, a uniformly random edge among the
  edges that currently *participate in disclosure* (their degree-pair type
  exceeds the threshold).
* **GADED-Max** removes, at every step, the edge whose removal maximally
  reduces the maximum link disclosure, breaking ties by the minimum increase
  of the total link disclosure.

Both are the L = 1 counterparts of the paper's Edge Removal heuristic, used
in Figures 6-9 for comparison.

Unlike the paper's heuristics (and GADES), θ shapes GADED's *candidate
pool*: an edge participates in disclosure exactly when its type's opacity
exceeds θ, so the edges eligible for removal — and with them GADED-Rand's
random draw and GADED-Max's argmin — differ between grid points from the
very first step.  A checkpointed prefix-sharing pass would therefore pick
different edits than an independent run at each θ;
:meth:`_GadedBase.anonymize_schedule` instead executes one run per grid
point, sharing the frozen typing (and the caller's loaded graph) across
the grid (DESIGN.md §9).
"""

from __future__ import annotations

import random
import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.api.progress import NULL_OBSERVER, AnonymizationStopped, ProgressObserver
from repro.api.registry import register_anonymizer
from repro.core.anonymizer import (
    AnonymizationResult,
    AnonymizationStep,
    AnonymizerConfig,
    iter_batched_evaluations,
    validate_sweep_mode,
    validate_theta_schedule,
)
from repro.core.opacity import OpacityComputer
from repro.core.opacity_session import (
    OpacitySession,
    validate_evaluation_mode,
    validate_scan_mode,
)
from repro.core.pair_types import DegreePairTyping, PairTyping
from repro.core.scan_pool import resolve_scan_workers
from repro.errors import ConfigurationError, InfeasibleError
from repro.graph.distance_store import validate_scale_tier
from repro.graph.graph import Edge, Graph


class _GadedBase:
    """Shared driver for the two GADED variants (single-edge disclosure, L = 1)."""

    def __init__(self, theta: float = 0.5, seed: Optional[int] = None,
                 max_steps: Optional[int] = None, engine: str = "numpy",
                 strict: bool = False, evaluation_mode: str = "incremental",
                 scan_mode: str = "batched",
                 scan_workers: Optional[int] = None,
                 sweep_mode: str = "checkpointed",
                 scale_tier: str = "auto",
                 scale_budget_bytes: Optional[int] = None) -> None:
        if not 0.0 <= theta <= 1.0:
            raise ConfigurationError(f"theta must be in [0, 1], got {theta}")
        if scan_workers is not None and scan_workers < 0:
            raise ConfigurationError(
                f"scan_workers must be >= 0, got {scan_workers}")
        validate_evaluation_mode(evaluation_mode)
        validate_scan_mode(scan_mode)
        validate_sweep_mode(sweep_mode)
        validate_scale_tier(scale_tier)
        if scale_budget_bytes is not None and scale_budget_bytes < 1:
            raise ConfigurationError(
                f"scale_budget_bytes must be >= 1, got {scale_budget_bytes}")
        self._theta = theta
        self._seed = seed
        self._max_steps = max_steps
        self._engine = engine
        self._strict = strict
        self._evaluation_mode = evaluation_mode
        self._scan_mode = scan_mode
        self._scan_workers = scan_workers
        self._sweep_mode = sweep_mode
        self._scale_tier = scale_tier
        self._scale_budget_bytes = scale_budget_bytes

    @property
    def theta(self) -> float:
        """The confidence threshold."""
        return self._theta

    def anonymize(self, graph: Graph, typing: Optional[PairTyping] = None,
                  observer: Optional[ProgressObserver] = None,
                  initial_distances=None) -> AnonymizationResult:
        """Run the heuristic and return the anonymization result.

        ``initial_distances`` may seed the evaluation session with a
        precomputed 1-bounded distance matrix of ``graph`` (the run takes
        ownership of the array).
        """
        if typing is None:
            typing = DegreePairTyping(graph)
        return self._run_single(graph, self._theta, typing, observer,
                                initial_distances)

    def anonymize_schedule(self, graph: Graph,
                           thetas: Optional[Sequence[float]] = None,
                           typing: Optional[PairTyping] = None,
                           observer: Optional[ProgressObserver] = None,
                           initial_distances=None
                           ) -> List[AnonymizationResult]:
        """Run the heuristic for a θ grid, one result per grid point.

        θ shapes GADED's candidate pool (an edge participates in
        disclosure when its type's opacity exceeds θ), not merely the
        stopping rule, so a shared checkpointed pass would choose different
        edits than an independent run at each grid point.  The schedule
        therefore executes one run per θ regardless of ``sweep_mode`` —
        only the frozen typing and the caller's loaded graph are shared —
        keeping every result bit-identical to its independent counterpart.
        """
        schedule = validate_theta_schedule(
            thetas if thetas is not None else (self._theta,))
        if typing is None:
            typing = DegreePairTyping(graph)
        # Every per-θ run consumes its own session matrix, so the shared
        # precomputed matrix is copied per grid point.  Store payloads
        # (tiled tier) have no cheap copy; those runs recompute instead.
        return [self._run_single(graph, theta, typing, observer,
                                 initial_distances.copy()
                                 if isinstance(initial_distances, np.ndarray)
                                 else None)
                for theta in schedule]

    def _run_single(self, graph: Graph, theta: float, typing: PairTyping,
                    observer: Optional[ProgressObserver],
                    initial_distances=None) -> AnonymizationResult:
        computer = OpacityComputer(typing, length_threshold=1, engine=self._engine)
        working = graph.copy()
        # The full constructor state (max_steps included) is recorded so the
        # result's config round-trips through the api layer for reproduction.
        config = AnonymizerConfig(length_threshold=1, theta=theta, seed=self._seed,
                                  engine=self._engine, strict=self._strict,
                                  max_steps=self._max_steps,
                                  evaluation_mode=self._evaluation_mode,
                                  scan_mode=self._scan_mode,
                                  scan_workers=self._scan_workers,
                                  sweep_mode=self._sweep_mode,
                                  scale_tier=self._scale_tier,
                                  scale_budget_bytes=self._scale_budget_bytes)
        session = OpacitySession(
            computer, working, mode=self._evaluation_mode,
            initial_distances=initial_distances,
            store_config=config.store_config(),
            scan_workers=resolve_scan_workers(self._scan_mode,
                                              self._scan_workers))
        rng = random.Random(self._seed)
        result = AnonymizationResult(
            original_graph=graph.copy(),
            anonymized_graph=working,
            config=config,
            observer=observer if observer is not None else NULL_OBSERVER,
        )
        started = time.perf_counter()
        try:
            current = session.current()
            result.evaluations += 1
            result.observer.on_evaluation(result.evaluations)
            step_index = 0
            while current.max_opacity > theta and working.num_edges > 0:
                if result.observer.should_stop():
                    result.stop_reason = "observer"
                    break
                if self._max_steps is not None and step_index >= self._max_steps:
                    result.stop_reason = "max_steps"
                    break
                try:
                    edge = self._choose_edge(session, current, theta, rng, result)
                except AnonymizationStopped:
                    # Raised between candidate evaluations (graph restored), so
                    # `current` still describes the working graph.
                    result.stop_reason = "observer"
                    break
                if edge is None:
                    result.stop_reason = "exhausted"
                    break
                session.apply_edit(removals=(edge,))
                result.removed_edges.add(edge)
                current = session.current()
                result.evaluations += 1
                result.observer.on_evaluation(result.evaluations)
                step_record = AnonymizationStep(
                    index=step_index, operation="remove", edges=(edge,),
                    max_opacity_after=current.max_opacity,
                    removals=(edge,))
                result.steps.append(step_record)
                result.observer.on_step(step_record, result)
                step_index += 1
        finally:
            session.close()
        result.final_opacity = current.max_opacity
        result.success = current.max_opacity <= theta
        result.runtime_seconds = time.perf_counter() - started
        if not result.success and self._strict:
            raise InfeasibleError(
                f"GADED could not reach theta={theta} "
                f"(final disclosure {result.final_opacity:.3f})")
        return result

    def _disclosing_edges(self, session: OpacitySession, current,
                          theta: float) -> List[Edge]:
        """Edges whose degree-pair type currently exceeds the threshold."""
        typing = session.computer.typing
        exceeding = {key for key, entry in current.per_type.items()
                     if entry.opacity > theta}
        return [edge for edge in session.graph.edges()
                if typing.type_of(*edge) in exceeding]

    def _choose_edge(self, session: OpacitySession, current, theta: float,
                     rng: random.Random, result: AnonymizationResult) -> Optional[Edge]:
        raise NotImplementedError

    @staticmethod
    def _record_evaluation(result: AnonymizationResult) -> None:
        """Count one candidate evaluation and honour stop requests mid-scan."""
        result.evaluations += 1
        result.observer.on_evaluation(result.evaluations)
        if result.observer.should_stop():
            raise AnonymizationStopped()


@register_anonymizer(
    "gaded-rand",
    description="GADED-Rand baseline (Zhang & Zhang, single-edge disclosure)",
    accepts=("theta", "seed", "max_steps", "engine", "strict", "evaluation_mode",
             "scan_mode", "scan_workers", "sweep_mode", "scale_tier",
             "scale_budget_bytes"),
)
class GadedRandAnonymizer(_GadedBase):
    """GADED-Rand: remove a random edge participating in disclosure."""

    def _choose_edge(self, session: OpacitySession, current, theta: float,
                     rng: random.Random, result: AnonymizationResult) -> Optional[Edge]:
        candidates = self._disclosing_edges(session, current, theta)
        if not candidates:
            return None
        return candidates[rng.randrange(len(candidates))]


@register_anonymizer(
    "gaded-max",
    description="GADED-Max baseline (Zhang & Zhang, single-edge disclosure)",
    accepts=("theta", "seed", "max_steps", "engine", "strict", "evaluation_mode",
             "scan_mode", "scan_workers", "sweep_mode", "scale_tier",
             "scale_budget_bytes"),
)
class GadedMaxAnonymizer(_GadedBase):
    """GADED-Max: remove the edge with the greatest reduction of the maximum
    disclosure, tie-broken by the smallest increase of the total disclosure."""

    def _choose_edge(self, session: OpacitySession, current, theta: float,
                     rng: random.Random, result: AnonymizationResult) -> Optional[Edge]:
        candidates = self._disclosing_edges(session, current, theta)
        if not candidates:
            candidates = list(session.graph.edges())
        if not candidates:
            return None
        if self._scan_mode in ("batched", "parallel"):
            outcomes = iter_batched_evaluations(session, candidates,
                                                lambda edge: ((edge,), ()))
        else:
            outcomes = (session.evaluate_edit(removals=(edge,))
                        for edge in candidates)
        best_edge: Optional[Edge] = None
        best_key: Optional[Tuple[float, float]] = None
        tie_count = 0
        for edge, outcome in zip(candidates, outcomes):
            self._record_evaluation(result)
            key = (outcome.max_opacity, outcome.total_opacity)
            if best_key is None or key < best_key:
                best_key = key
                best_edge = edge
                tie_count = 1
            elif key == best_key:
                tie_count += 1
                if rng.random() < 1.0 / tie_count:
                    best_edge = edge
        return best_edge
