"""Competing heuristics of Zhang & Zhang ("Edge anonymity in social network
graphs", CSE 2009), reimplemented for the comparative experiments of
Section 6: GADED-Rand, GADED-Max, and GADES.

These baselines address single-edge linkage only, i.e. they are the L = 1
special case of the L-opacity model, which is why the paper compares against
them only for L = 1.
"""

from repro.baselines.disclosure import (
    DisclosureSummary,
    link_disclosure_summary,
    max_link_disclosure,
    total_link_disclosure,
)
from repro.baselines.gaded import GadedMaxAnonymizer, GadedRandAnonymizer
from repro.baselines.gades import GadesAnonymizer

__all__ = [
    "DisclosureSummary",
    "link_disclosure_summary",
    "max_link_disclosure",
    "total_link_disclosure",
    "GadedRandAnonymizer",
    "GadedMaxAnonymizer",
    "GadesAnonymizer",
]
