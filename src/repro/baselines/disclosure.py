"""Single-edge link disclosure, the privacy measure of Zhang & Zhang.

For an adversary who knows original node degrees, the disclosure of a degree
pair ``(d1, d2)`` is the probability that a uniformly chosen pair of
vertices with those degrees is directly connected — exactly the L-opacity of
the degree-pair type with L = 1.  The GADED/GADES heuristics monitor the
maximum disclosure over degree pairs and the total (summed) disclosure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.core.opacity import OpacityComputer, OpacityResult
from repro.core.pair_types import DegreePairTyping, PairTyping
from repro.graph.distance import DistanceEngine
from repro.graph.graph import Graph


@dataclass(frozen=True)
class DisclosureSummary:
    """Maximum and total link disclosure over all degree-pair types."""

    maximum: float
    total: float
    per_type: Mapping[Tuple[int, int], float]

    def exceeds(self, theta: float) -> bool:
        """Whether the maximum disclosure exceeds the confidence threshold."""
        return self.maximum > theta


def _evaluate(graph: Graph, typing: Optional[PairTyping],
              engine: DistanceEngine) -> OpacityResult:
    if typing is None:
        typing = DegreePairTyping(graph)
    computer = OpacityComputer(typing, length_threshold=1, engine=engine)
    return computer.evaluate(graph)


def link_disclosure_summary(graph: Graph, typing: Optional[PairTyping] = None,
                            engine: DistanceEngine = "numpy") -> DisclosureSummary:
    """Compute maximum, total, and per-type single-edge disclosure."""
    result = _evaluate(graph, typing, engine)
    per_type: Dict[Tuple[int, int], float] = {
        key: entry.opacity for key, entry in result.per_type.items()}
    total = float(sum(per_type.values()))
    return DisclosureSummary(maximum=result.max_opacity, total=total, per_type=per_type)


def max_link_disclosure(graph: Graph, typing: Optional[PairTyping] = None,
                        engine: DistanceEngine = "numpy") -> float:
    """Maximum single-edge disclosure over degree pairs."""
    return link_disclosure_summary(graph, typing, engine).maximum


def total_link_disclosure(graph: Graph, typing: Optional[PairTyping] = None,
                          engine: DistanceEngine = "numpy") -> float:
    """Sum of single-edge disclosures over degree pairs."""
    return link_disclosure_summary(graph, typing, engine).total
