"""GADES (Zhang & Zhang): disclosure reduction by degree-preserving edge swaps.

At every step GADES looks for a pair of edges ``(a, b)`` and ``(c, d)`` that
can be rewired into ``(a, d)`` and ``(c, b)`` — preserving every vertex
degree — such that the maximum single-edge disclosure decreases.  When no
improving swap exists the heuristic stops; as the paper observes (Section
6.3), on many graphs GADES cannot reach low thresholds at all.

Like the paper's heuristics, GADES only reads θ in its stopping condition
(candidate swaps are compared against the *current* maximum), so a θ grid
can be executed as one checkpointed pass (:meth:`GadesAnonymizer.
anonymize_schedule`, DESIGN.md §9).
"""

from __future__ import annotations

import random
import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.api.progress import NULL_OBSERVER, AnonymizationStopped, ProgressObserver
from repro.api.registry import register_anonymizer
from repro.core.anonymizer import (
    AnonymizationResult,
    AnonymizationStep,
    AnonymizerConfig,
    ThetaScheduleTracker,
    iter_batched_evaluations,
    materialize_checkpoints,
    validate_sweep_mode,
    validate_theta_schedule,
)
from repro.core.opacity import OpacityComputer
from repro.core.opacity_session import (
    OpacitySession,
    validate_evaluation_mode,
    validate_scan_mode,
)
from repro.core.pair_types import DegreePairTyping, PairTyping
from repro.core.scan_pool import resolve_scan_workers
from repro.errors import ConfigurationError
from repro.graph.distance_store import validate_scale_tier
from repro.graph.graph import Edge, Graph, normalize_edge

Swap = Tuple[Edge, Edge, Edge, Edge]  # (removed1, removed2, added1, added2)


@register_anonymizer(
    "gades",
    description="GADES baseline (Zhang & Zhang, degree-preserving swaps)",
    accepts=("theta", "seed", "max_steps", "swap_sample_size", "engine",
             "evaluation_mode", "scan_mode", "scan_workers", "sweep_mode",
             "scale_tier", "scale_budget_bytes"),
)
class GadesAnonymizer:
    """GADES: greedy degree-preserving edge swapping against link disclosure.

    Parameters
    ----------
    theta:
        Confidence threshold on the maximum single-edge disclosure.
    swap_sample_size:
        Number of candidate swap pairs examined per step (the original
        formulation scans all pairs of edges; a seeded sample keeps the
        reimplementation tractable and is documented in DESIGN.md).
    evaluation_mode:
        ``"incremental"`` delta-evaluates each candidate swap (an L = 1
        swap only flips the four edited cells); ``"scratch"`` recounts
        from scratch.  Both choose identical swaps.
    sweep_mode:
        How :meth:`anonymize_schedule` executes a θ grid: one checkpointed
        pass (``"checkpointed"``, default) or one run per grid point
        (``"independent"``).  Both produce identical per-θ results.
    """

    def __init__(self, theta: float = 0.5, seed: Optional[int] = None,
                 max_steps: Optional[int] = None, swap_sample_size: int = 2000,
                 engine: str = "numpy", evaluation_mode: str = "incremental",
                 scan_mode: str = "batched",
                 scan_workers: Optional[int] = None,
                 sweep_mode: str = "checkpointed",
                 scale_tier: str = "auto",
                 scale_budget_bytes: Optional[int] = None) -> None:
        if not 0.0 <= theta <= 1.0:
            raise ConfigurationError(f"theta must be in [0, 1], got {theta}")
        if swap_sample_size < 1:
            raise ConfigurationError("swap_sample_size must be >= 1")
        if scan_workers is not None and scan_workers < 0:
            raise ConfigurationError(
                f"scan_workers must be >= 0, got {scan_workers}")
        validate_evaluation_mode(evaluation_mode)
        validate_scan_mode(scan_mode)
        validate_sweep_mode(sweep_mode)
        validate_scale_tier(scale_tier)
        if scale_budget_bytes is not None and scale_budget_bytes < 1:
            raise ConfigurationError(
                f"scale_budget_bytes must be >= 1, got {scale_budget_bytes}")
        self._theta = theta
        self._seed = seed
        self._max_steps = max_steps
        self._swap_sample_size = swap_sample_size
        self._engine = engine
        self._evaluation_mode = evaluation_mode
        self._scan_mode = scan_mode
        self._scan_workers = scan_workers
        self._sweep_mode = sweep_mode
        self._scale_tier = scale_tier
        self._scale_budget_bytes = scale_budget_bytes

    @property
    def theta(self) -> float:
        """The confidence threshold."""
        return self._theta

    def anonymize(self, graph: Graph, typing: Optional[PairTyping] = None,
                  observer: Optional[ProgressObserver] = None,
                  initial_distances=None) -> AnonymizationResult:
        """Run GADES and return the anonymization result.

        ``success`` is only reported when the threshold was actually reached;
        GADES frequently stalls because no degree-preserving swap can lower
        the maximum disclosure further.  ``initial_distances`` may seed the
        evaluation session with a precomputed 1-bounded distance matrix of
        ``graph`` (the run takes ownership of the array).
        """
        return self._run_schedule(graph, (self._theta,), typing, observer,
                                  initial_distances)[0]

    def anonymize_schedule(self, graph: Graph,
                           thetas: Optional[Sequence[float]] = None,
                           typing: Optional[PairTyping] = None,
                           observer: Optional[ProgressObserver] = None,
                           initial_distances=None
                           ) -> List[AnonymizationResult]:
        """Run GADES for a whole θ grid, one result per grid point.

        θ only gates the swap loop's termination (candidate swaps are
        scored against the current maximum, never θ), so the checkpointed
        single-pass execution returns per-θ results identical to
        independent runs — see :meth:`BaseAnonymizer.anonymize_schedule`
        for the schedule semantics.
        """
        schedule = validate_theta_schedule(
            thetas if thetas is not None else (self._theta,))
        if self._sweep_mode == "independent" and len(schedule) > 1:
            # Store payloads (tiled tier) have no cheap copy; each per-theta
            # run recomputes its own deterministic session state instead.
            return [self._with_theta(theta).anonymize(
                        graph, typing=typing, observer=observer,
                        initial_distances=(initial_distances.copy()
                                           if isinstance(initial_distances, np.ndarray)
                                           else None))
                    for theta in schedule]
        return self._run_schedule(graph, schedule, typing, observer,
                                  initial_distances)

    def _with_theta(self, theta: float) -> "GadesAnonymizer":
        return GadesAnonymizer(
            theta=theta, seed=self._seed, max_steps=self._max_steps,
            swap_sample_size=self._swap_sample_size, engine=self._engine,
            evaluation_mode=self._evaluation_mode, scan_mode=self._scan_mode,
            scan_workers=self._scan_workers,
            sweep_mode=self._sweep_mode, scale_tier=self._scale_tier,
            scale_budget_bytes=self._scale_budget_bytes)

    def _run_schedule(self, graph: Graph, schedule: Sequence[float],
                      typing: Optional[PairTyping],
                      observer: Optional[ProgressObserver],
                      initial_distances=None
                      ) -> List[AnonymizationResult]:
        if typing is None:
            typing = DegreePairTyping(graph)
        computer = OpacityComputer(typing, length_threshold=1, engine=self._engine)
        working = graph.copy()
        # The full constructor state (max_steps and swap_sample_size
        # included) is recorded so the result's config round-trips through
        # the api layer for reproduction.
        config = AnonymizerConfig(length_threshold=1, theta=schedule[-1],
                                  seed=self._seed, engine=self._engine,
                                  max_steps=self._max_steps,
                                  swap_sample_size=self._swap_sample_size,
                                  evaluation_mode=self._evaluation_mode,
                                  scan_mode=self._scan_mode,
                                  scan_workers=self._scan_workers,
                                  sweep_mode=self._sweep_mode,
                                  scale_tier=self._scale_tier,
                                  scale_budget_bytes=self._scale_budget_bytes)
        session = OpacitySession(
            computer, working, mode=self._evaluation_mode,
            initial_distances=initial_distances,
            store_config=config.store_config(),
            scan_workers=resolve_scan_workers(self._scan_mode,
                                              self._scan_workers))
        rng = random.Random(self._seed)
        original = graph.copy()
        result = AnonymizationResult(
            original_graph=original,
            anonymized_graph=working,
            config=config,
            observer=observer if observer is not None else NULL_OBSERVER,
        )
        started = time.perf_counter()
        tracker = ThetaScheduleTracker(schedule, working, started, rng=rng)
        try:
            current = session.current()
            result.evaluations += 1
            result.observer.on_evaluation(result.evaluations)
            step_index = 0
            while True:
                tracker.emit_crossings(current, result)
                if tracker.done:
                    break
                if result.observer.should_stop():
                    tracker.emit_remaining(current, result, "observer")
                    break
                if self._max_steps is not None and step_index >= self._max_steps:
                    tracker.emit_remaining(current, result, "max_steps")
                    break
                try:
                    swap = self._best_swap(session, current.max_opacity, rng, result)
                except AnonymizationStopped:
                    # Raised between candidate evaluations (swap undone), so
                    # `current` still describes the working graph.
                    tracker.emit_remaining(current, result, "observer")
                    break
                if swap is None:
                    tracker.emit_remaining(current, result, "exhausted")
                    break
                removed1, removed2, added1, added2 = swap
                session.apply_edit(removals=(removed1, removed2),
                                   insertions=(added1, added2))
                result.removed_edges.update((removed1, removed2))
                result.inserted_edges.update((added1, added2))
                current = session.current()
                result.evaluations += 1
                result.observer.on_evaluation(result.evaluations)
                step_record = AnonymizationStep(
                    index=step_index, operation="swap",
                    edges=(removed1, removed2, added1, added2),
                    max_opacity_after=current.max_opacity,
                    removals=(removed1, removed2),
                    insertions=(added1, added2))
                result.steps.append(step_record)
                result.observer.on_step(step_record, result)
                step_index += 1
        finally:
            session.close()
        return materialize_checkpoints(tracker.checkpoints, original, config,
                                       result.observer)

    # ------------------------------------------------------------------
    # swap search
    # ------------------------------------------------------------------
    def _candidate_swaps(self, working: Graph, rng: random.Random) -> List[Swap]:
        """Sample distinct candidate swaps for one step.

        Each drawn edge pair is deduplicated on its *normalized* swap (the
        unordered removed pair plus the unordered added pair) so no swap is
        scored twice within a step, and when the first randomly-chosen
        rewiring collides with an existing edge the alternate
        degree-preserving rewiring is tried before the pair is discarded —
        both previously wasted draws against ``swap_sample_size``.
        """
        edges = list(working.edges())
        if len(edges) < 2:
            return []
        swaps: List[Swap] = []
        seen = set()
        attempts = 0
        limit = self._swap_sample_size
        while len(swaps) < limit and attempts < 10 * limit:
            attempts += 1
            (a, b) = edges[rng.randrange(len(edges))]
            (c, d) = edges[rng.randrange(len(edges))]
            if len({a, b, c, d}) < 4:
                continue
            # Two rewirings preserve all degrees: (a-d, c-b) and (a-c, b-d).
            if rng.random() < 0.5:
                rewirings = (((a, d), (c, b)), ((a, c), (b, d)))
            else:
                rewirings = (((a, c), (b, d)), ((a, d), (c, b)))
            for new_first, new_second in rewirings:
                if working.has_edge(*new_first) or working.has_edge(*new_second):
                    continue
                swap = (normalize_edge(a, b), normalize_edge(c, d),
                        normalize_edge(*new_first), normalize_edge(*new_second))
                key = (frozenset(swap[:2]), frozenset(swap[2:]))
                if key not in seen:
                    seen.add(key)
                    swaps.append(swap)
                break
        return swaps

    def _best_swap(self, session: OpacitySession, current_max: float,
                   rng: random.Random,
                   result: AnonymizationResult) -> Optional[Swap]:
        candidates = self._candidate_swaps(session.graph, rng)
        if self._scan_mode in ("batched", "parallel"):
            outcomes = iter_batched_evaluations(session, candidates,
                                                lambda swap: (swap[:2], swap[2:]))
        else:
            outcomes = (session.evaluate_edit(removals=swap[:2],
                                              insertions=swap[2:])
                        for swap in candidates)
        best: Optional[Swap] = None
        best_value = current_max
        for swap, outcome in zip(candidates, outcomes):
            result.evaluations += 1
            result.observer.on_evaluation(result.evaluations)
            if result.observer.should_stop():
                raise AnonymizationStopped()
            if outcome.max_opacity < best_value:
                best_value = outcome.max_opacity
                best = swap
        return best
