"""Checkpointed θ-sweep execution at the service layer.

Every figure of the paper's evaluation sweeps the confidence threshold θ
for an otherwise fixed configuration.  θ only gates the greedy loops'
termination, so all grid points of such a sweep can be served by *one*
anonymization pass with per-θ checkpoints (DESIGN.md §9).  This module
holds the request/response records and the grouping/execution machinery:

* :class:`SweepRequest` — an arbitrary grid of
  :class:`~repro.api.requests.AnonymizationRequest` records plus the
  ``sweep_mode`` governing execution, JSON-round-trippable like the
  single-run records;
* :func:`group_requests` — partition a grid into θ-sweep groups (requests
  identical in everything but θ and ``request_id``);
* :func:`execute_sweep_group` — run one group as a single checkpointed
  pass (or per-θ independent runs) and materialize per-θ responses
  identical to independent execution;
* :func:`run_sweep` — group a whole :class:`SweepRequest`, fan the groups
  across a :class:`~repro.api.batch.BatchRunner` process pool, and return
  a :class:`SweepResponse` in request order.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.anonymizer import (
    SWEEP_MODES,
    validate_sweep_mode,
    validate_theta_schedule,
)
from repro.api.progress import ProgressObserver, TimeoutObserver, combine_observers
from repro.api.registry import AnonymizerRegistry, default_registry
from repro.api.requests import AnonymizationRequest, AnonymizationResponse
from repro.errors import ConfigurationError

__all__ = [
    "SWEEP_MODES",
    "SweepRequest",
    "SweepResponse",
    "accepts_initial_distances",
    "accepts_kwarg",
    "execute_sweep_group",
    "group_requests",
    "run_sweep",
]


def _group_key(request: AnonymizationRequest) -> AnonymizationRequest:
    """The grouping key: everything but θ (and the per-job request id)."""
    return replace(request, theta=0.0, request_id=None)


def group_requests(requests: Sequence[AnonymizationRequest]) -> List[List[int]]:
    """Partition request indices into θ-sweep groups.

    Requests that agree on every field except ``theta`` and ``request_id``
    — same graph source, algorithm, L, look-ahead, seed, tuning knobs, and
    execution options — form one group and can be served by a single
    checkpointed pass.  Group order follows first appearance; indices
    within a group keep their input order.
    """
    groups: Dict[AnonymizationRequest, List[int]] = {}
    for index, request in enumerate(requests):
        groups.setdefault(_group_key(request), []).append(index)
    return list(groups.values())


@dataclass(frozen=True)
class SweepRequest:
    """A grid of anonymization jobs executed as grouped θ sweeps.

    ``requests`` is an arbitrary configuration grid; :func:`run_sweep`
    groups it by everything-but-θ and executes each group as one
    checkpointed anonymization (``sweep_mode="checkpointed"``, the
    default) or as independent per-θ runs (``"independent"``).  Both modes
    return identical responses; only the runtime differs.  Every field
    survives a JSON round-trip, mirroring the single-run records.
    """

    requests: Tuple[AnonymizationRequest, ...]
    sweep_mode: str = "checkpointed"

    def __post_init__(self) -> None:
        object.__setattr__(self, "requests", tuple(self.requests))
        if not self.requests:
            raise ConfigurationError("a sweep requires at least one request")
        validate_sweep_mode(self.sweep_mode)

    @classmethod
    def from_axes(cls, base: AnonymizationRequest, *,
                  algorithms: Optional[Sequence[str]] = None,
                  thetas: Optional[Sequence[float]] = None,
                  length_thresholds: Optional[Sequence[int]] = None,
                  lookaheads: Optional[Sequence[int]] = None,
                  seeds: Optional[Sequence[int]] = None,
                  sweep_mode: str = "checkpointed") -> "SweepRequest":
        """Cartesian-product expansion of ``base`` (see :func:`expand_sweep`)."""
        from repro.api.facade import expand_sweep

        return cls(requests=tuple(expand_sweep(
            base, algorithms=algorithms, thetas=thetas,
            length_thresholds=length_thresholds, lookaheads=lookaheads,
            seeds=seeds)), sweep_mode=sweep_mode)

    def groups(self) -> List[List[int]]:
        """Indices of :attr:`requests` partitioned into θ-sweep groups."""
        return group_requests(self.requests)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data (JSON-safe) form."""
        return {
            "requests": [request.to_dict() for request in self.requests],
            "sweep_mode": self.sweep_mode,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepRequest":
        """Inverse of :meth:`to_dict`; unknown keys raise (typo protection)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown sweep field(s) {unknown}; known: {sorted(known)}")
        data = dict(payload)
        data["requests"] = tuple(AnonymizationRequest.from_dict(entry)
                                 for entry in data.get("requests", ()))
        return cls(**data)

    def to_json(self, **dumps_kwargs: Any) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "SweepRequest":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class SweepResponse:
    """Outcome of a :class:`SweepRequest`, responses in request order."""

    responses: Tuple[AnonymizationResponse, ...]
    sweep_mode: str = "checkpointed"
    num_groups: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "responses", tuple(self.responses))

    @property
    def ok(self) -> bool:
        """Whether every response completed without raising."""
        return all(response.ok for response in self.responses)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data (JSON-safe) form."""
        return {
            "responses": [response.to_dict() for response in self.responses],
            "sweep_mode": self.sweep_mode,
            "num_groups": self.num_groups,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepResponse":
        """Inverse of :meth:`to_dict`."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown sweep response field(s) {unknown}; known: {sorted(known)}")
        data = dict(payload)
        data["responses"] = tuple(AnonymizationResponse.from_dict(entry)
                                  for entry in data.get("responses", ()))
        return cls(**data)

    def to_json(self, **dumps_kwargs: Any) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "SweepResponse":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


def execute_sweep_group(requests: Sequence[AnonymizationRequest], *,
                        sweep_mode: str = "checkpointed",
                        registry: Optional[AnonymizerRegistry] = None,
                        observer: Optional[ProgressObserver] = None,
                        data_dir: Optional[str] = None,
                        graph=None, initial_distances=None,
                        baseline=None, resume_from=None) -> List[AnonymizationResponse]:
    """Execute one θ-sweep group, responses in request order.

    All requests must share a group key (everything but θ/request id); the
    group's graph is loaded once, the algorithm is built once, and the θ
    grid runs through :meth:`anonymize_schedule` — a single checkpointed
    pass by default.  Per-θ responses are identical to independently
    executed requests.  Failures are isolated at group granularity: an
    exception anywhere in the shared pass yields error responses for every
    request of the group (one bad group never poisons the rest of a
    sweep).  ``timeout_seconds``, when set, bounds the whole shared pass
    with the largest timeout of the group; ``sweep_mode="independent"``
    executes the requests one by one instead (per-request timeouts and
    failure isolation, exactly like :func:`~repro.api.batch.execute_request`).

    The grid engine (:mod:`repro.api.sweeps`) amortizes work *across*
    groups that share a sample through the optional keywords: ``graph`` (a
    preloaded pristine sample — runs copy it, it is never mutated),
    ``initial_distances`` (the group's precomputed L-bounded matrix, e.g. a
    :class:`~repro.graph.distance_cache.LMaxDistanceCache` slice; the run
    consumes it), and ``baseline`` (the sample's shared utility baseline).
    All three default to the per-group cold path.

    ``resume_from`` (an ``AnonymizationCheckpoint`` from an interrupted
    pass over the *same* configuration, at a θ strictly above every θ of
    ``requests``) continues that pass instead of starting cold — the
    service layer's restart path.  Algorithms whose ``anonymize_schedule``
    predates the keyword fall back to a cold run of the requested θs,
    which produces identical responses (each checkpoint equals an
    independent run at its θ), just without the saved work.  A resumed
    group never receives ``initial_distances``: the matrix describes the
    original graph, not the checkpoint's.
    """
    validate_sweep_mode(sweep_mode)
    requests = list(requests)
    if not requests:
        return []
    if sweep_mode == "independent":
        # The opt-out path keeps the pre-engine per-request semantics:
        # each run gets its own timeout budget and failure isolation.
        from repro.api.batch import execute_request

        return [execute_request(request, registry=registry, observer=observer,
                                data_dir=data_dir)
                for request in requests]
    try:
        return _run_group(requests, sweep_mode, registry, observer, data_dir,
                          graph, initial_distances, baseline, resume_from)
    except Exception as exc:  # noqa: BLE001 — isolation is the contract
        return [AnonymizationResponse.failure(request, exc)
                for request in requests]


def accepts_kwarg(func, name: str) -> bool:
    """Whether a (possibly third-party) callable takes keyword ``name``.

    The optional-capability probe used when handing extras to
    registry-resolved algorithms: callables with an older signature run
    without the extra instead of crashing on an unexpected keyword.
    """
    import inspect

    try:
        parameters = inspect.signature(func).parameters
    except (TypeError, ValueError):  # builtins / C callables
        return False
    return name in parameters


def accepts_initial_distances(anonymize_schedule) -> bool:
    """Whether a schedule method takes ``initial_distances``.

    Shared by every layer that seeds precomputed matrices into
    registry-resolved algorithms (this module and
    :class:`~repro.experiments.runner.ExperimentRunner`).
    """
    return accepts_kwarg(anonymize_schedule, "initial_distances")


def _run_group(requests: List[AnonymizationRequest], sweep_mode: str,
               registry: Optional[AnonymizerRegistry],
               observer: Optional[ProgressObserver],
               data_dir: Optional[str],
               graph=None, initial_distances=None,
               baseline=None, resume_from=None) -> List[AnonymizationResponse]:
    from repro.api.batch import execute_request
    from repro.metrics import graph_baseline, utility_report

    registry = registry if registry is not None else default_registry()
    first = requests[0]
    schedule = validate_theta_schedule([request.theta for request in requests])
    params = dict(first.algorithm_params())
    params["theta"] = schedule[-1]
    params["sweep_mode"] = sweep_mode
    algorithm = registry.create(first.algorithm, **params)
    if not hasattr(algorithm, "anonymize_schedule"):
        # Third-party algorithm without schedule support: independent runs.
        return [execute_request(request, registry=registry, observer=observer,
                                data_dir=data_dir)
                for request in requests]
    if graph is None:
        graph = first.resolve_graph(data_dir=data_dir)
    timeouts = [request.timeout_seconds for request in requests
                if request.timeout_seconds is not None]
    if timeouts:
        observer = combine_observers(observer, TimeoutObserver(max(timeouts)))
    kwargs = {}
    if observer is not None:
        kwargs["observer"] = observer
    if resume_from is not None and \
            accepts_kwarg(algorithm.anonymize_schedule, "resume_from"):
        # Continue the interrupted pass; its distances must be recomputed
        # from the checkpoint graph, never seeded from the original's.
        kwargs["resume_from"] = resume_from
    elif initial_distances is not None and \
            accepts_initial_distances(algorithm.anonymize_schedule):
        kwargs["initial_distances"] = initial_distances
    results = algorithm.anonymize_schedule(graph, schedule, **kwargs)
    by_theta = {result.config.theta: result for result in results}
    responses = []
    for request in requests:
        result = by_theta[float(request.theta)]
        metrics = None
        if request.include_utility:
            if baseline is None:
                baseline = graph_baseline(result.original_graph)
            report = utility_report(result.original_graph,
                                    result.anonymized_graph,
                                    include_spectral=False, baseline=baseline)
            metrics = {key: value for key, value in report.as_dict().items()
                       if key not in ("eigenvalue_shift", "connectivity_shift")}
        responses.append(AnonymizationResponse.from_result(request, result,
                                                           metrics=metrics))
    return responses


def run_sweep(sweep: SweepRequest, *,
              max_workers: Optional[int] = 0,
              registry: Optional[AnonymizerRegistry] = None,
              data_dir: Optional[str] = None) -> SweepResponse:
    """Group and execute a :class:`SweepRequest`, responses in request order.

    ``max_workers=0`` (the default) runs the groups serially in-process
    (the only mode that honours a custom ``registry``); any other value
    fans *groups* — not individual requests — across a
    :class:`~repro.api.batch.BatchRunner` process pool (``None`` = one
    worker per CPU).
    """
    from repro.api.batch import BatchRunner

    runner = BatchRunner(max_workers=max_workers, data_dir=data_dir)
    responses = runner.run_sweep(sweep, registry=registry)
    return SweepResponse(responses=tuple(responses),
                         sweep_mode=sweep.sweep_mode,
                         num_groups=len(sweep.groups()))
