"""JSON serialization + materialization of ``AnonymizationCheckpoint``.

Checkpoints are the unit of durability for the service layer: a
checkpointed θ-schedule pass streams one per crossed grid point, the run
store persists them as JSON blobs, and on restart the job manager either
*materializes* them straight into responses (grid points the interrupted
pass already crossed) or *resumes* the pass from the lowest-θ one.  That
requires a faithful plain-data form of everything a checkpoint carries —
steps, edit sets, the graph snapshot, and the tie-breaking RNG state —
which the core record deliberately does not define (it stays
process-local); this module owns that wire format.

The format is version-stamped (:data:`CHECKPOINT_VERSION`); loading a blob
with an unknown version or unknown keys raises
:class:`~repro.errors.ConfigurationError` rather than guessing.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional

from repro.core.anonymizer import (
    AnonymizationCheckpoint,
    AnonymizationResult,
    AnonymizationStep,
    AnonymizerConfig,
)
from repro.api.progress import NULL_OBSERVER
from repro.api.requests import AnonymizationRequest, AnonymizationResponse
from repro.errors import ConfigurationError
from repro.graph.graph import Graph

__all__ = [
    "CHECKPOINT_VERSION",
    "checkpoint_from_dict",
    "checkpoint_from_json",
    "checkpoint_to_dict",
    "checkpoint_to_json",
    "materialize_response",
]

CHECKPOINT_VERSION = 1
"""Wire-format version; bump on any incompatible change to the layout."""

_CHECKPOINT_KEYS = frozenset({
    "version", "theta", "steps", "removed_edges", "inserted_edges",
    "evaluations", "max_opacity", "runtime_seconds", "success",
    "stop_reason", "num_vertices", "edges", "rng_state",
})

_STEP_KEYS = frozenset({
    "index", "operation", "edges", "max_opacity_after",
    "removals", "insertions",
})


def _edges_out(edges: Any) -> list:
    return [[int(u), int(v)] for u, v in edges]


def _edges_in(edges: Any) -> tuple:
    return tuple((int(u), int(v)) for u, v in edges)


def _step_to_dict(step: AnonymizationStep) -> Dict[str, Any]:
    return {
        "index": step.index,
        "operation": step.operation,
        "edges": _edges_out(step.edges),
        "max_opacity_after": step.max_opacity_after,
        "removals": _edges_out(step.removals),
        "insertions": _edges_out(step.insertions),
    }


def _step_from_dict(payload: Mapping[str, Any]) -> AnonymizationStep:
    unknown = sorted(set(payload) - _STEP_KEYS)
    if unknown:
        raise ConfigurationError(
            f"unknown step field(s) {unknown}; known: {sorted(_STEP_KEYS)}")
    return AnonymizationStep(
        index=int(payload["index"]),
        operation=str(payload["operation"]),
        edges=_edges_in(payload["edges"]),
        max_opacity_after=float(payload["max_opacity_after"]),
        removals=_edges_in(payload.get("removals", ())),
        insertions=_edges_in(payload.get("insertions", ())),
    )


def checkpoint_to_dict(checkpoint: AnonymizationCheckpoint) -> Dict[str, Any]:
    """Plain-data (JSON-safe) form of a checkpoint.

    The graph snapshot flattens to ``num_vertices`` + sorted edge list and
    the RNG state (a nested tuple from ``random.Random.getstate()``) to
    nested lists; :func:`checkpoint_from_dict` restores both exactly.
    """
    return {
        "version": CHECKPOINT_VERSION,
        "theta": checkpoint.theta,
        "steps": [_step_to_dict(step) for step in checkpoint.steps],
        "removed_edges": _edges_out(checkpoint.removed_edges),
        "inserted_edges": _edges_out(checkpoint.inserted_edges),
        "evaluations": checkpoint.evaluations,
        "max_opacity": checkpoint.max_opacity,
        "runtime_seconds": checkpoint.runtime_seconds,
        "success": checkpoint.success,
        "stop_reason": checkpoint.stop_reason,
        "num_vertices": checkpoint.graph.num_vertices,
        "edges": _edges_out(checkpoint.graph.edges()),
        "rng_state": (None if checkpoint.rng_state is None
                      else [checkpoint.rng_state[0],
                            list(checkpoint.rng_state[1]),
                            checkpoint.rng_state[2]]),
    }


def checkpoint_from_dict(payload: Mapping[str, Any]) -> AnonymizationCheckpoint:
    """Inverse of :func:`checkpoint_to_dict`; unknown keys/versions raise."""
    unknown = sorted(set(payload) - _CHECKPOINT_KEYS)
    if unknown:
        raise ConfigurationError(
            f"unknown checkpoint field(s) {unknown}; "
            f"known: {sorted(_CHECKPOINT_KEYS)}")
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise ConfigurationError(
            f"unsupported checkpoint version {version!r} "
            f"(this build reads version {CHECKPOINT_VERSION})")
    rng_state = payload.get("rng_state")
    if rng_state is not None:
        # random.Random.setstate wants the exact tuple shape getstate
        # produced: (version, tuple-of-ints, gauss_next).
        rng_state = (rng_state[0], tuple(rng_state[1]), rng_state[2])
    graph = Graph(int(payload["num_vertices"]), edges=_edges_in(payload["edges"]))
    return AnonymizationCheckpoint(
        theta=float(payload["theta"]),
        steps=tuple(_step_from_dict(step) for step in payload["steps"]),
        removed_edges=_edges_in(payload["removed_edges"]),
        inserted_edges=_edges_in(payload["inserted_edges"]),
        evaluations=int(payload["evaluations"]),
        max_opacity=float(payload["max_opacity"]),
        runtime_seconds=float(payload["runtime_seconds"]),
        success=bool(payload["success"]),
        stop_reason=payload["stop_reason"],
        graph=graph,
        rng_state=rng_state,
    )


def checkpoint_to_json(checkpoint: AnonymizationCheckpoint,
                       **dumps_kwargs: Any) -> str:
    """JSON form of :func:`checkpoint_to_dict`."""
    return json.dumps(checkpoint_to_dict(checkpoint), **dumps_kwargs)


def checkpoint_from_json(text: str) -> AnonymizationCheckpoint:
    """Inverse of :func:`checkpoint_to_json`."""
    return checkpoint_from_dict(json.loads(text))


def materialize_response(request: AnonymizationRequest,
                         checkpoint: AnonymizationCheckpoint, *,
                         original_graph: Optional[Graph] = None,
                         baseline=None,
                         data_dir: Optional[str] = None) -> AnonymizationResponse:
    """Turn a stored checkpoint into the response its request would return.

    The checkpoint must come from a schedule pass over ``request``'s
    configuration with ``checkpoint.theta == request.theta``; the result —
    including the utility metrics computed when ``request.include_utility``
    is set — is then identical to what :func:`~repro.api.theta_sweep.execute_sweep_group`
    builds for that grid point, so resumed jobs can serve already-crossed
    θs straight from the store.  ``original_graph`` (the pristine input
    sample) is resolved from the request when not supplied; ``baseline``
    short-circuits the utility baseline like the grid engine's shared one.
    """
    if abs(checkpoint.theta - request.theta) > 1e-12:
        raise ConfigurationError(
            f"checkpoint theta={checkpoint.theta} does not match "
            f"request theta={request.theta}")
    if original_graph is None:
        original_graph = request.resolve_graph(data_dir=data_dir)
    result = AnonymizationResult(
        original_graph=original_graph,
        anonymized_graph=checkpoint.graph,
        config=AnonymizerConfig(theta=checkpoint.theta,
                                length_threshold=request.length_threshold),
        steps=list(checkpoint.steps),
        removed_edges=set(checkpoint.removed_edges),
        inserted_edges=set(checkpoint.inserted_edges),
        final_opacity=checkpoint.max_opacity,
        success=checkpoint.success,
        runtime_seconds=checkpoint.runtime_seconds,
        evaluations=checkpoint.evaluations,
        stop_reason=checkpoint.stop_reason,
        observer=NULL_OBSERVER,
    )
    metrics = None
    if request.include_utility:
        from repro.metrics import graph_baseline, utility_report

        if baseline is None:
            baseline = graph_baseline(original_graph)
        report = utility_report(original_graph, checkpoint.graph,
                                include_spectral=False, baseline=baseline)
        metrics = {key: value for key, value in report.as_dict().items()
                   if key not in ("eigenvalue_shift", "connectivity_shift")}
    return AnonymizationResponse.from_result(request, result, metrics=metrics)
