"""Zero-copy shared-memory data plane for parallel θ-groups.

A grid sample group is dominated by two artifacts: the loaded sample graph
and the dense ``n × n`` L_max bounded-distance matrix.  Before this module
the grid engine kept its single-load / single-compute guarantee by
*serializing* every θ-sweep group of a sample group onto one worker — a
single-sample grid sweeping algorithm × L × look-ahead × θ ran on one
core.  The arena breaks that trade-off: the **parent** resolves the graph
and runs the distance engine once, publishes the edge array and the L_max
matrix (one per engine) into :mod:`multiprocessing.shared_memory`
segments, and fans the θ-groups across the pool carrying only an
:class:`ArenaDescriptor` — segment names, dtypes, shapes, and per-engine
L_max bounds.  Workers attach read-only views, rebuild the
:class:`~repro.graph.graph.Graph` from the shared edge array with zero
disk I/O, and derive their own ``length_threshold`` matrix by thresholding
the shared L_max view — the same monotone-restriction argument the serial
path uses (DESIGN.md §10), with the one unavoidable copy deferred to the
moment a :class:`~repro.graph.distance_delta.DistanceSession` takes
ownership of its (mutable) matrix.

Ownership rules (DESIGN.md §12):

* the parent that calls :meth:`SharedSampleArena.publish` owns the
  segments and is the only process that ever calls
  :meth:`~SharedSampleArena.unlink` — inside a ``finally`` block, so a
  worker dying mid-group (even SIGKILL) cannot leak ``/dev/shm`` entries;
* workers attach via :func:`attach_arena` and hold *read-only* NumPy views
  (``writeable=False``); attachments are dropped by reference counting —
  closing an attached segment while views exist would raise
  ``BufferError``, so :class:`AttachedArena` simply releases its
  references and lets the last view close the mapping;
* an unlinked segment stays mapped in workers that already attached it
  (POSIX semantics), so the parent may unlink the moment every future of
  the sample group has completed.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.distance_cache import LMaxDistanceCache
from repro.graph.distance_store import CSRAdjacency, TiledStore
from repro.graph.graph import Graph

__all__ = [
    "ArenaDescriptor",
    "AttachedArena",
    "SHM_NAME_PREFIX",
    "SharedSampleArena",
    "TiledMatrixSpec",
    "attach_arena",
    "publish_session_store",
]

#: Prefix of every segment name this module creates; the crash-safety
#: tests scan ``/dev/shm`` for it to prove the parent leaked nothing.
SHM_NAME_PREFIX = "repro-arena"

_EDGE_DTYPE = np.int64
_CSR_DTYPE = np.int64


@dataclass(frozen=True)
class TiledMatrixSpec:
    """One engine's tiled-tier publication request (parent side).

    In the tiled scale tier there is no dense L_max matrix to publish —
    the whole point is never materializing it.  The parent instead
    publishes the sample's CSR adjacency (shared by every engine) plus
    this spec: the geometry workers need to rebuild an equivalent
    :class:`~repro.graph.distance_store.TiledStore`, and optionally the
    parent's *hot tiles* — already-computed L_max tiles seeded into the
    worker's cache so they are not recomputed per worker.  A typical grid
    parent computes no tiles at all (workers do the lazy work), so
    ``hot_tiles`` defaults to empty.
    """

    l_max: int
    budget_bytes: int
    tile_rows: Optional[int] = None
    hot_tiles: Mapping[int, np.ndarray] = field(default_factory=dict)


@dataclass(frozen=True)
class ArenaDescriptor:
    """Everything a worker needs to attach a published sample group.

    A descriptor is a few hundred bytes of plain data — it crosses the
    process boundary instead of the pickled graph and matrices.  ``token``
    identifies the arena (workers cache attachments by it), ``matrices``
    maps each dense-tier engine to its ``(segment_name, l_max, dtype)``
    entry, ``tiled`` carries the tiled-tier engines — store geometry plus
    ``(tile_id, segment_name)`` hot-tile names over the shared CSR arrays
    named by ``csr_segments`` — and the remaining fields carry the array
    geometry needed to rebuild the NumPy views.
    """

    token: str
    num_vertices: int
    num_edges: int
    edges_segment: Optional[str]
    #: Dense tier: (engine, segment, l_max, dtype string).
    matrices: Tuple[Tuple[str, str, int, str], ...] = ()
    #: Tiled tier: (indptr segment, indices segment), shared per sample.
    csr_segments: Optional[Tuple[str, str]] = None
    #: Tiled tier: (engine, l_max, budget_bytes, tile_rows,
    #: ((tile_id, segment), ...)).
    tiled: Tuple[Tuple[str, int, int, int,
                       Tuple[Tuple[int, str], ...]], ...] = ()

    def l_max_for(self, engine: str) -> Optional[int]:
        """The published L_max bound of ``engine``, or ``None``."""
        for name, _segment, l_max, _dtype in self.matrices:
            if name == engine:
                return l_max
        for name, l_max, _budget, _tile_rows, _tiles in self.tiled:
            if name == engine:
                return l_max
        return None


def _create_segment(name: str, data: np.ndarray) -> shared_memory.SharedMemory:
    """Create a segment holding a copy of ``data`` (C-contiguous)."""
    segment = shared_memory.SharedMemory(name=name, create=True,
                                         size=max(1, data.nbytes))
    view = np.ndarray(data.shape, dtype=data.dtype, buffer=segment.buf)
    view[...] = data
    return segment


def _attach_view(name: str, shape: Tuple[int, ...],
                 dtype) -> Tuple[shared_memory.SharedMemory, np.ndarray]:
    """Attach ``name`` and expose it as a read-only NumPy view."""
    segment = shared_memory.SharedMemory(name=name)
    view = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
    view.flags.writeable = False
    return segment, view


class SharedSampleArena:
    """Parent-owned shared-memory home of one sample group's artifacts.

    Build one with :meth:`publish`; hand :attr:`descriptor` to workers;
    call :meth:`unlink` (idempotent) when every θ-group of the sample
    group has completed — and unconditionally from a ``finally`` block, so
    crashed workers cannot leak segments.
    """

    def __init__(self, token: str,
                 segments: Dict[str, shared_memory.SharedMemory],
                 descriptor: ArenaDescriptor) -> None:
        self._token = token
        self._segments = segments
        self.descriptor = descriptor
        self._unlinked = False

    @classmethod
    def publish(cls, graph: Graph,
                matrices: Optional[Mapping[str, Tuple[np.ndarray, int]]] = None,
                tiled: Optional[Mapping[str, TiledMatrixSpec]] = None
                ) -> "SharedSampleArena":
        """Publish ``graph`` (and per-engine distance payloads) to shm.

        ``matrices`` maps a dense-tier engine name to
        ``(l_max_matrix, l_max)``; each matrix must be the full ``n × n``
        bounded matrix computed at that engine's group-wide L_max, in
        whatever dtype the engine chose (recorded in the descriptor).
        ``tiled`` maps a tiled-tier engine name to a
        :class:`TiledMatrixSpec`; any tiled entry additionally publishes
        the sample's CSR adjacency arrays (once, shared by every tiled
        engine) instead of a dense matrix.  All data is *copied* into the
        segments — the caller may release its own references immediately
        afterwards.
        """
        overlap = sorted(set(matrices or ()) & set(tiled or ()))
        if overlap:
            raise ConfigurationError(
                f"engines {overlap} published as both dense and tiled")
        token = f"{SHM_NAME_PREFIX}-{uuid.uuid4().hex[:12]}"
        segments: Dict[str, shared_memory.SharedMemory] = {}
        try:
            edges = np.asarray(graph.edge_list(), dtype=_EDGE_DTYPE)
            edges = edges.reshape(graph.num_edges, 2)
            edges_segment = None
            if graph.num_edges:
                edges_segment = f"{token}-edges"
                segments[edges_segment] = _create_segment(edges_segment, edges)
            n = graph.num_vertices
            entries = []
            for index, (engine, (matrix, l_max)) in enumerate(
                    sorted((matrices or {}).items())):
                if matrix.shape != (n, n):
                    raise ConfigurationError(
                        f"matrix for engine {engine!r} has shape "
                        f"{matrix.shape}, expected {(n, n)}")
                segment_name = f"{token}-m{index}"
                data = np.ascontiguousarray(matrix)
                segments[segment_name] = _create_segment(segment_name, data)
                entries.append((engine, segment_name, int(l_max),
                                data.dtype.str))
            csr_segments = None
            tiled_entries = []
            if tiled:
                csr = CSRAdjacency.from_graph(graph)
                indptr_name = f"{token}-csr-indptr"
                indices_name = f"{token}-csr-indices"
                segments[indptr_name] = _create_segment(
                    indptr_name, np.ascontiguousarray(csr.indptr,
                                                      dtype=_CSR_DTYPE))
                segments[indices_name] = _create_segment(
                    indices_name, np.ascontiguousarray(csr.indices,
                                                       dtype=_CSR_DTYPE))
                csr_segments = (indptr_name, indices_name)
                for index, (engine, spec) in enumerate(sorted(tiled.items())):
                    if spec.hot_tiles and spec.tile_rows is None:
                        raise ConfigurationError(
                            f"tiled engine {engine!r} publishes hot tiles "
                            f"without fixing tile_rows")
                    tile_entries = []
                    for tile_id, tile in sorted(spec.hot_tiles.items()):
                        segment_name = f"{token}-t{index}-{int(tile_id)}"
                        segments[segment_name] = _create_segment(
                            segment_name, np.ascontiguousarray(tile))
                        tile_entries.append((int(tile_id), segment_name))
                    tiled_entries.append(
                        (engine, int(spec.l_max), int(spec.budget_bytes),
                         0 if spec.tile_rows is None else int(spec.tile_rows),
                         tuple(tile_entries)))
        except BaseException:
            for segment in segments.values():
                _release_segment(segment, unlink=True)
            raise
        descriptor = ArenaDescriptor(token=token,
                                     num_vertices=graph.num_vertices,
                                     num_edges=graph.num_edges,
                                     edges_segment=edges_segment,
                                     matrices=tuple(entries),
                                     csr_segments=csr_segments,
                                     tiled=tuple(tiled_entries))
        return cls(token, segments, descriptor)

    @property
    def token(self) -> str:
        """Unique identity of this arena (prefix of its segment names)."""
        return self._token

    def unlink(self) -> None:
        """Release and remove every segment (idempotent, never raises).

        Workers that already attached keep their mappings until their own
        references die; ``/dev/shm`` entries disappear immediately.
        """
        if self._unlinked:
            return
        self._unlinked = True
        for segment in self._segments.values():
            _release_segment(segment, unlink=True)
        self._segments = {}


def publish_session_store(graph: Graph, engine: str,
                          store) -> SharedSampleArena:
    """Publish a live session's current graph + distance store as an arena.

    The intra-group scan pool's publication path: unlike the grid plane —
    which publishes a *pristine* sample before any edit — this captures a
    session mid-run.  Correctness rests on distance values being canonical:
    a dense store's current matrix is copied as-is, and a tiled store is
    published as the *current* graph's CSR adjacency plus store geometry,
    so tiles a worker computes lazily equal the parent's incrementally
    maintained ones bit for bit.  The tiled path additionally ships the
    parent's in-RAM cached tiles as hot tiles, sparing each worker their
    recomputation.
    """
    from repro.graph.distance_store import DenseStore

    length = store.length_bound
    if isinstance(store, TiledStore):
        hot: Dict[int, np.ndarray] = {}
        for tile_id in store.cached_tiles():
            start = tile_id * store.tile_rows
            stop = min(store.num_vertices, start + store.tile_rows)
            hot[tile_id] = store.rows(np.arange(start, stop, dtype=np.int64))
        spec = TiledMatrixSpec(l_max=length,
                               budget_bytes=store.budget_bytes,
                               tile_rows=store.tile_rows,
                               hot_tiles=hot)
        return SharedSampleArena.publish(graph, tiled={engine: spec})
    if not isinstance(store, DenseStore):
        raise ConfigurationError(
            f"cannot publish a {type(store).__name__} store")
    return SharedSampleArena.publish(graph,
                                     matrices={engine: (store.array, length)})


def _release_segment(segment: shared_memory.SharedMemory,
                     unlink: bool) -> None:
    """Close (and optionally unlink) one segment, swallowing races."""
    if unlink:
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover — double unlink race
            pass
    try:
        segment.close()
    except BufferError:  # pragma: no cover — a live view pins the mapping
        pass


@dataclass
class AttachedArena:
    """A worker's read-only window onto a published sample group.

    ``graph`` is rebuilt from the shared edge array (O(E) set
    construction, no disk I/O, no n² copy); ``caches`` wraps each shared
    L_max matrix in a :class:`~repro.graph.distance_cache.LMaxDistanceCache`
    whose ``compute_count`` stays 0 — thresholded *copies* are only made
    when a session takes ownership.  The segment handles are kept solely
    to pin the mappings; dropping the ``AttachedArena`` releases them via
    reference counting.
    """

    token: str
    graph: Graph
    caches: Dict[str, LMaxDistanceCache]
    segments: Tuple[shared_memory.SharedMemory, ...] = field(repr=False,
                                                             default=())


def attach_arena(descriptor: ArenaDescriptor) -> AttachedArena:
    """Attach a published arena and rebuild its graph and distance caches."""
    segments = []
    edges: Tuple[Tuple[int, int], ...] = ()
    if descriptor.edges_segment is not None:
        segment, view = _attach_view(descriptor.edges_segment,
                                     (descriptor.num_edges, 2), _EDGE_DTYPE)
        segments.append(segment)
        edges = [(int(u), int(v)) for u, v in view]
    graph = Graph(descriptor.num_vertices, edges=edges)
    caches: Dict[str, LMaxDistanceCache] = {}
    n = descriptor.num_vertices
    for engine, segment_name, l_max, dtype_str in descriptor.matrices:
        segment, view = _attach_view(segment_name, (n, n),
                                     np.dtype(dtype_str))
        segments.append(segment)
        caches[engine] = LMaxDistanceCache.from_matrix(graph, view, l_max,
                                                       engine=engine)
    if descriptor.tiled:
        indptr_name, indices_name = descriptor.csr_segments
        segment, indptr = _attach_view(indptr_name, (n + 1,), _CSR_DTYPE)
        segments.append(segment)
        segment, indices = _attach_view(
            indices_name, (int(indptr[-1]),), _CSR_DTYPE)
        segments.append(segment)
        csr = CSRAdjacency(indptr, indices)
        for engine, l_max, budget_bytes, tile_rows, tiles in descriptor.tiled:
            base = TiledStore(None, l_max, csr=csr,
                              budget_bytes=budget_bytes,
                              tile_rows=tile_rows or None)
            for tile_id, tile_segment in tiles:
                start = tile_id * base.tile_rows
                stop = min(n, start + base.tile_rows)
                segment, tile = _attach_view(tile_segment, (stop - start, n),
                                             base.dtype)
                segments.append(segment)
                base.preload_tile(tile_id, tile)
            caches[engine] = LMaxDistanceCache.from_tiled_base(graph, base,
                                                              engine=engine)
    return AttachedArena(token=descriptor.token, graph=graph, caches=caches,
                         segments=tuple(segments))
