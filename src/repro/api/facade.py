"""High-level entry points of the service layer.

Three facade functions cover the workloads every front end (CLI, experiment
runner, batch workers, library users) needs:

* :func:`anonymize` — execute one :class:`AnonymizationRequest` end to end
  and return an :class:`AnonymizationResponse`;
* :func:`compute_opacity` — measure the L-opacity of a request's input
  graph without modifying it;
* :func:`sweep` — expand a base request over parameter axes (algorithms,
  thetas, ...) and execute the grid, optionally across worker processes.

All of them resolve algorithms exclusively through the registry, so any
anonymizer registered with :func:`repro.api.register_anonymizer` — built-in
or third-party — is reachable by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.api.progress import ProgressObserver, TimeoutObserver, combine_observers
from repro.api.registry import AnonymizerRegistry, default_registry
from repro.api.requests import AnonymizationRequest, AnonymizationResponse


def anonymize(request: AnonymizationRequest, *,
              registry: Optional[AnonymizerRegistry] = None,
              observer: Optional[ProgressObserver] = None,
              data_dir: Optional[str] = None) -> AnonymizationResponse:
    """Execute one anonymization request and return its response.

    A ``timeout_seconds`` on the request is honoured with a
    :class:`TimeoutObserver` (combined with any explicit ``observer``);
    ``include_utility=True`` attaches the utility metrics of the paper's
    figures to ``response.metrics``.  Exceptions propagate — use
    :func:`repro.api.batch.execute_request` for the error-isolating variant.
    """
    from repro.metrics import utility_report

    registry = registry if registry is not None else default_registry()
    graph = request.resolve_graph(data_dir=data_dir)
    algorithm = registry.create(request.algorithm, **request.algorithm_params())
    if request.timeout_seconds is not None:
        observer = combine_observers(observer, TimeoutObserver(request.timeout_seconds))
    if observer is not None:
        result = algorithm.anonymize(graph, observer=observer)
    else:
        result = algorithm.anonymize(graph)
    metrics: Optional[Mapping[str, float]] = None
    if request.include_utility:
        report = utility_report(result.original_graph, result.anonymized_graph,
                                include_spectral=False)
        metrics = {key: value for key, value in report.as_dict().items()
                   if key not in ("eigenvalue_shift", "connectivity_shift")}
    return AnonymizationResponse.from_result(request, result, metrics=metrics)


@dataclass(frozen=True)
class OpacityReport:
    """L-opacity measurement of one graph (no anonymization performed)."""

    length_threshold: int
    num_vertices: int
    num_edges: int
    max_opacity: float
    types_at_max: int
    worst_types: Tuple[Tuple[str, int, int, float], ...]

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data (JSON-safe) form of the report."""
        return {
            "length_threshold": self.length_threshold,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "max_opacity": self.max_opacity,
            "types_at_max": self.types_at_max,
            "worst_types": [list(row) for row in self.worst_types],
        }


def compute_opacity(request: AnonymizationRequest, *,
                    top: int = 10,
                    data_dir: Optional[str] = None) -> OpacityReport:
    """Measure the L-opacity of the request's input graph.

    Only the graph source, ``length_threshold``, and ``engine`` fields of
    the request are used; the algorithm name is ignored.  ``worst_types``
    lists the ``top`` most exposed pair types as
    ``(type_key, within_threshold, total_pairs, opacity)`` rows.
    """
    from repro.core.opacity import OpacityComputer
    from repro.core.pair_types import DegreePairTyping

    graph = request.resolve_graph(data_dir=data_dir)
    computer = OpacityComputer(DegreePairTyping(graph), request.length_threshold,
                               engine=request.engine)
    outcome = computer.evaluate(graph)
    worst = sorted(outcome.per_type.values(), key=lambda entry: -entry.opacity)[:top]
    return OpacityReport(
        length_threshold=request.length_threshold,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        max_opacity=outcome.max_opacity,
        types_at_max=outcome.types_at_max,
        worst_types=tuple((str(entry.type_key), entry.within_threshold,
                           entry.total_pairs, entry.opacity) for entry in worst),
    )


def expand_sweep(base: AnonymizationRequest, *,
                 algorithms: Optional[Sequence[str]] = None,
                 thetas: Optional[Sequence[float]] = None,
                 length_thresholds: Optional[Sequence[int]] = None,
                 lookaheads: Optional[Sequence[int]] = None,
                 seeds: Optional[Sequence[int]] = None) -> List[AnonymizationRequest]:
    """Cartesian-product expansion of ``base`` over the given axes.

    Axes left ``None`` keep the base request's value.  Nesting order, from
    outermost to innermost: algorithms, length_thresholds, lookaheads,
    seeds, thetas — i.e. thetas vary fastest, matching how the paper's
    figures sweep θ for an otherwise fixed configuration.  (The multi-axis
    superset, with dataset and sample-size axes, is
    :func:`repro.api.sweeps.expand_grid`.)
    """
    axes = {
        "algorithm": tuple(algorithms) if algorithms is not None else (base.algorithm,),
        "length_threshold": (tuple(length_thresholds) if length_thresholds is not None
                             else (base.length_threshold,)),
        "lookahead": tuple(lookaheads) if lookaheads is not None else (base.lookahead,),
        "seed": tuple(seeds) if seeds is not None else (base.seed,),
        "theta": tuple(thetas) if thetas is not None else (base.theta,),
    }
    names = tuple(axes)
    return [base.with_overrides(**dict(zip(names, values)))
            for values in product(*axes.values())]


def sweep(base: AnonymizationRequest, *,
          datasets: Optional[Sequence[str]] = None,
          sample_sizes: Optional[Sequence[int]] = None,
          algorithms: Optional[Sequence[str]] = None,
          thetas: Optional[Sequence[float]] = None,
          length_thresholds: Optional[Sequence[int]] = None,
          lookaheads: Optional[Sequence[int]] = None,
          seeds: Optional[Sequence[int]] = None,
          sweep_mode: str = "checkpointed",
          max_workers: Optional[int] = 0,
          data_dir: Optional[str] = None,
          shared_memory: Optional[bool] = None) -> List[AnonymizationResponse]:
    """Expand ``base`` over the given axes and execute the grid.

    The grid is partitioned into sample groups (requests sharing a
    dataset/size/seed, which share one loaded sample and one L_max
    bounded-distance computation) and, within them, into θ-sweep groups
    (requests identical in everything but θ); with
    ``sweep_mode="checkpointed"`` (the default) each θ-sweep group runs as
    *one* anonymization pass with per-θ checkpoints — a k-point θ grid
    costs roughly one run instead of k — while ``"independent"`` preserves
    the one-run-per-request path.  All modes return identical responses.
    ``max_workers=0`` (the default) runs in-process; any other value fans
    the *θ-sweep groups* across a :class:`repro.api.batch.BatchRunner`
    process pool over the zero-copy shared-memory data plane (``None`` =
    one worker per CPU; ``shared_memory=False`` falls back to fanning
    whole sample groups).  Responses come back in expansion order (θ
    fastest), with failures isolated into error responses at group
    granularity.
    """
    from repro.api.sweeps import GridRequest, run_grid

    request = GridRequest.from_axes(
        base, datasets=datasets, sample_sizes=sample_sizes,
        algorithms=algorithms, thetas=thetas,
        length_thresholds=length_thresholds, lookaheads=lookaheads,
        seeds=seeds, sweep_mode=sweep_mode)
    return list(run_grid(request, max_workers=max_workers,
                         data_dir=data_dir,
                         shared_memory=shared_memory).responses)


def run_requests(requests: Iterable[AnonymizationRequest], *,
                 max_workers: Optional[int] = 0,
                 data_dir: Optional[str] = None) -> List[AnonymizationResponse]:
    """Execute an explicit list of requests (same semantics as :func:`sweep`)."""
    from repro.api.batch import BatchRunner

    return BatchRunner(max_workers=max_workers, data_dir=data_dir).run(list(requests))
