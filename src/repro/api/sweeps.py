"""Multi-axis experiment grid engine at the service layer.

The paper's figures vary more than θ: dataset, sample size, seed, path
bound L, look-ahead, and algorithm all appear as experiment axes.  The
θ-sweep engine (:mod:`repro.api.theta_sweep`) makes the θ axis nearly free
— one checkpointed anonymization per group — but every other axis still
paid full price per group: the sample was reloaded, the utility baseline
recomputed, and every distinct L ran its own full bounded-distance
computation.

This module generalizes the sweep into a **grid**:

* :func:`expand_grid` / :meth:`GridRequest.from_axes` — cartesian-product
  expansion of a base request over any subset of
  dataset × size × algorithm × L × look-ahead × seed × θ axes;
* :func:`sample_groups` — partition a grid by *graph source* (dataset,
  size, seed — or explicit edges), the unit across which loaded samples,
  baselines, and distance matrices are shared;
* :func:`execute_sample_group` — run one sample group: load the sample
  once (through an :class:`~repro.api.cache.ExecutionCache`), run one full
  bounded-distance computation at the group's maximum L and serve every
  smaller L by thresholding
  (:class:`~repro.graph.distance_cache.LMaxDistanceCache`), then execute
  each θ-sweep group through the checkpointed schedule with failure
  isolated per θ-group;
* :func:`run_grid` — fan the sample groups of a whole :class:`GridRequest`
  across a :class:`~repro.api.batch.BatchRunner` process pool (each worker
  holds a process-level cache, so it loads each sample once across all the
  groups it executes) and return a :class:`GridResponse` in request order.

Per-configuration responses are bit-identical to independent
:func:`~repro.api.facade.anonymize` runs (asserted by
``tests/api/test_grid.py``); only the work performed differs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from itertools import product
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.cache import ExecutionCache, GridStats, sample_key
from repro.api.progress import ProgressObserver, notify_group
from repro.api.registry import AnonymizerRegistry
from repro.api.requests import AnonymizationRequest, AnonymizationResponse
from repro.api.theta_sweep import execute_sweep_group, group_requests
from repro.core.anonymizer import validate_sweep_mode
from repro.errors import ConfigurationError, GridAbortedError

__all__ = [
    "ERROR_POLICIES",
    "GRID_AXES",
    "GridRequest",
    "GridResponse",
    "ThetaGroupPlan",
    "expand_grid",
    "execute_sample_group",
    "plan_sample_group",
    "run_grid",
    "sample_groups",
    "validate_error_policy",
]

#: Grid-level failure policies: ``"isolate"`` (the historical behaviour —
#: a failing request becomes an error response, its neighbours keep
#: running) or ``"fail_fast"`` (the first failure aborts the whole grid
#: with :class:`~repro.errors.GridAbortedError`).
ERROR_POLICIES: Tuple[str, ...] = ("fail_fast", "isolate")


def validate_error_policy(on_error: str) -> None:
    """Raise :class:`ConfigurationError` unless ``on_error`` is known."""
    if on_error not in ERROR_POLICIES:
        raise ConfigurationError(
            f"unknown error policy {on_error!r}; choose from {ERROR_POLICIES}")

#: Grid axes in canonical nesting order (outermost first, θ varies
#: fastest).  The relative order of the non-sample axes matches
#: :func:`repro.api.facade.expand_sweep`, so grids without dataset/size
#: axes expand in exactly the order the θ-sweep engine always used.
GRID_AXES: Tuple[str, ...] = ("dataset", "sample_size", "algorithm",
                              "length_threshold", "lookahead", "seed", "theta")


def expand_grid(base: AnonymizationRequest,
                axes: Mapping[str, Sequence[Any]]) -> List[AnonymizationRequest]:
    """Cartesian-product expansion of ``base`` over named grid axes.

    ``axes`` maps axis names (a subset of :data:`GRID_AXES`) to non-empty
    value sequences; axes left out keep the base request's value.  Nesting
    follows the canonical axis order regardless of mapping order, with θ
    varying fastest.  A ``dataset`` or ``sample_size`` axis requires a
    dataset-sourced base request (explicit edge lists have no dataset to
    vary).
    """
    unknown = sorted(set(axes) - set(GRID_AXES))
    if unknown:
        raise ConfigurationError(
            f"unknown grid axis(es) {unknown}; known: {list(GRID_AXES)}")
    for name, values in axes.items():
        if not tuple(values):
            raise ConfigurationError(f"grid axis {name!r} must not be empty")
    if base.edges is not None and ({"dataset", "sample_size"} & set(axes)):
        raise ConfigurationError(
            "dataset/sample_size axes require a dataset-sourced base request")
    ordered = {name: tuple(axes[name]) if name in axes
               else (getattr(base, name),) for name in GRID_AXES}
    names = tuple(ordered)
    return [base.with_overrides(**dict(zip(names, values)))
            for values in product(*ordered.values())]


def sample_groups(requests: Sequence[AnonymizationRequest]) -> List[List[int]]:
    """Partition request indices into groups sharing a graph source.

    Requests agreeing on dataset/size/seed (or on an explicit edge list)
    resolve to bit-identical input graphs, so one loaded sample — and one
    L_max distance computation per engine — can serve all of them.  Group
    order follows first appearance; indices keep their input order.
    """
    groups: Dict[Any, List[int]] = {}
    for index, request in enumerate(requests):
        groups.setdefault(sample_key(request), []).append(index)
    return list(groups.values())


@dataclass(frozen=True)
class GridRequest:
    """A multi-axis grid of anonymization jobs executed with shared caches.

    ``requests`` is an arbitrary configuration grid (usually built with
    :meth:`from_axes`); :func:`run_grid` partitions it into sample groups,
    and each sample group into θ-sweep groups, so the θ axis costs one
    checkpointed pass per group and the remaining axes share one loaded
    sample and one L_max distance computation.  Every field survives a
    JSON round-trip, mirroring :class:`~repro.api.theta_sweep.SweepRequest`.
    """

    requests: Tuple[AnonymizationRequest, ...]
    sweep_mode: str = "checkpointed"
    on_error: str = "isolate"

    def __post_init__(self) -> None:
        object.__setattr__(self, "requests", tuple(self.requests))
        if not self.requests:
            raise ConfigurationError("a grid requires at least one request")
        validate_sweep_mode(self.sweep_mode)
        validate_error_policy(self.on_error)

    @classmethod
    def from_axes(cls, base: AnonymizationRequest, *,
                  datasets: Optional[Sequence[str]] = None,
                  sample_sizes: Optional[Sequence[int]] = None,
                  algorithms: Optional[Sequence[str]] = None,
                  length_thresholds: Optional[Sequence[int]] = None,
                  lookaheads: Optional[Sequence[int]] = None,
                  seeds: Optional[Sequence[int]] = None,
                  thetas: Optional[Sequence[float]] = None,
                  sweep_mode: str = "checkpointed",
                  on_error: str = "isolate") -> "GridRequest":
        """Expand ``base`` over the given axes (see :func:`expand_grid`)."""
        axes: Dict[str, Sequence[Any]] = {}
        for name, values in (("dataset", datasets),
                             ("sample_size", sample_sizes),
                             ("algorithm", algorithms),
                             ("length_threshold", length_thresholds),
                             ("lookahead", lookaheads),
                             ("seed", seeds),
                             ("theta", thetas)):
            if values is not None:
                axes[name] = values
        return cls(requests=tuple(expand_grid(base, axes)),
                   sweep_mode=sweep_mode, on_error=on_error)

    def sample_groups(self) -> List[List[int]]:
        """Indices of :attr:`requests` grouped by shared graph source."""
        return sample_groups(self.requests)

    def groups(self) -> List[List[int]]:
        """Indices of :attr:`requests` partitioned into θ-sweep groups."""
        return group_requests(self.requests)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data (JSON-safe) form."""
        return {
            "requests": [request.to_dict() for request in self.requests],
            "sweep_mode": self.sweep_mode,
            "on_error": self.on_error,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "GridRequest":
        """Inverse of :meth:`to_dict`; unknown keys raise (typo protection)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown grid field(s) {unknown}; known: {sorted(known)}")
        data = dict(payload)
        data["requests"] = tuple(AnonymizationRequest.from_dict(entry)
                                 for entry in data.get("requests", ()))
        return cls(**data)

    def to_json(self, **dumps_kwargs: Any) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "GridRequest":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class GridResponse:
    """Outcome of a :class:`GridRequest`, responses in request order.

    ``num_sample_loads`` / ``num_distance_computes`` report the total work
    the grid performed across *every* participating process (parent and
    pool workers) — the observable the shared caches and the shared-memory
    data plane are judged by.  They are ``None`` when the execution path
    could not track them (custom registries, independent mode).
    """

    responses: Tuple[AnonymizationResponse, ...]
    sweep_mode: str = "checkpointed"
    num_groups: int = 0
    num_sample_groups: int = 0
    num_sample_loads: Optional[int] = None
    num_distance_computes: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "responses", tuple(self.responses))

    @property
    def ok(self) -> bool:
        """Whether every response completed without raising."""
        return all(response.ok for response in self.responses)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data (JSON-safe) form."""
        return {
            "responses": [response.to_dict() for response in self.responses],
            "sweep_mode": self.sweep_mode,
            "num_groups": self.num_groups,
            "num_sample_groups": self.num_sample_groups,
            "num_sample_loads": self.num_sample_loads,
            "num_distance_computes": self.num_distance_computes,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "GridResponse":
        """Inverse of :meth:`to_dict`."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown grid response field(s) {unknown}; known: {sorted(known)}")
        data = dict(payload)
        data["responses"] = tuple(AnonymizationResponse.from_dict(entry)
                                  for entry in data.get("responses", ()))
        return cls(**data)

    def to_json(self, **dumps_kwargs: Any) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "GridResponse":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class ThetaGroupPlan:
    """One θ-sweep group's execution plan within a sample group.

    ``indices`` index into the *sample group's* request list.  ``done``
    maps indices already served by a persisted checkpoint to that
    checkpoint (materialized, no anonymization work); ``todo`` lists the
    indices still to run; ``resume_checkpoint``, when set, is the
    checkpoint the todo suffix continues the interrupted pass from.
    """

    indices: Tuple[int, ...]
    done: Mapping[int, Any]
    todo: Tuple[int, ...]
    resume_checkpoint: Optional[Any] = None


def plan_sample_group(requests: Sequence[AnonymizationRequest],
                      resume_from: Optional[Mapping[int, Any]] = None
                      ) -> Tuple[List[ThetaGroupPlan], Dict[str, int]]:
    """Split a sample group into θ-group plans and shared L_max bounds.

    This is the planning half of :func:`execute_sample_group`, shared with
    the shared-memory fan-out in :class:`~repro.api.batch.BatchRunner`:
    both must agree on which grid points resume from checkpoints and on
    the per-engine L_max the single distance computation runs at.

    Returns ``(plans, l_max_by_engine)``: one :class:`ThetaGroupPlan` per
    θ-sweep group of ``requests`` (group order), and the largest
    ``length_threshold`` per engine over the grid points that will
    actually consume a matrix — scratch-mode requests recompute distances
    per evaluation, and resumed/materialized grid points never read the
    original graph's matrix, so neither may inflate the single engine run.
    """
    requests = list(requests)
    resume = dict(resume_from) if resume_from else {}
    plans: List[ThetaGroupPlan] = []
    for indices in group_requests(requests):
        done: Dict[int, Any] = {}
        for index in indices:
            checkpoint = resume.get(index)
            if checkpoint is not None and \
                    abs(checkpoint.theta - requests[index].theta) <= 1e-12:
                done[index] = checkpoint
        todo = [index for index in indices if index not in done]
        resume_checkpoint = None
        if done and todo:
            candidate = min(done.values(), key=lambda ckpt: ckpt.theta)
            # A pass can only be continued from a checkpoint that (a) was
            # still running cleanly (no stop reason), (b) recorded its RNG,
            # and (c) sits strictly above every remaining grid point.
            if (candidate.rng_state is not None
                    and candidate.stop_reason is None
                    and all(requests[index].theta < candidate.theta
                            for index in todo)):
                resume_checkpoint = candidate
        plans.append(ThetaGroupPlan(indices=tuple(indices), done=done,
                                    todo=tuple(todo),
                                    resume_checkpoint=resume_checkpoint))
    l_max_by_engine: Dict[str, int] = {}
    for plan in plans:
        if plan.resume_checkpoint is not None:
            continue
        for index in plan.todo:
            request = requests[index]
            if request.evaluation_mode == "incremental":
                l_max_by_engine[request.engine] = max(
                    l_max_by_engine.get(request.engine, 0),
                    request.length_threshold)
    return plans, l_max_by_engine


def _abort_on_error(responses: Sequence[AnonymizationResponse]) -> None:
    """Raise :class:`GridAbortedError` for the first failed response."""
    for response in responses:
        if response.error is not None:
            request = response.request
            label = request.request_id or (
                f"{request.algorithm} L={request.length_threshold} "
                f"theta={request.theta}")
            raise GridAbortedError(
                f"grid aborted (on_error='fail_fast'): request [{label}] "
                f"failed with {response.error}")


def execute_sample_group(requests: Sequence[AnonymizationRequest], *,
                         sweep_mode: str = "checkpointed",
                         registry: Optional[AnonymizerRegistry] = None,
                         observer: Optional[ProgressObserver] = None,
                         data_dir: Optional[str] = None,
                         cache: Optional[ExecutionCache] = None,
                         resume_from: Optional[Mapping[int, Any]] = None,
                         on_error: str = "isolate"
                         ) -> List[AnonymizationResponse]:
    """Execute one sample group of a grid, responses in request order.

    All requests must share a graph source (one :func:`sample_groups`
    partition).  The sample is loaded once through ``cache`` (a throwaway
    cache is created when none is given — within-group amortization still
    applies), the utility baseline is derived once, and one full
    bounded-distance computation at the group's maximum L serves every
    θ-sweep group's initial matrix by thresholding.  Each θ-sweep group
    then runs through :func:`~repro.api.theta_sweep.execute_sweep_group`
    with its own failure isolation: a failing group (or a failing sample
    load) yields error responses without aborting its neighbours —
    unless ``on_error="fail_fast"``, which turns the first failure into a
    :class:`~repro.errors.GridAbortedError` instead.

    ``resume_from`` maps request indices (into ``requests``) to
    ``AnonymizationCheckpoint`` records persisted by an earlier,
    interrupted run of the same group.  Grid points whose checkpoint is
    present are *materialized* from it (no anonymization work); each
    θ-group's remaining grid points either continue the interrupted pass
    from its lowest-θ checkpoint (when the algorithm supports
    ``resume_from`` and the checkpoint carries an RNG state) or re-run
    cold — both bit-identical to the uninterrupted run.  Before running a
    θ-group the executor announces the indices about to run via the
    observer's optional ``on_group`` hook, so checkpoint-persisting
    observers can attribute the stream.

    ``sweep_mode="independent"`` opts out of all sharing and executes the
    requests one by one, exactly like the θ-sweep engine's opt-out path
    (independent runs emit no checkpoints, so ``resume_from`` is ignored).
    """
    validate_sweep_mode(sweep_mode)
    validate_error_policy(on_error)
    requests = list(requests)
    resume = dict(resume_from) if resume_from else {}
    if not requests:
        return []
    if sweep_mode == "independent":
        from repro.api.batch import execute_request

        responses = []
        for index, request in enumerate(requests):
            notify_group(observer, (index,))
            response = execute_request(request, registry=registry,
                                       observer=observer, data_dir=data_dir)
            if on_error == "fail_fast":
                _abort_on_error([response])
            responses.append(response)
        return responses
    if cache is None:
        cache = ExecutionCache(data_dir=data_dir)
    try:
        graph = cache.graph_for(requests[0])
    except Exception as exc:  # noqa: BLE001 — isolation is the contract
        if on_error == "fail_fast":
            raise GridAbortedError(
                f"grid aborted (on_error='fail_fast'): sample load failed "
                f"with {type(exc).__name__}: {exc}") from exc
        return [AnonymizationResponse.failure(request, exc)
                for request in requests]
    # Split every θ-group into grid points already served by a persisted
    # checkpoint ("done") and points still to run ("todo"), and derive the
    # shared per-engine computation bound (see plan_sample_group).
    plans, l_max_by_engine = plan_sample_group(requests, resume)
    ordered: List[Optional[AnonymizationResponse]] = [None] * len(requests)
    for plan in plans:
        indices, done, todo = plan.indices, plan.done, plan.todo
        resume_checkpoint = plan.resume_checkpoint
        first = requests[indices[0]]
        baseline = None
        if any(requests[index].include_utility for index in indices):
            try:
                baseline = cache.baseline_for(first)
            except Exception as exc:  # noqa: BLE001 — same isolation contract
                if on_error == "fail_fast":
                    raise GridAbortedError(
                        f"grid aborted (on_error='fail_fast'): baseline "
                        f"failed with {type(exc).__name__}: {exc}") from exc
                for index in indices:
                    ordered[index] = AnonymizationResponse.failure(
                        requests[index], exc)
                continue
        if done:
            from repro.api.checkpoints import materialize_response

            for index, checkpoint in done.items():
                try:
                    ordered[index] = materialize_response(
                        requests[index], checkpoint, original_graph=graph,
                        baseline=baseline, data_dir=data_dir)
                except Exception as exc:  # noqa: BLE001
                    if on_error == "fail_fast":
                        raise GridAbortedError(
                            f"grid aborted (on_error='fail_fast'): stored "
                            f"checkpoint failed to materialize with "
                            f"{type(exc).__name__}: {exc}") from exc
                    ordered[index] = AnonymizationResponse.failure(
                        requests[index], exc)
        if not todo:
            continue
        group = [requests[index] for index in todo]
        initial_distances = None
        if resume_checkpoint is None and first.evaluation_mode == "incremental":
            try:
                initial_distances = cache.distances_for(
                    group[0], l_max_by_engine[group[0].engine])
            except Exception as exc:  # noqa: BLE001 — e.g. unknown engine
                if on_error == "fail_fast":
                    raise GridAbortedError(
                        f"grid aborted (on_error='fail_fast'): distance "
                        f"matrix failed with {type(exc).__name__}: {exc}"
                        ) from exc
                for index in todo:
                    ordered[index] = AnonymizationResponse.failure(
                        requests[index], exc)
                continue
        notify_group(observer, tuple(todo))
        responses = execute_sweep_group(
            group, sweep_mode=sweep_mode, registry=registry,
            observer=observer, data_dir=data_dir, graph=graph,
            initial_distances=initial_distances, baseline=baseline,
            resume_from=resume_checkpoint)
        if on_error == "fail_fast":
            _abort_on_error(responses)
        for index, response in zip(todo, responses):
            ordered[index] = response
    return ordered  # type: ignore[return-value]


def run_grid(grid: GridRequest, *,
             max_workers: Optional[int] = 0,
             registry: Optional[AnonymizerRegistry] = None,
             data_dir: Optional[str] = None,
             shared_memory: Optional[bool] = None) -> GridResponse:
    """Group and execute a :class:`GridRequest`, responses in request order.

    ``max_workers=0`` (the default) runs the sample groups serially
    in-process with one shared :class:`~repro.api.cache.ExecutionCache`
    (the only mode that honours a custom ``registry``); any other value
    fans the grid across a :class:`~repro.api.batch.BatchRunner` process
    pool (``None`` = one worker per CPU).  On the default shared-memory
    data plane (``shared_memory=None`` or ``True``) the pool fans out
    *θ-sweep groups*: the parent loads each sample and runs each L_max
    distance computation exactly once, publishes them to shared-memory
    segments, and workers attach zero-copy views — so even a single-sample
    grid parallelizes across all cores.  ``shared_memory=False`` falls
    back to the PR-5 plane that fans whole *sample groups*, trading
    θ-group parallelism for per-worker process-local caches.  Either way
    responses are bit-identical to the serial path.
    """
    from repro.api.batch import BatchRunner

    stats = GridStats()
    runner = BatchRunner(max_workers=max_workers, data_dir=data_dir,
                         shared_memory=shared_memory)
    responses = runner.run_grid(grid, registry=registry, stats=stats)
    return GridResponse(responses=tuple(responses),
                        sweep_mode=grid.sweep_mode,
                        num_groups=len(grid.groups()),
                        num_sample_groups=len(grid.sample_groups()),
                        num_sample_loads=(stats.sample_loads
                                          if stats.tracked else None),
                        num_distance_computes=(stats.distance_computes
                                               if stats.tracked else None))
