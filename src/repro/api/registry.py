"""Pluggable anonymizer registry.

Every anonymization algorithm of the reproduction — the paper's two
heuristics and the three Zhang & Zhang baselines — registers itself here
under its canonical short name (``"rem"``, ``"rem-ins"``, ``"gades"``,
``"gaded-rand"``, ``"gaded-max"``) with a :func:`register_anonymizer`
decorator applied at class-definition time.  Everything that needs an
algorithm by name (the CLI, the experiment runner, the service facade,
batch workers) resolves it through the registry instead of a hardcoded
if/elif chain, so adding a new method is one decorated class anywhere in
the import graph::

    from repro.api import register_anonymizer

    @register_anonymizer("noop", accepts=("theta",))
    class NoopAnonymizer:
        def __init__(self, theta=0.5): ...
        def anonymize(self, graph, typing=None, observer=None): ...

The registry deliberately wraps constructors instead of replacing them:
a registered class is returned unchanged and stays directly usable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.errors import ConfigurationError

#: Execution/tuning parameters that are silently dropped when an algorithm
#: does not take them (they steer *how* a search runs, never what privacy
#: guarantee it targets), so one request or sweep specification can span
#: algorithms with different knobs.  Privacy-semantic parameters — most
#: importantly ``length_threshold``, ``theta``, and ``strict`` — are never
#: dropped silently.
_TUNING_PARAMS = frozenset({
    "lookahead",
    "insertion_candidate_cap",
    "max_combinations",
    "prune_candidates",
    "swap_sample_size",
    "seed",
    "engine",
    "evaluation_mode",
    "scan_mode",
    "scan_workers",
    "sweep_mode",
    "max_steps",
    "scale_tier",
    "scale_budget_bytes",
})


@dataclass(frozen=True)
class AnonymizerSpec:
    """One registered algorithm: its factory plus construction metadata.

    Attributes
    ----------
    name:
        Registry key (the algorithm's canonical short name).
    factory:
        Callable producing an anonymizer instance; usually the class itself.
    description:
        One-line human-readable description (defaults to the factory's
        docstring headline).
    accepts:
        Keyword parameters the factory understands.  :meth:`create` only
        forwards these; see the module docstring for how the rest are
        handled.
    """

    name: str
    factory: Callable[..., Any]
    description: str = ""
    accepts: Tuple[str, ...] = ()

    @property
    def supports_length_threshold(self) -> bool:
        """Whether the algorithm handles L > 1 (the baselines do not)."""
        return "length_threshold" in self.accepts

    def create(self, **params: Any) -> Any:
        """Instantiate the algorithm from a uniform parameter mapping.

        ``None`` values are treated as "use the factory default".  A
        ``length_threshold`` other than 1 raises for algorithms that only
        address single-edge linkage; unknown non-tuning parameters raise.
        """
        kwargs: Dict[str, Any] = {}
        for key, value in params.items():
            if value is None:
                continue
            if key in self.accepts:
                kwargs[key] = value
            elif key == "length_threshold":
                if value != 1:
                    raise ConfigurationError(
                        f"{self.name} only supports L = 1 (requested L={value})")
            elif key not in _TUNING_PARAMS:
                raise ConfigurationError(
                    f"anonymizer {self.name!r} does not accept parameter {key!r}")
        return self.factory(**kwargs)


class AnonymizerRegistry:
    """Name → :class:`AnonymizerSpec` mapping with decorator registration."""

    def __init__(self) -> None:
        self._specs: Dict[str, AnonymizerSpec] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, name: str, factory: Optional[Callable[..., Any]] = None, *,
                 description: str = "", accepts: Tuple[str, ...] = (),
                 replace: bool = False) -> Callable[..., Any]:
        """Register ``factory`` under ``name``; usable as a decorator.

        Returns the factory unchanged, so decorated classes keep working
        as plain constructors.  Registering an already-taken name raises
        :class:`ConfigurationError` unless ``replace=True``.
        """
        if not name or not isinstance(name, str):
            raise ConfigurationError(f"anonymizer name must be a non-empty string, got {name!r}")

        def wrap(obj: Callable[..., Any]) -> Callable[..., Any]:
            doc = (getattr(obj, "__doc__", None) or "").strip()
            spec = AnonymizerSpec(
                name=name,
                factory=obj,
                description=description or (doc.splitlines()[0] if doc else ""),
                accepts=tuple(accepts),
            )
            with self._lock:
                if name in self._specs and not replace:
                    raise ConfigurationError(
                        f"anonymizer {name!r} is already registered "
                        f"(by {self._specs[name].factory!r}); pass replace=True to override")
                self._specs[name] = spec
            return obj

        if factory is not None:
            return wrap(factory)
        return wrap

    def unregister(self, name: str) -> None:
        """Remove a registration (no-op when the name is unknown)."""
        with self._lock:
            self._specs.pop(name, None)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> AnonymizerSpec:
        """The spec registered under ``name``; raises with the known names."""
        try:
            return self._specs[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown algorithm {name!r}; registered: {self.names()}") from None

    def create(self, name: str, **params: Any) -> Any:
        """Instantiate the algorithm registered under ``name``."""
        return self.get(name).create(**params)

    def names(self) -> Tuple[str, ...]:
        """Sorted names of every registered algorithm."""
        return tuple(sorted(self._specs))

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[AnonymizerSpec]:
        return iter([self._specs[name] for name in self.names()])

    def __len__(self) -> int:
        return len(self._specs)


#: The process-wide registry that the built-in algorithms register into.
_DEFAULT_REGISTRY = AnonymizerRegistry()


def default_registry() -> AnonymizerRegistry:
    """The registry used when no explicit registry is passed to the facade."""
    return _DEFAULT_REGISTRY


def register_anonymizer(name: str, factory: Optional[Callable[..., Any]] = None, *,
                        description: str = "", accepts: Tuple[str, ...] = (),
                        replace: bool = False) -> Callable[..., Any]:
    """Register an algorithm in the default registry (decorator form)."""
    return _DEFAULT_REGISTRY.register(
        name, factory, description=description, accepts=accepts, replace=replace)


def available_algorithms() -> Tuple[str, ...]:
    """Names of every algorithm registered in the default registry."""
    _ensure_builtins()
    return _DEFAULT_REGISTRY.names()


def create_anonymizer(name: str, **params: Any) -> Any:
    """Instantiate ``name`` from the default registry with ``params``."""
    _ensure_builtins()
    return _DEFAULT_REGISTRY.create(name, **params)


def _ensure_builtins() -> None:
    """Import the modules whose classes self-register the built-in algorithms.

    Importing :mod:`repro` already does this; the guard only matters for
    callers that import :mod:`repro.api.registry` in isolation (e.g. a
    freshly spawned batch worker).
    """
    import repro.baselines  # noqa: F401  (registers the GADED/GADES classes)
    import repro.core       # noqa: F401  (registers rem and rem-ins)
