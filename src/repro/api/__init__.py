"""Service-layer API: the one true entry point for anonymization work.

Layers (see DESIGN.md §8):

* :mod:`repro.api.registry` — pluggable algorithm registry; all built-in
  algorithms self-register with :func:`register_anonymizer`.
* :mod:`repro.api.requests` — :class:`AnonymizationRequest` /
  :class:`AnonymizationResponse`, frozen records with full JSON round-trip.
* :mod:`repro.api.progress` — :class:`ProgressObserver` protocol plus
  timeout/cancellation/console observers threaded through every
  anonymizer's greedy loop.
* :mod:`repro.api.facade` — :func:`anonymize`, :func:`compute_opacity`,
  :func:`sweep`.
* :mod:`repro.api.theta_sweep` — :class:`SweepRequest` / :class:`SweepResponse`
  and the grouped checkpointed θ-sweep engine (DESIGN.md §9).
* :mod:`repro.api.sweeps` — :class:`GridRequest` / :class:`GridResponse`
  and the multi-axis grid engine behind :func:`sweep` and
  ``repro-lopacity sweep``: dataset × size × seed × L × θ × algorithm
  grids executed with shared sample/baseline/distance caches
  (DESIGN.md §10).
* :mod:`repro.api.cache` — :class:`ExecutionCache`, the per-process
  sample/baseline/L_max-distance cache behind the grid engine and the
  batch workers.
* :mod:`repro.api.batch` — :class:`BatchRunner` fan-out over worker
  processes, powering ``repro-lopacity batch`` and parallel experiment
  sweeps; sweeps fan θ-sweep groups and grids fan sample groups instead
  of single requests, and every worker holds a process-level
  :class:`ExecutionCache`.

Quickstart::

    from repro.api import AnonymizationRequest, anonymize

    response = anonymize(AnonymizationRequest(
        algorithm="rem", dataset="gnutella", sample_size=60, theta=0.5))
    print(response.summary())

Only the registry and progress modules are imported eagerly (they are
dependency-light and imported by :mod:`repro.core`); the request/facade/
batch layers load lazily on first attribute access to keep the
``core -> api.registry`` edge cycle-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.api.progress import (
    AnonymizationStopped,
    CallbackObserver,
    CancellationToken,
    CheckpointBuffer,
    CompositeObserver,
    ConsoleProgressObserver,
    NULL_OBSERVER,
    NullObserver,
    ProgressObserver,
    StepLimitObserver,
    TimeoutObserver,
    combine_observers,
    notify_checkpoint,
    notify_group,
)
from repro.api.registry import (
    AnonymizerRegistry,
    AnonymizerSpec,
    available_algorithms,
    create_anonymizer,
    default_registry,
    register_anonymizer,
)

if TYPE_CHECKING:  # pragma: no cover — lazy at runtime, eager for type checkers
    from repro.api.batch import BatchRunner, execute_request
    from repro.api.cache import ExecutionCache
    from repro.api.facade import (
        OpacityReport,
        anonymize,
        compute_opacity,
        expand_sweep,
        run_requests,
        sweep,
    )
    from repro.api.requests import AnonymizationRequest, AnonymizationResponse
    from repro.api.sweeps import (
        GridRequest,
        GridResponse,
        execute_sample_group,
        expand_grid,
        run_grid,
    )
    from repro.api.theta_sweep import (
        SweepRequest,
        SweepResponse,
        execute_sweep_group,
        run_sweep,
    )

#: Lazily resolved attribute -> defining submodule (PEP 562).
_LAZY = {
    "AnonymizationRequest": "repro.api.requests",
    "AnonymizationResponse": "repro.api.requests",
    "FINGERPRINT_VERSION": "repro.api.requests",
    "request_fingerprint": "repro.api.requests",
    "CHECKPOINT_VERSION": "repro.api.checkpoints",
    "checkpoint_from_dict": "repro.api.checkpoints",
    "checkpoint_from_json": "repro.api.checkpoints",
    "checkpoint_to_dict": "repro.api.checkpoints",
    "checkpoint_to_json": "repro.api.checkpoints",
    "materialize_response": "repro.api.checkpoints",
    "OpacityReport": "repro.api.facade",
    "anonymize": "repro.api.facade",
    "compute_opacity": "repro.api.facade",
    "expand_sweep": "repro.api.facade",
    "run_requests": "repro.api.facade",
    "sweep": "repro.api.facade",
    "BatchRunner": "repro.api.batch",
    "execute_request": "repro.api.batch",
    "ExecutionCache": "repro.api.cache",
    "ERROR_POLICIES": "repro.api.sweeps",
    "GridRequest": "repro.api.sweeps",
    "GridResponse": "repro.api.sweeps",
    "execute_sample_group": "repro.api.sweeps",
    "expand_grid": "repro.api.sweeps",
    "run_grid": "repro.api.sweeps",
    "validate_error_policy": "repro.api.sweeps",
    "SweepRequest": "repro.api.theta_sweep",
    "SweepResponse": "repro.api.theta_sweep",
    "execute_sweep_group": "repro.api.theta_sweep",
    "run_sweep": "repro.api.theta_sweep",
}

__all__ = [
    "AnonymizationRequest",
    "AnonymizationResponse",
    "AnonymizationStopped",
    "AnonymizerRegistry",
    "AnonymizerSpec",
    "BatchRunner",
    "CHECKPOINT_VERSION",
    "CallbackObserver",
    "CancellationToken",
    "CheckpointBuffer",
    "CompositeObserver",
    "ConsoleProgressObserver",
    "ERROR_POLICIES",
    "ExecutionCache",
    "FINGERPRINT_VERSION",
    "GridRequest",
    "GridResponse",
    "NULL_OBSERVER",
    "NullObserver",
    "OpacityReport",
    "ProgressObserver",
    "StepLimitObserver",
    "SweepRequest",
    "SweepResponse",
    "TimeoutObserver",
    "anonymize",
    "available_algorithms",
    "checkpoint_from_dict",
    "checkpoint_from_json",
    "checkpoint_to_dict",
    "checkpoint_to_json",
    "combine_observers",
    "compute_opacity",
    "create_anonymizer",
    "default_registry",
    "execute_request",
    "execute_sample_group",
    "execute_sweep_group",
    "expand_grid",
    "expand_sweep",
    "materialize_response",
    "notify_checkpoint",
    "notify_group",
    "register_anonymizer",
    "request_fingerprint",
    "run_grid",
    "run_requests",
    "run_sweep",
    "sweep",
    "validate_error_policy",
]


def __getattr__(name: str) -> object:
    if name in _LAZY:
        import importlib

        module = importlib.import_module(_LAZY[name])
        value = getattr(module, name)
        globals()[name] = value  # cache for subsequent lookups
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list:
    return sorted(set(globals()) | set(_LAZY))
