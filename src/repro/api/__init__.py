"""Service-layer API: the one true entry point for anonymization work.

Layers (see DESIGN.md §8):

* :mod:`repro.api.registry` — pluggable algorithm registry; all built-in
  algorithms self-register with :func:`register_anonymizer`.
* :mod:`repro.api.requests` — :class:`AnonymizationRequest` /
  :class:`AnonymizationResponse`, frozen records with full JSON round-trip.
* :mod:`repro.api.progress` — :class:`ProgressObserver` protocol plus
  timeout/cancellation/console observers threaded through every
  anonymizer's greedy loop.
* :mod:`repro.api.facade` — :func:`anonymize`, :func:`compute_opacity`,
  :func:`sweep`.
* :mod:`repro.api.theta_sweep` — :class:`SweepRequest` / :class:`SweepResponse`
  and the grouped checkpointed θ-sweep engine behind :func:`sweep` and
  ``repro-lopacity sweep`` (DESIGN.md §9).
* :mod:`repro.api.batch` — :class:`BatchRunner` fan-out over worker
  processes, powering ``repro-lopacity batch`` and parallel experiment
  sweeps; sweeps fan θ-sweep groups instead of single requests.

Quickstart::

    from repro.api import AnonymizationRequest, anonymize

    response = anonymize(AnonymizationRequest(
        algorithm="rem", dataset="gnutella", sample_size=60, theta=0.5))
    print(response.summary())

Only the registry and progress modules are imported eagerly (they are
dependency-light and imported by :mod:`repro.core`); the request/facade/
batch layers load lazily on first attribute access to keep the
``core -> api.registry`` edge cycle-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.api.progress import (
    AnonymizationStopped,
    CallbackObserver,
    CancellationToken,
    CompositeObserver,
    ConsoleProgressObserver,
    NULL_OBSERVER,
    NullObserver,
    ProgressObserver,
    StepLimitObserver,
    TimeoutObserver,
    combine_observers,
)
from repro.api.registry import (
    AnonymizerRegistry,
    AnonymizerSpec,
    available_algorithms,
    create_anonymizer,
    default_registry,
    register_anonymizer,
)

if TYPE_CHECKING:  # pragma: no cover — lazy at runtime, eager for type checkers
    from repro.api.batch import BatchRunner, execute_request
    from repro.api.facade import (
        OpacityReport,
        anonymize,
        compute_opacity,
        expand_sweep,
        run_requests,
        sweep,
    )
    from repro.api.requests import AnonymizationRequest, AnonymizationResponse
    from repro.api.theta_sweep import (
        SweepRequest,
        SweepResponse,
        execute_sweep_group,
        run_sweep,
    )

#: Lazily resolved attribute -> defining submodule (PEP 562).
_LAZY = {
    "AnonymizationRequest": "repro.api.requests",
    "AnonymizationResponse": "repro.api.requests",
    "OpacityReport": "repro.api.facade",
    "anonymize": "repro.api.facade",
    "compute_opacity": "repro.api.facade",
    "expand_sweep": "repro.api.facade",
    "run_requests": "repro.api.facade",
    "sweep": "repro.api.facade",
    "BatchRunner": "repro.api.batch",
    "execute_request": "repro.api.batch",
    "SweepRequest": "repro.api.theta_sweep",
    "SweepResponse": "repro.api.theta_sweep",
    "execute_sweep_group": "repro.api.theta_sweep",
    "run_sweep": "repro.api.theta_sweep",
}

__all__ = [
    "AnonymizationRequest",
    "AnonymizationResponse",
    "AnonymizationStopped",
    "AnonymizerRegistry",
    "AnonymizerSpec",
    "BatchRunner",
    "CallbackObserver",
    "CancellationToken",
    "CompositeObserver",
    "ConsoleProgressObserver",
    "NULL_OBSERVER",
    "NullObserver",
    "OpacityReport",
    "ProgressObserver",
    "StepLimitObserver",
    "SweepRequest",
    "SweepResponse",
    "TimeoutObserver",
    "anonymize",
    "available_algorithms",
    "combine_observers",
    "compute_opacity",
    "create_anonymizer",
    "default_registry",
    "execute_request",
    "execute_sweep_group",
    "expand_sweep",
    "register_anonymizer",
    "run_requests",
    "run_sweep",
    "sweep",
]


def __getattr__(name: str) -> object:
    if name in _LAZY:
        import importlib

        module = importlib.import_module(_LAZY[name])
        value = getattr(module, name)
        globals()[name] = value  # cache for subsequent lookups
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list:
    return sorted(set(globals()) | set(_LAZY))
