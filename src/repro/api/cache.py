"""Process-local caches amortizing repeated work across sweep groups.

A multi-axis grid (:mod:`repro.api.sweeps`) executes many θ-sweep groups
that share an input sample: same dataset/size/seed, different L, algorithm,
or look-ahead.  Before this cache existed, every group re-loaded its sample
from disk (or re-synthesized it), re-derived the utility baseline, and ran
a full bounded-distance computation for its own L — even though one
computation at the group's maximum L already contains every smaller-L
matrix (:mod:`repro.graph.distance_cache`).

:class:`ExecutionCache` holds all three per-sample artifacts:

* the loaded :class:`~repro.graph.graph.Graph` (one load per
  dataset/size/seed, counted by :attr:`sample_loads` — the bench hook);
* the original-graph utility baseline
  (:class:`~repro.metrics.GraphBaseline`), shared by every
  ``include_utility`` response of the sample;
* one :class:`~repro.graph.distance_cache.LMaxDistanceCache` per
  (sample, engine), serving every L ≤ L_max from a single engine run
  (counted by :attr:`distance_computes`).

One instance lives per worker process — installed by the
``ProcessPoolExecutor`` initializer of :class:`~repro.api.batch.BatchRunner`
— so a worker loads each sample once across *all* groups it executes; the
in-process execution paths create one per grid run.  Cached graphs are
never mutated: every anonymization copies its working graph, so handing the
same :class:`Graph` object to consecutive groups is safe and (because
loading is deterministic) bit-identical to a cold load.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from repro.api.requests import AnonymizationRequest
from repro.graph.distance_cache import LMaxDistanceCache
from repro.graph.graph import Graph

__all__ = ["ExecutionCache", "sample_key"]


def sample_key(request: AnonymizationRequest) -> Hashable:
    """The request's graph-source identity (what a cached sample is keyed by).

    Requests agreeing on this key resolve to bit-identical graphs: dataset
    samples are keyed by (dataset, size, seed) — loading is deterministic —
    and explicit edge lists by their (normalized) edges and vertex count.
    """
    if request.dataset is not None:
        return ("dataset", request.dataset, request.sample_size, request.seed)
    return ("edges", request.edges, request.num_vertices)


class ExecutionCache:
    """Per-process cache of samples, baselines, and L_max distance matrices.

    ``max_samples`` bounds how many distinct samples are retained at once
    (oldest evicted first), so a long-lived worker sweeping many
    dataset/size/seed combinations cannot pin every sample's graph and
    n × n matrix for the pool's lifetime; the load/compute counters
    survive eviction.
    """

    def __init__(self, data_dir: Optional[str] = None, *,
                 max_samples: int = 8) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self._data_dir = data_dir
        self._max_samples = max_samples
        self._graphs: Dict[Hashable, Graph] = {}
        self._baselines: Dict[Hashable, object] = {}
        self._distances: Dict[Tuple[Hashable, str], LMaxDistanceCache] = {}
        #: Cache misses that hit the dataset loaders (the bench hook
        #: asserting a grid performs one load per sample per worker).
        self.sample_loads = 0
        self._retired_computes = 0

    @property
    def data_dir(self) -> Optional[str]:
        """Directory with real SNAP dataset files, if any."""
        return self._data_dir

    @property
    def distance_computes(self) -> int:
        """Total full bounded-distance computations performed so far."""
        return self._retired_computes + sum(cache.compute_count
                                            for cache in self._distances.values())

    def graph_for(self, request: AnonymizationRequest) -> Graph:
        """The request's input graph, loaded at most once per sample key.

        The returned graph is shared — callers must not mutate it (every
        anonymization run copies its working graph, so the standard
        execution paths never do).
        """
        key = sample_key(request)
        graph = self._graphs.get(key)
        if graph is None:
            graph = request.resolve_graph(data_dir=self._data_dir)
            while len(self._graphs) >= self._max_samples:
                self._evict(next(iter(self._graphs)))
            self._graphs[key] = graph
            self.sample_loads += 1
        return graph

    def baseline_for(self, request: AnonymizationRequest):
        """The original-graph utility baseline of the request's sample."""
        from repro.metrics import graph_baseline

        key = sample_key(request)
        baseline = self._baselines.get(key)
        if baseline is None:
            baseline = graph_baseline(self.graph_for(request),
                                      include_spectral=False)
            self._baselines[key] = baseline
        return baseline

    def distances_for(self, request: AnonymizationRequest,
                      l_max: int) -> np.ndarray:
        """A fresh L-bounded matrix for the request, served from L_max.

        ``l_max`` is the largest L the request's sample group sweeps; the
        underlying engine runs once per (sample, engine) at that bound, and
        every request's own ``length_threshold`` matrix is derived by
        thresholding.  Each call returns a fresh array (sessions take
        ownership of the matrices they are given).
        """
        key = (sample_key(request), request.engine)
        cache = self._distances.get(key)
        if cache is None or cache.l_max < l_max:
            if cache is not None:
                self._retired_computes += cache.compute_count
            cache = LMaxDistanceCache(self.graph_for(request), l_max,
                                      engine=request.engine)
            self._distances[key] = cache
        return cache.matrix(request.length_threshold)

    def release(self, request: AnonymizationRequest) -> None:
        """Drop the sample's cached graph, baseline, and distance matrices.

        The grid engine hands each sample group to a worker exactly once,
        so a worker that finished a group will never see its sample key
        again — releasing the entries bounds worker memory over large
        grids.  The load/compute counters are preserved.
        """
        self._evict(sample_key(request))

    def _evict(self, key: Hashable) -> None:
        self._graphs.pop(key, None)
        self._baselines.pop(key, None)
        for cache_key in [k for k in self._distances if k[0] == key]:
            self._retired_computes += self._distances.pop(cache_key).compute_count
