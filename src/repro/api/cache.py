"""Process-local caches amortizing repeated work across sweep groups.

A multi-axis grid (:mod:`repro.api.sweeps`) executes many θ-sweep groups
that share an input sample: same dataset/size/seed, different L, algorithm,
or look-ahead.  Before this cache existed, every group re-loaded its sample
from disk (or re-synthesized it), re-derived the utility baseline, and ran
a full bounded-distance computation for its own L — even though one
computation at the group's maximum L already contains every smaller-L
matrix (:mod:`repro.graph.distance_cache`).

:class:`ExecutionCache` holds all three per-sample artifacts:

* the loaded :class:`~repro.graph.graph.Graph` (one load per
  dataset/size/seed, counted by :attr:`sample_loads` — the bench hook);
* the original-graph utility baseline
  (:class:`~repro.metrics.GraphBaseline`), shared by every
  ``include_utility`` response of the sample;
* one :class:`~repro.graph.distance_cache.LMaxDistanceCache` per
  (sample, engine), serving every L ≤ L_max from a single engine run
  (counted by :attr:`distance_computes`).

One instance lives per worker process — installed by the
``ProcessPoolExecutor`` initializer of :class:`~repro.api.batch.BatchRunner`
— so a worker loads each sample once across *all* groups it executes; the
in-process execution paths create one per grid run.  Cached graphs are
never mutated: every anonymization copies its working graph, so handing the
same :class:`Graph` object to consecutive groups is safe and (because
loading is deterministic) bit-identical to a cold load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Hashable, Optional, Tuple

import numpy as np

from repro.api.requests import AnonymizationRequest
from repro.graph.distance_cache import LMaxDistanceCache
from repro.graph.graph import Graph

if TYPE_CHECKING:  # pragma: no cover — import cycle guard (shm imports graph)
    from repro.api.shm import ArenaDescriptor

__all__ = ["ExecutionCache", "GridStats", "sample_key"]


@dataclass
class GridStats:
    """Grid-wide work counters, aggregated across every participating process.

    ``run_grid`` sums the parent cache's counter deltas with the deltas
    each worker reports per task, so a :class:`~repro.api.sweeps.GridResponse`
    can state how many sample loads and full bounded-distance computations
    the *whole* grid performed — the observable the shared-memory plane is
    judged by (exactly one of each per sample group, not per worker).
    """

    sample_loads: int = 0
    distance_computes: int = 0
    #: Whether any execution path actually reported counters.  Routing
    #: modes that cannot observe the work (custom registries, independent
    #: mode) leave this ``False`` so ``run_grid`` reports ``None`` instead
    #: of a misleading zero.
    tracked: bool = False

    def add(self, sample_loads: int, distance_computes: int) -> None:
        """Accumulate one process's counter deltas."""
        self.sample_loads += sample_loads
        self.distance_computes += distance_computes


def sample_key(request: AnonymizationRequest) -> Hashable:
    """The request's graph-source identity (what a cached sample is keyed by).

    Requests agreeing on this key resolve to bit-identical graphs: dataset
    samples are keyed by (dataset, size, seed) — loading is deterministic —
    and explicit edge lists by their (normalized) edges and vertex count.
    """
    if request.dataset is not None:
        return ("dataset", request.dataset, request.sample_size, request.seed)
    return ("edges", request.edges, request.num_vertices)


class ExecutionCache:
    """Per-process cache of samples, baselines, and L_max distance matrices.

    ``max_samples`` bounds how many distinct samples are retained at once
    (least recently *used* evicted first — every ``graph_for`` /
    ``baseline_for`` / ``distances_for`` hit re-touches its sample, so hot
    samples survive long grids), so a long-lived worker sweeping many
    dataset/size/seed combinations cannot pin every sample's graph and
    n × n matrix for the pool's lifetime; the load/compute counters
    survive eviction.

    On the shared-memory data plane a worker cache additionally holds an
    *arena tier* ahead of its process-local tier: :meth:`adopt_arena`
    installs a sample published by the parent — the graph rebuilt from the
    shared edge array and one zero-copy
    :meth:`~repro.graph.distance_cache.LMaxDistanceCache.from_matrix`
    cache per engine — without incrementing either counter, because the
    load and the engine run happened exactly once, in the parent.
    """

    def __init__(self, data_dir: Optional[str] = None, *,
                 max_samples: int = 8,
                 spill_prefix: Optional[str] = None) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self._data_dir = data_dir
        self._max_samples = max_samples
        #: When set, tiled-tier L_max bases spill to deterministic
        #: ``{prefix}-{digest}.tiles`` paths so a resumed job's later
        #: θ-groups re-adopt tiles warmed by earlier ones.
        self._spill_prefix = spill_prefix
        self._graphs: Dict[Hashable, Graph] = {}
        self._baselines: Dict[Hashable, object] = {}
        self._distances: Dict[Tuple[Hashable, str], LMaxDistanceCache] = {}
        #: Arena attachments (shared-memory tier), keyed like ``_graphs``;
        #: the values pin the worker's read-only segment mappings.
        self._arenas: Dict[Hashable, object] = {}
        #: Cache misses that hit the dataset loaders (the bench hook
        #: asserting a grid performs one load per sample per worker).
        self.sample_loads = 0
        self._retired_computes = 0

    @property
    def data_dir(self) -> Optional[str]:
        """Directory with real SNAP dataset files, if any."""
        return self._data_dir

    @property
    def distance_computes(self) -> int:
        """Total full bounded-distance computations performed so far."""
        return self._retired_computes + sum(cache.compute_count
                                            for cache in self._distances.values())

    def graph_for(self, request: AnonymizationRequest) -> Graph:
        """The request's input graph, loaded at most once per sample key.

        The returned graph is shared — callers must not mutate it (every
        anonymization run copies its working graph, so the standard
        execution paths never do).
        """
        key = sample_key(request)
        graph = self._graphs.get(key)
        if graph is None:
            graph = request.resolve_graph(data_dir=self._data_dir)
            self._install_graph(key, graph)
            self.sample_loads += 1
        else:
            self._touch(key)
        return graph

    def baseline_for(self, request: AnonymizationRequest):
        """The original-graph utility baseline of the request's sample."""
        from repro.metrics import graph_baseline

        key = sample_key(request)
        baseline = self._baselines.get(key)
        if baseline is None:
            baseline = graph_baseline(self.graph_for(request),
                                      include_spectral=False)
            self._baselines[key] = baseline
        else:
            self._touch(key)
        return baseline

    def distances_for(self, request: AnonymizationRequest, l_max: int):
        """Fresh L-bounded distances for the request, served from L_max.

        ``l_max`` is the largest L the request's sample group sweeps; the
        underlying engine runs once per (sample, engine) at that bound, and
        every request's own ``length_threshold`` view is derived by
        thresholding.  In the dense tier each call returns a fresh array
        (sessions take ownership of the matrices they are given); in the
        tiled tier it returns a thresholded
        :class:`~repro.graph.distance_store.DistanceStore` child sharing
        the sample's L_max tile base.
        """
        cache = self._lmax_cache_for(request, l_max)
        if cache.tier == "tiled":
            return cache.store(request.length_threshold)
        return cache.matrix(request.length_threshold)

    def base_matrix_for(self, request: AnonymizationRequest,
                        l_max: int) -> np.ndarray:
        """The raw L_max matrix of the request's sample (read-only contract).

        The shared-memory publisher reads this to copy the matrix into a
        segment; unlike :meth:`distances_for` it returns the *base* matrix
        itself, so no private thresholded copy is materialized in the
        parent.
        """
        return self._lmax_cache_for(request, l_max).base_matrix()

    def _lmax_cache_for(self, request: AnonymizationRequest,
                        l_max: int) -> LMaxDistanceCache:
        key = (sample_key(request), request.engine)
        cache = self._distances.get(key)
        # Arena-adopted caches are served as-is: the published payload
        # fixes their tier, and requests landing on them were grouped by
        # matching scale fields.  Private caches rebuild when the sweep's
        # bound grows or the requested store configuration changed.
        adopted = key[0] in self._arenas
        store_config = request.store_config()
        stale = cache is not None and (
            cache.l_max < l_max
            or (not adopted and cache.store_config != store_config))
        if cache is None or stale:
            if cache is not None:
                self._retired_computes += cache.compute_count
            cache = LMaxDistanceCache(self.graph_for(request), l_max,
                                      engine=request.engine,
                                      store_config=store_config,
                                      spill_path=self._spill_path(key, l_max))
            self._distances[key] = cache
        else:
            self._touch(key[0])
        return cache

    def _spill_path(self, key: Tuple[Hashable, str],
                    l_max: int) -> Optional[str]:
        """Deterministic per-(sample, engine, L_max) spill path, if configured.

        The same identity always hashes to the same path, so a resumed
        job's rebuilt cache re-opens the spill file its predecessor warmed
        (:class:`~repro.graph.distance_store.TiledStore` validates the
        sidecar index before trusting any tiles).
        """
        if self._spill_prefix is None:
            return None
        import hashlib

        digest = hashlib.sha1(
            repr((key[0], key[1], int(l_max))).encode()).hexdigest()[:16]
        return f"{self._spill_prefix}-{digest}.tiles"

    def adopt_arena(self, request: AnonymizationRequest,
                    descriptor: "ArenaDescriptor") -> None:
        """Install a parent-published arena as this cache's copy of a sample.

        Attaches the descriptor's segments (once per arena — repeated
        adoption of the same ``token`` is a no-op), installs the rebuilt
        graph where :meth:`graph_for` will find it, and wraps each shared
        L_max matrix in a zero-copy cache served by :meth:`distances_for`.
        Neither counter moves: the sample load and the engine run were the
        parent's, and they were performed exactly once per grid.
        """
        from repro.api.shm import attach_arena

        key = sample_key(request)
        current = self._arenas.get(key)
        if current is not None and current.token == descriptor.token:
            self._touch(key)
            return
        attached = attach_arena(descriptor)
        self._evict(key)  # a stale same-key entry must not shadow the arena
        self._install_graph(key, attached.graph)
        for engine, cache in attached.caches.items():
            self._distances[(key, engine)] = cache
        self._arenas[key] = attached

    def release(self, request: AnonymizationRequest) -> None:
        """Drop the sample's cached graph, baseline, and distance matrices.

        The grid engine hands each sample group to a worker exactly once,
        so a worker that finished a group will never see its sample key
        again — releasing the entries bounds worker memory over large
        grids.  The load/compute counters are preserved.
        """
        self._evict(sample_key(request))

    def _install_graph(self, key: Hashable, graph: Graph) -> None:
        while len(self._graphs) >= self._max_samples:
            self._evict(next(iter(self._graphs)))
        self._graphs[key] = graph

    def _touch(self, key: Hashable) -> None:
        """Move ``key`` to the recently-used end of the eviction order."""
        graph = self._graphs.pop(key, None)
        if graph is not None:
            self._graphs[key] = graph

    def _evict(self, key: Hashable) -> None:
        self._graphs.pop(key, None)
        self._baselines.pop(key, None)
        # Dropping the distance caches before the arena attachment keeps
        # the teardown order views-then-segments (close cannot be blocked
        # by a still-exported buffer).
        for cache_key in [k for k in self._distances if k[0] == key]:
            self._retired_computes += self._distances.pop(cache_key).compute_count
        self._arenas.pop(key, None)
