"""Batch execution of anonymization requests across worker processes.

A :class:`BatchRunner` fans a list of :class:`AnonymizationRequest` records
over a ``concurrent.futures.ProcessPoolExecutor``.  Requests cross the
process boundary as plain dictionaries (the JSON form of the request), so
workers only need the default registry — the built-in algorithms register
themselves when :mod:`repro` is imported in the worker.  Custom registries
with process-local registrations therefore require ``max_workers=0``
(in-process execution), which is also the deterministic mode used in tests.

:meth:`BatchRunner.run_sweep` fans θ-sweep *groups* (not single requests)
across the pool: each group is one checkpointed anonymization pass
(:mod:`repro.api.theta_sweep`), so a worker amortizes a whole θ grid instead of
re-running the anonymization per grid point.

Guarantees:

* **Ordering** — responses come back in request order regardless of which
  worker finished first.
* **Failure isolation** — an exception inside one request becomes an error
  response (``response.error`` set, ``success=False``) and never aborts
  the rest of the batch; sweep groups isolate failures at group
  granularity.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro.api.progress import ProgressObserver
from repro.api.registry import AnonymizerRegistry
from repro.api.requests import AnonymizationRequest, AnonymizationResponse

if TYPE_CHECKING:  # pragma: no cover — avoids an import cycle at runtime
    from repro.api.theta_sweep import SweepRequest


def execute_request(request: AnonymizationRequest, *,
                    registry: Optional[AnonymizerRegistry] = None,
                    observer: Optional[ProgressObserver] = None,
                    data_dir: Optional[str] = None) -> AnonymizationResponse:
    """Run one request, converting any exception into an error response."""
    from repro.api.facade import anonymize

    try:
        return anonymize(request, registry=registry, observer=observer,
                         data_dir=data_dir)
    except Exception as exc:  # noqa: BLE001 — isolation is the contract
        return AnonymizationResponse.failure(request, exc)


def _execute_payload(payload: Dict[str, Any], data_dir: Optional[str]) -> Dict[str, Any]:
    """Worker-side entry point: dict in, dict out (must stay module-level
    so it is picklable by the process pool)."""
    request = AnonymizationRequest.from_dict(payload)
    return execute_request(request, data_dir=data_dir).to_dict()


def _execute_group_payload(payloads: List[Dict[str, Any]], sweep_mode: str,
                           data_dir: Optional[str]) -> List[Dict[str, Any]]:
    """Worker-side entry point for one θ-sweep group (module-level for pickling)."""
    from repro.api.theta_sweep import execute_sweep_group

    requests = [AnonymizationRequest.from_dict(payload) for payload in payloads]
    responses = execute_sweep_group(requests, sweep_mode=sweep_mode,
                                    data_dir=data_dir)
    return [response.to_dict() for response in responses]


class BatchRunner:
    """Execute request batches serially or across a process pool.

    Parameters
    ----------
    max_workers:
        ``0`` — run in the calling process (no pool, deterministic);
        ``None`` — one worker per CPU (capped at the batch size);
        ``n > 0`` — at most ``n`` worker processes.
    data_dir:
        Optional directory with real SNAP dataset files, forwarded to the
        dataset loaders in every worker.
    """

    def __init__(self, max_workers: Optional[int] = None, *,
                 data_dir: Optional[str] = None) -> None:
        if max_workers is not None and max_workers < 0:
            raise ValueError(f"max_workers must be >= 0 or None, got {max_workers}")
        self._max_workers = max_workers
        self._data_dir = data_dir

    def run(self, requests: Sequence[AnonymizationRequest]) -> List[AnonymizationResponse]:
        """Execute ``requests`` and return responses in request order."""
        requests = list(requests)
        if not requests:
            return []
        if self._max_workers == 0 or len(requests) == 1:
            return self.run_serial(requests)
        workers = self._worker_count(len(requests))
        responses: List[AnonymizationResponse] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures: List[Future] = [
                pool.submit(_execute_payload, request.to_dict(), self._data_dir)
                for request in requests
            ]
            for request, future in zip(requests, futures):
                try:
                    responses.append(AnonymizationResponse.from_dict(future.result()))
                except Exception as exc:  # worker crash / pool breakage
                    responses.append(AnonymizationResponse.failure(request, exc))
        return responses

    def run_serial(self, requests: Sequence[AnonymizationRequest]) -> List[AnonymizationResponse]:
        """Execute ``requests`` one after another in this process."""
        return [execute_request(request, data_dir=self._data_dir)
                for request in requests]

    def _worker_count(self, num_jobs: int) -> int:
        """Pool size for ``num_jobs`` independent submissions."""
        workers = self._max_workers or os.cpu_count() or 1
        return min(workers, num_jobs)

    # ------------------------------------------------------------------
    # θ-sweep groups
    # ------------------------------------------------------------------
    def run_sweep(self, sweep: "SweepRequest", *,
                  registry: Optional[AnonymizerRegistry] = None
                  ) -> List[AnonymizationResponse]:
        """Execute a sweep, fanning θ-sweep *groups* across the pool.

        Each group runs as one checkpointed anonymization pass; responses
        come back in request order.  ``sweep_mode="independent"`` opts out
        of grouping entirely and takes :meth:`run`'s per-request fan-out
        (per-request timeouts, failure isolation, and parallelism).  A
        custom ``registry`` is only honoured with ``max_workers=0`` —
        workers resolve algorithms through the default registry, like
        :meth:`run`.
        """
        from repro.api.theta_sweep import execute_sweep_group

        if sweep.sweep_mode == "independent":
            return self.run(list(sweep.requests))
        groups = sweep.groups()
        ordered: List[Optional[AnonymizationResponse]] = [None] * len(sweep.requests)
        if self._max_workers == 0 or len(groups) == 1:
            for indices in groups:
                responses = execute_sweep_group(
                    [sweep.requests[index] for index in indices],
                    sweep_mode=sweep.sweep_mode, registry=registry,
                    data_dir=self._data_dir)
                for index, response in zip(indices, responses):
                    ordered[index] = response
            return ordered  # type: ignore[return-value]
        workers = self._worker_count(len(groups))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures: List[Future] = [
                pool.submit(_execute_group_payload,
                            [sweep.requests[index].to_dict() for index in indices],
                            sweep.sweep_mode, self._data_dir)
                for indices in groups
            ]
            for indices, future in zip(groups, futures):
                try:
                    payloads = future.result()
                    responses = [AnonymizationResponse.from_dict(payload)
                                 for payload in payloads]
                except Exception as exc:  # worker crash / pool breakage
                    responses = [AnonymizationResponse.failure(
                        sweep.requests[index], exc) for index in indices]
                for index, response in zip(indices, responses):
                    ordered[index] = response
        return ordered  # type: ignore[return-value]
