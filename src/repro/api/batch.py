"""Batch execution of anonymization requests across worker processes.

A :class:`BatchRunner` fans a list of :class:`AnonymizationRequest` records
over a ``concurrent.futures.ProcessPoolExecutor``.  Requests cross the
process boundary as plain dictionaries (the JSON form of the request), so
workers only need the default registry — the built-in algorithms register
themselves when :mod:`repro` is imported in the worker.  Custom registries
with process-local registrations therefore require ``max_workers=0``
(in-process execution), which is also the deterministic mode used in tests.

:meth:`BatchRunner.run_sweep` fans θ-sweep *groups* (not single requests)
across the pool: each group is one checkpointed anonymization pass
(:mod:`repro.api.theta_sweep`), so a worker amortizes a whole θ grid instead of
re-running the anonymization per grid point.  :meth:`BatchRunner.run_grid`
fans *θ-sweep groups* over the zero-copy shared-memory data plane
(:mod:`repro.api.shm`): the parent loads each sample group's graph and runs
its L_max distance computation exactly once, publishes both to
shared-memory segments, and workers attach read-only views — so even a
single-sample grid parallelizes across all cores with zero redundant
loads or BFS runs.  ``shared_memory=False`` falls back to fanning whole
*sample groups*, each worker re-deriving its own artifacts.

Every pool is started with an initializer that installs a process-level
:class:`~repro.api.cache.ExecutionCache` in the worker, so a worker loads
each dataset/size/seed sample once across **all** the groups it executes
(workers are reused between submissions) instead of reloading it per group.

Guarantees:

* **Ordering** — responses come back in request order regardless of which
  worker finished first.
* **Failure isolation** — an exception inside one request becomes an error
  response (``response.error`` set, ``success=False``) and never aborts
  the rest of the batch; sweep groups isolate failures at group
  granularity.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro.api.progress import ProgressObserver
from repro.api.registry import AnonymizerRegistry
from repro.api.requests import AnonymizationRequest, AnonymizationResponse

if TYPE_CHECKING:  # pragma: no cover — avoids an import cycle at runtime
    from repro.api.cache import ExecutionCache, GridStats
    from repro.api.shm import ArenaDescriptor
    from repro.api.sweeps import GridRequest
    from repro.api.theta_sweep import SweepRequest

#: Process-level cache of the current worker (installed by the pool
#: initializer; ``None`` in the parent process and in unpooled execution).
_WORKER_CACHE: Optional["ExecutionCache"] = None


def _initialize_worker(data_dir: Optional[str]) -> None:
    """Pool initializer: give this worker process its execution cache."""
    global _WORKER_CACHE
    from repro.api.cache import ExecutionCache
    from repro.core.scan_pool import mark_pool_worker

    # θ-group workers already saturate the machine; nested scan pools
    # inside them would oversubscribe it (DESIGN.md §14).
    mark_pool_worker()
    _WORKER_CACHE = ExecutionCache(data_dir=data_dir)


def worker_cache() -> Optional["ExecutionCache"]:
    """The current process's worker cache, if one was installed."""
    return _WORKER_CACHE


def execute_request(request: AnonymizationRequest, *,
                    registry: Optional[AnonymizerRegistry] = None,
                    observer: Optional[ProgressObserver] = None,
                    data_dir: Optional[str] = None) -> AnonymizationResponse:
    """Run one request, converting any exception into an error response."""
    from repro.api.facade import anonymize

    try:
        return anonymize(request, registry=registry, observer=observer,
                         data_dir=data_dir)
    except Exception as exc:  # noqa: BLE001 — isolation is the contract
        return AnonymizationResponse.failure(request, exc)


def _execute_payload(payload: Dict[str, Any], data_dir: Optional[str]) -> Dict[str, Any]:
    """Worker-side entry point: dict in, dict out (must stay module-level
    so it is picklable by the process pool)."""
    request = AnonymizationRequest.from_dict(payload)
    return execute_request(request, data_dir=data_dir).to_dict()


def _execute_group_payload(payloads: List[Dict[str, Any]], sweep_mode: str,
                           data_dir: Optional[str],
                           l_max_hint: Optional[int] = None) -> List[Dict[str, Any]]:
    """Worker-side entry point for one θ-sweep group (module-level for pickling)."""
    from repro.api.theta_sweep import execute_sweep_group

    requests = [AnonymizationRequest.from_dict(payload) for payload in payloads]
    graph = initial_distances = baseline = None
    cache = worker_cache()
    if cache is not None and sweep_mode != "independent":
        # The worker's process-level cache: groups sharing a sample load it
        # once per worker instead of once per group, and the per-sample
        # baseline and L-bounded matrix are likewise derived once.
        # ``l_max_hint`` carries the sweep-wide maximum L of this sample's
        # incremental groups, so a worker executing an L sweep computes the
        # matrix once at L_max instead of once per distinct L.
        first = requests[0]
        try:
            graph = cache.graph_for(first)
            if first.evaluation_mode == "incremental":
                initial_distances = cache.distances_for(
                    first, max(l_max_hint or 1, first.length_threshold))
            if any(request.include_utility for request in requests):
                baseline = cache.baseline_for(first)
        except Exception as exc:  # noqa: BLE001 — same isolation as the group
            return [AnonymizationResponse.failure(request, exc).to_dict()
                    for request in requests]
    responses = execute_sweep_group(requests, sweep_mode=sweep_mode,
                                    data_dir=data_dir, graph=graph,
                                    initial_distances=initial_distances,
                                    baseline=baseline)
    return [response.to_dict() for response in responses]


def _execute_sample_group_payload(payloads: List[Dict[str, Any]],
                                  sweep_mode: str,
                                  data_dir: Optional[str],
                                  on_error: str = "isolate") -> Dict[str, Any]:
    """Worker-side entry point for one grid sample group (module-level).

    Returns ``{"responses": [...], "stats": (sample_loads,
    distance_computes)}`` — the response dicts plus this task's counter
    deltas, so the parent can aggregate grid-wide work totals.
    """
    from repro.api.cache import ExecutionCache
    from repro.api.sweeps import execute_sample_group

    requests = [AnonymizationRequest.from_dict(payload) for payload in payloads]
    cache = worker_cache() or ExecutionCache(data_dir=data_dir)
    loads, computes = cache.sample_loads, cache.distance_computes
    try:
        responses = execute_sample_group(requests, sweep_mode=sweep_mode,
                                         data_dir=data_dir, cache=cache,
                                         on_error=on_error)
    finally:
        # A sample group is handed to a worker exactly once, so its entries
        # can never be hit again — drop them to bound worker memory.
        cache.release(requests[0])
    return {"responses": [response.to_dict() for response in responses],
            "stats": (cache.sample_loads - loads,
                      cache.distance_computes - computes)}


def _execute_shm_group_payload(payloads: List[Dict[str, Any]],
                               sweep_mode: str,
                               data_dir: Optional[str],
                               descriptor: "ArenaDescriptor",
                               baseline: Optional[Any] = None) -> Dict[str, Any]:
    """Worker-side entry point for one θ-sweep group on the shm plane.

    ``descriptor`` names the parent-published arena of this group's sample:
    the worker adopts it into its process-level cache (attaching once per
    arena, no disk I/O, no engine run), derives the group's initial matrix
    by thresholding the shared L_max view, and executes the θ-sweep group
    exactly like the serial path.  ``baseline`` is the parent-computed
    utility baseline (``None`` when no request of the group needs one).
    Returns the same ``{"responses", "stats"}`` envelope as
    :func:`_execute_sample_group_payload`; the stats deltas stay (0, 0)
    unless the worker had to fall back to real work.
    """
    from repro.api.cache import ExecutionCache
    from repro.api.theta_sweep import execute_sweep_group

    requests = [AnonymizationRequest.from_dict(payload) for payload in payloads]
    cache = worker_cache() or ExecutionCache(data_dir=data_dir)
    loads, computes = cache.sample_loads, cache.distance_computes
    first = requests[0]
    try:
        cache.adopt_arena(first, descriptor)
        graph = cache.graph_for(first)
        initial_distances = None
        if first.evaluation_mode == "incremental":
            l_max = descriptor.l_max_for(first.engine)
            initial_distances = cache.distances_for(
                first, max(l_max or 1, first.length_threshold))
    except Exception as exc:  # noqa: BLE001 — same isolation as the group
        return {"responses": [AnonymizationResponse.failure(request, exc).to_dict()
                              for request in requests],
                "stats": (cache.sample_loads - loads,
                          cache.distance_computes - computes)}
    responses = execute_sweep_group(requests, sweep_mode=sweep_mode,
                                    data_dir=data_dir, graph=graph,
                                    initial_distances=initial_distances,
                                    baseline=baseline)
    return {"responses": [response.to_dict() for response in responses],
            "stats": (cache.sample_loads - loads,
                      cache.distance_computes - computes)}


class BatchRunner:
    """Execute request batches serially or across a process pool.

    Parameters
    ----------
    max_workers:
        ``0`` — run in the calling process (no pool, deterministic);
        ``None`` — one worker per CPU (capped at the batch size);
        ``n > 0`` — at most ``n`` worker processes.
    data_dir:
        Optional directory with real SNAP dataset files, forwarded to the
        dataset loaders in every worker.
    shared_memory:
        Whether :meth:`run_grid` uses the zero-copy shared-memory data
        plane when pooled.  ``None`` (default) means *on* whenever a pool
        is used; ``False`` is the escape hatch back to the sample-group
        fan-out.  Ignored with ``max_workers=0``.
    """

    def __init__(self, max_workers: Optional[int] = None, *,
                 data_dir: Optional[str] = None,
                 shared_memory: Optional[bool] = None) -> None:
        if max_workers is not None and max_workers < 0:
            raise ValueError(f"max_workers must be >= 0 or None, got {max_workers}")
        self._max_workers = max_workers
        self._data_dir = data_dir
        self._shared_memory = shared_memory

    def run(self, requests: Sequence[AnonymizationRequest]) -> List[AnonymizationResponse]:
        """Execute ``requests`` and return responses in request order."""
        requests = list(requests)
        if not requests:
            return []
        if self._max_workers == 0 or len(requests) == 1:
            return self.run_serial(requests)
        workers = self._worker_count(len(requests))
        responses: List[AnonymizationResponse] = []
        with self._pool(workers) as pool:
            futures: List[Future] = [
                pool.submit(_execute_payload, request.to_dict(), self._data_dir)
                for request in requests
            ]
            for request, future in zip(requests, futures):
                try:
                    responses.append(AnonymizationResponse.from_dict(future.result()))
                except Exception as exc:  # worker crash / pool breakage
                    responses.append(AnonymizationResponse.failure(request, exc))
        return responses

    def run_serial(self, requests: Sequence[AnonymizationRequest]) -> List[AnonymizationResponse]:
        """Execute ``requests`` one after another in this process."""
        return [execute_request(request, data_dir=self._data_dir)
                for request in requests]

    def _run_independent(self, requests: List[AnonymizationRequest],
                         registry: Optional[AnonymizerRegistry]
                         ) -> List[AnonymizationResponse]:
        """The sweep/grid opt-out path: per-request fan-out, registry honoured
        in-process (workers always resolve through the default registry)."""
        if self._max_workers == 0 and registry is not None:
            return [execute_request(request, registry=registry,
                                    data_dir=self._data_dir)
                    for request in requests]
        return self.run(requests)

    def _worker_count(self, num_jobs: int) -> int:
        """Pool size for ``num_jobs`` independent submissions."""
        workers = self._max_workers or os.cpu_count() or 1
        return min(workers, num_jobs)

    def _pool(self, workers: int) -> ProcessPoolExecutor:
        """A process pool whose workers carry a process-level execution cache."""
        return ProcessPoolExecutor(max_workers=workers,
                                   initializer=_initialize_worker,
                                   initargs=(self._data_dir,))

    # ------------------------------------------------------------------
    # θ-sweep groups
    # ------------------------------------------------------------------
    def run_sweep(self, sweep: "SweepRequest", *,
                  registry: Optional[AnonymizerRegistry] = None
                  ) -> List[AnonymizationResponse]:
        """Execute a sweep, fanning θ-sweep *groups* across the pool.

        Each group runs as one checkpointed anonymization pass; responses
        come back in request order.  ``sweep_mode="independent"`` opts out
        of grouping entirely and takes :meth:`run`'s per-request fan-out
        (per-request timeouts, failure isolation, and parallelism).  A
        custom ``registry`` is only honoured with ``max_workers=0`` —
        workers resolve algorithms through the default registry, like
        :meth:`run`.
        """
        from repro.api.theta_sweep import execute_sweep_group

        if sweep.sweep_mode == "independent":
            return self._run_independent(list(sweep.requests), registry)
        groups = sweep.groups()
        ordered: List[Optional[AnonymizationResponse]] = [None] * len(sweep.requests)
        if self._max_workers == 0 or len(groups) == 1:
            for indices in groups:
                responses = execute_sweep_group(
                    [sweep.requests[index] for index in indices],
                    sweep_mode=sweep.sweep_mode, registry=registry,
                    data_dir=self._data_dir)
                for index, response in zip(indices, responses):
                    ordered[index] = response
            return ordered  # type: ignore[return-value]
        # Sweep-wide maximum L per (sample, engine) over incremental groups:
        # a worker that executes several L groups of one sample computes the
        # shared matrix once, at the hinted bound, instead of once per L.
        from repro.api.cache import sample_key

        l_max_hints: Dict[Any, int] = {}
        for request in sweep.requests:
            if request.evaluation_mode == "incremental":
                hint_key = (sample_key(request), request.engine)
                l_max_hints[hint_key] = max(l_max_hints.get(hint_key, 1),
                                            request.length_threshold)
        workers = self._worker_count(len(groups))
        with self._pool(workers) as pool:
            futures: List[Future] = [
                pool.submit(_execute_group_payload,
                            [sweep.requests[index].to_dict() for index in indices],
                            sweep.sweep_mode, self._data_dir,
                            l_max_hints.get(
                                (sample_key(sweep.requests[indices[0]]),
                                 sweep.requests[indices[0]].engine)))
                for indices in groups
            ]
            for indices, future in zip(groups, futures):
                try:
                    payloads = future.result()
                    responses = [AnonymizationResponse.from_dict(payload)
                                 for payload in payloads]
                except Exception as exc:  # worker crash / pool breakage
                    responses = [AnonymizationResponse.failure(
                        sweep.requests[index], exc) for index in indices]
                for index, response in zip(indices, responses):
                    ordered[index] = response
        return ordered  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # multi-axis grids
    # ------------------------------------------------------------------
    def run_grid(self, grid: "GridRequest", *,
                 registry: Optional[AnonymizerRegistry] = None,
                 cache: Optional["ExecutionCache"] = None,
                 stats: Optional["GridStats"] = None
                 ) -> List[AnonymizationResponse]:
        """Execute a grid, fanning *θ-sweep groups* over shared memory.

        On the default shared-memory data plane the parent resolves each
        sample group's graph and runs its L_max bounded-distance
        computation exactly once, publishes both to shared-memory segments
        (:mod:`repro.api.shm`), and fans the sample's θ-sweep groups —
        each a checkpointed anonymization pass — across the pool carrying
        only arena descriptors.  ``shared_memory=False`` (on the runner)
        falls back to fanning whole *sample groups*: every request sharing
        a dataset/size/seed runs on one worker that derives its own
        artifacts.  Responses come back in request order and are
        bit-identical between the planes and the ``max_workers=0`` serial
        path.  ``sweep_mode="independent"`` opts out of all grouping and
        takes :meth:`run`'s per-request fan-out.  A custom ``registry``
        (or an injected ``cache``, the instrumentation/sharing hook of the
        benches) is only honoured with ``max_workers=0``; workers build
        their own process-level caches.

        ``stats``, when given, accumulates grid-wide sample-load and
        distance-computation counts across every participating process;
        its ``tracked`` flag is set on the paths that can observe them
        (all grouped executions — not independent mode).

        The grid's ``on_error`` policy governs failure handling:
        ``"isolate"`` (default) keeps the historical behaviour, while
        ``"fail_fast"`` raises :class:`~repro.errors.GridAbortedError` on
        the first failed request, cancelling not-yet-started work
        (in-flight workers finish their current group).
        """
        from repro.api.cache import ExecutionCache
        from repro.api.sweeps import _abort_on_error, execute_sample_group
        from repro.errors import GridAbortedError

        on_error = getattr(grid, "on_error", "isolate")
        if grid.sweep_mode == "independent":
            responses = self._run_independent(list(grid.requests), registry)
            if on_error == "fail_fast":
                _abort_on_error(responses)
            return responses
        groups = grid.sample_groups()
        pooled = self._max_workers != 0 and len(grid.groups()) > 1
        use_shm = True if self._shared_memory is None else self._shared_memory
        if pooled and use_shm and registry is None and cache is None:
            return self._run_grid_shared(grid, on_error, stats)
        ordered: List[Optional[AnonymizationResponse]] = [None] * len(grid.requests)
        if self._max_workers != 0 and not use_shm and len(groups) == 1 \
                and cache is None and registry is None and on_error == "isolate":
            # Legacy plane, single sample group: nothing to fan at sample
            # granularity, so take run_sweep's θ-group fan-out (each
            # worker derives its own sample artifacts).  On the shm plane
            # a single θ-group grid instead runs serially below — one
            # group has no parallelism to exploit, and the serial path
            # tracks the work counters.
            from repro.api.theta_sweep import SweepRequest

            return self.run_sweep(SweepRequest(requests=grid.requests,
                                               sweep_mode=grid.sweep_mode))
        if self._max_workers == 0 or len(groups) == 1:
            owned = cache is None
            if owned:
                cache = ExecutionCache(data_dir=self._data_dir)
            loads = cache.sample_loads
            computes = cache.distance_computes
            for indices in groups:
                group = [grid.requests[index] for index in indices]
                responses = execute_sample_group(
                    group, sweep_mode=grid.sweep_mode, registry=registry,
                    data_dir=self._data_dir, cache=cache, on_error=on_error)
                if owned:
                    # Each sample group is visited exactly once, so its
                    # entries can be dropped immediately to bound peak
                    # memory (an injected cache keeps caller semantics).
                    cache.release(group[0])
                for index, response in zip(indices, responses):
                    ordered[index] = response
            if stats is not None:
                stats.add(cache.sample_loads - loads,
                          cache.distance_computes - computes)
                stats.tracked = True
            return ordered  # type: ignore[return-value]
        workers = self._worker_count(len(groups))
        with self._pool(workers) as pool:
            futures: List[Future] = [
                pool.submit(_execute_sample_group_payload,
                            [grid.requests[index].to_dict() for index in indices],
                            grid.sweep_mode, self._data_dir, on_error)
                for indices in groups
            ]
            for indices, future in zip(groups, futures):
                try:
                    result = future.result()
                    responses = [AnonymizationResponse.from_dict(payload)
                                 for payload in result["responses"]]
                    if stats is not None:
                        stats.add(*result["stats"])
                except GridAbortedError:
                    for pending in futures:
                        pending.cancel()
                    raise
                except Exception as exc:  # worker crash / pool breakage
                    if on_error == "fail_fast":
                        for pending in futures:
                            pending.cancel()
                        raise GridAbortedError(
                            f"grid aborted (on_error='fail_fast'): worker "
                            f"failed with {type(exc).__name__}: {exc}") from exc
                    responses = [AnonymizationResponse.failure(
                        grid.requests[index], exc) for index in indices]
                for index, response in zip(indices, responses):
                    ordered[index] = response
        if stats is not None:
            stats.tracked = True
        return ordered  # type: ignore[return-value]

    def _run_grid_shared(self, grid: "GridRequest", on_error: str,
                         stats: Optional["GridStats"]
                         ) -> List[AnonymizationResponse]:
        """The zero-copy plane: θ-sweep groups fan out over shared arenas.

        For each sample group the **parent** loads the graph, runs one
        L_max bounded-distance computation per engine, derives the utility
        baseline, and publishes graph + matrices to a
        :class:`~repro.api.shm.SharedSampleArena`; the sample's θ-sweep
        groups are then submitted to the pool carrying the arena
        descriptor (and the pickled baseline).  Publication is pipelined:
        while workers chew on one sample's groups the parent prepares the
        next sample.  Each arena is unlinked the moment its last θ-group
        completes — and unconditionally in the ``finally`` block, so a
        worker dying mid-group (even SIGKILL) can never leak ``/dev/shm``
        segments: cleanup is owned by the parent alone.
        """
        from repro.api.cache import ExecutionCache
        from repro.api.shm import SharedSampleArena, TiledMatrixSpec
        from repro.api.sweeps import _abort_on_error, plan_sample_group
        from repro.errors import GridAbortedError
        from repro.graph.matrices import distance_dtype

        parent = ExecutionCache(data_dir=self._data_dir)
        ordered: List[Optional[AnonymizationResponse]] = [None] * len(grid.requests)
        workers = self._worker_count(len(grid.groups()))
        arenas: List[SharedSampleArena] = []
        # (global todo indices, future, owning arena) per submitted θ-group,
        # in submission order — same-arena tasks are contiguous, so an
        # arena can be unlinked when its last entry is collected.
        tasks: List[Any] = []

        def _cancel_pending() -> None:
            for _todo, pending, _arena in tasks:
                pending.cancel()

        try:
            with self._pool(workers) as pool:
                for sample_indices in grid.sample_groups():
                    group = [grid.requests[index] for index in sample_indices]
                    try:
                        graph = parent.graph_for(group[0])
                    except Exception as exc:  # noqa: BLE001 — isolation contract
                        if on_error == "fail_fast":
                            _cancel_pending()
                            raise GridAbortedError(
                                f"grid aborted (on_error='fail_fast'): sample "
                                f"load failed with {type(exc).__name__}: {exc}"
                                ) from exc
                        for index in sample_indices:
                            ordered[index] = AnonymizationResponse.failure(
                                grid.requests[index], exc)
                        continue
                    plans, l_max_by_engine = plan_sample_group(group)
                    matrices: Dict[str, Any] = {}
                    tiled: Dict[str, TiledMatrixSpec] = {}
                    engine_errors: Dict[str, Exception] = {}
                    for engine, l_max in l_max_by_engine.items():
                        probe = next(request for request in group
                                     if request.engine == engine
                                     and request.evaluation_mode == "incremental")
                        try:
                            # Tiled-tier engines never materialize the dense
                            # L_max matrix: the parent publishes the CSR
                            # adjacency and store geometry instead, and the
                            # workers compute tiles lazily on their side of
                            # the arena.  (resolve also fires the up-front
                            # memory guard for explicit dense over budget.)
                            config = probe.store_config()
                            tier = config.resolve(graph.num_vertices,
                                                  distance_dtype(l_max))
                            if tier == "tiled":
                                tiled[engine] = TiledMatrixSpec(
                                    l_max=l_max,
                                    budget_bytes=config.budget_bytes)
                            else:
                                matrices[engine] = (
                                    parent.base_matrix_for(probe, l_max), l_max)
                        except Exception as exc:  # noqa: BLE001 — e.g. bad engine
                            if on_error == "fail_fast":
                                _cancel_pending()
                                raise GridAbortedError(
                                    f"grid aborted (on_error='fail_fast'): "
                                    f"distance matrix failed with "
                                    f"{type(exc).__name__}: {exc}") from exc
                            engine_errors[engine] = exc
                    baseline = None
                    baseline_error: Optional[Exception] = None
                    if any(request.include_utility for request in group):
                        try:
                            baseline = parent.baseline_for(group[0])
                        except Exception as exc:  # noqa: BLE001
                            if on_error == "fail_fast":
                                _cancel_pending()
                                raise GridAbortedError(
                                    f"grid aborted (on_error='fail_fast'): "
                                    f"baseline failed with "
                                    f"{type(exc).__name__}: {exc}") from exc
                            baseline_error = exc
                    arena = SharedSampleArena.publish(graph, matrices,
                                                      tiled=tiled)
                    arenas.append(arena)
                    # The arena now carries the sample; drop the parent's
                    # private copies so peak memory stays one sample deep
                    # (the counters survive release).
                    parent.release(group[0])
                    for plan in plans:
                        todo = [sample_indices[local] for local in plan.todo]
                        sub = [grid.requests[index] for index in todo]
                        first = sub[0]
                        failure: Optional[Exception] = None
                        if (first.evaluation_mode == "incremental"
                                and first.engine in engine_errors):
                            failure = engine_errors[first.engine]
                        elif baseline_error is not None and any(
                                request.include_utility for request in sub):
                            failure = baseline_error
                        if failure is not None:
                            for index in todo:
                                ordered[index] = AnonymizationResponse.failure(
                                    grid.requests[index], failure)
                            continue
                        needs_baseline = any(request.include_utility
                                             for request in sub)
                        future = pool.submit(
                            _execute_shm_group_payload,
                            [request.to_dict() for request in sub],
                            grid.sweep_mode, self._data_dir,
                            arena.descriptor,
                            baseline if needs_baseline else None)
                        tasks.append((todo, future, arena))
                for position, (todo, future, arena) in enumerate(tasks):
                    try:
                        result = future.result()
                        responses = [AnonymizationResponse.from_dict(payload)
                                     for payload in result["responses"]]
                        if stats is not None:
                            stats.add(*result["stats"])
                    except Exception as exc:  # worker crash / pool breakage
                        if on_error == "fail_fast":
                            _cancel_pending()
                            raise GridAbortedError(
                                f"grid aborted (on_error='fail_fast'): worker "
                                f"failed with {type(exc).__name__}: {exc}"
                                ) from exc
                        responses = [AnonymizationResponse.failure(
                            grid.requests[index], exc) for index in todo]
                    if on_error == "fail_fast":
                        try:
                            _abort_on_error(responses)
                        except GridAbortedError:
                            _cancel_pending()
                            raise
                    for index, response in zip(todo, responses):
                        ordered[index] = response
                    # Unlink eagerly once every θ-group of this arena has
                    # completed (same-arena tasks are contiguous); workers
                    # that attached keep their mappings (POSIX semantics).
                    if (position + 1 == len(tasks)
                            or tasks[position + 1][2] is not arena):
                        arena.unlink()
        finally:
            # The crash-safety guarantee: whatever happened above — worker
            # SIGKILL, pool breakage, fail_fast abort — the parent removes
            # every segment it created (unlink is idempotent).
            for arena in arenas:
                arena.unlink()
        if stats is not None:
            stats.add(parent.sample_loads, parent.distance_computes)
            stats.tracked = True
        return ordered  # type: ignore[return-value]
