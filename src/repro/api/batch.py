"""Batch execution of anonymization requests across worker processes.

A :class:`BatchRunner` fans a list of :class:`AnonymizationRequest` records
over a ``concurrent.futures.ProcessPoolExecutor``.  Requests cross the
process boundary as plain dictionaries (the JSON form of the request), so
workers only need the default registry — the built-in algorithms register
themselves when :mod:`repro` is imported in the worker.  Custom registries
with process-local registrations therefore require ``max_workers=0``
(in-process execution), which is also the deterministic mode used in tests.

Guarantees:

* **Ordering** — responses come back in request order regardless of which
  worker finished first.
* **Failure isolation** — an exception inside one request becomes an error
  response (``response.error`` set, ``success=False``) and never aborts
  the rest of the batch.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence

from repro.api.progress import ProgressObserver
from repro.api.registry import AnonymizerRegistry
from repro.api.requests import AnonymizationRequest, AnonymizationResponse


def execute_request(request: AnonymizationRequest, *,
                    registry: Optional[AnonymizerRegistry] = None,
                    observer: Optional[ProgressObserver] = None,
                    data_dir: Optional[str] = None) -> AnonymizationResponse:
    """Run one request, converting any exception into an error response."""
    from repro.api.facade import anonymize

    try:
        return anonymize(request, registry=registry, observer=observer,
                         data_dir=data_dir)
    except Exception as exc:  # noqa: BLE001 — isolation is the contract
        return AnonymizationResponse.failure(request, exc)


def _execute_payload(payload: Dict[str, Any], data_dir: Optional[str]) -> Dict[str, Any]:
    """Worker-side entry point: dict in, dict out (must stay module-level
    so it is picklable by the process pool)."""
    request = AnonymizationRequest.from_dict(payload)
    return execute_request(request, data_dir=data_dir).to_dict()


class BatchRunner:
    """Execute request batches serially or across a process pool.

    Parameters
    ----------
    max_workers:
        ``0`` — run in the calling process (no pool, deterministic);
        ``None`` — one worker per CPU (capped at the batch size);
        ``n > 0`` — at most ``n`` worker processes.
    data_dir:
        Optional directory with real SNAP dataset files, forwarded to the
        dataset loaders in every worker.
    """

    def __init__(self, max_workers: Optional[int] = None, *,
                 data_dir: Optional[str] = None) -> None:
        if max_workers is not None and max_workers < 0:
            raise ValueError(f"max_workers must be >= 0 or None, got {max_workers}")
        self._max_workers = max_workers
        self._data_dir = data_dir

    def run(self, requests: Sequence[AnonymizationRequest]) -> List[AnonymizationResponse]:
        """Execute ``requests`` and return responses in request order."""
        requests = list(requests)
        if not requests:
            return []
        if self._max_workers == 0 or len(requests) == 1:
            return self.run_serial(requests)
        workers = self._max_workers or os.cpu_count() or 1
        workers = min(workers, len(requests))
        responses: List[AnonymizationResponse] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures: List[Future] = [
                pool.submit(_execute_payload, request.to_dict(), self._data_dir)
                for request in requests
            ]
            for request, future in zip(requests, futures):
                try:
                    responses.append(AnonymizationResponse.from_dict(future.result()))
                except Exception as exc:  # worker crash / pool breakage
                    responses.append(AnonymizationResponse.failure(request, exc))
        return responses

    def run_serial(self, requests: Sequence[AnonymizationRequest]) -> List[AnonymizationResponse]:
        """Execute ``requests`` one after another in this process."""
        return [execute_request(request, data_dir=self._data_dir)
                for request in requests]
