"""Progress instrumentation for long-running anonymization loops.

Every anonymizer's ``anonymize()`` accepts an optional observer implementing
the :class:`ProgressObserver` protocol:

* ``on_evaluation(evaluations)`` — called after each opacity evaluation
  (the unit of work that dominates runtime);
* ``on_step(step, result)`` — called after each applied greedy step;
* ``on_checkpoint(checkpoint)`` — called when a checkpointed θ-schedule
  pass crosses a grid point (an ``AnonymizationCheckpoint``), so long
  sweeps report per-θ progress live instead of only at materialization;
* ``should_stop()`` — polled between evaluations and between steps; return
  ``True`` to stop the run early (the anonymizer then returns a
  best-effort result with ``stop_reason="observer"``).

``on_checkpoint`` is dispatched with a ``getattr`` guard, so observers
written before the hook existed (without the method) keep working.

Concrete observers cover the common cases: wall-clock timeouts
(:class:`TimeoutObserver`), cooperative cancellation
(:class:`CancellationToken`), step budgets (:class:`StepLimitObserver`),
live console reporting (:class:`ConsoleProgressObserver`), and composition
(:class:`CompositeObserver`).  This module must stay dependency-light — it
is imported by :mod:`repro.core.anonymizer`.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Callable, List, Optional, Protocol, TextIO, runtime_checkable


@runtime_checkable
class ProgressObserver(Protocol):
    """Callbacks threaded through the greedy anonymization loops."""

    def on_evaluation(self, evaluations: int) -> None:
        """One opacity evaluation finished (``evaluations`` so far this run)."""

    def on_step(self, step: Any, result: Any) -> None:
        """One greedy step was applied (``step`` is an ``AnonymizationStep``)."""

    def should_stop(self) -> bool:
        """Return ``True`` to stop the run at the next safe point."""

    # ``on_checkpoint(checkpoint)`` is an *optional* fourth callback — it is
    # deliberately left off the Protocol so pre-hook observers still satisfy
    # ``isinstance(obs, ProgressObserver)``; dispatch goes through
    # :func:`notify_checkpoint`, which getattr-guards the lookup.


def notify_checkpoint(observer: Any, checkpoint: Any) -> None:
    """Dispatch ``on_checkpoint`` if the observer implements it.

    The hook postdates the observer protocol, so third-party observers may
    lack the method; the guard keeps them working unchanged.
    """
    hook = getattr(observer, "on_checkpoint", None)
    if hook is not None:
        hook(checkpoint)


def notify_group(observer: Any, indices: Any) -> None:
    """Dispatch ``on_group(indices)`` if the observer implements it.

    Grid executors call it right before running a θ-group (or a single
    independent request) with the indices of the requests about to run, so
    checkpoint-collecting observers can attribute the ``on_checkpoint``
    stream that follows.  Same getattr-guard contract as
    :func:`notify_checkpoint`.
    """
    hook = getattr(observer, "on_group", None)
    if hook is not None:
        hook(tuple(indices))


class AnonymizationStopped(Exception):
    """Raised inside a greedy step when the observer requests a stop.

    The anonymizers catch it at the step boundary (with the working graph
    already restored to a consistent state) and return a best-effort
    result; it never escapes ``anonymize()``.
    """


class NullObserver:
    """The no-op observer used when none is supplied."""

    def on_evaluation(self, evaluations: int) -> None:
        pass

    def on_step(self, step: Any, result: Any) -> None:
        pass

    def on_checkpoint(self, checkpoint: Any) -> None:
        pass

    def on_group(self, indices: Any) -> None:
        pass

    def should_stop(self) -> bool:
        return False


#: Shared no-op instance (observers are stateless unless documented).
NULL_OBSERVER = NullObserver()


class StepLimitObserver(NullObserver):
    """Stop after ``max_steps`` applied greedy steps."""

    def __init__(self, max_steps: int) -> None:
        if max_steps < 0:
            raise ValueError(f"max_steps must be >= 0, got {max_steps}")
        self._max_steps = max_steps
        self.steps_seen = 0

    def on_step(self, step: Any, result: Any) -> None:
        self.steps_seen += 1

    def should_stop(self) -> bool:
        return self.steps_seen >= self._max_steps


class TimeoutObserver(NullObserver):
    """Stop once ``limit_seconds`` of wall-clock time have elapsed.

    The clock starts at construction, so build the observer right before
    calling ``anonymize()`` (the facade does exactly that when a request
    carries ``timeout_seconds``).
    """

    def __init__(self, limit_seconds: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if limit_seconds <= 0:
            raise ValueError(f"limit_seconds must be > 0, got {limit_seconds}")
        self._limit = limit_seconds
        self._clock = clock
        self._started = clock()

    @property
    def elapsed(self) -> float:
        """Seconds elapsed since construction."""
        return self._clock() - self._started

    def should_stop(self) -> bool:
        return self.elapsed >= self._limit


class CancellationToken(NullObserver):
    """Cooperative cancellation flag, safe to set from another thread."""

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        """Request the run to stop at the next safe point."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    def should_stop(self) -> bool:
        return self._cancelled


class ConsoleProgressObserver(NullObserver):
    """Print one line per applied step (and a heartbeat while evaluating)."""

    def __init__(self, stream: Optional[TextIO] = None,
                 evaluation_interval: int = 0) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._interval = evaluation_interval

    def on_evaluation(self, evaluations: int) -> None:
        if self._interval and evaluations % self._interval == 0:
            print(f"  ... {evaluations} opacity evaluations", file=self._stream)

    def on_step(self, step: Any, result: Any) -> None:
        edges = ",".join(f"{u}-{v}" for u, v in step.edges)
        print(f"step {step.index + 1}: {step.operation} {edges} "
              f"-> max opacity {step.max_opacity_after:.3f}", file=self._stream)

    def on_checkpoint(self, checkpoint: Any) -> None:
        print(f"theta={checkpoint.theta:.2f} crossed after "
              f"{checkpoint.num_steps} step(s): opacity="
              f"{checkpoint.max_opacity:.3f} t={checkpoint.runtime_seconds:.2f}s",
              file=self._stream)


class CallbackObserver(NullObserver):
    """Adapter building an observer from plain callables."""

    def __init__(self,
                 on_step: Optional[Callable[[Any, Any], None]] = None,
                 on_evaluation: Optional[Callable[[int], None]] = None,
                 should_stop: Optional[Callable[[], bool]] = None,
                 on_checkpoint: Optional[Callable[[Any], None]] = None) -> None:
        self._on_step = on_step
        self._on_evaluation = on_evaluation
        self._should_stop = should_stop
        self._on_checkpoint = on_checkpoint

    def on_evaluation(self, evaluations: int) -> None:
        if self._on_evaluation is not None:
            self._on_evaluation(evaluations)

    def on_step(self, step: Any, result: Any) -> None:
        if self._on_step is not None:
            self._on_step(step, result)

    def on_checkpoint(self, checkpoint: Any) -> None:
        if self._on_checkpoint is not None:
            self._on_checkpoint(checkpoint)

    def should_stop(self) -> bool:
        return self._should_stop() if self._should_stop is not None else False


class CheckpointBuffer(NullObserver):
    """Collect the ``(group indices, checkpoint)`` stream of a grid run.

    Executors announce each θ-group via ``on_group`` just before running
    it; the checkpoints that follow belong to that group.  The buffer
    records every pair (thread-safe — the batch pool may drive several
    sample groups concurrently only in worker processes, but the in-process
    path shares one observer across groups) and optionally forwards each
    pair to a ``sink(indices, checkpoint)`` callback, which is how the
    service layer streams checkpoints into the run store as they happen.
    """

    def __init__(self, sink: Optional[Callable[[Any, Any], None]] = None) -> None:
        self._lock = threading.Lock()
        self._indices: Any = ()
        self._sink = sink
        self.records: List[Any] = []

    def on_group(self, indices: Any) -> None:
        with self._lock:
            self._indices = tuple(indices)

    def on_checkpoint(self, checkpoint: Any) -> None:
        with self._lock:
            indices = self._indices
            self.records.append((indices, checkpoint))
        if self._sink is not None:
            self._sink(indices, checkpoint)

    @property
    def latest(self) -> Optional[Any]:
        """The most recent ``(indices, checkpoint)`` pair, if any."""
        with self._lock:
            return self.records[-1] if self.records else None


class CompositeObserver:
    """Fan out to several observers; stops when any one asks to stop."""

    def __init__(self, *observers: ProgressObserver) -> None:
        self._observers: List[ProgressObserver] = [obs for obs in observers
                                                   if obs is not None]

    def on_evaluation(self, evaluations: int) -> None:
        for obs in self._observers:
            obs.on_evaluation(evaluations)

    def on_step(self, step: Any, result: Any) -> None:
        for obs in self._observers:
            obs.on_step(step, result)

    def on_checkpoint(self, checkpoint: Any) -> None:
        for obs in self._observers:
            notify_checkpoint(obs, checkpoint)

    def on_group(self, indices: Any) -> None:
        for obs in self._observers:
            notify_group(obs, indices)

    def should_stop(self) -> bool:
        return any(obs.should_stop() for obs in self._observers)


def combine_observers(*observers: Optional[ProgressObserver]) -> ProgressObserver:
    """Collapse optional observers into one (``NULL_OBSERVER`` when empty)."""
    present = [obs for obs in observers if obs is not None]
    if not present:
        return NULL_OBSERVER
    if len(present) == 1:
        return present[0]
    return CompositeObserver(*present)
