"""Request/response records of the service-layer API.

An :class:`AnonymizationRequest` fixes everything about one anonymization
job — the input graph (either a named dataset sample or an explicit edge
list), the algorithm name resolved through the registry, and the algorithm
parameters.  An :class:`AnonymizationResponse` carries the outcome,
including the full anonymized edge list, so both records can cross process
boundaries: every field survives a JSON round-trip
(``from_json(to_json(x)) == x``), which is what the batch workers and the
``repro-lopacity batch`` job specs rely on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.graph.graph import Edge, Graph, normalize_edge

EdgeTuple = Tuple[Edge, ...]


def _normalize_edges(edges: Any) -> EdgeTuple:
    """Coerce any iterable of 2-sequences into a sorted tuple of edges."""
    return tuple(sorted(normalize_edge(int(u), int(v)) for u, v in edges))


@dataclass(frozen=True)
class AnonymizationRequest:
    """One anonymization job, fully described by plain data.

    The input graph comes either from a built-in dataset
    (``dataset`` + ``sample_size``) or from an explicit ``edges`` tuple
    (with an optional ``num_vertices`` for trailing isolated vertices);
    exactly one of the two sources must be given.  Algorithm parameters
    set to ``None`` fall back to the algorithm's own defaults.
    """

    algorithm: str = "rem"
    # --- graph source -------------------------------------------------
    dataset: Optional[str] = None
    sample_size: Optional[int] = None
    edges: Optional[EdgeTuple] = None
    num_vertices: Optional[int] = None
    # --- algorithm parameters ----------------------------------------
    theta: float = 0.5
    length_threshold: int = 1
    lookahead: int = 1
    seed: Optional[int] = 0
    engine: str = "numpy"
    evaluation_mode: str = "incremental"
    scan_mode: str = "batched"
    scan_workers: Optional[int] = None
    sweep_mode: str = "checkpointed"
    max_steps: Optional[int] = None
    insertion_candidate_cap: Optional[int] = None
    swap_sample_size: Optional[int] = None
    scale_tier: str = "auto"
    scale_budget_bytes: Optional[int] = None
    # --- execution options -------------------------------------------
    timeout_seconds: Optional[float] = None
    include_utility: bool = False
    request_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.edges is not None:
            object.__setattr__(self, "edges", _normalize_edges(self.edges))
        has_dataset = self.dataset is not None
        has_edges = self.edges is not None
        if has_dataset == has_edges:
            raise ConfigurationError(
                "exactly one graph source required: either dataset/sample_size "
                "or an explicit edges list")
        if has_dataset and self.sample_size is None:
            raise ConfigurationError("sample_size is required with a dataset source")
        if not self.algorithm or not isinstance(self.algorithm, str):
            raise ConfigurationError(f"algorithm must be a non-empty string, got {self.algorithm!r}")
        if not 0.0 <= self.theta <= 1.0:
            raise ConfigurationError(f"theta must be in [0, 1], got {self.theta}")
        if self.length_threshold < 1:
            raise ConfigurationError("length_threshold must be >= 1")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ConfigurationError("timeout_seconds must be > 0")
        if self.scan_workers is not None and self.scan_workers < 0:
            raise ConfigurationError(
                f"scan_workers must be >= 0, got {self.scan_workers}")
        from repro.graph.distance_store import validate_scale_tier
        validate_scale_tier(self.scale_tier)
        if self.scale_budget_bytes is not None and self.scale_budget_bytes < 1:
            raise ConfigurationError(
                f"scale_budget_bytes must be >= 1, got {self.scale_budget_bytes}")

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def algorithm_params(self) -> Dict[str, Any]:
        """The parameter mapping handed to ``AnonymizerSpec.create``."""
        return {
            "theta": self.theta,
            "length_threshold": self.length_threshold,
            "lookahead": self.lookahead,
            "seed": self.seed,
            "engine": self.engine,
            "evaluation_mode": self.evaluation_mode,
            "scan_mode": self.scan_mode,
            "scan_workers": self.scan_workers,
            "sweep_mode": self.sweep_mode,
            "max_steps": self.max_steps,
            "insertion_candidate_cap": self.insertion_candidate_cap,
            "swap_sample_size": self.swap_sample_size,
            "scale_tier": self.scale_tier,
            "scale_budget_bytes": self.scale_budget_bytes,
        }

    def store_config(self):
        """The :class:`~repro.graph.distance_store.StoreConfig` this request asks for."""
        from repro.graph.distance_store import (
            DEFAULT_SCALE_BUDGET_BYTES, StoreConfig)
        budget = (self.scale_budget_bytes if self.scale_budget_bytes is not None
                  else DEFAULT_SCALE_BUDGET_BYTES)
        return StoreConfig(tier=self.scale_tier, budget_bytes=budget)

    def resolve_graph(self, data_dir: Optional[str] = None) -> Graph:
        """Materialize the input graph described by this request."""
        if self.edges is not None:
            implied = 1 + max((max(u, v) for u, v in self.edges), default=-1)
            num_vertices = self.num_vertices if self.num_vertices is not None else implied
            if num_vertices < implied:
                raise ConfigurationError(
                    f"num_vertices={num_vertices} is smaller than the largest "
                    f"endpoint implies ({implied})")
            return Graph(num_vertices, edges=self.edges)
        from repro.datasets import load_sample
        return load_sample(self.dataset, self.sample_size,
                           data_dir=data_dir, seed=self.seed)

    def with_overrides(self, **overrides: Any) -> "AnonymizationRequest":
        """Copy of this request with some fields replaced."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (edges become ``[u, v]`` lists), JSON-safe."""
        payload = asdict(self)
        if payload["edges"] is not None:
            payload["edges"] = [[u, v] for u, v in payload["edges"]]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AnonymizationRequest":
        """Inverse of :meth:`to_dict`; unknown keys raise (typo protection)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown request field(s) {unknown}; known: {sorted(known)}")
        data = dict(payload)
        if data.get("edges") is not None:
            data["edges"] = _normalize_edges(data["edges"])
        return cls(**data)

    def to_json(self, **dumps_kwargs: Any) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "AnonymizationRequest":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class AnonymizationResponse:
    """Outcome of one request, self-contained and JSON-serializable.

    ``error`` is ``None`` for runs that completed (successfully or
    best-effort); a failed run carries the exception rendered as
    ``"ExceptionType: message"`` and zeroed result fields, so one bad job
    never poisons a batch.
    """

    request: AnonymizationRequest
    success: bool = False
    final_opacity: float = 0.0
    distortion: float = 0.0
    num_steps: int = 0
    evaluations: int = 0
    runtime_seconds: float = 0.0
    num_vertices: int = 0
    removed_edges: EdgeTuple = ()
    inserted_edges: EdgeTuple = ()
    anonymized_edges: EdgeTuple = ()
    stop_reason: Optional[str] = None
    metrics: Optional[Mapping[str, float]] = None
    error: Optional[str] = None

    def __post_init__(self) -> None:
        for name in ("removed_edges", "inserted_edges", "anonymized_edges"):
            object.__setattr__(self, name, _normalize_edges(getattr(self, name)))
        if self.metrics is not None:
            object.__setattr__(self, "metrics",
                               {str(k): float(v) for k, v in self.metrics.items()})

    @property
    def ok(self) -> bool:
        """Whether the run completed without raising."""
        return self.error is None

    def anonymized_graph(self) -> Graph:
        """Rebuild the anonymized graph carried by this response."""
        return Graph(self.num_vertices, edges=self.anonymized_edges)

    def summary(self) -> str:
        """One-line human-readable summary (mirrors the result record)."""
        if self.error is not None:
            return f"{self.request.algorithm} [failed] {self.error}"
        status = "ok" if self.success else "best-effort"
        line = (f"{self.request.algorithm} L={self.request.length_threshold} "
                f"theta={self.request.theta:.2f} [{status}] "
                f"opacity={self.final_opacity:.3f} distortion={self.distortion:.3f} "
                f"steps={self.num_steps} removed={len(self.removed_edges)} "
                f"inserted={len(self.inserted_edges)} "
                f"time={self.runtime_seconds:.2f}s")
        if self.stop_reason:
            line += f" stopped={self.stop_reason}"
        return line

    # ------------------------------------------------------------------
    # construction from a core result
    # ------------------------------------------------------------------
    @classmethod
    def from_result(cls, request: AnonymizationRequest, result: Any,
                    metrics: Optional[Mapping[str, float]] = None) -> "AnonymizationResponse":
        """Build a response from a core ``AnonymizationResult``."""
        return cls(
            request=request,
            success=result.success,
            final_opacity=float(result.final_opacity),
            distortion=float(result.distortion),
            num_steps=result.num_steps,
            evaluations=result.evaluations,
            runtime_seconds=float(result.runtime_seconds),
            num_vertices=result.anonymized_graph.num_vertices,
            removed_edges=tuple(result.removed_edges),
            inserted_edges=tuple(result.inserted_edges),
            anonymized_edges=tuple(result.anonymized_graph.edges()),
            stop_reason=result.stop_reason,
            metrics=metrics,
        )

    @classmethod
    def failure(cls, request: AnonymizationRequest, exc: BaseException) -> "AnonymizationResponse":
        """Build the error response for a request that raised ``exc``."""
        return cls(request=request, success=False,
                   error=f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (edges become ``[u, v]`` lists), JSON-safe."""
        payload = asdict(self)
        payload["request"] = self.request.to_dict()
        for name in ("removed_edges", "inserted_edges", "anonymized_edges"):
            payload[name] = [[u, v] for u, v in payload[name]]
        if payload["metrics"] is not None:
            payload["metrics"] = dict(payload["metrics"])
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AnonymizationResponse":
        """Inverse of :meth:`to_dict`."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown response field(s) {unknown}; known: {sorted(known)}")
        data = dict(payload)
        data["request"] = AnonymizationRequest.from_dict(data["request"])
        return cls(**data)

    def to_json(self, **dumps_kwargs: Any) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "AnonymizationResponse":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# canonical request fingerprints
# ----------------------------------------------------------------------
FINGERPRINT_VERSION = 3
"""Version stamp mixed into every fingerprint.

Bump it whenever request semantics change in a way that should invalidate
stored results keyed by fingerprint (new defaulted field with behavioural
effect, changed canonicalization, ...).
"""


def _strip_request_ids(value: Any) -> Any:
    """Drop ``request_id`` keys recursively; they label, not parameterize."""
    if isinstance(value, Mapping):
        return {k: _strip_request_ids(v) for k, v in value.items()
                if k != "request_id"}
    if isinstance(value, (list, tuple)):
        return [_strip_request_ids(v) for v in value]
    return value


def request_fingerprint(request: Any) -> str:
    """Canonical content hash of a request (hex SHA-256).

    Two requests that are semantically identical — same type, same field
    values after normalization, regardless of construction order or the
    client-chosen ``request_id`` label — fingerprint identically, because
    the hash is taken over version-stamped, sorted-key, minimal-separator
    JSON of the request's ``to_dict()`` form.  Works for any record with a
    ``to_dict`` method (:class:`AnonymizationRequest`, ``SweepRequest``,
    ``GridRequest``).
    """
    to_dict = getattr(request, "to_dict", None)
    if to_dict is None:
        raise ConfigurationError(
            f"cannot fingerprint {type(request).__name__}: no to_dict() method")
    canonical = {
        "v": FINGERPRINT_VERSION,
        "kind": type(request).__name__,
        "request": _strip_request_ids(to_dict()),
    }
    text = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
