"""Core contribution of the paper: the L-opacity model and its algorithms.

Contents
--------
* :mod:`repro.core.pair_types` — vertex-pair typings (Definition 1).
* :mod:`repro.core.opacity` — opacity matrices and ``maxLO`` (Algorithm 1).
* :mod:`repro.core.opacity_session` — stateful delta-evaluated opacity
  sessions driving the candidate scans.
* :mod:`repro.core.edge_removal` — the Edge Removal heuristic (Algorithm 4).
* :mod:`repro.core.edge_removal_insertion` — Edge Removal/Insertion (Algorithm 5).
* :mod:`repro.core.lookahead` — the shared look-ahead combination search.
* :mod:`repro.core.hardness` — Theorem 1's 3-SAT reduction.
"""

from repro.core.adversary import DegreeAdversary, LinkageInference
from repro.core.pair_types import (
    DegreePairTyping,
    ExplicitPairTyping,
    PairTyping,
    TypeKey,
)
from repro.core.opacity import OpacityComputer, OpacityResult, TypeOpacity
from repro.core.opacity_session import (
    EVALUATION_MODES,
    SCAN_MODES,
    EditEvaluation,
    OpacitySession,
)
from repro.core.anonymizer import (
    SWEEP_MODES,
    AnonymizationCheckpoint,
    AnonymizationResult,
    AnonymizationStep,
    AnonymizerConfig,
    BaseAnonymizer,
    ThetaScheduleTracker,
    validate_theta_schedule,
)
from repro.core.edge_removal import EdgeRemovalAnonymizer
from repro.core.edge_removal_insertion import EdgeRemovalInsertionAnonymizer
from repro.core.hardness import (
    SatInstance,
    build_lopacification_instance,
    brute_force_satisfiable,
    random_sat_instance,
)

__all__ = [
    "DegreeAdversary",
    "LinkageInference",
    "DegreePairTyping",
    "ExplicitPairTyping",
    "PairTyping",
    "TypeKey",
    "OpacityComputer",
    "OpacityResult",
    "TypeOpacity",
    "EVALUATION_MODES",
    "SCAN_MODES",
    "EditEvaluation",
    "OpacitySession",
    "SWEEP_MODES",
    "AnonymizationCheckpoint",
    "AnonymizationResult",
    "AnonymizationStep",
    "AnonymizerConfig",
    "ThetaScheduleTracker",
    "validate_theta_schedule",
    "BaseAnonymizer",
    "EdgeRemovalAnonymizer",
    "EdgeRemovalInsertionAnonymizer",
    "SatInstance",
    "build_lopacification_instance",
    "brute_force_satisfiable",
    "random_sat_instance",
]
