"""Stateful, delta-evaluated opacity sessions.

:class:`repro.core.opacity.OpacityComputer` stays the stateless Algorithm 1
evaluator; :class:`OpacitySession` adds the state the candidate scans need
to answer "what would ``maxLO`` be after this edit?" thousands of times per
greedy step without a from-scratch recount.

A session owns a working graph together with

* a :class:`repro.graph.distance_delta.DistanceSession` maintaining the
  L-bounded distance matrix, and
* the per-type within-L counts of the *current* graph, kept in the frozen
  typing's iteration order.

A tentative edit then costs one distance delta plus a count delta over the
flipped cells — for :class:`~repro.core.pair_types.DegreePairTyping` a
vectorized bincount over the changed pairs; at L = 1 a batched scan skips
the distance machinery entirely (a flipped cell is exactly an edited edge,
so the tally reduces to a bincount over the candidates' own edges).  The
session reproduces the
stateless evaluator *bit-identically*: the same ``Fraction`` maxima, the
same ``types_at_max`` tie-break counts, and (for GADED-Max) the same
float-summed total opacity, so a greedy run chooses the same edits in either
evaluation mode.

``mode="scratch"`` is the reference implementation: every query applies the
edit, runs the stateless evaluator, and reverts — the paper's
copy-evaluate-restore loop behind the same interface.  Both modes apply and
revert tentative edits through the same :class:`~repro.graph.graph.Graph`
mutations in the same order, so adjacency-set iteration (and with it every
seeded tie-break downstream) is mode-independent.

Whole candidate scans go through :meth:`OpacitySession.evaluate_edits`,
which stacks the distance deltas of all single-edge candidates into one
:meth:`~repro.graph.distance_delta.DistanceSession.preview_batch` pass and
tallies every candidate with a single grouped bincount — the ``"batched"``
scan mode of the algorithms (DESIGN.md §7), bit-identical to the
per-candidate loop.  The session also maintains the pruning pass's
within-L violating-pair mask incrementally (:meth:`violating_pair_indices`).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.opacity import (
    OpacityComputer,
    OpacityResult,
    decode_degree_pair,
    encode_degree_pairs,
)
from repro.core.pair_types import DegreePairTyping, TypeKey
from repro.errors import ConfigurationError
from repro.graph.distance_delta import DistanceDelta, DistanceSession
from repro.graph.distance_store import DenseStore, DistanceStore, StoreConfig
from repro.graph.graph import Edge, Graph
from repro.graph.matrices import triu_pair_indices

#: Valid values of the ``evaluation_mode`` knob, service layer included.
EVALUATION_MODES: Tuple[str, ...] = ("scratch", "incremental")

#: Valid values of the ``scan_mode`` knob: how the greedy algorithms walk a
#: step's candidate list — one :meth:`OpacitySession.evaluate_edit` per
#: candidate, one :meth:`OpacitySession.evaluate_edits` pass over all of
#: them, or that same batched pass sharded across a persistent pool of
#: scan workers over a shared-memory arena (``"parallel"``,
#: :mod:`repro.core.scan_pool`).  All scan modes choose bit-identical
#: edits.
SCAN_MODES: Tuple[str, ...] = ("per_candidate", "batched", "parallel")

#: One candidate edit: the removals and insertions applied together.
EditCandidate = Tuple[Sequence[Edge], Sequence[Edge]]


def validate_evaluation_mode(mode: str) -> None:
    """Raise :class:`ConfigurationError` unless ``mode`` is a known mode."""
    if mode not in EVALUATION_MODES:
        raise ConfigurationError(
            f"unknown evaluation_mode {mode!r}; available: {EVALUATION_MODES}")


def validate_scan_mode(mode: str) -> None:
    """Raise :class:`ConfigurationError` unless ``mode`` is a known scan mode."""
    if mode not in SCAN_MODES:
        raise ConfigurationError(
            f"unknown scan_mode {mode!r}; available: {SCAN_MODES}")


@dataclass(frozen=True)
class EditEvaluation:
    """Outcome of one tentative edit — exactly what the candidate scans need.

    ``total_opacity`` is the float sum of per-type opacities in typing order
    (GADED-Max's secondary objective), accumulated identically to the
    stateless evaluator's ``sum(entry.opacity for entry in per_type)``.
    """

    fraction: Fraction
    types_at_max: int
    total_opacity: float

    @property
    def max_opacity(self) -> float:
        """``maxLO`` after the edit, as a float."""
        return float(self.fraction)


class OpacitySession:
    """Evaluate and apply edge edits against a working graph.

    All graph mutations of an anonymization run must go through
    :meth:`apply_edit` so the incremental state stays in sync; tentative
    candidates go through :meth:`evaluate_edit`, which leaves no trace.

    Parameters
    ----------
    computer:
        The stateless evaluator fixing typing, L, and the distance engine.
    graph:
        The working graph (shared, not copied).
    mode:
        ``"incremental"`` (delta evaluation) or ``"scratch"``
        (copy-evaluate-restore reference).
    fallback_row_fraction:
        Passed to :class:`DistanceSession` — removal deltas touching more
        than this fraction of rows fall back to a from-scratch matrix.
        ``None`` (default) derives and keeps recalibrating the fraction
        from measured density × L; the chosen value is routing-only and
        never changes results.
    scan_workers:
        Size of the parallel scan pool (``scan_mode="parallel"``, resolved
        by :func:`repro.core.scan_pool.resolve_scan_workers`).  With a
        value > 1, :meth:`evaluate_edits` shards large candidate scans
        across that many worker processes attached to a shared-memory
        publication of this session's state; 0/1 keeps every scan serial.
        Any pool failure falls back to the serial scan permanently —
        results are bit-identical either way.
    initial_distances:
        Optional precomputed L-bounded distances of ``graph`` — a matrix
        (e.g. a thresholded slice of a shared
        :class:`~repro.graph.distance_cache.LMaxDistanceCache`) or a
        :class:`~repro.graph.distance_store.DistanceStore` served by the
        tier-aware cache — adopted as the incremental session's starting
        state so construction skips the from-scratch engine run.  The
        session takes ownership of the payload; scratch mode (which
        recomputes per evaluation anyway) ignores it.
    store_config:
        Scale-tier policy for a session that must compute its own
        distances (ignored when ``initial_distances`` is given).  The
        tiled tier requires incremental evaluation — scratch mode
        recomputes dense matrices per candidate, which is exactly what the
        tier exists to avoid.
    """

    def __init__(self, computer: OpacityComputer, graph: Graph,
                 mode: str = "incremental",
                 fallback_row_fraction: Optional[float] = None,
                 initial_distances: Optional[np.ndarray | DistanceStore] = None,
                 store_config: Optional[StoreConfig] = None,
                 scan_workers: int = 0) -> None:
        validate_evaluation_mode(mode)
        if mode == "scratch" and (
                (store_config is not None and store_config.tier == "tiled")
                or isinstance(initial_distances, DistanceStore)
                and not isinstance(initial_distances, DenseStore)):
            raise ConfigurationError(
                "the tiled scale tier requires evaluation_mode='incremental'; "
                "scratch mode materializes dense matrices per candidate")
        self._computer = computer
        self._graph = graph
        self._mode = mode
        self._current: Optional[OpacityResult] = None
        self._distance: Optional[DistanceSession] = None
        # Lazy pruning-pass state: frozen degree-pair codes of every upper-
        # triangle pair, and (incremental mode) the maintained within-L mask.
        self._triu_codes: Optional[np.ndarray] = None
        self._triu_code_span: int = 1
        self._within_pairs: Optional[np.ndarray] = None
        # Parallel-scan state: the pool is started lazily on the first
        # large-enough scan and torn down permanently on any failure.
        self._scan_workers = max(0, int(scan_workers))
        self._scan_pool = None
        self._scan_failed = False
        self.parallel_scans = 0
        if mode == "incremental":
            self._distance = DistanceSession(
                graph, computer.length_threshold, engine=computer.engine,
                fallback_row_fraction=fallback_row_fraction,
                initial_distances=initial_distances,
                store_config=store_config)
            self._init_counts()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def computer(self) -> OpacityComputer:
        """The stateless evaluator this session wraps."""
        return self._computer

    @property
    def graph(self) -> Graph:
        """The working graph."""
        return self._graph

    @property
    def mode(self) -> str:
        """The evaluation mode (``"scratch"`` or ``"incremental"``)."""
        return self._mode

    @property
    def scan_workers(self) -> int:
        """The configured parallel-scan pool size (0 = serial scans)."""
        return self._scan_workers

    @property
    def scan_parallelism(self) -> int:
        """How many processes a candidate scan currently spans (>= 1)."""
        if self._scan_workers > 1 and not self._scan_failed \
                and self._mode == "incremental" \
                and self._computer.length_threshold > 1:
            return self._scan_workers
        return 1

    @property
    def fallback_row_fraction(self) -> Optional[float]:
        """The distance session's effective fallback fraction (debug hook)."""
        if self._distance is None:
            return None
        return self._distance.fallback_row_fraction

    def distances(self) -> np.ndarray:
        """The current dense L-bounded matrix (treat as read-only).

        Dense tier only — a tiled-tier session raises
        :class:`~repro.errors.DistanceMemoryError`; stream through
        :meth:`distance_rows` instead.
        """
        if self._distance is not None:
            return self._distance.distances
        return self._computer.distances(self._graph)

    def distance_rows(self, block: Sequence[int]) -> np.ndarray:
        """Fresh ``|block| × n`` distance rows (incremental mode only).

        Columns follow by symmetry; this is the tier-independent way to
        read distances, sized to the store's tile budget.
        """
        if self._distance is None:
            raise ConfigurationError(
                "distance_rows() requires evaluation_mode='incremental'; "
                "scratch mode recomputes matrices per call")
        return self._distance.rows(block)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def current(self) -> OpacityResult:
        """Full Algorithm 1 result for the current graph state."""
        if self._mode == "scratch":
            return self._computer.evaluate(self._graph)
        if self._current is None:
            counts = {key: int(within)
                      for key, within in zip(self._type_keys, self._withins)}
            self._current = self._computer.result_from_counts(counts)
        return self._current

    def evaluate_edit(self, removals: Sequence[Edge] = (),
                      insertions: Sequence[Edge] = ()) -> EditEvaluation:
        """Opacity outcome after tentatively applying the edit (no trace left)."""
        if self._mode == "scratch":
            return self._scratch_evaluate(removals, insertions)
        delta = self._distance.preview(removals, insertions)
        changes = self._count_changes(delta)
        return self._summarize(changes)

    def evaluate_edits(self, candidates: Sequence[EditCandidate]) -> List[EditEvaluation]:
        """Outcomes of many *independent* tentative edits, batch-evaluated.

        Bit-identical to ``[self.evaluate_edit(r, i) for r, i in candidates]``
        — same ``Fraction`` maxima, tie counts, float totals, and the same
        graph-mutation history — but a homogeneous scan of single-edge
        removals (resp. insertions) computes all distance deltas in one
        stacked :meth:`~repro.graph.distance_delta.DistanceSession.preview_batch`
        pass and tallies every candidate's count deltas with a single grouped
        bincount over the stacked flipped cells.  Heterogeneous or multi-edge
        candidate lists (GADES swaps, look-ahead combinations) fall back to
        sequential previews but still share the grouped count stage.
        """
        pairs = [(tuple(removals), tuple(insertions))
                 for removals, insertions in candidates]
        if self._mode == "scratch":
            return [self._scratch_evaluate(removals, insertions)
                    for removals, insertions in pairs]
        if self._computer.length_threshold == 1:
            # At L = 1 the within-L pairs are exactly the edges, so a
            # candidate's flipped cells are its edited edges themselves —
            # no distance delta is needed at all, only a count tally.
            return self._summarize_batch([self._l1_changes(removals, insertions)
                                          for removals, insertions in pairs])
        if self._use_parallel_scan(pairs):
            return self._summarize_batch(self._parallel_changes(pairs))
        return self._summarize_batch(self._collect_changes(pairs))

    def collect_edit_changes(self, pairs: Sequence[EditCandidate]
                             ) -> List[Dict[int, int]]:
        """Per-candidate count-change dicts of a shard (scan-pool workers).

        The worker-side half of the parallel scan: exactly the serial
        batched collection over ``pairs`` against this session's state,
        returning the raw per-type change dicts (keyed by frozen type
        index) for the parent to concatenate and summarize.
        """
        pairs = [(tuple(removals), tuple(insertions))
                 for removals, insertions in pairs]
        return self._collect_changes(pairs)

    def take_scan_stats(self) -> Tuple[int, int]:
        """Drain the distance session's ``(affected rows, candidates)``."""
        if self._distance is None:
            return (0, 0)
        return self._distance.take_observed_stats()

    def _collect_changes(self, pairs: List[EditCandidate]
                         ) -> List[Dict[int, int]]:
        # Deltas are consumed into (small) per-type change dicts group by
        # group, so peak retained memory is bounded by ~128 MB of delta
        # cells even when many removal candidates hit the from-scratch
        # fallback (each such delta holds a full n × n matrix); grouping
        # changes neither the per-candidate math nor the mutation order.
        n = self._graph.num_vertices
        group = max(1, (1 << 25) // max(1, n * n))
        changes: List[Dict[int, int]] = []
        for start in range(0, len(pairs), group):
            deltas = self._preview_deltas(pairs[start:start + group])
            changes.extend(self._count_changes_batch(deltas))
        return changes

    # ------------------------------------------------------------------
    # parallel scan machinery
    # ------------------------------------------------------------------
    def _use_parallel_scan(self, pairs: List[EditCandidate]) -> bool:
        return (self._scan_workers > 1
                and not self._scan_failed
                and self._mode == "incremental"
                and len(pairs) > self._scan_workers)

    def _ensure_scan_pool(self):
        if self._scan_pool is None and not self._scan_failed:
            from repro.core.scan_pool import ScanPool

            self._scan_pool = ScanPool.start(
                self._computer, self._graph, self._distance.store,
                self._distance.requested_fallback_fraction,
                self._scan_workers)
            if self._scan_pool is None:
                self._scan_failed = True
        return self._scan_pool

    def _parallel_changes(self, pairs: List[EditCandidate]
                          ) -> List[Dict[int, int]]:
        """Shard the scan across the pool; serial fallback on any failure.

        On success the concatenated worker changes are exactly what
        :meth:`_collect_changes` would have produced (distance values are
        canonical, shards preserve candidate order), the workers' observed
        affected-row stats are folded into the parent's auto fallback
        fraction, and the scan's graph mutate/restore sequence is replayed
        so adjacency-set histories stay scan-mode-independent.
        """
        pool = self._ensure_scan_pool()
        if pool is not None:
            outcome = pool.scan(pairs)
            if outcome is not None:
                changes, stats = outcome
                for rows_total, candidates in stats:
                    self._distance.observe_affected_rows(rows_total,
                                                         candidates)
                self._distance.replay_scan_mutations(pairs)
                self.parallel_scans += 1
                return changes
            self._teardown_scan_pool(failed=True)
        return self._collect_changes(pairs)

    def _teardown_scan_pool(self, failed: bool) -> None:
        if self._scan_pool is not None:
            self._scan_pool.close()
            self._scan_pool = None
        if failed:
            self._scan_failed = True

    def close(self) -> None:
        """Release pool workers and store resources (idempotent)."""
        self._teardown_scan_pool(failed=False)
        if self._distance is not None:
            self._distance.close()

    def apply_edit(self, removals: Sequence[Edge] = (),
                   insertions: Sequence[Edge] = ()) -> None:
        """Permanently apply the edit, keeping all session state in sync."""
        if self._mode == "scratch":
            for u, v in removals:
                self._graph.remove_edge(u, v)
            for u, v in insertions:
                self._graph.add_edge(u, v)
            return
        # Two-phase: stage mutates the graph exactly once (the same mutation
        # sequence scratch mode performs), count deltas are diffed against
        # the still-pre-edit matrix, then the delta is folded in.
        delta = self._distance.stage(removals, insertions)
        if delta.from_scratch:
            changes = self._count_changes(delta)
            if self._within_pairs is not None:
                rows, cols = triu_pair_indices(self._graph.num_vertices)
                self._within_pairs = (
                    delta.new_rows[rows, cols] <= self._computer.length_threshold)
        else:
            cells = self._flipped_cells(delta)
            changes = {} if cells is None else self._changes_from_cells(*cells)
            if self._within_pairs is not None and cells is not None:
                self._update_pair_mask(*cells)
        self._distance.commit(delta)
        for index, change in changes.items():
            self._withins[index] += change
        self._current = None
        if self._scan_pool is not None \
                and not self._scan_pool.apply(removals, insertions):
            self._teardown_scan_pool(failed=True)

    def resync(self) -> None:
        """Rebuild all incremental state from scratch (testing / recovery)."""
        if self._mode == "incremental":
            self._distance.refresh()
            self._init_counts()
        self._within_pairs = None

    # ------------------------------------------------------------------
    # pruning support
    # ------------------------------------------------------------------
    def violating_pair_indices(self, max_types,
                               distances: Optional[np.ndarray] = None
                               ) -> Tuple[np.ndarray, np.ndarray]:
        """Upper-triangle ``(i, j)`` pairs within L whose type is in ``max_types``.

        The candidate-pruning pass of the removal heuristics asks this every
        step.  In incremental mode the within-L mask is *maintained* across
        applied edits (only the flipped cells of each step's delta are
        touched) and the frozen per-pair type codes are computed once, so a
        query costs one vectorized membership test instead of a per-pair
        Python scan.  Scratch mode recomputes the mask from ``distances``
        (or a fresh matrix) per call — same pairs, same triu order.
        """
        n = self._graph.num_vertices
        rows, cols = triu_pair_indices(n)
        if rows.size == 0:
            return rows, cols
        length = self._computer.length_threshold
        if self._mode == "incremental":
            self._ensure_pair_mask()
            within = self._within_pairs
        else:
            if distances is None:
                distances = self._computer.distances(self._graph)
            within = distances[rows, cols] <= length
        typing = self._computer.typing
        if isinstance(typing, DegreePairTyping):
            codes = self._ensure_triu_codes()
            span = self._triu_code_span
            wanted = np.unique(np.fromiter(
                (g * span + h for g, h in max_types), dtype=np.int64,
                count=len(max_types)))
            mask = within & np.isin(codes, wanted) if wanted.size else \
                np.zeros(rows.size, dtype=bool)
        else:
            candidate_positions = np.nonzero(within)[0]
            member = np.fromiter(
                (typing.type_of(int(rows[p]), int(cols[p])) in max_types
                 for p in candidate_positions),
                dtype=bool, count=candidate_positions.size)
            mask = np.zeros(rows.size, dtype=bool)
            mask[candidate_positions[member]] = True
        return rows[mask], cols[mask]

    def _ensure_triu_codes(self) -> np.ndarray:
        if self._triu_codes is None:
            typing = self._computer.typing
            assert isinstance(typing, DegreePairTyping)
            rows, cols = triu_pair_indices(self._graph.num_vertices)
            self._triu_codes, self._triu_code_span = encode_degree_pairs(
                typing.degrees, rows, cols)
        return self._triu_codes

    def _ensure_pair_mask(self) -> None:
        if self._within_pairs is None:
            rows, cols = triu_pair_indices(self._graph.num_vertices)
            length = self._computer.length_threshold
            store = self._distance.store
            if isinstance(store, DenseStore):
                self._within_pairs = store.array[rows, cols] <= length
                return
            # Tiled tier: stream the triu gather block by block.  The triu
            # row array is sorted ascending, so each block's pairs form one
            # contiguous slice found by binary search.
            mask = np.empty(rows.size, dtype=bool)
            for start, stop in store.row_blocks():
                low = np.searchsorted(rows, start, side="left")
                high = np.searchsorted(rows, stop, side="left")
                if low == high:
                    continue
                slab = store.rows(np.arange(start, stop))
                mask[low:high] = (slab[rows[low:high] - start, cols[low:high]]
                                  <= length)
            self._within_pairs = mask

    def _update_pair_mask(self, row_idx: np.ndarray, col_idx: np.ndarray,
                          gained: np.ndarray) -> None:
        """Fold one applied delta's flipped cells into the within-L mask."""
        n = self._graph.num_vertices
        i = np.minimum(row_idx, col_idx)
        j = np.maximum(row_idx, col_idx)
        flat = i * (2 * n - i - 1) // 2 + (j - i - 1)
        self._within_pairs[flat] = gained

    # ------------------------------------------------------------------
    # scratch reference path
    # ------------------------------------------------------------------
    def _scratch_evaluate(self, removals: Sequence[Edge],
                          insertions: Sequence[Edge]) -> EditEvaluation:
        for u, v in removals:
            self._graph.remove_edge(u, v)
        for u, v in insertions:
            self._graph.add_edge(u, v)
        try:
            outcome = self._computer.evaluate(self._graph)
        finally:
            for u, v in insertions:
                self._graph.remove_edge(u, v)
            for u, v in removals:
                self._graph.add_edge(u, v)
        total = float(sum(entry.opacity for entry in outcome.per_type.values()))
        return EditEvaluation(fraction=outcome.max_fraction,
                              types_at_max=outcome.types_at_max,
                              total_opacity=total)

    # ------------------------------------------------------------------
    # incremental machinery
    # ------------------------------------------------------------------
    def _init_counts(self) -> None:
        typing = self._computer.typing
        store = self._distance.store
        if isinstance(store, DenseStore):
            counts = self._computer.within_counts(store.array)
        else:
            counts = self._computer.within_counts_store(store)
        type_keys: List[TypeKey] = []
        totals: List[int] = []
        withins: List[int] = []
        for key in typing.types():
            total = typing.pair_count(key)
            if total == 0:
                continue
            type_keys.append(key)
            totals.append(total)
            withins.append(counts.get(key, 0))
        self._type_keys = type_keys
        self._totals = np.asarray(totals, dtype=np.int64)
        self._withins = np.asarray(withins, dtype=np.int64)
        self._type_index: Dict[TypeKey, int] = {
            key: index for index, key in enumerate(type_keys)}
        self._current = None

    def _summarize(self, changes: Dict[int, int]) -> EditEvaluation:
        """Max/tie/total scan over the per-type counts with ``changes`` applied.

        Exactness without per-type ``Fraction`` objects: correctly-rounded
        float division is monotone, so the exact maximum must live among the
        types whose float ratio equals the float maximum; only those few are
        compared by integer cross-multiplication (the ordering ``Fraction``
        induces), and only they can tie the exact maximum.  The float total
        accumulates left-to-right like the stateless evaluator's
        ``sum(entry.opacity ...)``, so GADED-Max sees bit-identical keys.
        """
        withins = self._withins
        if changes:
            withins = withins.copy()
            for index, change in changes.items():
                withins[index] += change
        if withins.size == 0:
            return EditEvaluation(fraction=Fraction(0), types_at_max=0,
                                  total_opacity=0.0)
        ratios = withins / self._totals
        total = sum(ratios.tolist())
        candidates = np.nonzero(ratios == ratios.max())[0].tolist()
        best_num, best_den = 0, 1
        for index in candidates:
            num = int(withins[index])
            den = int(self._totals[index])
            if num * best_den > best_num * den:
                best_num, best_den = num, den
        ties = sum(1 for index in candidates
                   if int(withins[index]) * best_den == best_num * int(self._totals[index]))
        return EditEvaluation(fraction=Fraction(best_num, best_den),
                              types_at_max=ties, total_opacity=float(total))

    def _l1_changes(self, removals: Sequence[Edge],
                    insertions: Sequence[Edge]) -> Dict[int, int]:
        """Count changes of one candidate at L = 1, no distance delta needed.

        A removal flips exactly its own cell from within-L to outside (the
        edge was at distance 1), an insertion the reverse, so the tally
        reduces to the edited edges themselves.  The graph is still touched
        and restored with the same mutation sequence a
        :meth:`DistanceSession.preview` performs, so adjacency-set
        iteration histories — and with them every seeded tie-break
        downstream — stay identical across evaluation and scan modes.
        """
        for u, v in removals:
            self._graph.remove_edge(u, v)
        for u, v in insertions:
            self._graph.add_edge(u, v)
        for u, v in insertions:
            self._graph.remove_edge(u, v)
        for u, v in removals:
            self._graph.add_edge(u, v)
        count = len(removals) + len(insertions)
        if count == 0:
            return {}
        row_idx = np.fromiter((edge[0] for edge in removals), dtype=np.int64,
                              count=len(removals))
        col_idx = np.fromiter((edge[1] for edge in removals), dtype=np.int64,
                              count=len(removals))
        if insertions:
            row_idx = np.concatenate([row_idx, np.fromiter(
                (edge[0] for edge in insertions), dtype=np.int64,
                count=len(insertions))])
            col_idx = np.concatenate([col_idx, np.fromiter(
                (edge[1] for edge in insertions), dtype=np.int64,
                count=len(insertions))])
        gained = np.zeros(count, dtype=bool)
        gained[len(removals):] = True
        return self._changes_from_cells(row_idx, col_idx, gained)

    def _count_changes(self, delta: DistanceDelta) -> Dict[int, int]:
        """Per-type within-L count deltas implied by a distance delta.

        Returns a mapping from type *index* (position in the frozen typing
        order) to the signed change of its within-L pair count.
        """
        if delta.rows.size == 0:
            return {}
        if delta.from_scratch:
            new_counts = self._computer.within_counts(delta.new_rows)
            changes = {}
            for index, key in enumerate(self._type_keys):
                change = new_counts.get(key, 0) - self._withins[index]
                if change:
                    changes[index] = change
            return changes
        cells = self._flipped_cells(delta)
        if cells is None:
            return {}
        return self._changes_from_cells(*cells)

    def _flipped_cells(self, delta: DistanceDelta
                       ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Cells whose within-L membership flips under a (non-scratch) delta.

        Returns ``(row_idx, col_idx, gained)`` with exactly one
        representative per unordered pair, or ``None`` when nothing flips.
        """
        length = self._computer.length_threshold
        rows = delta.rows
        old_within = self._distance.rows(rows) <= length
        new_within = delta.new_rows <= length
        flips = old_within != new_within
        if not flips.any():
            return None
        # Each changed cell appears in its row and (when both endpoints are
        # affected rows) again transposed; keep exactly one representative.
        n = self._graph.num_vertices
        in_rows = np.zeros(n, dtype=bool)
        in_rows[rows] = True
        columns = np.arange(n)
        keep = flips & (~in_rows[None, :] | (columns[None, :] > rows[:, None]))
        row_pos, col_idx = np.nonzero(keep)
        if row_pos.size == 0:
            return None
        return rows[row_pos], col_idx, new_within[row_pos, col_idx]

    def _changes_from_cells(self, row_idx: np.ndarray, col_idx: np.ndarray,
                            gained: np.ndarray) -> Dict[int, int]:
        """Tally one candidate's flipped cells into per-type count changes."""
        typing = self._computer.typing
        changes: Dict[int, int] = {}
        if isinstance(typing, DegreePairTyping):
            encoded, span = encode_degree_pairs(typing.degrees, row_idx, col_idx)
            for codes, sign in ((encoded[gained], 1), (encoded[~gained], -1)):
                if codes.size == 0:
                    continue
                counted = np.bincount(codes)
                for code in np.nonzero(counted)[0]:
                    index = self._type_index.get(decode_degree_pair(code, span))
                    if index is None:
                        continue
                    changes[index] = changes.get(index, 0) + sign * int(counted[code])
        else:
            for i, j, is_gain in zip(row_idx.tolist(), col_idx.tolist(),
                                     gained.tolist()):
                key = typing.type_of(i, j)
                if key is None:
                    continue
                index = self._type_index.get(key)
                if index is None:
                    continue
                changes[index] = changes.get(index, 0) + (1 if is_gain else -1)
        return {index: change for index, change in changes.items() if change}

    def _preview_deltas(self, pairs: List[Tuple[Tuple[Edge, ...], Tuple[Edge, ...]]]
                        ) -> List[Optional[DistanceDelta]]:
        """Distance deltas of independent candidates, stacked when possible.

        The stacked single-edge paths run fused (``skip_unchanged=True``):
        candidates whose edit flips no distance cell come back as ``None``
        instead of an empty :class:`DistanceDelta`, so the grouped bincount
        downstream never allocates per-candidate delta objects for no-op
        rows.
        """
        if pairs and all(len(removals) == 1 and not insertions
                         for removals, insertions in pairs):
            return self._distance.preview_batch(
                removals=[removals[0] for removals, _ in pairs],
                skip_unchanged=True)
        if pairs and all(not removals and len(insertions) == 1
                         for removals, insertions in pairs):
            return self._distance.preview_batch(
                insertions=[insertions[0] for _, insertions in pairs],
                skip_unchanged=True)
        return [self._distance.preview(removals, insertions)
                for removals, insertions in pairs]

    def _count_changes_batch(self, deltas: List[Optional[DistanceDelta]]
                             ) -> List[Dict[int, int]]:
        """Per-candidate count changes, one grouped bincount over all flips.

        Every candidate's flipped cells are extracted from one stacked
        comparison over the concatenated delta rows and tallied in a single
        ``bincount`` over ``(candidate, type-code, sign)`` groups — the
        per-candidate results are exactly what :meth:`_count_changes`
        returns for each delta alone.  ``None`` entries (fused no-op
        candidates) contribute empty changes without any delta object;
        from-scratch fallbacks and non-degree typings take the
        per-candidate path.
        """
        changes_list: List[Optional[Dict[int, int]]] = [None] * len(deltas)
        batchable = isinstance(self._computer.typing, DegreePairTyping)
        stacked: List[Tuple[int, DistanceDelta]] = []
        for position, delta in enumerate(deltas):
            if delta is None or delta.rows.size == 0:
                changes_list[position] = {}
            elif delta.from_scratch or not batchable:
                changes_list[position] = self._count_changes(delta)
            else:
                stacked.append((position, delta))
        if not stacked:
            return [changes if changes is not None else {}
                    for changes in changes_list]
        for position, _ in stacked:
            changes_list[position] = {}
        typing = self._computer.typing
        length = self._computer.length_threshold
        n = self._graph.num_vertices
        rows_cat = np.concatenate([delta.rows for _, delta in stacked])
        new_cat = np.concatenate([delta.new_rows for _, delta in stacked], axis=0)
        group_of_row = np.repeat(np.arange(len(stacked)),
                                 [delta.rows.size for _, delta in stacked])
        old_within = self._distance.rows(rows_cat) <= length
        new_within = new_cat <= length
        flips = old_within != new_within
        # Each changed cell appears in its candidate's row and (when both
        # endpoints are that candidate's affected rows) again transposed;
        # keep exactly one representative per candidate — the same dedupe
        # rule as :meth:`_flipped_cells`, with the affected-row membership
        # looked up per candidate group.
        in_rows = np.zeros((len(stacked), n), dtype=bool)
        in_rows[group_of_row, rows_cat] = True
        columns = np.arange(n)
        keep = flips & (~in_rows[group_of_row]
                        | (columns[None, :] > rows_cat[:, None]))
        slab_pos, col_idx = np.nonzero(keep)
        if slab_pos.size == 0:
            return [changes if changes is not None else {}
                    for changes in changes_list]
        row_idx = rows_cat[slab_pos]
        gained = new_within[slab_pos, col_idx]
        position_of_group = np.fromiter((position for position, _ in stacked),
                                        dtype=np.int64, count=len(stacked))
        candidate = position_of_group[group_of_row[slab_pos]]
        encoded, span = encode_degree_pairs(typing.degrees, row_idx, col_idx)
        codes, inverse = np.unique(encoded, return_inverse=True)
        type_of_code = [self._type_index.get(decode_degree_pair(int(code), span))
                        for code in codes]
        grouped = (candidate * codes.size + inverse) * 2 + gained.astype(np.int64)
        counts = np.bincount(grouped, minlength=len(deltas) * codes.size * 2)
        net = counts.reshape(len(deltas), codes.size, 2)
        net = net[:, :, 1].astype(np.int64) - net[:, :, 0]
        for position, code_pos in zip(*np.nonzero(net)):
            index = type_of_code[code_pos]
            if index is None:
                continue
            changes_list[position][index] = int(net[position, code_pos])
        return [changes if changes is not None else {} for changes in changes_list]

    def _summarize_batch(self, changes_list: List[Dict[int, int]]
                         ) -> List[EditEvaluation]:
        """:meth:`_summarize` across candidates without per-candidate passes.

        The float ratio matrix, its row maxima, and the left-to-right float
        totals (``cumsum`` accumulates element by element, exactly like the
        stateless evaluator's ``sum``) are computed for all candidates at
        once; only the exact cross-multiplied refinement of each row's few
        float-argmax columns stays scalar.  Bit-identical to mapping
        :meth:`_summarize` over ``changes_list``.
        """
        if self._withins.size == 0:
            return [EditEvaluation(fraction=Fraction(0), types_at_max=0,
                                   total_opacity=0.0)
                    for _ in changes_list]
        count = len(changes_list)
        if count == 0:
            return []
        withins = np.tile(self._withins, (count, 1))
        for row, changes in enumerate(changes_list):
            for index, change in changes.items():
                withins[row, index] += change
        ratios = withins / self._totals[None, :]
        totals = np.cumsum(ratios, axis=1)[:, -1]
        at_max = ratios == ratios.max(axis=1)[:, None]
        tie_rows, tie_cols = np.nonzero(at_max)
        rows_list = tie_rows.tolist()
        nums = withins[tie_rows, tie_cols].tolist()
        dens = self._totals[tie_cols].tolist()
        totals_list = totals.tolist()
        evaluations: List[Optional[EditEvaluation]] = [None] * count
        best_num, best_den, ties, current = 0, 1, 0, -1
        for row, num, den in zip(rows_list, nums, dens):
            if row != current:
                if current >= 0:
                    evaluations[current] = EditEvaluation(
                        fraction=Fraction(best_num, best_den),
                        types_at_max=ties,
                        total_opacity=totals_list[current])
                best_num, best_den, ties, current = 0, 1, 0, row
            ordering = num * best_den - best_num * den
            if ordering > 0:
                best_num, best_den, ties = num, den, 1
            elif ordering == 0:
                ties += 1
        evaluations[current] = EditEvaluation(
            fraction=Fraction(best_num, best_den), types_at_max=ties,
            total_opacity=totals_list[current])
        return evaluations  # type: ignore[return-value]
