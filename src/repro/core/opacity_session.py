"""Stateful, delta-evaluated opacity sessions.

:class:`repro.core.opacity.OpacityComputer` stays the stateless Algorithm 1
evaluator; :class:`OpacitySession` adds the state the candidate scans need
to answer "what would ``maxLO`` be after this edit?" thousands of times per
greedy step without a from-scratch recount.

A session owns a working graph together with

* a :class:`repro.graph.distance_delta.DistanceSession` maintaining the
  L-bounded distance matrix, and
* the per-type within-L counts of the *current* graph, kept in the frozen
  typing's iteration order.

A tentative edit then costs one distance delta plus a count delta over the
flipped cells — for :class:`~repro.core.pair_types.DegreePairTyping` a
vectorized bincount over the changed pairs; at L = 1 only the edited
endpoints' rows are touched, so the per-edit work shrinks to a couple of
column scans.  The session reproduces the
stateless evaluator *bit-identically*: the same ``Fraction`` maxima, the
same ``types_at_max`` tie-break counts, and (for GADED-Max) the same
float-summed total opacity, so a greedy run chooses the same edits in either
evaluation mode.

``mode="scratch"`` is the reference implementation: every query applies the
edit, runs the stateless evaluator, and reverts — the paper's
copy-evaluate-restore loop behind the same interface.  Both modes apply and
revert tentative edits through the same :class:`~repro.graph.graph.Graph`
mutations in the same order, so adjacency-set iteration (and with it every
seeded tie-break downstream) is mode-independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.opacity import (
    OpacityComputer,
    OpacityResult,
    decode_degree_pair,
    encode_degree_pairs,
)
from repro.core.pair_types import DegreePairTyping, TypeKey
from repro.errors import ConfigurationError
from repro.graph.distance_delta import DistanceDelta, DistanceSession
from repro.graph.graph import Edge, Graph

#: Valid values of the ``evaluation_mode`` knob, service layer included.
EVALUATION_MODES: Tuple[str, ...] = ("scratch", "incremental")


def validate_evaluation_mode(mode: str) -> None:
    """Raise :class:`ConfigurationError` unless ``mode`` is a known mode."""
    if mode not in EVALUATION_MODES:
        raise ConfigurationError(
            f"unknown evaluation_mode {mode!r}; available: {EVALUATION_MODES}")


@dataclass(frozen=True)
class EditEvaluation:
    """Outcome of one tentative edit — exactly what the candidate scans need.

    ``total_opacity`` is the float sum of per-type opacities in typing order
    (GADED-Max's secondary objective), accumulated identically to the
    stateless evaluator's ``sum(entry.opacity for entry in per_type)``.
    """

    fraction: Fraction
    types_at_max: int
    total_opacity: float

    @property
    def max_opacity(self) -> float:
        """``maxLO`` after the edit, as a float."""
        return float(self.fraction)


class OpacitySession:
    """Evaluate and apply edge edits against a working graph.

    All graph mutations of an anonymization run must go through
    :meth:`apply_edit` so the incremental state stays in sync; tentative
    candidates go through :meth:`evaluate_edit`, which leaves no trace.

    Parameters
    ----------
    computer:
        The stateless evaluator fixing typing, L, and the distance engine.
    graph:
        The working graph (shared, not copied).
    mode:
        ``"incremental"`` (delta evaluation) or ``"scratch"``
        (copy-evaluate-restore reference).
    fallback_row_fraction:
        Passed to :class:`DistanceSession` — removal deltas touching more
        than this fraction of rows fall back to a from-scratch matrix.
    """

    def __init__(self, computer: OpacityComputer, graph: Graph,
                 mode: str = "incremental",
                 fallback_row_fraction: float = 0.5) -> None:
        validate_evaluation_mode(mode)
        self._computer = computer
        self._graph = graph
        self._mode = mode
        self._current: Optional[OpacityResult] = None
        self._distance: Optional[DistanceSession] = None
        if mode == "incremental":
            self._distance = DistanceSession(
                graph, computer.length_threshold, engine=computer.engine,
                fallback_row_fraction=fallback_row_fraction)
            self._init_counts()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def computer(self) -> OpacityComputer:
        """The stateless evaluator this session wraps."""
        return self._computer

    @property
    def graph(self) -> Graph:
        """The working graph."""
        return self._graph

    @property
    def mode(self) -> str:
        """The evaluation mode (``"scratch"`` or ``"incremental"``)."""
        return self._mode

    def distances(self) -> np.ndarray:
        """The current L-bounded distance matrix (treat as read-only)."""
        if self._distance is not None:
            return self._distance.distances
        return self._computer.distances(self._graph)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def current(self) -> OpacityResult:
        """Full Algorithm 1 result for the current graph state."""
        if self._mode == "scratch":
            return self._computer.evaluate(self._graph)
        if self._current is None:
            counts = {key: int(within)
                      for key, within in zip(self._type_keys, self._withins)}
            self._current = self._computer.result_from_counts(counts)
        return self._current

    def evaluate_edit(self, removals: Sequence[Edge] = (),
                      insertions: Sequence[Edge] = ()) -> EditEvaluation:
        """Opacity outcome after tentatively applying the edit (no trace left)."""
        if self._mode == "scratch":
            return self._scratch_evaluate(removals, insertions)
        delta = self._distance.preview(removals, insertions)
        changes = self._count_changes(delta)
        return self._summarize(changes)

    def apply_edit(self, removals: Sequence[Edge] = (),
                   insertions: Sequence[Edge] = ()) -> None:
        """Permanently apply the edit, keeping all session state in sync."""
        if self._mode == "scratch":
            for u, v in removals:
                self._graph.remove_edge(u, v)
            for u, v in insertions:
                self._graph.add_edge(u, v)
            return
        # Two-phase: stage mutates the graph exactly once (the same mutation
        # sequence scratch mode performs), count deltas are diffed against
        # the still-pre-edit matrix, then the delta is folded in.
        delta = self._distance.stage(removals, insertions)
        changes = self._count_changes(delta)
        self._distance.commit(delta)
        for index, change in changes.items():
            self._withins[index] += change
        self._current = None

    def resync(self) -> None:
        """Rebuild all incremental state from scratch (testing / recovery)."""
        if self._mode == "incremental":
            self._distance.refresh()
            self._init_counts()

    # ------------------------------------------------------------------
    # scratch reference path
    # ------------------------------------------------------------------
    def _scratch_evaluate(self, removals: Sequence[Edge],
                          insertions: Sequence[Edge]) -> EditEvaluation:
        for u, v in removals:
            self._graph.remove_edge(u, v)
        for u, v in insertions:
            self._graph.add_edge(u, v)
        try:
            outcome = self._computer.evaluate(self._graph)
        finally:
            for u, v in insertions:
                self._graph.remove_edge(u, v)
            for u, v in removals:
                self._graph.add_edge(u, v)
        total = float(sum(entry.opacity for entry in outcome.per_type.values()))
        return EditEvaluation(fraction=outcome.max_fraction,
                              types_at_max=outcome.types_at_max,
                              total_opacity=total)

    # ------------------------------------------------------------------
    # incremental machinery
    # ------------------------------------------------------------------
    def _init_counts(self) -> None:
        typing = self._computer.typing
        counts = self._computer.within_counts(self._distance.distances)
        type_keys: List[TypeKey] = []
        totals: List[int] = []
        withins: List[int] = []
        for key in typing.types():
            total = typing.pair_count(key)
            if total == 0:
                continue
            type_keys.append(key)
            totals.append(total)
            withins.append(counts.get(key, 0))
        self._type_keys = type_keys
        self._totals = np.asarray(totals, dtype=np.int64)
        self._withins = np.asarray(withins, dtype=np.int64)
        self._type_index: Dict[TypeKey, int] = {
            key: index for index, key in enumerate(type_keys)}
        self._current = None

    def _summarize(self, changes: Dict[int, int]) -> EditEvaluation:
        """Max/tie/total scan over the per-type counts with ``changes`` applied.

        Exactness without per-type ``Fraction`` objects: correctly-rounded
        float division is monotone, so the exact maximum must live among the
        types whose float ratio equals the float maximum; only those few are
        compared by integer cross-multiplication (the ordering ``Fraction``
        induces), and only they can tie the exact maximum.  The float total
        accumulates left-to-right like the stateless evaluator's
        ``sum(entry.opacity ...)``, so GADED-Max sees bit-identical keys.
        """
        withins = self._withins
        if changes:
            withins = withins.copy()
            for index, change in changes.items():
                withins[index] += change
        if withins.size == 0:
            return EditEvaluation(fraction=Fraction(0), types_at_max=0,
                                  total_opacity=0.0)
        ratios = withins / self._totals
        total = sum(ratios.tolist())
        candidates = np.nonzero(ratios == ratios.max())[0].tolist()
        best_num, best_den = 0, 1
        for index in candidates:
            num = int(withins[index])
            den = int(self._totals[index])
            if num * best_den > best_num * den:
                best_num, best_den = num, den
        ties = sum(1 for index in candidates
                   if int(withins[index]) * best_den == best_num * int(self._totals[index]))
        return EditEvaluation(fraction=Fraction(best_num, best_den),
                              types_at_max=ties, total_opacity=float(total))

    def _count_changes(self, delta: DistanceDelta) -> Dict[int, int]:
        """Per-type within-L count deltas implied by a distance delta.

        Returns a mapping from type *index* (position in the frozen typing
        order) to the signed change of its within-L pair count.
        """
        if delta.rows.size == 0:
            return {}
        length = self._computer.length_threshold
        if delta.from_scratch:
            new_counts = self._computer.within_counts(delta.new_rows)
            changes = {}
            for index, key in enumerate(self._type_keys):
                change = new_counts.get(key, 0) - self._withins[index]
                if change:
                    changes[index] = change
            return changes
        rows = delta.rows
        old_within = self._distance.distances[rows] <= length
        new_within = delta.new_rows <= length
        flips = old_within != new_within
        if not flips.any():
            return {}
        # Each changed cell appears in its row and (when both endpoints are
        # affected rows) again transposed; keep exactly one representative.
        n = self._graph.num_vertices
        in_rows = np.zeros(n, dtype=bool)
        in_rows[rows] = True
        columns = np.arange(n)
        keep = flips & (~in_rows[None, :] | (columns[None, :] > rows[:, None]))
        row_pos, col_idx = np.nonzero(keep)
        if row_pos.size == 0:
            return {}
        row_idx = rows[row_pos]
        gained = new_within[row_pos, col_idx]
        typing = self._computer.typing
        changes: Dict[int, int] = {}
        if isinstance(typing, DegreePairTyping):
            encoded, span = encode_degree_pairs(typing.degrees, row_idx, col_idx)
            for codes, sign in ((encoded[gained], 1), (encoded[~gained], -1)):
                if codes.size == 0:
                    continue
                counted = np.bincount(codes)
                for code in np.nonzero(counted)[0]:
                    index = self._type_index.get(decode_degree_pair(code, span))
                    if index is None:
                        continue
                    changes[index] = changes.get(index, 0) + sign * int(counted[code])
        else:
            for i, j, is_gain in zip(row_idx.tolist(), col_idx.tolist(),
                                     gained.tolist()):
                key = typing.type_of(i, j)
                if key is None:
                    continue
                index = self._type_index.get(key)
                if index is None:
                    continue
                changes[index] = changes.get(index, 0) + (1 if is_gain else -1)
        return {index: change for index, change in changes.items() if change}
