"""The Edge Removal heuristic (paper Algorithm 4, with look-ahead).

At every step the heuristic tentatively removes each candidate edge (or
combination of up to ``la`` edges), evaluates the resulting maximum opacity
through the step's :class:`~repro.core.opacity_session.OpacitySession`, and
applies the best candidate according to the tie-breaking rule: lowest
maximum opacity first, then fewest types attaining that maximum, then a
uniform random choice.  The loop ends when the graph satisfies
``max_T LO(T) <= θ`` or no removable edges remain.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import register_anonymizer
from repro.core.anonymizer import AnonymizationResult, BaseAnonymizer
from repro.core.lookahead import search_best_combination
from repro.core.opacity import OpacityResult
from repro.core.opacity_session import OpacitySession
from repro.graph.graph import Edge


@register_anonymizer(
    "rem",
    description="Edge Removal (paper Algorithm 4)",
    accepts=("length_threshold", "theta", "lookahead", "engine", "seed",
             "max_steps", "prune_candidates", "max_combinations", "strict",
             "evaluation_mode", "scan_mode", "scan_workers", "sweep_mode",
             "scale_tier", "scale_budget_bytes"),
)
class EdgeRemovalAnonymizer(BaseAnonymizer):
    """Algorithm 4: greedy L-opacification via edge removal.

    Examples
    --------
    >>> from repro.graph import erdos_renyi_graph
    >>> graph = erdos_renyi_graph(30, 0.2, seed=7)
    >>> result = EdgeRemovalAnonymizer(length_threshold=1, theta=0.5, seed=0).anonymize(graph)
    >>> result.final_opacity <= 0.5
    True
    """

    def _perform_step(self, session: OpacitySession, current: OpacityResult,
                      rng: random.Random,
                      result: AnonymizationResult
                      ) -> Optional[Tuple[str, Tuple[Edge, ...], Tuple[Edge, ...]]]:
        candidates = self._removal_candidates(session, current)
        if not candidates:
            return None
        best = search_best_combination(
            candidates,
            lambda combo: self._evaluate_removal(session, combo, result),
            current_fraction=current.max_fraction,
            lookahead=self._config.lookahead,
            rng=rng,
            max_combinations=self._config.max_combinations,
            evaluate_batch=(self._batch_removal_evaluator(session, result)
                            if self._config.scan_mode in ("batched", "parallel")
                            else None),
        )
        if best is None:
            return None
        session.apply_edit(removals=best.edges)
        result.removed_edges.update(best.edges)
        return ("remove", best.edges, ())

    # ------------------------------------------------------------------
    # candidate selection
    # ------------------------------------------------------------------
    def _removal_candidates(self, session: OpacitySession,
                            current: OpacityResult) -> List[Edge]:
        """Edges considered for removal in this step.

        With ``prune_candidates`` enabled, only edges lying on a path of
        length ≤ L between a pair of a type currently attaining the maximum
        opacity are scanned; removing any other edge cannot lower the
        maximum (edge removal never shortens a geodesic), so the greedy
        choice is preserved whenever an improving move exists.
        """
        edges = list(session.graph.edges())
        if not edges or not self._config.prune_candidates:
            return edges
        pruned = self._prune_to_short_paths(session, current, edges)
        # Fall back to the full scan if pruning removed every candidate
        # (e.g. the maximum is attained only by already-unreachable types).
        return pruned if pruned else edges

    def _prune_to_short_paths(self, session: OpacitySession,
                              current: OpacityResult, edges: Sequence[Edge]) -> List[Edge]:
        length = self._config.length_threshold
        # Incremental sessions serve distances in row blocks through the
        # store seam (the tiled tier has no dense matrix to hand out);
        # scratch mode computes one dense matrix and reuses it below.
        distances = None
        if session.mode != "incremental":
            distances = session.distances().astype(np.int64)
        # Collect the vertex pairs of the types at the current maximum that
        # are within distance L — only breaking one of their short paths can
        # reduce the maximum opacity.  The session maintains the within-L
        # pair mask incrementally across applied steps (and the frozen
        # per-pair type codes once), so this query no longer rebuilds the
        # violating-pair set from scratch per step.
        max_fraction = current.max_fraction
        max_types = {key for key, entry in current.per_type.items()
                     if entry.fraction == max_fraction}
        rows, cols = session.violating_pair_indices(max_types, distances=distances)
        if rows.size == 0:
            return []
        # Too many violating pairs: the pruning pass would cost more than it
        # saves, so scan every edge instead.
        if rows.size > 5000:
            return list(edges)
        edge_u = np.fromiter((edge[0] for edge in edges), dtype=np.int64, count=len(edges))
        edge_v = np.fromiter((edge[1] for edge in edges), dtype=np.int64, count=len(edges))
        keep = np.zeros(len(edges), dtype=bool)
        # Chunked vectorized membership test: a removal candidate survives
        # when it lies on a ≤L path of some violating pair.
        for start in range(0, rows.size, 256):
            i = rows[start:start + 256]
            j = cols[start:start + 256]
            if distances is not None:
                di = distances[i]
                dj = distances[j]
            else:
                di = session.distance_rows(i).astype(np.int64)
                dj = session.distance_rows(j).astype(np.int64)
            on_path = ((di[:, edge_u] + dj[:, edge_v] + 1 <= length)
                       | (di[:, edge_v] + dj[:, edge_u] + 1 <= length))
            keep |= on_path.any(axis=0)
            if keep.all():
                break
        return [edge for edge, flag in zip(edges, keep) if flag]
