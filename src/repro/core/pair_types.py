"""Vertex-pair typings (Definition 1 of the paper).

A *typing* assigns every unordered vertex pair to at most one type of
interest.  The paper's concrete instantiation is the degree-pair typing: a
pair ``(v, w)`` belongs to the type ``{deg(v), deg(w)}`` where degrees are
taken in the *original* graph.  The model is deliberately agnostic, so this
module also offers an explicit typing keyed by enumerated pairs — used by
the NP-hardness reduction and available for custom privacy policies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.graph import Graph, normalize_edge

#: A type identifier; for degree typing this is the ordered degree pair (g, h).
TypeKey = Hashable


class PairTyping(ABC):
    """Assignment of vertex pairs to types of interest.

    The typing is frozen when constructed: the anonymization algorithms keep
    using the original degrees/types even while they modify the graph, which
    matches the paper's publication model (Section 4).
    """

    @abstractmethod
    def type_of(self, u: int, v: int) -> Optional[TypeKey]:
        """Return the type of pair ``{u, v}`` or ``None`` if it has no type."""

    @abstractmethod
    def types(self) -> Iterable[TypeKey]:
        """Iterate over every type with at least one member pair."""

    @abstractmethod
    def pair_count(self, type_key: TypeKey) -> int:
        """Total number of vertex pairs belonging to ``type_key``.

        This is the denominator ``|T|`` of Definition 2 and includes pairs of
        mutually unreachable vertices.
        """

    def num_types(self) -> int:
        """Number of distinct non-empty types."""
        return sum(1 for _ in self.types())


class DegreePairTyping(PairTyping):
    """Degree-pair typing frozen from the original graph.

    Every unordered pair ``(v, w)`` belongs to type ``(g, h)`` where
    ``g = min(deg(v), deg(w))`` and ``h = max(deg(v), deg(w))``, degrees
    taken in the graph supplied at construction time.

    The typing also exposes vectorized helpers (degree array, per-type pair
    totals, dense type indexing) used by the fast opacity computation.
    """

    def __init__(self, graph: Graph) -> None:
        self._degrees = graph.degree_array()
        self._num_vertices = graph.num_vertices
        degree_counts = Counter(int(d) for d in self._degrees)
        self._vertices_per_degree: Dict[int, int] = dict(degree_counts)
        self._totals: Dict[Tuple[int, int], int] = {}
        distinct = sorted(degree_counts)
        for i, g in enumerate(distinct):
            for h in distinct[i:]:
                if g == h:
                    count = degree_counts[g] * (degree_counts[g] - 1) // 2
                else:
                    count = degree_counts[g] * degree_counts[h]
                if count > 0:
                    self._totals[(g, h)] = count

    @property
    def degrees(self) -> np.ndarray:
        """Original degree of every vertex (frozen at construction)."""
        return self._degrees

    def vertices_with_degree(self, degree: int) -> int:
        """Number of vertices with the given original degree (``NV(d)``)."""
        return self._vertices_per_degree.get(degree, 0)

    def type_of(self, u: int, v: int) -> Optional[TypeKey]:
        if u == v:
            return None
        du = int(self._degrees[u])
        dv = int(self._degrees[v])
        return (du, dv) if du <= dv else (dv, du)

    def types(self) -> Iterable[TypeKey]:
        return iter(self._totals)

    def pair_count(self, type_key: TypeKey) -> int:
        return self._totals.get(type_key, 0)

    def totals(self) -> Mapping[Tuple[int, int], int]:
        """Mapping from degree pair (g, h) to the total number of pairs |T|."""
        return dict(self._totals)


class ExplicitPairTyping(PairTyping):
    """Typing given by an explicit enumeration of pairs of interest.

    Parameters
    ----------
    pair_types:
        Mapping from unordered vertex pairs (any orientation) to a type key.
        Pairs not listed belong to no type, exactly as Definition 1 allows.
    """

    def __init__(self, pair_types: Mapping[Tuple[int, int], TypeKey]) -> None:
        self._pairs: Dict[Tuple[int, int], TypeKey] = {}
        for (u, v), type_key in pair_types.items():
            canonical = normalize_edge(u, v)
            if canonical in self._pairs and self._pairs[canonical] != type_key:
                raise ConfigurationError(
                    f"pair {canonical} assigned to two types: "
                    f"{self._pairs[canonical]!r} and {type_key!r}")
            self._pairs[canonical] = type_key
        counts: Counter = Counter(self._pairs.values())
        self._totals: Dict[TypeKey, int] = dict(counts)

    def type_of(self, u: int, v: int) -> Optional[TypeKey]:
        if u == v:
            return None
        return self._pairs.get(normalize_edge(u, v))

    def types(self) -> Iterable[TypeKey]:
        return iter(self._totals)

    def pair_count(self, type_key: TypeKey) -> int:
        return self._totals.get(type_key, 0)

    def pairs_of_type(self, type_key: TypeKey) -> List[Tuple[int, int]]:
        """Return the pairs belonging to ``type_key`` (canonical orientation)."""
        return [pair for pair, key in self._pairs.items() if key == type_key]

    def all_pairs(self) -> List[Tuple[int, int]]:
        """Return every typed pair."""
        return list(self._pairs)
