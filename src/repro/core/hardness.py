"""Theorem 1: the 3-SAT → L-opacification reduction.

The paper proves NP-hardness of L-opacification by mapping a 3-SAT instance
to a graph plus a collection of vertex-pair types such that the instance is
satisfiable if and only if the graph can be made L-opaque (every type's
opacity strictly below 1) with exactly N edge removals, N being the number
of Boolean variables.  This module builds that gadget graph, converts truth
assignments to edge-removal sets and back, and provides small-instance
brute-force oracles so the equivalence can be verified in tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from itertools import product
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.opacity import OpacityComputer
from repro.core.pair_types import ExplicitPairTyping
from repro.errors import ConfigurationError
from repro.graph.graph import Edge, Graph, normalize_edge

#: A literal is (variable_index, negated?).
Literal = Tuple[int, bool]
#: A clause is a tuple of exactly three literals.
Clause = Tuple[Literal, Literal, Literal]


@dataclass(frozen=True)
class SatInstance:
    """A 3-SAT instance over variables ``0 .. num_variables - 1``."""

    num_variables: int
    clauses: Tuple[Clause, ...]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            if len(clause) != 3:
                raise ConfigurationError(f"every clause must have 3 literals, got {clause}")
            for variable, _negated in clause:
                if not 0 <= variable < self.num_variables:
                    raise ConfigurationError(
                        f"literal references variable {variable} outside "
                        f"[0, {self.num_variables})")

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Whether ``assignment`` (indexed by variable) satisfies every clause."""
        if len(assignment) != self.num_variables:
            raise ConfigurationError("assignment length must equal num_variables")
        for clause in self.clauses:
            if not any(assignment[var] != negated for var, negated in clause):
                return False
        return True


def random_sat_instance(num_variables: int, num_clauses: int,
                        seed: Optional[int] = None) -> SatInstance:
    """Generate a random 3-SAT instance (distinct variables within each clause)."""
    if num_variables < 3:
        raise ConfigurationError("need at least 3 variables for 3-literal clauses")
    rng = random.Random(seed)
    clauses: List[Clause] = []
    for _ in range(num_clauses):
        variables = rng.sample(range(num_variables), 3)
        clause = tuple((var, rng.random() < 0.5) for var in variables)
        clauses.append(clause)  # type: ignore[arg-type]
    return SatInstance(num_variables=num_variables, clauses=tuple(clauses))


def brute_force_satisfiable(instance: SatInstance) -> Optional[Tuple[bool, ...]]:
    """Return a satisfying assignment, or ``None`` if the instance is unsatisfiable."""
    for assignment in product((False, True), repeat=instance.num_variables):
        if instance.evaluate(assignment):
            return assignment
    return None


@dataclass
class LOpacificationInstance:
    """The gadget graph and typing produced by the Theorem 1 reduction."""

    instance: SatInstance
    graph: Graph
    typing: ExplicitPairTyping
    length_threshold: int
    removal_budget: int
    #: variable index -> (positive-literal edge, negative-literal edge)
    variable_edges: Dict[int, Tuple[Edge, Edge]] = field(default_factory=dict)
    #: clause index -> list of (A_k, B_k) vertex pairs, one per literal occurrence
    clause_pairs: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # assignment <-> removal translation
    # ------------------------------------------------------------------
    def removals_for_assignment(self, assignment: Sequence[bool]) -> Set[Edge]:
        """Edges to remove to encode ``assignment`` (true -> remove positive edge)."""
        if len(assignment) != self.instance.num_variables:
            raise ConfigurationError("assignment length must equal num_variables")
        removals: Set[Edge] = set()
        for variable, value in enumerate(assignment):
            positive_edge, negative_edge = self.variable_edges[variable]
            removals.add(positive_edge if value else negative_edge)
        return removals

    def assignment_from_removals(self, removed: Set[Edge]) -> Optional[Tuple[bool, ...]]:
        """Recover a truth assignment from a removal set, if it encodes one.

        Returns ``None`` when the removal set does not remove exactly one of
        the two edges of some variable gadget.
        """
        assignment: List[bool] = []
        canonical = {normalize_edge(u, v) for u, v in removed}
        for variable in range(self.instance.num_variables):
            positive_edge, negative_edge = self.variable_edges[variable]
            removed_positive = positive_edge in canonical
            removed_negative = negative_edge in canonical
            if removed_positive == removed_negative:
                return None
            assignment.append(removed_positive)
        return tuple(assignment)

    # ------------------------------------------------------------------
    # decision procedure
    # ------------------------------------------------------------------
    def is_opacified(self, graph: Graph) -> bool:
        """Whether every type's opacity is strictly below 1 (Definition 3 with θ=1)."""
        computer = OpacityComputer(self.typing, self.length_threshold)
        result = computer.evaluate(graph)
        return result.max_opacity < 1.0

    def apply_removals(self, removals: Set[Edge]) -> Graph:
        """Return a copy of the gadget graph with ``removals`` deleted."""
        modified = self.graph.copy()
        for u, v in removals:
            modified.remove_edge_if_present(u, v)
        return modified

    def solvable_with_budget(self) -> Optional[Set[Edge]]:
        """Brute-force search for a feasible removal set of exactly N variable edges.

        Only removal sets that pick one edge per variable gadget need to be
        considered (the proof of Theorem 1 shows any solution has that form),
        so the search space is 2^N — adequate for the small instances used
        in tests.
        """
        for assignment in product((False, True), repeat=self.instance.num_variables):
            removals = self.removals_for_assignment(assignment)
            if self.is_opacified(self.apply_removals(removals)):
                return removals
        return None


def build_lopacification_instance(instance: SatInstance) -> LOpacificationInstance:
    """Construct the Theorem 1 gadget for a 3-SAT instance.

    For every variable ``v`` two disjoint edges are created — the positive
    edge ``(v_i, v_j)`` and the negative edge ``(v'_i, v'_j)`` — and the two
    endpoint pairs form the type ``("var", v)``.  For every occurrence of a
    literal of ``v`` in clause ``C_k``, two fresh vertices ``A_k`` and
    ``B_k`` are appended (one-hop neighbors of the corresponding edge's
    endpoints), and the pair ``(A_k, B_k)`` joins the type ``("clause", k)``;
    its only ≤3-hop connection runs across the literal's edge.
    """
    vertex_count = 0

    def new_vertex() -> int:
        nonlocal vertex_count
        vertex_count += 1
        return vertex_count - 1

    edges: List[Edge] = []
    pair_types: Dict[Tuple[int, int], object] = {}
    variable_edges: Dict[int, Tuple[Edge, Edge]] = {}
    clause_pairs: Dict[int, List[Tuple[int, int]]] = {}
    endpoint_lookup: Dict[Tuple[int, bool], Edge] = {}

    for variable in range(instance.num_variables):
        positive = (new_vertex(), new_vertex())
        negative = (new_vertex(), new_vertex())
        edges.append(positive)
        edges.append(negative)
        variable_edges[variable] = (normalize_edge(*positive), normalize_edge(*negative))
        endpoint_lookup[(variable, False)] = positive
        endpoint_lookup[(variable, True)] = negative
        pair_types[normalize_edge(*positive)] = ("var", variable)
        pair_types[normalize_edge(*negative)] = ("var", variable)

    for clause_index, clause in enumerate(instance.clauses):
        clause_pairs[clause_index] = []
        for variable, negated in clause:
            vi, vj = endpoint_lookup[(variable, negated)]
            a_vertex = new_vertex()
            b_vertex = new_vertex()
            edges.append((a_vertex, vi))
            edges.append((b_vertex, vj))
            pair_types[normalize_edge(a_vertex, b_vertex)] = ("clause", clause_index)
            clause_pairs[clause_index].append((a_vertex, b_vertex))

    graph = Graph(vertex_count, edges=edges)
    typing = ExplicitPairTyping(pair_types)
    return LOpacificationInstance(
        instance=instance,
        graph=graph,
        typing=typing,
        length_threshold=3,
        removal_budget=instance.num_variables,
        variable_edges=variable_edges,
        clause_pairs=clause_pairs,
    )
