"""The look-ahead combination search used by both heuristics (Section 5).

The default greedy step considers single-edge moves.  With look-ahead
``la > 1``, whenever no single move strictly improves the current maximum
opacity the search widens to combinations of two edges, then three, up to
``la`` edges, evaluating each combination on the fly (the paper's recursive
combination generator).  If no combination improves at any size, the best
single-size candidate found is returned so the greedy loop still progresses.
"""

from __future__ import annotations

import random
from fractions import Fraction
from itertools import combinations
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.core.anonymizer import CandidateOutcome, TieBreaker
from repro.graph.graph import Edge

EvaluateCombo = Callable[[Sequence[Edge]], CandidateOutcome]


def _combinations_capped(candidates: Sequence[Edge], size: int, cap: int,
                         rng: random.Random) -> Iterable[Tuple[Edge, ...]]:
    """All combinations of ``size`` edges, or a uniform sample of ``cap`` of them.

    The exact number of combinations can explode for large candidate sets and
    look-ahead levels; beyond ``cap`` a random subset keeps the step tractable
    (documented deviation, see DESIGN.md §5).
    """
    total = 1
    pool = len(candidates)
    for offset in range(size):
        total = total * (pool - offset) // (offset + 1)
        if total > cap:
            break
    if total <= cap:
        return combinations(candidates, size)
    sampled: List[Tuple[Edge, ...]] = []
    seen = set()
    while len(sampled) < cap:
        combo = tuple(sorted(rng.sample(list(candidates), size)))
        if combo not in seen:
            seen.add(combo)
            sampled.append(combo)
    return sampled


def search_best_combination(candidates: Sequence[Edge],
                            evaluate: EvaluateCombo,
                            current_fraction: Fraction,
                            lookahead: int,
                            rng: random.Random,
                            max_combinations: int) -> Optional[CandidateOutcome]:
    """Find the best edge combination of size 1..lookahead.

    Sizes are explored in increasing order; as soon as a size yields a
    candidate that strictly lowers the current maximum opacity, the best
    candidate of that size is returned (ties broken per Algorithm 4).  If no
    size improves, the best candidate observed overall is returned; ``None``
    is returned only when there are no candidates at all.
    """
    if not candidates:
        return None
    overall = TieBreaker(rng)
    for size in range(1, min(lookahead, len(candidates)) + 1):
        level = TieBreaker(rng)
        for combo in _combinations_capped(candidates, size, max_combinations, rng):
            outcome = evaluate(combo)
            level.offer(outcome)
            overall.offer(outcome)
        best_at_level = level.best
        if best_at_level is not None and best_at_level.fraction < current_fraction:
            return best_at_level
    return overall.best
