"""The look-ahead combination search used by both heuristics (Section 5).

The default greedy step considers single-edge moves.  With look-ahead
``la > 1``, whenever no single move strictly improves the current maximum
opacity the search widens to combinations of two edges, then three, up to
``la`` edges, evaluating each combination on the fly (the paper's recursive
combination generator).  If no combination improves at any size, the best
single-size candidate found is returned so the greedy loop still progresses.
"""

from __future__ import annotations

import random
from fractions import Fraction
from itertools import combinations
from math import comb
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.anonymizer import CandidateOutcome, TieBreaker
from repro.graph.graph import Edge

EvaluateCombo = Callable[[Sequence[Edge]], CandidateOutcome]

#: Batch evaluator: maps a list of combinations to their outcomes (an
#: iterator, so evaluation accounting interleaves per candidate).
EvaluateComboBatch = Callable[[Sequence[Tuple[Edge, ...]]],
                              Iterator[CandidateOutcome]]


def _combinations_capped(candidates: Sequence[Edge], size: int, cap: int,
                         rng: random.Random) -> Iterable[Tuple[Edge, ...]]:
    """All combinations of ``size`` edges, or a uniform sample of ``cap`` of them.

    The exact number of combinations can explode for large candidate sets and
    look-ahead levels; beyond ``cap`` a random subset keeps the step tractable
    (documented deviation, see DESIGN.md §5).  The count is computed exactly
    with :func:`math.comb` — a running partial product overestimates it
    (``C(30, k)`` peaks at ``k = 15`` before falling back to ``C(30, 28) =
    435``), and acting on that overestimate would leave the rejection-
    sampling loop below asking for more distinct combinations than exist,
    never terminating.
    """
    total = comb(len(candidates), size)
    if total <= cap:
        return combinations(candidates, size)
    pool = list(candidates)
    sampled: List[Tuple[Edge, ...]] = []
    seen = set()
    while len(sampled) < cap:
        combo = tuple(sorted(rng.sample(pool, size)))
        if combo not in seen:
            seen.add(combo)
            sampled.append(combo)
    return sampled


def search_best_combination(candidates: Sequence[Edge],
                            evaluate: EvaluateCombo,
                            current_fraction: Fraction,
                            lookahead: int,
                            rng: random.Random,
                            max_combinations: int,
                            evaluate_batch: Optional[EvaluateComboBatch] = None
                            ) -> Optional[CandidateOutcome]:
    """Find the best edge combination of size 1..lookahead.

    Sizes are explored in increasing order; as soon as a size yields a
    candidate that strictly lowers the current maximum opacity, the best
    candidate of that size is returned (ties broken per Algorithm 4).  If no
    size improves, the best candidate observed overall is returned; ``None``
    is returned only when there are no candidates at all.

    ``evaluate_batch``, when given, handles the size-1 level: the session it
    wraps computes every single-edge outcome in one stacked pass against the
    shared distance state instead of one preview per candidate.  Larger
    sizes keep per-combination evaluation so stop checks stay responsive
    inside the (potentially capped-but-huge) combination scans; outcomes
    are offered to the tie-breakers in the same order either way.
    """
    if not candidates:
        return None
    overall = TieBreaker(rng)
    for size in range(1, min(lookahead, len(candidates)) + 1):
        level = TieBreaker(rng)
        combos = _combinations_capped(candidates, size, max_combinations, rng)
        if size == 1 and evaluate_batch is not None:
            outcomes: Iterable[CandidateOutcome] = evaluate_batch(list(combos))
        else:
            outcomes = (evaluate(combo) for combo in combos)
        for outcome in outcomes:
            level.offer(outcome)
            overall.offer(outcome)
        best_at_level = level.best
        if best_at_level is not None and best_at_level.fraction < current_fraction:
            return best_at_level
    return overall.best
