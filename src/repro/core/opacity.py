"""L-opacity computation (Definition 2, Definition 3, Algorithm 1).

Given a graph, a vertex-pair typing, and a path-length threshold L, the
opacity of a type ``T`` is the fraction of pairs in ``T`` whose geodesic
distance is at most L; the opacity of the graph is the maximum over types.
:class:`OpacityComputer` reproduces the paper's ``maxLO`` (Algorithm 1) and
also records ``N(p)``, the number of types attaining a given opacity value,
which Algorithms 4 and 5 use for tie-breaking.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.pair_types import DegreePairTyping, ExplicitPairTyping, PairTyping, TypeKey
from repro.errors import ConfigurationError
from repro.graph.distance import DistanceEngine, bounded_distance_matrix
from repro.graph.graph import Graph
from repro.graph.matrices import UNREACHABLE, triu_pair_indices


def encode_degree_pairs(degrees: np.ndarray, first: np.ndarray,
                        second: np.ndarray) -> Tuple[np.ndarray, int]:
    """Encode the degree pairs of vertex pairs as integers for ``bincount``.

    Returns ``(codes, span)`` with ``code = min(g, h) * span + max(g, h)``
    and ``span = max degree + 1``.  The single authoritative scheme shared by
    the stateless tally (:meth:`OpacityComputer.within_counts`) and the
    incremental count deltas
    (:class:`repro.core.opacity_session.OpacitySession`) — their bit-identity
    depends on both using the same codes.
    """
    span = int(degrees.max()) + 1 if degrees.size else 1
    d_first = degrees[first]
    d_second = degrees[second]
    codes = np.minimum(d_first, d_second) * span + np.maximum(d_first, d_second)
    return codes.astype(np.int64), span


def decode_degree_pair(code: int, span: int) -> Tuple[int, int]:
    """Invert :func:`encode_degree_pairs` for one code."""
    return (int(code // span), int(code % span))


@dataclass(frozen=True)
class TypeOpacity:
    """Opacity of a single vertex-pair type."""

    type_key: TypeKey
    within_threshold: int
    total_pairs: int

    @property
    def opacity(self) -> float:
        """``LO_G(T)`` — fraction of pairs with distance at most L."""
        if self.total_pairs == 0:
            return 0.0
        return self.within_threshold / self.total_pairs

    @property
    def fraction(self) -> Fraction:
        """Exact opacity as a fraction, for robust comparisons."""
        if self.total_pairs == 0:
            return Fraction(0)
        return Fraction(self.within_threshold, self.total_pairs)


@dataclass(frozen=True)
class OpacityResult:
    """Result of one opacity evaluation (Algorithm 1 output plus bookkeeping)."""

    max_opacity: float
    max_fraction: Fraction
    types_at_max: int
    per_type: Mapping[TypeKey, TypeOpacity]

    def is_opaque(self, theta: float, strict: bool = False) -> bool:
        """Whether the graph satisfies L-opacity for the confidence threshold θ.

        The paper's Definition 3 uses a strict inequality while Algorithms 4
        and 5 terminate when ``LO(G) <= θ``; the default here follows the
        algorithms (non-strict), and ``strict=True`` gives Definition 3.
        """
        if strict:
            return self.max_opacity < theta
        return self.max_opacity <= theta

    def opacity_of(self, type_key: TypeKey) -> float:
        """Opacity of one type (0.0 for unknown/empty types)."""
        entry = self.per_type.get(type_key)
        return entry.opacity if entry is not None else 0.0

    def violating_types(self, theta: float) -> Tuple[TypeKey, ...]:
        """Types whose opacity currently exceeds θ."""
        return tuple(key for key, entry in self.per_type.items() if entry.opacity > theta)


class OpacityComputer:
    """Computes L-opacity values for a fixed typing and threshold L.

    Parameters
    ----------
    typing:
        The vertex-pair typing (frozen from the original graph).
    length_threshold:
        The L parameter — the path length considered a privacy threat.
    engine:
        Which distance engine to use (see
        :func:`repro.graph.distance.available_engines`).
    """

    def __init__(self, typing: PairTyping, length_threshold: int,
                 engine: DistanceEngine = "numpy") -> None:
        if length_threshold < 1:
            raise ConfigurationError(f"length_threshold must be >= 1, got {length_threshold}")
        self._typing = typing
        self._length = int(length_threshold)
        self._engine = engine
        # Lazy interned view of an ExplicitPairTyping: pair endpoint arrays
        # plus per-pair type codes, built once so every tally is a gather
        # and a bincount instead of a per-pair Python loop.
        self._explicit_pairs: Optional[Tuple[np.ndarray, np.ndarray,
                                             np.ndarray, List[TypeKey]]] = None

    @property
    def typing(self) -> PairTyping:
        """The typing this computer evaluates against."""
        return self._typing

    @property
    def length_threshold(self) -> int:
        """The L parameter."""
        return self._length

    @property
    def engine(self) -> DistanceEngine:
        """The configured distance engine."""
        return self._engine

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def distances(self, graph: Graph) -> np.ndarray:
        """Return the L-bounded distance matrix of ``graph``."""
        return bounded_distance_matrix(graph, self._length, engine=self._engine)

    def evaluate(self, graph: Graph, distances: Optional[np.ndarray] = None) -> OpacityResult:
        """Compute the full opacity result for ``graph`` (Algorithm 1).

        ``distances`` may be supplied by the caller to reuse an existing
        L-bounded distance matrix.
        """
        if distances is None:
            distances = self.distances(graph)
        return self.result_from_counts(self.within_counts(distances))

    def max_opacity(self, graph: Graph, distances: Optional[np.ndarray] = None) -> float:
        """Return ``maxLO`` — the maximum opacity over all types."""
        return self.evaluate(graph, distances=distances).max_opacity

    def within_counts(self, distances: np.ndarray) -> Dict[TypeKey, int]:
        """Per-type counts of pairs within distance L (Algorithm 1's tally).

        Exposed separately from :meth:`evaluate` so the stateful
        :class:`repro.core.opacity_session.OpacitySession` can seed and
        re-derive its incremental count state from the same code path.
        """
        if isinstance(self._typing, DegreePairTyping):
            return self._degree_pair_counts(distances)
        return self._generic_counts(distances)

    def result_from_counts(self, counts: Mapping[TypeKey, int]) -> OpacityResult:
        """Assemble the full :class:`OpacityResult` from within-L counts."""
        return self._build_result(counts)

    def within_counts_store(self, store) -> Dict[TypeKey, int]:
        """:meth:`within_counts` read through a distance store, block by block.

        Streams ``|block| × n`` slabs from a
        :class:`~repro.graph.distance_store.DistanceStore` instead of
        requiring the dense matrix, so the tiled scale tier can seed
        incremental sessions without ever materializing ``n × n``.  The
        per-block tallies partition the strict upper triangle, and integer
        sums are order-independent, so the result equals
        ``within_counts(store.to_array())`` exactly.
        """
        typing = self._typing
        n = store.num_vertices
        counts: Dict[TypeKey, int] = {}
        if n < 2:
            return counts
        if isinstance(typing, DegreePairTyping):
            degrees = typing.degrees
            columns = np.arange(n)[None, :]
            for start, stop in store.row_blocks():
                slab = store.rows(np.arange(start, stop))
                mask = ((slab <= self._length)
                        & (columns > np.arange(start, stop)[:, None]))
                if not mask.any():
                    continue
                local_rows, cols = np.nonzero(mask)
                encoded, span = encode_degree_pairs(degrees,
                                                    local_rows + start, cols)
                counted = np.bincount(encoded)
                for code in np.nonzero(counted)[0]:
                    key = decode_degree_pair(int(code), span)
                    counts[key] = counts.get(key, 0) + int(counted[code])
            return counts
        if isinstance(typing, ExplicitPairTyping):
            rows, cols, codes, keys = self._explicit_pair_arrays()
            if rows.size == 0:
                return counts
            totals = np.zeros(len(keys), dtype=np.int64)
            for start, stop in store.row_blocks():
                selector = (rows >= start) & (rows < stop)
                if not selector.any():
                    continue
                slab = store.rows(np.arange(start, stop))
                within = (slab[rows[selector] - start, cols[selector]]
                          <= self._length)
                totals += np.bincount(codes[selector][within],
                                      minlength=len(keys))
            return {keys[code]: int(totals[code])
                    for code in np.nonzero(totals)[0]}
        # Fallback for arbitrary typings: scan every pair (the sentinel is
        # always above L, so one comparison covers reachability too).
        for start, stop in store.row_blocks():
            slab = store.rows(np.arange(start, stop))
            for local, u in enumerate(range(start, stop)):
                row = slab[local]
                for v in range(u + 1, n):
                    if int(row[v]) > self._length:
                        continue
                    key = typing.type_of(u, v)
                    if key is not None:
                        counts[key] = counts.get(key, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # counting strategies
    # ------------------------------------------------------------------
    def _degree_pair_counts(self, distances: np.ndarray) -> Dict[TypeKey, int]:
        typing = self._typing
        assert isinstance(typing, DegreePairTyping)
        degrees = typing.degrees
        n = distances.shape[0]
        if n < 2:
            return {}
        rows, cols = triu_pair_indices(n)
        within = distances[rows, cols] <= self._length
        if not within.any():
            return {}
        encoded, span = encode_degree_pairs(degrees, rows[within], cols[within])
        counted = np.bincount(encoded)
        nonzero = np.nonzero(counted)[0]
        return {decode_degree_pair(code, span): int(counted[code]) for code in nonzero}

    def _generic_counts(self, distances: np.ndarray) -> Dict[TypeKey, int]:
        typing = self._typing
        counts: Dict[TypeKey, int] = {}
        if isinstance(typing, ExplicitPairTyping):
            rows, cols, codes, keys = self._explicit_pair_arrays()
            if rows.size == 0:
                return counts
            # UNREACHABLE is far above any admissible L, so a single
            # comparison covers both the reachability and threshold tests.
            within = distances[rows, cols] <= self._length
            counted = np.bincount(codes[within], minlength=len(keys))
            return {keys[code]: int(counted[code])
                    for code in np.nonzero(counted)[0]}
        # Fallback for arbitrary typings: scan every pair.
        n = distances.shape[0]
        for u in range(n):
            for v in range(u + 1, n):
                distance = int(distances[u, v])
                if distance == UNREACHABLE or distance > self._length:
                    continue
                key = typing.type_of(u, v)
                if key is not None:
                    counts[key] = counts.get(key, 0) + 1
        return counts

    def _explicit_pair_arrays(self) -> Tuple[np.ndarray, np.ndarray,
                                             np.ndarray, List[TypeKey]]:
        """Interned ``(rows, cols, type codes, code -> key)`` of the typing.

        Built lazily and cached: the typing is frozen for the computer's
        lifetime, so the enumeration order (and with it the counting
        result) never changes between calls.
        """
        if self._explicit_pairs is None:
            typing = self._typing
            assert isinstance(typing, ExplicitPairTyping)
            pairs = typing.all_pairs()
            rows = np.fromiter((u for u, _ in pairs), dtype=np.int64,
                               count=len(pairs))
            cols = np.fromiter((v for _, v in pairs), dtype=np.int64,
                               count=len(pairs))
            keys: List[TypeKey] = []
            code_of: Dict[TypeKey, int] = {}
            codes = np.empty(len(pairs), dtype=np.int64)
            for position, (u, v) in enumerate(pairs):
                key = typing.type_of(u, v)
                code = code_of.get(key)
                if code is None:
                    code = len(keys)
                    code_of[key] = code
                    keys.append(key)
                codes[position] = code
            self._explicit_pairs = (rows, cols, codes, keys)
        return self._explicit_pairs

    # ------------------------------------------------------------------
    # result assembly
    # ------------------------------------------------------------------
    def _build_result(self, counts: Mapping[TypeKey, int]) -> OpacityResult:
        per_type: Dict[TypeKey, TypeOpacity] = {}
        max_fraction = Fraction(0)
        for type_key in self._typing.types():
            total = self._typing.pair_count(type_key)
            if total == 0:
                continue
            within = counts.get(type_key, 0)
            entry = TypeOpacity(type_key=type_key, within_threshold=within, total_pairs=total)
            per_type[type_key] = entry
            if entry.fraction > max_fraction:
                max_fraction = entry.fraction
        types_at_max = sum(1 for entry in per_type.values() if entry.fraction == max_fraction)
        if not per_type:
            types_at_max = 0
        return OpacityResult(
            max_opacity=float(max_fraction),
            max_fraction=max_fraction,
            types_at_max=types_at_max,
            per_type=per_type,
        )


def max_lo(graph: Graph, typing: PairTyping, length_threshold: int,
           engine: DistanceEngine = "numpy") -> float:
    """Convenience wrapper for Algorithm 1: return ``max_T LO_G(T)``."""
    return OpacityComputer(typing, length_threshold, engine=engine).max_opacity(graph)
