"""Persistent worker pool sharding one candidate scan over a shared arena.

``scan_mode="parallel"`` splits the batched candidate scan of a greedy step
across a small pool of worker processes.  The parent publishes its session's
*current* graph and distance store into a
:class:`~repro.api.shm.SharedSampleArena` exactly once per pool lifetime;
each worker attaches the segments read-only, rebuilds an equivalent
incremental :class:`~repro.core.opacity_session.OpacitySession`, and from
then on answers ``("scan", candidates)`` requests with the per-candidate
within-L count-change dicts of its shard.  Follow-up ``("apply", ...)``
messages keep every worker's session in lock-step with the parent's applied
edits, so one arena publication serves the whole greedy run.

Bit-identity is preserved by construction:

* distance values are canonical — a worker's freshly attached store holds
  exactly the parent's current matrix (dense copy) or computes canonical
  tiles lazily from the current CSR adjacency (tiled), so per-candidate
  change dicts match the serial scan's bit for bit;
* candidates are sharded *contiguously* in candidate order and the parent
  concatenates shard results back in that order before running its own
  summarize pass — same ``Fraction`` maxima, tie counts, and float totals;
* the parent replays the scan's graph mutate/restore sequence afterwards
  (:meth:`~repro.graph.distance_delta.DistanceSession.replay_scan_mutations`),
  so adjacency-set iteration histories — and every seeded tie-break
  downstream — stay scan-mode-independent.

Failure handling is all-or-nothing: any send/recv error (including a worker
killed with SIGKILL mid-scan) makes :meth:`ScanPool.scan` return ``None``;
the caller tears the pool down and permanently falls back to the serial
batched scan, which is result-identical.  The arena is unlinked the moment
every worker has attached, so a crashed worker — or a crashed parent —
cannot leak ``/dev/shm`` segments.

Pool nesting: θ-group pool workers (:mod:`repro.api.batch`) call
:func:`mark_pool_worker` from their initializer, and
:func:`resolve_scan_workers` returns 0 inside such a process — a grid that
already fans θ-groups across all cores must not oversubscribe them with
nested scan pools.
"""

from __future__ import annotations

import multiprocessing
import os
import weakref
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ScanPool",
    "in_pool_worker",
    "mark_pool_worker",
    "resolve_scan_workers",
]

#: Seconds a worker gets to attach the arena and report readiness.
_READY_TIMEOUT = 60.0

#: Set in processes that are themselves pool workers (θ-group workers of
#: :mod:`repro.api.batch`, scan-pool workers of this module), where nested
#: scan pools would oversubscribe the machine.
_IN_POOL_WORKER = False


def mark_pool_worker() -> None:
    """Mark this process as a pool worker (disables nested scan pools)."""
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True


def in_pool_worker() -> bool:
    """Whether this process is a pool worker."""
    return _IN_POOL_WORKER


def resolve_scan_workers(scan_mode: str,
                         scan_workers: Optional[int]) -> int:
    """Effective scan-pool size for a run's (scan_mode, scan_workers) knobs.

    Returns 0 (serial scan) unless ``scan_mode == "parallel"`` — and always
    inside a pool worker, the no-oversubscription rule.  An explicit
    ``scan_workers`` wins; ``None`` auto-sizes to ``min(4, cpu_count)`` on
    multi-core machines and 0 on single-core ones (where the pool could
    only lose).
    """
    if scan_mode != "parallel" or in_pool_worker():
        return 0
    if scan_workers is not None:
        return max(0, int(scan_workers))
    cpus = os.cpu_count() or 1
    return min(4, cpus) if cpus >= 2 else 0


def _scan_worker_main(conn, descriptor, computer,
                      fallback_row_fraction: Optional[float]) -> None:
    """Worker entry point: attach the arena, serve scan/apply requests.

    Runs in a forked child, so ``computer`` (typing, L, engine) arrives by
    inheritance; only the arena descriptor and small message payloads ever
    cross the pipe.  Any failure is reported once and ends the worker — the
    parent treats a dead worker as a permanent fallback signal.
    """
    from repro.api.shm import attach_arena
    from repro.core.opacity_session import OpacitySession

    mark_pool_worker()
    try:
        attached = attach_arena(descriptor)
        cache = attached.caches[computer.engine]
        length = computer.length_threshold
        if cache.tier == "tiled":
            initial = cache.store(length)
        else:
            initial = cache.matrix(length)
        session = OpacitySession(computer, attached.graph,
                                 mode="incremental",
                                 fallback_row_fraction=fallback_row_fraction,
                                 initial_distances=initial)
        conn.send(("ready",))
    except Exception as exc:  # noqa: BLE001 — reported to the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                return
            kind = message[0]
            if kind == "close":
                return
            try:
                if kind == "scan":
                    changes = session.collect_edit_changes(message[1])
                    conn.send(("ok", changes, session.take_scan_stats()))
                elif kind == "apply":
                    session.apply_edit(message[1], message[2])
                else:
                    conn.send(("error", f"unknown message kind {kind!r}"))
                    return
            except Exception as exc:  # noqa: BLE001 — fail the whole pool
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
                return
    finally:
        try:
            session.close()
        except Exception:  # noqa: BLE001 — teardown must not mask exit
            pass
        conn.close()


def _shutdown(processes: List[Any], connections: List[Any],
              timeout: float = 2.0) -> None:
    """Best-effort teardown of worker processes and their pipes."""
    for conn in connections:
        try:
            conn.send(("close",))
        except Exception:  # noqa: BLE001 — dead pipe, nothing to close
            pass
        try:
            conn.close()
        except Exception:  # noqa: BLE001
            pass
    for process in processes:
        process.join(timeout=timeout)
    for process in processes:
        if process.is_alive():
            process.terminate()
            process.join(timeout=timeout)


class ScanPool:
    """A started pool of scan workers attached to one published arena.

    Build one with :meth:`start`; hand candidate lists to :meth:`scan` and
    applied edits to :meth:`apply`; :meth:`close` (idempotent, also run by
    a ``weakref`` finalizer) shuts the workers down.  All methods are
    parent-side only.
    """

    def __init__(self, processes: List[Any], connections: List[Any]) -> None:
        self._processes = processes
        self._connections = connections
        self._closed = False
        self._finalizer = weakref.finalize(self, _shutdown,
                                           processes, connections)

    @classmethod
    def start(cls, computer, graph, store,
              fallback_row_fraction: Optional[float],
              workers: int) -> Optional["ScanPool"]:
        """Publish the session state and fork ``workers`` scan workers.

        Returns ``None`` when the pool cannot be built (no fork start
        method, arena publication failure, a worker failing to attach) —
        the caller falls back to the serial scan.  On success the arena is
        already unlinked: every worker attached during startup, and POSIX
        keeps their mappings alive, so nothing can leak ``/dev/shm``
        entries no matter how the processes die later.
        """
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover — non-POSIX platform
            return None
        from repro.api.shm import publish_session_store

        arena = None
        processes: List[Any] = []
        connections: List[Any] = []
        try:
            arena = publish_session_store(graph, computer.engine, store)
            for _ in range(workers):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                process = ctx.Process(
                    target=_scan_worker_main,
                    args=(child_conn, arena.descriptor, computer,
                          fallback_row_fraction),
                    daemon=True)
                process.start()
                child_conn.close()
                processes.append(process)
                connections.append(parent_conn)
            for conn in connections:
                if not conn.poll(_READY_TIMEOUT):
                    raise RuntimeError("scan worker did not become ready")
                reply = conn.recv()
                if reply[0] != "ready":
                    raise RuntimeError(f"scan worker failed: {reply[1]}")
        except Exception:  # noqa: BLE001 — pool startup is best-effort
            _shutdown(processes, connections)
            if arena is not None:
                arena.unlink()
            return None
        arena.unlink()
        return cls(processes, connections)

    @property
    def num_workers(self) -> int:
        """Number of worker processes in this pool."""
        return len(self._processes)

    @property
    def worker_pids(self) -> Tuple[int, ...]:
        """PIDs of the worker processes (crash-safety test hook)."""
        return tuple(process.pid for process in self._processes)

    def scan(self, pairs: Sequence[Tuple[Any, Any]]
             ) -> Optional[Tuple[List[Dict[int, int]],
                                 List[Tuple[int, int]]]]:
        """Shard ``pairs`` across the workers and merge in candidate order.

        Returns ``(changes, stats)`` — the concatenated per-candidate
        count-change dicts, in exactly the input order, plus each shard's
        ``(affected_rows, candidates)`` observation totals — or ``None`` on
        any worker failure (the all-or-nothing fallback signal).
        """
        if self._closed:
            return None
        pairs = list(pairs)
        shards: List[Tuple[Any, int]] = []  # (connection, shard size)
        base, extra = divmod(len(pairs), len(self._connections))
        start = 0
        try:
            for index, conn in enumerate(self._connections):
                size = base + (1 if index < extra else 0)
                if size == 0:
                    continue
                conn.send(("scan", pairs[start:start + size]))
                shards.append((conn, size))
                start += size
            changes: List[Dict[int, int]] = []
            stats: List[Tuple[int, int]] = []
            for conn, size in shards:
                reply = conn.recv()
                if reply[0] != "ok" or len(reply[1]) != size:
                    return None
                changes.extend(reply[1])
                stats.append(reply[2])
            return changes, stats
        except (OSError, EOFError, BrokenPipeError):
            return None

    def apply(self, removals: Sequence[Any],
              insertions: Sequence[Any]) -> bool:
        """Forward an applied edit to every worker; ``False`` on failure.

        No acknowledgement is waited for — a desynchronized worker is
        detected by the next :meth:`scan` (its reply stream breaks), which
        triggers the same serial fallback.
        """
        if self._closed:
            return False
        try:
            for conn in self._connections:
                conn.send(("apply", tuple(removals), tuple(insertions)))
            return True
        except (OSError, BrokenPipeError):
            return False

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        _shutdown(self._processes, self._connections)
