"""Shared machinery for the two L-opacification heuristics.

Both Algorithm 4 (Edge Removal) and Algorithm 5 (Edge Removal/Insertion)
follow the same skeleton: repeatedly evaluate candidate edge modifications,
pick the one that minimizes the resulting maximum opacity with the paper's
tie-breaking rule, apply it, and stop once the graph satisfies the requested
threshold.  This module holds the configuration record, the result/step
records, the tie-breaking logic, and the abstract driver.

The driver also powers the **checkpointed θ-sweep engine** (DESIGN.md §9):
θ enters the greedy loop only as the stopping condition, so for a fixed
seed the edit sequence at a lower θ is an exact extension of the sequence
at every higher θ.  :meth:`BaseAnonymizer.anonymize_schedule` therefore
executes a whole descending θ grid as *one* anonymization pass, emitting an
:class:`AnonymizationCheckpoint` each time the maximum opacity first
crosses a grid point and materializing per-θ results identical to
independent runs.
"""

from __future__ import annotations

import random
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from fractions import Fraction
from functools import cached_property
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.api.progress import (
    NULL_OBSERVER,
    AnonymizationStopped,
    ProgressObserver,
    notify_checkpoint,
)
from repro.core.opacity import OpacityComputer, OpacityResult
from repro.core.opacity_session import (
    OpacitySession,
    validate_evaluation_mode,
    validate_scan_mode,
)
from repro.core.pair_types import DegreePairTyping, PairTyping
from repro.core.scan_pool import resolve_scan_workers
from repro.errors import ConfigurationError, InfeasibleError
from repro.graph.distance import DistanceEngine, available_engines
from repro.graph.distance_store import (
    DEFAULT_SCALE_BUDGET_BYTES,
    StoreConfig,
    validate_scale_tier,
)
from repro.graph.graph import Edge, Graph
from repro.metrics.distortion import edit_distance_ratio

#: Candidates per stacked ``evaluate_edits`` call in batched scans.  Large
#: enough to amortize the per-pass numpy dispatch, small enough that a stop
#: request (observer/timeout) never waits on more than one chunk's worth of
#: computed-but-unreported evaluations.
BATCH_SCAN_CHUNK = 256

#: Valid values of the ``sweep_mode`` knob: how a θ schedule is executed.
#: ``"checkpointed"`` runs one anonymization pass per grid, emitting a
#: checkpoint at every crossed grid point; ``"independent"`` runs one full
#: anonymization per θ (the pre-sweep-engine path).  Both produce identical
#: per-θ results (edits, opacity, evaluation counts) — only the work
#: performed (and hence the runtime) differs.
SWEEP_MODES: Tuple[str, ...] = ("checkpointed", "independent")


def validate_sweep_mode(mode: str) -> None:
    """Raise :class:`ConfigurationError` unless ``mode`` is a known sweep mode."""
    if mode not in SWEEP_MODES:
        raise ConfigurationError(
            f"unknown sweep_mode {mode!r}; available: {SWEEP_MODES}")


def validate_theta_schedule(thetas: Sequence[float]) -> Tuple[float, ...]:
    """Coerce ``thetas`` into the strictly-descending grid the engine runs.

    Values are validated against [0, 1], deduplicated, and sorted in
    descending order — the order in which a single anonymization pass
    crosses them.
    """
    thetas = tuple(thetas)
    if not thetas:
        raise ConfigurationError("theta schedule must not be empty")
    for theta in thetas:
        if not 0.0 <= theta <= 1.0:
            raise ConfigurationError(f"theta must be in [0, 1], got {theta}")
    return tuple(sorted({float(theta) for theta in thetas}, reverse=True))


def iter_batched_evaluations(session: OpacitySession, candidates: Sequence,
                             to_edit):
    """Stream a batched candidate scan's evaluations in stop-friendly chunks.

    ``to_edit`` maps one candidate to its ``(removals, insertions)`` edit.
    Evaluations arrive in candidate order, computed one
    ``BATCH_SCAN_CHUNK``-sized :meth:`OpacitySession.evaluate_edits` pass at
    a time, so the consumer's per-candidate accounting (and any stop raised
    from it) never waits on more than one chunk of computed-but-unreported
    work.  Shared by every ``scan_mode="batched"`` scan loop.
    """
    # A parallel scan amortizes one pool round-trip per chunk, so chunks
    # scale with the pool size — each worker still sees ~BATCH_SCAN_CHUNK
    # candidates per round, and stop latency per process is unchanged.
    chunk_size = BATCH_SCAN_CHUNK * max(1, session.scan_parallelism)
    for start in range(0, len(candidates), chunk_size):
        chunk = candidates[start:start + chunk_size]
        yield from session.evaluate_edits([to_edit(candidate)
                                           for candidate in chunk])


@dataclass(frozen=True)
class AnonymizerConfig:
    """Parameters shared by the L-opacification heuristics.

    Attributes
    ----------
    length_threshold:
        The L parameter: path lengths up to L are considered sensitive.
    theta:
        Confidence threshold θ; the algorithms stop once
        ``max_T LO(T) <= theta``.
    lookahead:
        The ``la`` parameter: maximum number of edges considered jointly in
        one greedy step (Section 5).
    engine:
        Distance engine used for opacity evaluation.
    seed:
        Seed for the uniform tie-breaking of Algorithm 4 (lines 14-18).
    max_steps:
        Optional hard cap on greedy steps (safety valve for experiments).
    prune_candidates:
        If ``True`` (default), the removal scan is restricted to edges that
        lie on a path of length ≤ L between a pair of a type currently at
        the maximum opacity — removals outside that set cannot reduce the
        maximum, so the greedy choice is preserved (see DESIGN.md §5.3).
    max_combinations:
        Cap on the number of edge combinations evaluated per look-ahead
        level; beyond the cap a uniform random subset is evaluated.
    insertion_candidate_cap:
        Optional cap on the number of absent edges scanned per insertion
        step of Algorithm 5 (``None`` scans all, as in the paper).
    strict:
        If ``True``, raise :class:`InfeasibleError` when the threshold cannot
        be met; otherwise return a best-effort result with ``success=False``.
    evaluation_mode:
        How candidate edits are evaluated: ``"incremental"`` (default)
        delta-evaluates each candidate through an
        :class:`~repro.core.opacity_session.OpacitySession`;
        ``"scratch"`` recomputes distances and counts from scratch per
        candidate.  Both modes choose bit-identical edits.
    scan_mode:
        How a step's candidate list is walked: ``"batched"`` (default)
        evaluates all single-edge candidates of a scan in one stacked
        :meth:`~repro.core.opacity_session.OpacitySession.evaluate_edits`
        pass; ``"per_candidate"`` previews them one at a time;
        ``"parallel"`` shards the batched scan across a pool of
        ``scan_workers`` processes attached to a shared-memory publication
        of the session state (DESIGN.md §14).  All scan modes choose
        bit-identical edits.
    scan_workers:
        Pool size for ``scan_mode="parallel"``.  ``None`` (default)
        auto-sizes to ``min(4, cpu_count)`` on multi-core machines and
        falls back to serial scanning on single-core ones; explicit values
        are used as-is (0/1 = serial).  Ignored by the other scan modes
        and inside θ-group pool workers (no nested oversubscription).
    sweep_mode:
        How :meth:`BaseAnonymizer.anonymize_schedule` executes a θ grid:
        ``"checkpointed"`` (default) runs one pass with per-θ checkpoints;
        ``"independent"`` runs one full anonymization per grid point.
        Both modes produce identical per-θ results.
    swap_sample_size:
        GADES only: candidate swap pairs examined per step.  Recorded here
        so a result's config reproduces the run; ``None`` for the other
        algorithms.
    scale_tier:
        Where the L-bounded distance plane lives: ``"dense"`` keeps the
        full n×n matrix in memory, ``"tiled"`` streams row-block tiles
        through a :class:`~repro.graph.distance_store.TiledStore` under
        ``scale_budget_bytes``, and ``"auto"`` (default) picks dense when
        the matrix fits the budget and tiled otherwise.  The tiled tier
        requires ``evaluation_mode="incremental"``.
    scale_budget_bytes:
        Byte budget for the distance plane (``None`` = the default
        512 MiB).  In the dense tier this is a guard — exceeding it raises
        :class:`~repro.errors.DistanceMemoryError` — while the tiled tier
        treats it as the tile-cache capacity, spilling cold tiles to disk.
    """

    length_threshold: int = 1
    theta: float = 0.5
    lookahead: int = 1
    engine: DistanceEngine = "numpy"
    seed: Optional[int] = None
    max_steps: Optional[int] = None
    prune_candidates: bool = True
    max_combinations: int = 100_000
    insertion_candidate_cap: Optional[int] = None
    strict: bool = False
    evaluation_mode: str = "incremental"
    scan_mode: str = "batched"
    scan_workers: Optional[int] = None
    sweep_mode: str = "checkpointed"
    swap_sample_size: Optional[int] = None
    scale_tier: str = "auto"
    scale_budget_bytes: Optional[int] = None

    def store_config(self) -> StoreConfig:
        """The :class:`~repro.graph.distance_store.StoreConfig` of this run."""
        budget = (self.scale_budget_bytes if self.scale_budget_bytes is not None
                  else DEFAULT_SCALE_BUDGET_BYTES)
        return StoreConfig(tier=self.scale_tier, budget_bytes=budget)

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` for invalid parameter values."""
        if self.length_threshold < 1:
            raise ConfigurationError(
                f"length_threshold must be >= 1, got {self.length_threshold}")
        if not 0.0 <= self.theta <= 1.0:
            raise ConfigurationError(f"theta must be in [0, 1], got {self.theta}")
        if self.lookahead < 1:
            raise ConfigurationError(f"lookahead must be >= 1, got {self.lookahead}")
        if self.engine not in available_engines():
            raise ConfigurationError(
                f"unknown distance engine {self.engine!r}; "
                f"available: {available_engines()}")
        if self.max_steps is not None and self.max_steps < 1:
            raise ConfigurationError(f"max_steps must be >= 1, got {self.max_steps}")
        if self.max_combinations < 1:
            raise ConfigurationError("max_combinations must be >= 1")
        if self.insertion_candidate_cap is not None and self.insertion_candidate_cap < 1:
            raise ConfigurationError("insertion_candidate_cap must be >= 1")
        if self.swap_sample_size is not None and self.swap_sample_size < 1:
            raise ConfigurationError("swap_sample_size must be >= 1")
        if self.scan_workers is not None and self.scan_workers < 0:
            raise ConfigurationError(
                f"scan_workers must be >= 0, got {self.scan_workers}")
        validate_evaluation_mode(self.evaluation_mode)
        validate_scan_mode(self.scan_mode)
        validate_sweep_mode(self.sweep_mode)
        if self.scan_mode == "parallel" and self.evaluation_mode == "scratch":
            raise ConfigurationError(
                "scan_mode='parallel' requires evaluation_mode='incremental'; "
                "scratch evaluation has no shareable session state")
        validate_scale_tier(self.scale_tier)
        if self.scale_tier == "tiled" and self.evaluation_mode == "scratch":
            raise ConfigurationError(
                "scale_tier='tiled' requires evaluation_mode='incremental'; "
                "scratch evaluation recomputes a dense matrix per candidate")
        if self.scale_budget_bytes is not None and self.scale_budget_bytes < 1:
            raise ConfigurationError(
                f"scale_budget_bytes must be >= 1, got {self.scale_budget_bytes}")


@dataclass(frozen=True)
class AnonymizationStep:
    """One applied greedy step.

    ``edges`` lists every touched edge (``removals + insertions``);
    ``removals`` and ``insertions`` split them by operation so a step
    sequence can be replayed onto a graph without knowing the operation's
    internal structure ("remove+insert" and "swap" steps mix both kinds).
    """

    index: int
    operation: str  # "remove", "insert", "remove+insert", or "swap"
    edges: Tuple[Edge, ...]
    max_opacity_after: float
    removals: Tuple[Edge, ...] = ()
    insertions: Tuple[Edge, ...] = ()


@dataclass
class AnonymizationResult:
    """Outcome of one anonymization run.

    ``stop_reason`` is ``None`` when the run ended because the threshold
    was met; otherwise it names why the loop stopped early: ``"observer"``
    (a progress observer asked to stop), ``"max_steps"``, or
    ``"exhausted"`` (no candidate modification could improve further).
    """

    original_graph: Graph
    anonymized_graph: Graph
    config: AnonymizerConfig
    steps: List[AnonymizationStep] = field(default_factory=list)
    removed_edges: Set[Edge] = field(default_factory=set)
    inserted_edges: Set[Edge] = field(default_factory=set)
    final_opacity: float = 0.0
    success: bool = False
    runtime_seconds: float = 0.0
    evaluations: int = 0
    stop_reason: Optional[str] = None
    observer: ProgressObserver = field(default=NULL_OBSERVER, repr=False, compare=False)
    #: Execution diagnostics that do not affect the anonymization outcome
    #: (effective fallback row fraction, parallel-scan usage, ...).
    #: Excluded from equality so results stay comparable across scan modes.
    debug_info: Dict[str, Any] = field(default_factory=dict, repr=False,
                                       compare=False)

    @cached_property
    def distortion(self) -> float:
        """Edit-distance ratio D(E, Ê) of Equation 1.

        Cached on first access (the underlying comparison walks both edge
        sets); only read it once the run has finished mutating
        ``anonymized_graph``.
        """
        return edit_distance_ratio(self.original_graph, self.anonymized_graph)

    @property
    def num_steps(self) -> int:
        """Number of greedy steps applied."""
        return len(self.steps)

    def summary(self) -> str:
        """One-line human-readable summary of the run."""
        status = "ok" if self.success else "best-effort"
        return (f"L={self.config.length_threshold} theta={self.config.theta:.2f} "
                f"la={self.config.lookahead} [{status}] "
                f"opacity={self.final_opacity:.3f} distortion={self.distortion:.3f} "
                f"steps={self.num_steps} removed={len(self.removed_edges)} "
                f"inserted={len(self.inserted_edges)} "
                f"time={self.runtime_seconds:.2f}s")


@dataclass(frozen=True)
class AnonymizationCheckpoint:
    """State of a checkpointed anonymization when a θ grid point is crossed.

    Emitted by the schedule drivers at the top of the greedy loop — exactly
    where an independent run at ``theta`` evaluates its
    ``max_opacity > θ`` stopping condition — so the recorded state (edits
    so far, opacity, evaluation count) is precisely what that independent
    run would have returned.  ``runtime_seconds`` is the elapsed time since
    the pass started (the per-θ split of a sweep is the difference of
    consecutive checkpoints); ``graph`` snapshots the working graph at the
    crossing.

    ``rng_state`` captures the tie-breaking RNG exactly as it stood at the
    crossing (``random.Random.getstate()``), which — together with the
    graph snapshot — is everything a later process needs to *continue* the
    pass bit-identically over the remaining grid points
    (:meth:`BaseAnonymizer.anonymize_schedule` with ``resume_from``).  It
    is ``None`` for checkpoints emitted by pre-resume schedule drivers and
    is excluded from equality so materialized results compare unchanged.
    """

    theta: float
    steps: Tuple[AnonymizationStep, ...]
    removed_edges: Tuple[Edge, ...]
    inserted_edges: Tuple[Edge, ...]
    evaluations: int
    max_opacity: float
    runtime_seconds: float
    success: bool
    stop_reason: Optional[str]
    graph: Graph = field(repr=False)
    rng_state: Optional[tuple] = field(default=None, repr=False, compare=False)

    @property
    def num_steps(self) -> int:
        """Number of greedy steps applied when the grid point was crossed."""
        return len(self.steps)


class ThetaScheduleTracker:
    """Emit checkpoints as one greedy pass crosses a descending θ grid.

    The greedy loops consult :meth:`emit_crossings` at the top of every
    iteration; a loop that stops early (observer, ``max_steps``, exhausted
    candidates) calls :meth:`emit_remaining` so every grid point still
    receives a checkpoint carrying the stop reason — the same best-effort
    outcome an independent run at that θ would report.
    """

    def __init__(self, schedule: Sequence[float], working: Graph,
                 started: float, rng: Optional[random.Random] = None) -> None:
        self._schedule = tuple(schedule)
        self._working = working
        self._started = started
        self._rng = rng
        self._pointer = 0
        self.checkpoints: List[AnonymizationCheckpoint] = []

    @property
    def done(self) -> bool:
        """Whether every grid point has been emitted."""
        return self._pointer >= len(self._schedule)

    def emit_crossings(self, current: OpacityResult,
                       result: AnonymizationResult) -> None:
        """Emit checkpoints for every grid point the pass has now crossed."""
        while (self._pointer < len(self._schedule)
               and current.max_opacity <= self._schedule[self._pointer]):
            self._emit(current, result, success=True, stop_reason=None)

    def emit_remaining(self, current: OpacityResult,
                       result: AnonymizationResult,
                       stop_reason: str) -> None:
        """Emit best-effort checkpoints for every not-yet-crossed grid point."""
        while self._pointer < len(self._schedule):
            theta = self._schedule[self._pointer]
            self._emit(current, result,
                       success=current.max_opacity <= theta,
                       stop_reason=stop_reason)

    def _emit(self, current: OpacityResult, result: AnonymizationResult,
              success: bool, stop_reason: Optional[str]) -> None:
        # The pass ends with the final grid point, so that checkpoint can
        # adopt the working graph itself (matching the single-θ behaviour
        # where the result owns the mutated working copy); earlier
        # checkpoints snapshot it, since the pass keeps mutating it.
        last = self._pointer == len(self._schedule) - 1
        checkpoint = AnonymizationCheckpoint(
            theta=self._schedule[self._pointer],
            steps=tuple(result.steps),
            removed_edges=tuple(sorted(result.removed_edges)),
            inserted_edges=tuple(sorted(result.inserted_edges)),
            evaluations=result.evaluations,
            max_opacity=current.max_opacity,
            runtime_seconds=time.perf_counter() - self._started,
            success=success,
            stop_reason=stop_reason,
            graph=self._working if last else self._working.copy(),
            rng_state=self._rng.getstate() if self._rng is not None else None,
        )
        self.checkpoints.append(checkpoint)
        self._pointer += 1
        # Stream the crossing to the run's observer so long checkpointed
        # sweeps report per-θ progress live, not only at materialization.
        notify_checkpoint(result.observer, checkpoint)


def materialize_checkpoints(checkpoints: Sequence[AnonymizationCheckpoint],
                            original: Graph, config: AnonymizerConfig,
                            observer: ProgressObserver) -> List[AnonymizationResult]:
    """Turn a schedule pass's checkpoints into per-θ results.

    Each materialized record is indistinguishable from the result of an
    independent run at its θ (same edits, steps, opacity, evaluation
    count); only ``runtime_seconds`` — the elapsed time when the pass
    crossed the grid point — reflects the shared execution.
    """
    return [AnonymizationResult(
        original_graph=original,
        anonymized_graph=checkpoint.graph,
        config=replace(config, theta=checkpoint.theta),
        steps=list(checkpoint.steps),
        removed_edges=set(checkpoint.removed_edges),
        inserted_edges=set(checkpoint.inserted_edges),
        final_opacity=checkpoint.max_opacity,
        success=checkpoint.success,
        runtime_seconds=checkpoint.runtime_seconds,
        evaluations=checkpoint.evaluations,
        stop_reason=checkpoint.stop_reason,
        observer=observer,
    ) for checkpoint in checkpoints]


@dataclass
class CandidateOutcome:
    """Evaluation of one candidate edge combination."""

    edges: Tuple[Edge, ...]
    fraction: Fraction
    types_at_max: int

    @property
    def opacity(self) -> float:
        """Maximum opacity after applying this candidate."""
        return float(self.fraction)


class TieBreaker:
    """The selection rule of Algorithm 4, lines 8-18.

    Candidates are preferred by (1) lowest resulting maximum opacity, then
    (2) fewest types attaining that maximum (``N``), then (3) uniformly at
    random among remaining ties, implemented with the same incremental
    reservoir counter as the pseudo-code.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self.best: Optional[CandidateOutcome] = None
        self._tie_count = 0

    def offer(self, candidate: CandidateOutcome) -> None:
        """Consider one candidate outcome."""
        if self.best is None or candidate.fraction < self.best.fraction:
            self.best = candidate
            self._tie_count = 1
            return
        if candidate.fraction == self.best.fraction:
            if candidate.types_at_max < self.best.types_at_max:
                self.best = candidate
                self._tie_count = 1
            elif candidate.types_at_max == self.best.types_at_max:
                self._tie_count += 1
                if self._rng.random() < 1.0 / self._tie_count:
                    self.best = candidate


class BaseAnonymizer(ABC):
    """Greedy L-opacification driver shared by Algorithms 4 and 5."""

    def __init__(self, config: Optional[AnonymizerConfig] = None, **overrides) -> None:
        if config is None:
            config = AnonymizerConfig(**overrides)
        elif overrides:
            raise ConfigurationError("pass either a config object or keyword overrides, not both")
        config.validate()
        self._config = config

    @property
    def config(self) -> AnonymizerConfig:
        """The configuration of this anonymizer."""
        return self._config

    # ------------------------------------------------------------------
    # template method
    # ------------------------------------------------------------------
    def anonymize(self, graph: Graph, typing: Optional[PairTyping] = None,
                  observer: Optional[ProgressObserver] = None,
                  initial_distances=None) -> AnonymizationResult:
        """Run the heuristic on ``graph`` and return the anonymization result.

        ``typing`` defaults to the degree-pair typing frozen from ``graph``,
        matching the paper's adversary model.  ``observer`` receives
        ``on_evaluation`` / ``on_step`` callbacks and is polled via
        ``should_stop`` between opacity evaluations; a requested stop ends
        the run at the next safe point with ``stop_reason="observer"``.
        ``initial_distances`` may carry the precomputed L-bounded distance
        matrix of ``graph`` (e.g. a
        :class:`~repro.graph.distance_cache.LMaxDistanceCache` slice) so the
        evaluation session skips its from-scratch engine run; the run takes
        ownership of the array.
        """
        return self._run_schedule(graph, (self._config.theta,), typing,
                                  observer, initial_distances)[0]

    def anonymize_schedule(self, graph: Graph,
                           thetas: Optional[Sequence[float]] = None,
                           typing: Optional[PairTyping] = None,
                           observer: Optional[ProgressObserver] = None,
                           initial_distances=None,
                           resume_from: Optional[AnonymizationCheckpoint] = None
                           ) -> List[AnonymizationResult]:
        """Run the heuristic for a whole θ grid, one result per grid point.

        ``thetas`` (default: the config's single θ) is deduplicated and
        sorted descending; results come back in that schedule order.  With
        ``sweep_mode="checkpointed"`` the grid is executed as *one*
        anonymization pass: θ only gates the greedy loop's termination, so
        the edit sequence at a lower θ extends the sequence at every higher
        θ, and a checkpoint taken when the maximum opacity first crosses a
        grid point captures exactly the state an independent run at that θ
        would have returned.  ``sweep_mode="independent"`` runs one full
        anonymization per grid point instead; both modes produce identical
        per-θ results (only ``runtime_seconds`` reflects the execution
        strategy).  ``initial_distances`` seeds the evaluation session like
        in :meth:`anonymize` (independent mode hands each per-θ run its own
        copy, since every run consumes one).

        ``resume_from`` continues an earlier pass over the same ``graph``
        and seed from one of its checkpoints: the working graph, applied
        edits, evaluation count, and tie-breaking RNG state are restored
        from the checkpoint, and only ``thetas`` — which must all lie
        strictly below the checkpoint's θ — are executed.  The results are
        bit-identical (runtime aside) to the corresponding tail of an
        uninterrupted pass; ``graph`` must still be the *original* graph
        (results and the frozen typing refer to it).  Independent mode
        ignores ``resume_from`` and re-runs each grid point from scratch,
        which yields the same results.
        """
        config = self._config
        schedule = validate_theta_schedule(
            thetas if thetas is not None else (config.theta,))
        if config.sweep_mode == "independent" and len(schedule) > 1:
            # Each per-θ run consumes its seed.  Dense arrays are cheap to
            # copy; store payloads (tiled tier) are not, so every run
            # recomputes its own store from the graph instead — the
            # per-tile engine is deterministic, so results are unchanged.
            def seed_distances():
                if isinstance(initial_distances, np.ndarray):
                    return initial_distances.copy()
                return None
            return [type(self)(config=replace(config, theta=theta)).anonymize(
                        graph, typing=typing, observer=observer,
                        initial_distances=seed_distances())
                    for theta in schedule]
        return self._run_schedule(graph, schedule, typing, observer,
                                  initial_distances, resume_from)

    def _run_schedule(self, graph: Graph, schedule: Sequence[float],
                      typing: Optional[PairTyping],
                      observer: Optional[ProgressObserver],
                      initial_distances=None,
                      resume_from: Optional[AnonymizationCheckpoint] = None
                      ) -> List[AnonymizationResult]:
        """One checkpointed greedy pass over a descending θ schedule."""
        config = self._config
        if resume_from is not None:
            if initial_distances is not None:
                raise ConfigurationError(
                    "initial_distances describes the original graph and "
                    "cannot seed a resumed pass; pass one or the other")
            if resume_from.rng_state is None:
                raise ConfigurationError(
                    "checkpoint carries no RNG state; it cannot seed a "
                    "resumed pass (emitted by a pre-resume driver?)")
            above = [theta for theta in schedule if theta >= resume_from.theta]
            if above:
                raise ConfigurationError(
                    f"a resumed schedule must lie strictly below the "
                    f"checkpoint's theta={resume_from.theta}; got {above}")
        if typing is None:
            typing = DegreePairTyping(graph)
        computer = OpacityComputer(typing, config.length_threshold, engine=config.engine)
        working = (resume_from.graph.copy() if resume_from is not None
                   else graph.copy())
        session = OpacitySession(
            computer, working, mode=config.evaluation_mode,
            initial_distances=initial_distances,
            store_config=config.store_config(),
            scan_workers=resolve_scan_workers(config.scan_mode,
                                              config.scan_workers))
        rng = random.Random(config.seed)
        original = graph.copy()
        result = AnonymizationResult(
            original_graph=original,
            anonymized_graph=working,
            config=replace(config, theta=schedule[-1]),
            observer=observer if observer is not None else NULL_OBSERVER,
        )
        started = time.perf_counter()
        if resume_from is not None:
            # Restore the pass exactly as it stood at the crossing: edits,
            # evaluation count, RNG, and the clock (so per-θ runtimes keep
            # accumulating across the interruption).
            rng.setstate(resume_from.rng_state)
            result.steps = list(resume_from.steps)
            result.removed_edges = set(resume_from.removed_edges)
            result.inserted_edges = set(resume_from.inserted_edges)
            result.evaluations = resume_from.evaluations
            started -= resume_from.runtime_seconds
        tracker = ThetaScheduleTracker(schedule, working, started, rng=rng)
        try:
            current = session.current()
            if resume_from is None:
                result.evaluations += 1
                result.observer.on_evaluation(result.evaluations)
            step_index = len(result.steps)
            while True:
                tracker.emit_crossings(current, result)
                if tracker.done:
                    break
                if result.observer.should_stop():
                    tracker.emit_remaining(current, result, "observer")
                    break
                if config.max_steps is not None and step_index >= config.max_steps:
                    tracker.emit_remaining(current, result, "max_steps")
                    break
                try:
                    step = self._perform_step(session, current, rng, result)
                except AnonymizationStopped:
                    # The step may have been interrupted after applying part of
                    # its modifications (rem-ins applies the removal before the
                    # insertion scan), so re-evaluate to keep the reported
                    # opacity consistent with the returned graph.
                    current = session.current()
                    result.evaluations += 1
                    tracker.emit_remaining(current, result, "observer")
                    break
                if step is None:
                    tracker.emit_remaining(current, result, "exhausted")
                    break
                current = session.current()
                result.evaluations += 1
                result.observer.on_evaluation(result.evaluations)
                operation, removals, insertions = step
                step_record = AnonymizationStep(
                    index=step_index,
                    operation=operation,
                    edges=removals + insertions,
                    max_opacity_after=current.max_opacity,
                    removals=removals,
                    insertions=insertions,
                )
                result.steps.append(step_record)
                result.observer.on_step(step_record, result)
                step_index += 1
            debug_info: Dict[str, Any] = {
                "fallback_row_fraction": session.fallback_row_fraction,
                "scan_workers": session.scan_workers,
                "parallel_scans": session.parallel_scans,
            }
        finally:
            session.close()
        results = materialize_checkpoints(tracker.checkpoints, original,
                                          config, result.observer)
        for run in results:
            run.debug_info = dict(debug_info)
        if config.strict:
            for run in results:
                if not run.success:
                    raise InfeasibleError(
                        f"could not reach theta={run.config.theta} "
                        f"(final opacity {run.final_opacity:.3f})")
        return results

    @abstractmethod
    def _perform_step(self, session: OpacitySession, current: OpacityResult,
                      rng: random.Random,
                      result: AnonymizationResult
                      ) -> Optional[Tuple[str, Tuple[Edge, ...], Tuple[Edge, ...]]]:
        """Apply one greedy step through ``session``.

        Returns the applied ``(operation, removals, insertions)``, or
        ``None`` when no further step is possible (the driver then stops).
        """

    # ------------------------------------------------------------------
    # helpers shared by subclasses
    # ------------------------------------------------------------------
    def _evaluate_removal(self, session: OpacitySession, edges: Sequence[Edge],
                          result: AnonymizationResult) -> CandidateOutcome:
        """Opacity after tentatively removing ``edges`` (no trace is left)."""
        outcome = session.evaluate_edit(removals=edges)
        self._record_evaluation(result)
        return CandidateOutcome(edges=tuple(edges), fraction=outcome.fraction,
                                types_at_max=outcome.types_at_max)

    def _evaluate_insertion(self, session: OpacitySession, edges: Sequence[Edge],
                            result: AnonymizationResult) -> CandidateOutcome:
        """Opacity after tentatively inserting ``edges`` (no trace is left)."""
        outcome = session.evaluate_edit(insertions=edges)
        self._record_evaluation(result)
        return CandidateOutcome(edges=tuple(edges), fraction=outcome.fraction,
                                types_at_max=outcome.types_at_max)

    def _batch_removal_evaluator(self, session: OpacitySession,
                                 result: AnonymizationResult):
        """Batch counterpart of :meth:`_evaluate_removal` for candidate scans.

        Returns a callable mapping a list of edge combinations to an
        iterator of :class:`CandidateOutcome`\\ s: outcomes are computed in
        stacked :meth:`OpacitySession.evaluate_edits` chunks, then yielded
        one at a time with the same per-candidate evaluation accounting
        (and :class:`AnonymizationStopped` cadence) as the sequential scan
        — chunking keeps a stop request from waiting on the whole batch.
        """
        return self._batch_evaluator(session, result, "remove")

    def _batch_insertion_evaluator(self, session: OpacitySession,
                                   result: AnonymizationResult):
        """Batch counterpart of :meth:`_evaluate_insertion` (see above)."""
        return self._batch_evaluator(session, result, "insert")

    def _batch_evaluator(self, session: OpacitySession,
                         result: AnonymizationResult, kind: str):
        if kind == "remove":
            def to_edit(combo):
                return (tuple(combo), ())
        else:
            def to_edit(combo):
                return ((), tuple(combo))

        def evaluate_batch(combos):
            evaluations = iter_batched_evaluations(session, combos, to_edit)
            for combo, evaluation in zip(combos, evaluations):
                self._record_evaluation(result)
                yield CandidateOutcome(edges=tuple(combo),
                                       fraction=evaluation.fraction,
                                       types_at_max=evaluation.types_at_max)
        return evaluate_batch

    @staticmethod
    def _record_evaluation(result: AnonymizationResult) -> None:
        """Count one tentative evaluation and honour stop requests.

        Raising :class:`AnonymizationStopped` here (the working graph is
        already restored) makes cancellation responsive *within* a greedy
        step, whose candidate scan can span thousands of evaluations.
        """
        result.evaluations += 1
        result.observer.on_evaluation(result.evaluations)
        if result.observer.should_stop():
            raise AnonymizationStopped()
