"""Adversary inference model (Section 3 of the paper).

The paper motivates L-opacity with a concrete attack: the adversary knows
the original degree of a target individual and of a person of interest (say,
a convicted criminal), maps each of them to the set of candidate vertices
with that degree in the published graph, and asks how confident they can be
that the two individuals are connected by a path of length at most L.  In
Figure 2 that confidence is the fraction of cross pairs (one candidate from
each side) that are within distance L — 100% when every candidate pair is
linked, 50% when half are, 0% when none is.

This module implements that inference directly, so the privacy guarantee can
be *attacked* as well as enforced: after anonymization, the confidence for
any pair of degree-identified individuals is bounded by θ (it equals the
L-opacity of the corresponding degree-pair type).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.pair_types import DegreePairTyping
from repro.errors import ConfigurationError
from repro.graph.distance import DistanceEngine, bounded_distance_matrix
from repro.graph.graph import Graph
from repro.graph.matrices import UNREACHABLE


@dataclass(frozen=True)
class LinkageInference:
    """Outcome of one adversary inference about a pair of individuals."""

    target_candidates: Tuple[int, ...]
    subject_candidates: Tuple[int, ...]
    length_threshold: int
    linked_pairs: int
    total_pairs: int

    @property
    def confidence(self) -> float:
        """Adversary's confidence that the two individuals are within L hops."""
        if self.total_pairs == 0:
            return 0.0
        return self.linked_pairs / self.total_pairs


class DegreeAdversary:
    """An adversary who re-identifies individuals by their original degree.

    Parameters
    ----------
    published_graph:
        The graph as published (possibly anonymized).
    original_typing:
        Degree information of the *original* graph, which the paper's
        publication model releases alongside the anonymized structure.  When
        omitted, the published graph's own degrees are used (the adversary of
        a naive publication).
    engine:
        Distance engine used for the ≤L reachability computation.
    """

    def __init__(self, published_graph: Graph,
                 original_typing: Optional[DegreePairTyping] = None,
                 engine: DistanceEngine = "numpy") -> None:
        self._graph = published_graph
        self._typing = original_typing or DegreePairTyping(published_graph)
        if len(self._typing.degrees) != published_graph.num_vertices:
            raise ConfigurationError(
                "original_typing must describe the same vertex set as the published graph")
        self._engine = engine

    # ------------------------------------------------------------------
    # candidate identification
    # ------------------------------------------------------------------
    def candidates_with_degree(self, degree: int) -> Tuple[int, ...]:
        """Vertices whose *original* degree equals the adversary's knowledge."""
        degrees = self._typing.degrees
        return tuple(int(v) for v in np.nonzero(degrees == degree)[0])

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def linkage_confidence(self, target_candidates: Sequence[int],
                           subject_candidates: Sequence[int],
                           length_threshold: int) -> LinkageInference:
        """Confidence that the target and the subject are within ``length_threshold``.

        Candidate sets may overlap (two individuals with the same degree);
        pairs consisting of the same vertex are skipped, as a vertex cannot
        represent both individuals.
        """
        if length_threshold < 1:
            raise ConfigurationError("length_threshold must be >= 1")
        targets = tuple(dict.fromkeys(int(v) for v in target_candidates))
        subjects = tuple(dict.fromkeys(int(v) for v in subject_candidates))
        distances = bounded_distance_matrix(self._graph, length_threshold,
                                            engine=self._engine)
        linked = 0
        total = 0
        for target in targets:
            for subject in subjects:
                if target == subject:
                    continue
                total += 1
                distance = int(distances[target, subject])
                if distance != UNREACHABLE and distance <= length_threshold:
                    linked += 1
        return LinkageInference(
            target_candidates=targets,
            subject_candidates=subjects,
            length_threshold=length_threshold,
            linked_pairs=linked,
            total_pairs=total,
        )

    def degree_linkage_confidence(self, target_degree: int, subject_degree: int,
                                  length_threshold: int) -> LinkageInference:
        """Confidence for two individuals known only by their original degrees.

        This is exactly the L-opacity of the degree-pair type
        ``{target_degree, subject_degree}``, so on an L-opaque published
        graph the returned confidence never exceeds θ.
        """
        return self.linkage_confidence(
            self.candidates_with_degree(target_degree),
            self.candidates_with_degree(subject_degree),
            length_threshold,
        )

    def most_confident_inferences(self, length_threshold: int,
                                  top: int = 5) -> Tuple[LinkageInference, ...]:
        """The ``top`` degree pairs about which the adversary is most confident."""
        degrees: Set[int] = {int(d) for d in self._typing.degrees}
        inferences = []
        for low in sorted(degrees):
            for high in sorted(degrees):
                if low > high:
                    continue
                inference = self.degree_linkage_confidence(low, high, length_threshold)
                if inference.total_pairs:
                    inferences.append(((low, high), inference))
        inferences.sort(key=lambda item: -item[1].confidence)
        return tuple(inference for _pair, inference in inferences[:top])
