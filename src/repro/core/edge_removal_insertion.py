"""The Edge Removal/Insertion heuristic (paper Algorithm 5, with look-ahead).

Each greedy iteration performs an edge removal chosen exactly as in the Edge
Removal heuristic, immediately followed by the edge *insertion* that yields
the lowest maximum opacity, thereby keeping the number of edges of the
original graph constant.  To avoid oscillation, an edge that has been
inserted is never removed again and an edge that has been removed is never
re-inserted (the ``E_A`` / ``E_D`` sets of the pseudo-code).  Both phases
evaluate their candidates through the step's
:class:`~repro.core.opacity_session.OpacitySession`.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.api.registry import register_anonymizer
from repro.core.anonymizer import AnonymizationResult, TieBreaker
from repro.core.edge_removal import EdgeRemovalAnonymizer
from repro.core.lookahead import search_best_combination
from repro.core.opacity import OpacityResult
from repro.core.opacity_session import OpacitySession
from repro.graph.graph import Edge, Graph


@register_anonymizer(
    "rem-ins",
    description="Edge Removal/Insertion (paper Algorithm 5)",
    accepts=("length_threshold", "theta", "lookahead", "engine", "seed",
             "max_steps", "prune_candidates", "max_combinations",
             "insertion_candidate_cap", "strict", "evaluation_mode",
             "scan_mode", "scan_workers", "sweep_mode", "scale_tier",
             "scale_budget_bytes"),
)
class EdgeRemovalInsertionAnonymizer(EdgeRemovalAnonymizer):
    """Algorithm 5: greedy L-opacification via alternating removal and insertion.

    Inherits the removal-step machinery (candidate pruning, look-ahead,
    tie-breaking) from :class:`EdgeRemovalAnonymizer` and adds the
    compensating insertion phase.

    Examples
    --------
    >>> from repro.graph import erdos_renyi_graph
    >>> graph = erdos_renyi_graph(25, 0.2, seed=3)
    >>> result = EdgeRemovalInsertionAnonymizer(
    ...     length_threshold=1, theta=0.6, seed=0).anonymize(graph)
    >>> result.anonymized_graph.num_edges == graph.num_edges
    True
    """

    def _perform_step(self, session: OpacitySession, current: OpacityResult,
                      rng: random.Random,
                      result: AnonymizationResult
                      ) -> Optional[Tuple[str, Tuple[Edge, ...], Tuple[Edge, ...]]]:
        removed = self._removal_phase(session, current, rng, result)
        if removed is None:
            return None
        inserted = self._insertion_phase(session, rng, result)
        operation = "remove+insert" if inserted else "remove"
        return (operation, removed, inserted if inserted is not None else ())

    # ------------------------------------------------------------------
    # removal phase (lines 3-9 of Algorithm 5)
    # ------------------------------------------------------------------
    def _removal_phase(self, session: OpacitySession, current: OpacityResult,
                       rng: random.Random,
                       result: AnonymizationResult) -> Optional[Tuple[Edge, ...]]:
        candidates = [edge for edge in self._removal_candidates(session, current)
                      if edge not in result.inserted_edges]
        if not candidates:
            return None
        best = search_best_combination(
            candidates,
            lambda combo: self._evaluate_removal(session, combo, result),
            current_fraction=current.max_fraction,
            lookahead=self._config.lookahead,
            rng=rng,
            max_combinations=self._config.max_combinations,
            evaluate_batch=(self._batch_removal_evaluator(session, result)
                            if self._config.scan_mode in ("batched", "parallel")
                            else None),
        )
        if best is None:
            return None
        session.apply_edit(removals=best.edges)
        result.removed_edges.update(best.edges)
        return best.edges

    # ------------------------------------------------------------------
    # insertion phase (lines 10-18 of Algorithm 5)
    # ------------------------------------------------------------------
    def _insertion_phase(self, session: OpacitySession, rng: random.Random,
                         result: AnonymizationResult) -> Optional[Tuple[Edge, ...]]:
        candidates = self._insertion_candidates(session.graph, rng, result)
        if not candidates:
            return None
        breaker = TieBreaker(rng)
        if self._config.scan_mode in ("batched", "parallel"):
            evaluate_batch = self._batch_insertion_evaluator(session, result)
            for outcome in evaluate_batch([(edge,) for edge in candidates]):
                breaker.offer(outcome)
        else:
            for edge in candidates:
                breaker.offer(self._evaluate_insertion(session, (edge,), result))
        best = breaker.best
        if best is None:
            return None
        session.apply_edit(insertions=best.edges)
        result.inserted_edges.update(best.edges)
        return best.edges

    def _insertion_candidates(self, working: Graph, rng: random.Random,
                              result: AnonymizationResult) -> List[Edge]:
        """Absent edges eligible for insertion (never removed before).

        The paper scans every absent edge; ``insertion_candidate_cap``
        optionally bounds the scan with a seeded uniform sample for large
        graphs (documented deviation, DESIGN.md §5.4).
        """
        removed = result.removed_edges
        candidates = [edge for edge in working.non_edges() if edge not in removed]
        cap = self._config.insertion_candidate_cap
        if cap is not None and len(candidates) > cap:
            candidates = rng.sample(candidates, cap)
        return candidates
