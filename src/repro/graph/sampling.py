"""Random node sampling, as used to build the paper's experimental graphs.

Section 6.1: "We have randomly sampled the vertices of six of these seven
data sets to derive smaller graphs of 100-1000 nodes.  The edges in the
sampled graph are the adjacent edges of the sampled nodes" — i.e. the
induced subgraph on a uniform random vertex subset.
"""

from __future__ import annotations

import random
from typing import Dict, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.graph.graph import Graph

SeedLike = Union[int, random.Random, None]


def _rng(seed: SeedLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def sample_nodes(graph: Graph, sample_size: int, seed: SeedLike = None) -> Sequence[int]:
    """Choose ``sample_size`` distinct vertices uniformly at random."""
    if not 0 <= sample_size <= graph.num_vertices:
        raise ConfigurationError(
            f"sample_size must be in [0, {graph.num_vertices}], got {sample_size}")
    rng = _rng(seed)
    return rng.sample(range(graph.num_vertices), sample_size)


def induced_subgraph(graph: Graph, vertices: Sequence[int]) -> Tuple[Graph, Dict[int, int]]:
    """Return the induced subgraph on ``vertices`` and the old->new vertex map."""
    return graph.subgraph(vertices)


def sample_graph(graph: Graph, sample_size: int,
                 seed: SeedLike = None) -> Tuple[Graph, Dict[int, int]]:
    """Sample vertices and return the induced subgraph (paper Section 6.1).

    Returns
    -------
    (sampled_graph, mapping)
        ``mapping`` maps original vertex ids to ids in the sampled graph.
    """
    vertices = sample_nodes(graph, sample_size, seed=seed)
    return induced_subgraph(graph, vertices)
